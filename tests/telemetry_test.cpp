// Metrics_registry contract tests: exact multi-threaded counter and
// histogram merges, stable handles, deterministic snapshots, and the
// cellsync-metrics-v1 JSON shape. Collection-dependent cases skip under
// -DCELLSYNC_TELEMETRY=OFF, where the same binary instead pins the
// no-op contract (instruments exist, never count).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/telemetry.h"

namespace cellsync::telemetry {
namespace {

/// Minimal recursive-descent JSON well-formedness check (no values kept):
/// enough to prove the writers emit parseable documents without pulling
/// in a JSON library.
class Json_checker {
  public:
    explicit Json_checker(const std::string& text) : text_(text) {}

    bool valid() {
        pos_ = 0;
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == text_.size();
    }

  private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\\') { pos_ += 2; continue; }
            if (c == '"') { ++pos_; return true; }
            ++pos_;
        }
        return false;
    }

    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char* word) {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

TEST(Telemetry, CounterAddsAreExactAcrossThreads) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Counter& shared = counter("test.threads.counter");
    shared.reset();

    constexpr int kThreads = 8;
    constexpr std::uint64_t kAdds = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&shared] {
            for (std::uint64_t i = 0; i < kAdds; ++i) shared.add();
        });
    }
    for (std::thread& thread : threads) thread.join();

    // Every add lands: relaxed ordering loosens only cross-counter
    // visibility, never the total.
    EXPECT_EQ(shared.value(), kThreads * kAdds);
}

TEST(Telemetry, HistogramMergesExactlyAcrossThreads) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Histogram& shared = histogram("test.threads.histogram");
    shared.reset();

    // Every thread records the same deterministic sequence, so the
    // merged buckets must equal kThreads x the serial bucketing.
    constexpr int kThreads = 6;
    constexpr std::size_t kSamples = 5000;
    const auto sample = [](std::size_t i) {
        return static_cast<double>((i * 37) % 3000);  // spans several buckets
    };
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&shared, &sample] {
            for (std::size_t i = 0; i < kSamples; ++i) shared.record(sample(i));
        });
    }
    for (std::thread& thread : threads) thread.join();

    Histogram serial;
    for (std::size_t i = 0; i < kSamples; ++i) serial.record(sample(i));
    const Histogram_snapshot expected = serial.snapshot();
    const Histogram_snapshot merged = shared.snapshot();

    ASSERT_EQ(merged.counts.size(), expected.counts.size());
    for (std::size_t b = 0; b < merged.counts.size(); ++b) {
        EXPECT_EQ(merged.counts[b], kThreads * expected.counts[b]) << "bucket " << b;
    }
    EXPECT_EQ(merged.total, kThreads * expected.total);
    // The sum is CAS-accumulated; with integer-valued samples the total
    // is exact regardless of the interleaving.
    EXPECT_EQ(merged.sum, kThreads * expected.sum);
}

TEST(Telemetry, HistogramBucketBoundariesAreInclusive) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Histogram h;
    h.record(1.0);    // lands in the le=1 bucket (inclusive upper bound)
    h.record(1.5);    // le=2
    h.record(1e7);    // last finite bucket
    h.record(2e7);    // overflow bucket
    const Histogram_snapshot snap = h.snapshot();
    ASSERT_EQ(snap.upper_bounds.size() + 1, snap.counts.size());
    EXPECT_EQ(snap.counts[0], 1u);  // le 1
    EXPECT_EQ(snap.counts[1], 1u);  // le 2
    EXPECT_EQ(snap.counts[snap.upper_bounds.size() - 1], 1u);  // le 1e7
    EXPECT_EQ(snap.counts.back(), 1u);                         // +Inf
    EXPECT_EQ(snap.total, 4u);
}

TEST(Telemetry, RegistryHandlesAreStableAndPerName) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Counter& a1 = counter("test.handle.a");
    Counter& a2 = counter("test.handle.a");
    Counter& b = counter("test.handle.b");
    EXPECT_EQ(&a1, &a2);
    EXPECT_NE(&a1, &b);

    // Same name, different instrument kinds: distinct objects.
    Gauge& g = gauge("test.handle.a");
    EXPECT_NE(static_cast<void*>(&g), static_cast<void*>(&a1));
}

TEST(Telemetry, GaugeIsLastWriteWins) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Gauge& g = gauge("test.gauge");
    g.set(3.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(Telemetry, SnapshotIsSortedByName) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    counter("test.sort.zz").add();
    counter("test.sort.aa").add();
    counter("test.sort.mm").add();
    const Metrics_snapshot snap = Metrics_registry::instance().snapshot();
    for (std::size_t i = 1; i < snap.counters.size(); ++i) {
        EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
    }
    for (std::size_t i = 1; i < snap.histograms.size(); ++i) {
        EXPECT_LT(snap.histograms[i - 1].first, snap.histograms[i].first);
    }
}

TEST(Telemetry, ResetValuesZeroesWithoutInvalidatingHandles) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Counter& c = counter("test.reset.counter");
    Histogram& h = histogram("test.reset.histogram");
    c.add(5);
    h.record(10.0);
    Metrics_registry::instance().reset_values();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.snapshot().total, 0u);
    c.add();  // handle still live
    EXPECT_EQ(c.value(), 1u);
}

TEST(Telemetry, MetricsJsonIsWellFormed) {
    // Snapshot types compile in both modes; build one by hand so the
    // writer is exercised identically under ON and OFF.
    Metrics_snapshot snap;
    snap.counters = {{"layer.counts \"quoted\"", 42}, {"layer.other", 0}};
    snap.gauges = {{"layer.gauge", -2.5}};
    Histogram_snapshot h;
    h.upper_bounds = {1.0, 2.0};
    h.counts = {3, 0, 7};
    h.total = 10;
    h.sum = 123.5;
    snap.histograms = {{"layer.latency_us", h}};

    std::ostringstream out;
    write_metrics_json(out, snap);
    const std::string text = out.str();

    EXPECT_TRUE(Json_checker(text).valid()) << text;
    EXPECT_NE(text.find("\"schema\": \"cellsync-metrics-v1\""), std::string::npos);
    EXPECT_NE(text.find("\"layer.counts \\\"quoted\\\"\": 42"), std::string::npos);
    EXPECT_NE(text.find("\"layer.latency_us\""), std::string::npos);
    EXPECT_NE(text.find("\"+Inf\""), std::string::npos);  // overflow bucket
}

TEST(Telemetry, RegistrySnapshotJsonIsWellFormed) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    counter("test.json.counter").add(3);
    gauge("test.json.gauge").set(1.5);
    histogram("test.json.histogram").record(250.0);
    std::ostringstream out;
    write_metrics_json(out, Metrics_registry::instance().snapshot());
    EXPECT_TRUE(Json_checker(out.str()).valid()) << out.str();
    EXPECT_NE(out.str().find("\"telemetry_compiled\": true"), std::string::npos);
}

TEST(Telemetry, OffModeInstrumentsAreInertNoOps) {
    if (compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=ON";
    // The no-op contract: same API, nothing ever counts, snapshots are
    // empty, and the metrics JSON is still valid (empty sections).
    Counter& c = counter("test.off.counter");
    c.add(100);
    EXPECT_EQ(c.value(), 0u);
    Histogram& h = histogram("test.off.histogram");
    h.record(5.0);
    EXPECT_EQ(h.snapshot().total, 0u);
    const Metrics_snapshot snap = Metrics_registry::instance().snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());

    std::ostringstream out;
    write_metrics_json(out, snap);
    EXPECT_TRUE(Json_checker(out.str()).valid()) << out.str();
    EXPECT_NE(out.str().find("\"telemetry_compiled\": false"), std::string::npos);
}

TEST(Telemetry, LatencyTimerMatchesGate) {
    // In ON builds the timer reads the clock seam; in OFF builds it must
    // not (elapsed is identically zero). Either way the call compiles.
    const Latency_timer timer;
    if constexpr (compiled_in) {
        EXPECT_GE(timer.elapsed_us(), 0.0);
    } else {
        EXPECT_EQ(timer.elapsed_us(), 0.0);
        EXPECT_EQ(timer.elapsed_ms(), 0.0);
    }
}

TEST(Telemetry, StopwatchIsAlwaysReal) {
    // The bench seam is gate-independent: elapsed time is monotonic and
    // non-negative in both build modes.
    Stopwatch watch;
    const std::int64_t a = watch.elapsed_ns();
    const std::int64_t b = watch.elapsed_ns();
    EXPECT_GE(a, 0);
    EXPECT_GE(b, a);
    watch.reset();
    EXPECT_GE(watch.elapsed_ns(), 0);
}

}  // namespace
}  // namespace cellsync::telemetry
