#include "core/bootstrap.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

class BootstrapTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        Kernel_build_options options;
        options.n_cells = 20000;
        options.n_bins = 120;
        options.seed = 88;
        kernel_ = new Kernel_grid(build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                               linspace(0.0, 180.0, 13), options));
        deconvolver_ = new Deconvolver(std::make_shared<Natural_spline_basis>(12), *kernel_,
                                       Cell_cycle_config{});
    }
    static void TearDownTestSuite() {
        delete deconvolver_;
        delete kernel_;
        deconvolver_ = nullptr;
        kernel_ = nullptr;
    }
    static Kernel_grid* kernel_;
    static Deconvolver* deconvolver_;
};

Kernel_grid* BootstrapTest::kernel_ = nullptr;
Deconvolver* BootstrapTest::deconvolver_ = nullptr;

Measurement_series noisy_data(const Kernel_grid& kernel, std::uint64_t seed) {
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    Rng rng(seed);
    return forward_measurements_noisy(kernel, truth.f,
                                      {Noise_type::relative_gaussian, 0.08}, rng);
}

TEST(BootstrapOptions, Validation) {
    Bootstrap_options options;
    EXPECT_NO_THROW(options.validate());
    options.replicates = 5;
    EXPECT_THROW(options.validate(), std::invalid_argument);
    options = {};
    options.coverage = 1.0;
    EXPECT_THROW(options.validate(), std::invalid_argument);
    options = {};
    options.max_failure_fraction = 1.0;
    EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST_F(BootstrapTest, BandOrderingAndShapes) {
    const Measurement_series data = noisy_data(*kernel_, 1);
    Deconvolution_options options;
    options.lambda = 1e-3;
    Bootstrap_options boot;
    boot.replicates = 60;
    const Vector grid = linspace(0.0, 1.0, 21);
    const Confidence_band band =
        bootstrap_confidence_band(*deconvolver_, data, options, grid, boot);
    ASSERT_EQ(band.phi.size(), grid.size());
    ASSERT_EQ(band.lower.size(), grid.size());
    ASSERT_EQ(band.upper.size(), grid.size());
    EXPECT_EQ(band.replicates_used, 60u);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_LE(band.lower[i], band.median[i]) << "i=" << i;
        EXPECT_LE(band.median[i], band.upper[i]) << "i=" << i;
    }
    EXPECT_GT(band.mean_width(), 0.0);
}

TEST_F(BootstrapTest, BandCoversTruthAtMostPoints) {
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    const Measurement_series data = noisy_data(*kernel_, 2);
    Deconvolution_options options;
    options.lambda = 1e-3;
    Bootstrap_options boot;
    boot.replicates = 120;
    boot.coverage = 0.95;
    // Interior grid: the endpoints carry systematic (bias) error that a
    // noise-only bootstrap cannot see.
    const Vector grid = linspace(0.10, 0.90, 17);
    const Confidence_band band =
        bootstrap_confidence_band(*deconvolver_, data, options, grid, boot);
    EXPECT_GE(band.coverage_fraction(truth.f), 0.6);
}

TEST_F(BootstrapTest, WiderCoverageGivesWiderBand) {
    const Measurement_series data = noisy_data(*kernel_, 3);
    Deconvolution_options options;
    options.lambda = 1e-3;
    const Vector grid = linspace(0.0, 1.0, 11);
    Bootstrap_options narrow;
    narrow.replicates = 80;
    narrow.coverage = 0.50;
    Bootstrap_options wide = narrow;
    wide.coverage = 0.95;
    const Confidence_band band_narrow =
        bootstrap_confidence_band(*deconvolver_, data, options, grid, narrow);
    const Confidence_band band_wide =
        bootstrap_confidence_band(*deconvolver_, data, options, grid, wide);
    EXPECT_GT(band_wide.mean_width(), band_narrow.mean_width());
}

TEST_F(BootstrapTest, MoreNoiseGivesWiderBand) {
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    Deconvolution_options options;
    options.lambda = 1e-3;
    Bootstrap_options boot;
    boot.replicates = 60;
    const Vector grid = linspace(0.0, 1.0, 11);

    Rng rng_low(4), rng_high(4);
    const Measurement_series quiet = forward_measurements_noisy(
        *kernel_, truth.f, {Noise_type::relative_gaussian, 0.03}, rng_low);
    const Measurement_series loud = forward_measurements_noisy(
        *kernel_, truth.f, {Noise_type::relative_gaussian, 0.15}, rng_high);
    const Confidence_band band_quiet =
        bootstrap_confidence_band(*deconvolver_, quiet, options, grid, boot);
    const Confidence_band band_loud =
        bootstrap_confidence_band(*deconvolver_, loud, options, grid, boot);
    EXPECT_GT(band_loud.mean_width(), band_quiet.mean_width());
}

TEST_F(BootstrapTest, DeterministicGivenSeed) {
    const Measurement_series data = noisy_data(*kernel_, 5);
    Deconvolution_options options;
    options.lambda = 1e-3;
    Bootstrap_options boot;
    boot.replicates = 40;
    const Vector grid = linspace(0.0, 1.0, 5);
    const Confidence_band a =
        bootstrap_confidence_band(*deconvolver_, data, options, grid, boot);
    const Confidence_band b =
        bootstrap_confidence_band(*deconvolver_, data, options, grid, boot);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.lower[i], b.lower[i]);
        EXPECT_DOUBLE_EQ(a.upper[i], b.upper[i]);
    }
}

TEST_F(BootstrapTest, EmptyGridRejected) {
    const Measurement_series data = noisy_data(*kernel_, 6);
    EXPECT_THROW(
        bootstrap_confidence_band(*deconvolver_, data, Deconvolution_options{}, {}),
        std::invalid_argument);
}

TEST(ConfidenceBand, ContainmentHelpers) {
    Confidence_band band;
    band.phi = {0.0, 0.5, 1.0};
    band.lower = {0.0, 1.0, 0.0};
    band.median = {0.5, 1.5, 0.5};
    band.upper = {1.0, 2.0, 1.0};
    band.point = band.median;
    const auto inside = [](double) { return 0.5; };
    EXPECT_NEAR(band.coverage_fraction(inside), 2.0 / 3.0, 1e-12);
    EXPECT_FALSE(band.contains(inside));
    const auto centered = [&](double phi) { return phi == 0.5 ? 1.5 : 0.5; };
    EXPECT_TRUE(band.contains(centered));
    EXPECT_NEAR(band.mean_width(), 1.0, 1e-12);
}

}  // namespace
}  // namespace cellsync
