#include "numerics/quadrature.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(Trapezoid, ExactForLinear) {
    // f(x) = 2x on [0, 1] sampled at 0, 0.5, 1.
    EXPECT_DOUBLE_EQ(trapezoid({0.0, 1.0, 2.0}, 0.5), 1.0);
}

TEST(Trapezoid, RejectsBadInput) {
    EXPECT_THROW(trapezoid({1.0}, 0.5), std::invalid_argument);
    EXPECT_THROW(trapezoid({1.0, 2.0}, 0.0), std::invalid_argument);
}

TEST(Simpson, ExactForCubic) {
    // f(x) = x^3 on [0, 2]: integral = 4.
    Vector y;
    const double h = 0.5;
    for (int i = 0; i <= 4; ++i) {
        const double x = h * i;
        y.push_back(x * x * x);
    }
    EXPECT_NEAR(simpson(y, h), 4.0, 1e-14);
}

TEST(Simpson, RejectsEvenSampleCount) {
    EXPECT_THROW(simpson({1.0, 2.0, 3.0, 4.0}, 0.1), std::invalid_argument);
    EXPECT_THROW(simpson({1.0, 2.0, 3.0}, -1.0), std::invalid_argument);
}

TEST(TrapezoidNonuniform, MatchesUniformCase) {
    const Vector x{0.0, 0.5, 1.0};
    const Vector y{0.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(trapezoid_nonuniform(x, y), trapezoid(y, 0.5));
}

TEST(TrapezoidNonuniform, HandlesIrregularGrid) {
    // f = 1 integrates to the span regardless of grid.
    EXPECT_DOUBLE_EQ(trapezoid_nonuniform({0.0, 0.1, 0.7, 1.0}, {1.0, 1.0, 1.0, 1.0}), 1.0);
}

TEST(TrapezoidNonuniform, RejectsDescendingGrid) {
    EXPECT_THROW(trapezoid_nonuniform({0.0, -0.1}, {1.0, 1.0}), std::invalid_argument);
}

TEST(GaussLegendre, WeightsSumToInterval) {
    for (std::size_t n : {1u, 2u, 5u, 16u, 64u}) {
        const Quadrature_rule r = gauss_legendre(n, -2.0, 3.0);
        EXPECT_NEAR(sum(r.weights), 5.0, 1e-12) << "n=" << n;
    }
}

TEST(GaussLegendre, NodesInsideIntervalAndAscending) {
    const Quadrature_rule r = gauss_legendre(12, 0.0, 1.0);
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        EXPECT_GT(r.nodes[i], 0.0);
        EXPECT_LT(r.nodes[i], 1.0);
        if (i > 0) {
            EXPECT_GT(r.nodes[i], r.nodes[i - 1]);
        }
    }
}

TEST(GaussLegendre, ExactForHighDegreePolynomials) {
    // n-point rule is exact up to degree 2n-1: check x^9 with n = 5 on [0,1].
    const Quadrature_rule r = gauss_legendre(5, 0.0, 1.0);
    double s = 0.0;
    for (std::size_t i = 0; i < 5; ++i) s += r.weights[i] * std::pow(r.nodes[i], 9);
    EXPECT_NEAR(s, 0.1, 1e-14);
}

TEST(GaussLegendre, RejectsBadArguments) {
    EXPECT_THROW(gauss_legendre(0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(gauss_legendre(4, 1.0, 1.0), std::invalid_argument);
}

TEST(IntegrateGauss, SinOverHalfPeriod) {
    const double v = integrate_gauss([](double x) { return std::sin(x); }, 0.0,
                                     std::numbers::pi, 24);
    EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(IntegrateSimpson, GaussianMassCloseToOne) {
    const double v = integrate_simpson(
        [](double x) {
            return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
        },
        -8.0, 8.0, 512);
    EXPECT_NEAR(v, 1.0, 1e-10);
}

TEST(IntegrateSimpson, RejectsZeroPanels) {
    EXPECT_THROW(integrate_simpson([](double) { return 1.0; }, 0.0, 1.0, 0),
                 std::invalid_argument);
}

// Property sweep: composite Simpson converges at 4th order on smooth
// integrands — doubling panels must cut the error by ~16x.
class SimpsonConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimpsonConvergence, FourthOrderOnExp) {
    const std::size_t panels = GetParam();
    const double exact = std::exp(1.0) - 1.0;
    const auto f = [](double x) { return std::exp(x); };
    const double e1 = std::abs(integrate_simpson(f, 0.0, 1.0, panels) - exact);
    const double e2 = std::abs(integrate_simpson(f, 0.0, 1.0, 2 * panels) - exact);
    if (e1 > 1e-14) {
        EXPECT_LT(e2, e1 / 10.0);  // a loose 4th-order check
    }
}

INSTANTIATE_TEST_SUITE_P(PanelSweep, SimpsonConvergence,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace cellsync
