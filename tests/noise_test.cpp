#include "core/noise.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/statistics.h"

namespace cellsync {
namespace {

Measurement_series clean_series() {
    return Measurement_series::with_unit_sigma(
        "clean", linspace(0.0, 150.0, 11), {10.0, 12.0, 15.0, 13.0, 9.0, 8.0, 7.5, 8.2, 9.1, 10.5, 11.0});
}

TEST(Noise, NoneTypePassesThroughValuesAndSigmas) {
    Rng rng(1);
    const Noise_model model{Noise_type::none, 0.5};
    const Measurement_series noisy = add_noise(clean_series(), model, rng);
    for (std::size_t m = 0; m < noisy.size(); ++m) {
        EXPECT_DOUBLE_EQ(noisy.values[m], clean_series().values[m]);
        EXPECT_DOUBLE_EQ(noisy.sigmas[m], 1.0);
    }
}

TEST(Noise, RelativeGaussianSigmaTracksMagnitude) {
    Rng rng(2);
    const Noise_model model{Noise_type::relative_gaussian, 0.10};
    const Measurement_series noisy = add_noise(clean_series(), model, rng);
    for (std::size_t m = 0; m < noisy.size(); ++m) {
        EXPECT_NEAR(noisy.sigmas[m], 0.10 * std::abs(clean_series().values[m]), 1e-12);
    }
}

TEST(Noise, RelativeGaussianEmpiricalLevelMatches) {
    // Average over many draws: sd of (noisy - clean)/clean ~ level.
    Rng rng(3);
    const Noise_model model{Noise_type::relative_gaussian, 0.10};
    const Measurement_series clean = clean_series();
    Vector rel_errors;
    for (int rep = 0; rep < 400; ++rep) {
        const Measurement_series noisy = add_noise(clean, model, rng);
        for (std::size_t m = 0; m < clean.size(); ++m) {
            rel_errors.push_back((noisy.values[m] - clean.values[m]) / clean.values[m]);
        }
    }
    EXPECT_NEAR(mean(rel_errors), 0.0, 0.005);
    EXPECT_NEAR(stddev(rel_errors), 0.10, 0.005);
}

TEST(Noise, AbsoluteGaussianUsesGlobalScale) {
    Rng rng(4);
    const Noise_model model{Noise_type::absolute_gaussian, 0.05};
    const Measurement_series noisy = add_noise(clean_series(), model, rng);
    const double expected_sigma = 0.05 * mean(clean_series().values);
    for (double s : noisy.sigmas) EXPECT_NEAR(s, expected_sigma, 1e-12);
}

TEST(Noise, LognormalPreservesSign) {
    Rng rng(5);
    const Noise_model model{Noise_type::lognormal, 0.2};
    const Measurement_series noisy = add_noise(clean_series(), model, rng);
    for (double v : noisy.values) EXPECT_GT(v, 0.0);
}

TEST(Noise, ZeroLevelLeavesValuesEssentiallyUnchanged) {
    // With level 0 the only perturbation left is the sigma floor, so the
    // values change by at most a few floor-sized draws.
    Rng rng(6);
    for (Noise_type type : {Noise_type::relative_gaussian, Noise_type::absolute_gaussian,
                            Noise_type::lognormal}) {
        Noise_model model{type, 0.0};
        model.sigma_floor = 1e-3;
        const Measurement_series noisy = add_noise(clean_series(), model, rng);
        for (std::size_t m = 0; m < noisy.size(); ++m) {
            EXPECT_NEAR(noisy.values[m], clean_series().values[m], 1e-2);
        }
    }
}

TEST(Noise, SigmaFloorPreventsZeroWeights) {
    Rng rng(7);
    Measurement_series tiny = Measurement_series::with_unit_sigma(
        "tiny", {0.0, 1.0}, {0.0, 0.0});  // zero magnitude
    Noise_model model{Noise_type::relative_gaussian, 0.1};
    model.sigma_floor = 1e-4;
    const Measurement_series noisy = add_noise(tiny, model, rng);
    for (double s : noisy.sigmas) EXPECT_GE(s, 1e-4);
}

TEST(Noise, ValidationErrors) {
    Rng rng(8);
    Noise_model bad{Noise_type::relative_gaussian, -0.1};
    EXPECT_THROW(add_noise(clean_series(), bad, rng), std::invalid_argument);
    bad = {Noise_type::relative_gaussian, 0.1};
    bad.sigma_floor = -1.0;
    EXPECT_THROW(add_noise(clean_series(), bad, rng), std::invalid_argument);
}

TEST(Noise, TypeNamesStable) {
    EXPECT_EQ(to_string(Noise_type::none), "none");
    EXPECT_EQ(to_string(Noise_type::relative_gaussian), "relative-gaussian");
    EXPECT_EQ(to_string(Noise_type::absolute_gaussian), "absolute-gaussian");
    EXPECT_EQ(to_string(Noise_type::lognormal), "lognormal");
}

TEST(Noise, DeterministicGivenSeed) {
    const Noise_model model{Noise_type::relative_gaussian, 0.1};
    Rng rng_a(99), rng_b(99);
    const Measurement_series a = add_noise(clean_series(), model, rng_a);
    const Measurement_series b = add_noise(clean_series(), model, rng_b);
    for (std::size_t m = 0; m < a.size(); ++m) EXPECT_DOUBLE_EQ(a.values[m], b.values[m]);
}

}  // namespace
}  // namespace cellsync
