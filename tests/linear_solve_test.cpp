#include "numerics/linear_solve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/rng.h"

namespace cellsync {
namespace {

Matrix random_matrix(std::size_t n, Rng& rng) {
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    return a;
}

Matrix random_spd(std::size_t n, Rng& rng) {
    const Matrix a = random_matrix(n, rng);
    Matrix spd = gram(a);
    for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
    return spd;
}

TEST(LuSolve, SolvesKnownSystem) {
    const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const Vector x = lu_solve(a, Vector{3.0, 5.0});
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(LuSolve, ResidualSmallOnRandomSystems) {
    Rng rng(1);
    for (std::size_t n : {2u, 5u, 10u, 30u}) {
        const Matrix a = random_matrix(n, rng);
        const Vector b = rng.normal_vector(n);
        const Vector x = lu_solve(a, b);
        EXPECT_LT(norm_inf(a * x - b), 1e-9) << "n=" << n;
    }
}

TEST(LuSolve, PivotingHandlesZeroDiagonal) {
    const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    const Vector x = lu_solve(a, Vector{2.0, 3.0});
    EXPECT_DOUBLE_EQ(x[0], 3.0);
    EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(LuSolve, SingularMatrixThrows) {
    const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(lu_solve(a, Vector{1.0, 2.0}), std::runtime_error);
}

TEST(LuSolve, ShapeErrorsThrow) {
    EXPECT_THROW(lu_solve(Matrix(2, 3), Vector{1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(lu_solve(Matrix::identity(2), Vector{1.0}), std::invalid_argument);
}

TEST(LuSolve, MatrixRhsSolvesColumnwise) {
    const Matrix a{{2.0, 0.0}, {0.0, 4.0}};
    const Matrix x = lu_solve(a, Matrix::identity(2));
    EXPECT_NEAR(x(0, 0), 0.5, 1e-14);
    EXPECT_NEAR(x(1, 1), 0.25, 1e-14);
}

TEST(Determinant, KnownValues) {
    EXPECT_NEAR(determinant(Matrix{{1.0, 2.0}, {3.0, 4.0}}), -2.0, 1e-12);
    EXPECT_DOUBLE_EQ(determinant(Matrix::identity(4)), 1.0);
    EXPECT_DOUBLE_EQ(determinant(Matrix{{1.0, 2.0}, {2.0, 4.0}}), 0.0);
}

TEST(Inverse, TimesOriginalIsIdentity) {
    Rng rng(2);
    const Matrix a = random_matrix(4, rng);
    const Matrix prod = a * inverse(a);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
}

TEST(Cholesky, FactorReconstructsMatrix) {
    Rng rng(3);
    const Matrix a = random_spd(6, rng);
    const Matrix l = cholesky(a);
    const Matrix rec = l * l.transposed();
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
    EXPECT_THROW(cholesky(Matrix{{1.0, 2.0}, {2.0, 1.0}}), std::runtime_error);
    EXPECT_THROW(cholesky(Matrix{{-1.0}}), std::runtime_error);
}

TEST(CholeskySolve, MatchesLu) {
    Rng rng(4);
    const Matrix a = random_spd(8, rng);
    const Vector b = rng.normal_vector(8);
    const Vector x1 = cholesky_solve(a, b);
    const Vector x2 = lu_solve(a, b);
    EXPECT_LT(norm_inf(x1 - x2), 1e-9);
}

TEST(LdltSolve, HandlesIndefiniteKktSystem) {
    // [I A'; A 0] with A = [1 1] — a classic saddle-point system.
    const Matrix kkt{{1.0, 0.0, 1.0}, {0.0, 1.0, 1.0}, {1.0, 1.0, 0.0}};
    const Vector sol = ldlt_solve(kkt, {1.0, 2.0, 1.0});
    EXPECT_LT(norm_inf(kkt * sol - Vector{1.0, 2.0, 1.0}), 1e-12);
}

TEST(QrLeastSquares, ExactSolveWhenSquare) {
    const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const Vector x = qr_least_squares(a, {3.0, 5.0});
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(QrLeastSquares, OverdeterminedMatchesNormalEquations) {
    Rng rng(5);
    const std::size_t m = 20, n = 5;
    Matrix a(m, n);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    const Vector b = rng.normal_vector(m);
    const Vector x = qr_least_squares(a, b);
    // Normal-equation solution for comparison.
    const Vector xn = cholesky_solve(gram(a), transposed_times(a, b));
    EXPECT_LT(norm_inf(x - xn), 1e-8);
}

TEST(QrLeastSquares, RankDeficientGivesZeroForDeadColumns) {
    // Second column is identically zero: coefficient must be 0.
    Matrix a(4, 2);
    a.set_col(0, {1.0, 2.0, 3.0, 4.0});
    const Vector x = qr_least_squares(a, {2.0, 4.0, 6.0, 8.0});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(QrLeastSquares, ResidualOrthogonalToColumns) {
    Rng rng(6);
    Matrix a(10, 3);
    for (std::size_t i = 0; i < 10; ++i)
        for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.normal();
    const Vector b = rng.normal_vector(10);
    const Vector r = b - a * qr_least_squares(a, b);
    EXPECT_LT(norm_inf(transposed_times(a, r)), 1e-10);
}

TEST(ConditionNumber, IdentityIsOne) {
    EXPECT_NEAR(condition_number_1(Matrix::identity(5)), 1.0, 1e-12);
}

TEST(ConditionNumber, SingularIsInfinite) {
    EXPECT_TRUE(std::isinf(condition_number_1(Matrix{{1.0, 2.0}, {2.0, 4.0}})));
}

}  // namespace
}  // namespace cellsync
