#include "population/synchrony.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

std::vector<Snapshot_entry> snapshot_at_phases(const Vector& phases) {
    std::vector<Snapshot_entry> snap;
    for (double phi : phases) snap.push_back({phi, 0.15, 1.0});
    return snap;
}

TEST(Synchrony, PerfectSynchronyGivesOrderOne) {
    const auto snap = snapshot_at_phases(Vector(100, 0.3));
    EXPECT_NEAR(phase_order_parameter(snap), 1.0, 1e-12);
}

TEST(Synchrony, UniformPhasesGiveOrderNearZero) {
    Vector phases;
    for (int i = 0; i < 1000; ++i) phases.push_back((i + 0.5) / 1000.0);
    EXPECT_NEAR(phase_order_parameter(snapshot_at_phases(phases)), 0.0, 1e-10);
}

TEST(Synchrony, OppositePhasesCancel) {
    EXPECT_NEAR(phase_order_parameter(snapshot_at_phases({0.0, 0.5})), 0.0, 1e-12);
}

TEST(Synchrony, EntropyZeroWhenConcentrated) {
    const auto snap = snapshot_at_phases(Vector(50, 0.42));
    EXPECT_NEAR(phase_entropy(snap, 50), 0.0, 1e-12);
}

TEST(Synchrony, EntropyOneWhenUniform) {
    Vector phases;
    for (int i = 0; i < 5000; ++i) phases.push_back((i + 0.5) / 5000.0);
    EXPECT_NEAR(phase_entropy(snapshot_at_phases(phases), 50), 1.0, 1e-6);
}

TEST(Synchrony, PopulationDesynchronizesOverTime) {
    Population_simulator sim(Cell_cycle_config{}, 20000, 17);
    const Smooth_volume_model vm;
    const double r0 = phase_order_parameter(sim.snapshot(vm));
    const double h0 = phase_entropy(sim.snapshot(vm));
    sim.advance_to(300.0);  // two mean cycles
    const double r1 = phase_order_parameter(sim.snapshot(vm));
    const double h1 = phase_entropy(sim.snapshot(vm));
    EXPECT_GT(r0, 0.9);   // synchronized isolate
    EXPECT_LT(r1, r0);    // decays toward asynchrony
    EXPECT_GT(h1, h0);    // spread increases
}

TEST(Synchrony, ValidationErrors) {
    EXPECT_THROW(phase_order_parameter({}), std::invalid_argument);
    EXPECT_THROW(phase_entropy({}, 50), std::invalid_argument);
    EXPECT_THROW(phase_entropy(snapshot_at_phases({0.5}), 1), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
