#include "population/synchrony.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

std::vector<Snapshot_entry> snapshot_at_phases(const Vector& phases) {
    std::vector<Snapshot_entry> snap;
    for (double phi : phases) snap.push_back({phi, 0.15, 1.0});
    return snap;
}

TEST(Synchrony, PerfectSynchronyGivesOrderOne) {
    const auto snap = snapshot_at_phases(Vector(100, 0.3));
    EXPECT_NEAR(phase_order_parameter(snap), 1.0, 1e-12);
}

TEST(Synchrony, UniformPhasesGiveOrderNearZero) {
    Vector phases;
    for (int i = 0; i < 1000; ++i) phases.push_back((i + 0.5) / 1000.0);
    EXPECT_NEAR(phase_order_parameter(snapshot_at_phases(phases)), 0.0, 1e-10);
}

TEST(Synchrony, OppositePhasesCancel) {
    EXPECT_NEAR(phase_order_parameter(snapshot_at_phases({0.0, 0.5})), 0.0, 1e-12);
}

TEST(Synchrony, EntropyZeroWhenConcentrated) {
    const auto snap = snapshot_at_phases(Vector(50, 0.42));
    EXPECT_NEAR(phase_entropy(snap, 50), 0.0, 1e-12);
}

TEST(Synchrony, EntropyOneWhenUniform) {
    Vector phases;
    for (int i = 0; i < 5000; ++i) phases.push_back((i + 0.5) / 5000.0);
    EXPECT_NEAR(phase_entropy(snapshot_at_phases(phases), 50), 1.0, 1e-6);
}

TEST(Synchrony, PopulationDesynchronizesOverTime) {
    Population_simulator sim(Cell_cycle_config{}, 20000, 17);
    const Smooth_volume_model vm;
    const double r0 = phase_order_parameter(sim.snapshot(vm));
    const double h0 = phase_entropy(sim.snapshot(vm));
    sim.advance_to(300.0);  // two mean cycles
    const double r1 = phase_order_parameter(sim.snapshot(vm));
    const double h1 = phase_entropy(sim.snapshot(vm));
    EXPECT_GT(r0, 0.9);   // synchronized isolate
    EXPECT_LT(r1, r0);    // decays toward asynchrony
    EXPECT_GT(h1, h0);    // spread increases
}

TEST(Synchrony, ValidationErrors) {
    EXPECT_THROW(phase_order_parameter({}), std::invalid_argument);
    EXPECT_THROW(phase_entropy({}, 50), std::invalid_argument);
    EXPECT_THROW(phase_entropy(snapshot_at_phases({0.5}), 1), std::invalid_argument);
}

TEST(Synchrony, FlatProfileIsMaximallyEntropicAndUnordered) {
    const Vector phi = linspace(0.0, 1.0, 64);
    const Vector flat(64, 3.0);
    EXPECT_NEAR(profile_entropy(flat), 1.0, 1e-12);
    // The closed grid double-counts phi = 0/1; the resultant of the 63
    // distinct uniform samples cancels, leaving only that overlap.
    EXPECT_LT(profile_order_parameter(phi, flat), 0.05);
}

TEST(Synchrony, PeakedProfileIsOrderedAndLowEntropy) {
    const Vector phi = linspace(0.0, 1.0, 101);
    Vector values(101, 0.0);
    values[40] = 5.0;  // all expression at phi = 0.4
    EXPECT_NEAR(profile_entropy(values), 0.0, 1e-12);
    EXPECT_NEAR(profile_order_parameter(phi, values), 1.0, 1e-12);
}

TEST(Synchrony, ProfileMetricsClampNegativeLobes) {
    // Spline estimates can undershoot below zero; the metrics must treat
    // negative lobes as zero expression, not as (meaningless) negative mass.
    const Vector phi{0.1, 0.3, 0.5, 0.7, 0.9};
    const Vector values{-2.0, 4.0, -1.0, 0.0, 0.0};
    EXPECT_NEAR(profile_order_parameter(phi, values), 1.0, 1e-12);
    EXPECT_NEAR(profile_entropy(values), 0.0, 1e-12);
}

TEST(Synchrony, ProfileMetricValidationErrors) {
    EXPECT_THROW(profile_order_parameter({0.1, 0.2}, {1.0}), std::invalid_argument);
    EXPECT_THROW(profile_order_parameter({}, {}), std::invalid_argument);
    EXPECT_THROW(profile_entropy({1.0}), std::invalid_argument);
    // All-nonpositive profile has no mass to normalize.
    EXPECT_THROW(profile_entropy({-1.0, 0.0, -0.5}), std::invalid_argument);
    EXPECT_THROW(profile_order_parameter({0.1, 0.5}, {0.0, -1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
