#include "core/forward_model.h"

#include <gtest/gtest.h>

#include "biology/gene_profiles.h"
#include "numerics/statistics.h"

namespace cellsync {
namespace {

class ForwardModelTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        Kernel_build_options options;
        options.n_cells = 20000;
        options.n_bins = 100;
        options.seed = 55;
        kernel_ = new Kernel_grid(build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                               linspace(0.0, 180.0, 13), options));
    }
    static void TearDownTestSuite() {
        delete kernel_;
        kernel_ = nullptr;
    }
    static Kernel_grid* kernel_;
};

Kernel_grid* ForwardModelTest::kernel_ = nullptr;

TEST_F(ForwardModelTest, NoiselessSeriesHasUnitSigmas) {
    const Measurement_series s =
        forward_measurements(*kernel_, [](double phi) { return 1.0 + phi; }, "lin");
    EXPECT_EQ(s.label, "lin");
    EXPECT_EQ(s.size(), 13u);
    for (double sigma : s.sigmas) EXPECT_DOUBLE_EQ(sigma, 1.0);
    EXPECT_NO_THROW(s.validate());
}

TEST_F(ForwardModelTest, PopulationAveragesSmoothTheProfile) {
    // The population signal of a pulse has smaller dynamic range than the
    // single-cell pulse itself — the core asynchrony artifact the paper
    // deconvolves away.
    const Gene_profile pulse = pulse_profile(0.5, 8.0, 0.5, 0.1);
    const Measurement_series s = forward_measurements(*kernel_, pulse.f);
    const auto [mn, mx] = std::minmax_element(s.values.begin(), s.values.end());
    EXPECT_LT(*mx - *mn, 8.0 * 0.9);
    EXPECT_GT(*mn, 0.0);
}

TEST_F(ForwardModelTest, EarlyMeasurementTracksSwarmerExpression) {
    // At t=0 everything is a swarmer (phi < ~0.2): population value ~ the
    // profile's value in the SW stage.
    const Gene_profile step = step_profile(1.0, 9.0, 0.5, 0.1);  // low early, high late
    const Measurement_series s = forward_measurements(*kernel_, step.f);
    EXPECT_NEAR(s.values.front(), 1.0, 0.15);
}

TEST_F(ForwardModelTest, NoisyVariantPerturbsValues) {
    Rng rng(9);
    const Noise_model noise{Noise_type::relative_gaussian, 0.10};
    const Gene_profile truth = sinusoid_profile(3.0, 1.0);
    const Measurement_series clean = forward_measurements(*kernel_, truth.f);
    const Measurement_series noisy =
        forward_measurements_noisy(*kernel_, truth.f, noise, rng);
    EXPECT_GT(max_abs_error(clean.values, noisy.values), 0.0);
    for (std::size_t m = 0; m < noisy.size(); ++m) {
        EXPECT_NEAR(noisy.sigmas[m], 0.10 * std::abs(clean.values[m]), 1e-12);
    }
}

}  // namespace
}  // namespace cellsync
