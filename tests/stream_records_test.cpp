#include "io/stream_records.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(RecordStream, ParsesRecordsInOrder) {
    std::istringstream in(
        "time,gene,value,sigma\n"
        "0,ftsZ,5.25,0.4\n"
        "0,dnaA,3.5,0.2\n"
        "15,ftsZ,6,0.4\n");
    Record_stream stream(in);
    auto r1 = stream.next();
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->time, 0.0);
    EXPECT_EQ(r1->gene, "ftsZ");
    EXPECT_EQ(r1->value, 5.25);
    EXPECT_EQ(r1->sigma, 0.4);
    auto r2 = stream.next();
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->gene, "dnaA");
    auto r3 = stream.next();
    ASSERT_TRUE(r3.has_value());
    EXPECT_EQ(r3->time, 15.0);
    EXPECT_FALSE(stream.next().has_value());
    EXPECT_EQ(stream.record_count(), 3u);
}

TEST(RecordStream, SigmaColumnOptionalDefaultsToUnit) {
    std::istringstream in(
        "time,gene,value\n"
        "0,ftsZ,5\n");
    Record_stream stream(in);
    const auto record = stream.next();
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->sigma, 1.0);
}

TEST(RecordStream, ColumnOrderIsFlexible) {
    std::istringstream in(
        "gene,sigma,value,time\n"
        "ftsZ,0.5,4.25,30\n");
    Record_stream stream(in);
    const auto record = stream.next();
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->time, 30.0);
    EXPECT_EQ(record->gene, "ftsZ");
    EXPECT_EQ(record->value, 4.25);
    EXPECT_EQ(record->sigma, 0.5);
}

TEST(RecordStream, SkipsBlankAndCommentLines) {
    std::istringstream in(
        "# appended by the acquisition rig\n"
        "time,gene,value\n"
        "\n"
        "# batch 1\n"
        "0,ftsZ,5\n"
        "   \n"
        "15,ftsZ,6\n");
    Record_stream stream(in);
    EXPECT_TRUE(stream.next().has_value());
    EXPECT_TRUE(stream.next().has_value());
    EXPECT_FALSE(stream.next().has_value());
}

TEST(RecordStream, NextTimepointGroupsContiguousTimes) {
    std::istringstream in(
        "time,gene,value\n"
        "0,a,1\n"
        "0,b,2\n"
        "15,a,3\n"
        "15,b,4\n"
        "30,a,5\n");
    Record_stream stream(in);
    const auto t0 = stream.next_timepoint();
    ASSERT_EQ(t0.size(), 2u);
    EXPECT_EQ(t0[0].gene, "a");
    EXPECT_EQ(t0[1].gene, "b");
    const auto t1 = stream.next_timepoint();
    ASSERT_EQ(t1.size(), 2u);
    EXPECT_EQ(t1[0].time, 15.0);
    const auto t2 = stream.next_timepoint();
    ASSERT_EQ(t2.size(), 1u);
    EXPECT_EQ(t2[0].time, 30.0);
    EXPECT_TRUE(stream.next_timepoint().empty());
}

TEST(RecordStream, HeaderValidation) {
    {
        std::istringstream in("");
        EXPECT_THROW(Record_stream{in}, std::runtime_error);
    }
    {
        std::istringstream in("time,value\n0,1\n");  // gene missing
        EXPECT_THROW(Record_stream{in}, std::runtime_error);
    }
    {
        std::istringstream in("time,gene,value,extra\n");
        EXPECT_THROW(Record_stream{in}, std::runtime_error);
    }
}

TEST(RecordStream, DuplicateColumnsRejectedWithLineNumber) {
    // Regression: 'time,time,gene,value' used to silently bind the
    // second copy (last wins), reading values from the wrong field.
    const char* duplicated[] = {
        "time,time,gene,value\n0,0,ftsZ,1\n",
        "time,gene,gene,value\n0,ftsZ,ftsZ,1\n",
        "time,gene,value,value\n0,ftsZ,1,1\n",
        "time,gene,value,sigma,sigma\n0,ftsZ,1,0.5,0.5\n",
    };
    for (const char* text : duplicated) {
        std::istringstream in(text);
        try {
            Record_stream stream(in);
            FAIL() << "accepted duplicate header: " << text;
        } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string(e.what()).find("duplicate column"), std::string::npos)
                << e.what();
            EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos) << e.what();
        }
    }
}

TEST(RecordStream, DuplicateColumnErrorNamesTheHeaderLine) {
    // Comments shift the header off line 1; the error must name the
    // actual header line.
    std::istringstream in("# appended by sensor rig\n\ntime,gene,value,time\n");
    try {
        Record_stream stream(in);
        FAIL() << "accepted duplicate header";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    }
}

TEST(RecordStream, RecordValidationNamesTheLine) {
    {
        std::istringstream in("time,gene,value\n0,ftsZ\n");  // ragged
        Record_stream stream(in);
        EXPECT_THROW(stream.next(), std::runtime_error);
    }
    {
        std::istringstream in("time,gene,value\n0,ftsZ,inf\n");
        Record_stream stream(in);
        EXPECT_THROW(stream.next(), std::runtime_error);
    }
    {
        std::istringstream in("time,gene,value,sigma\n0,ftsZ,1,-0.5\n");
        Record_stream stream(in);
        EXPECT_THROW(stream.next(), std::runtime_error);
    }
    {
        std::istringstream in("time,gene,value\n0,,1\n");  // empty gene
        Record_stream stream(in);
        EXPECT_THROW(stream.next(), std::runtime_error);
    }
    {
        // The line number in the message points at the offending row.
        std::istringstream in("time,gene,value\n0,ftsZ,1\nbroken\n");
        Record_stream stream(in);
        stream.next();
        try {
            stream.next();
            FAIL() << "expected parse error";
        } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
        }
    }
}

TEST(RecordStream, RejectsTimeGoingBackwards) {
    std::istringstream in(
        "time,gene,value\n"
        "15,a,1\n"
        "0,a,2\n");
    Record_stream stream(in);
    EXPECT_TRUE(stream.next().has_value());
    EXPECT_THROW(stream.next(), std::runtime_error);
}

}  // namespace
}  // namespace cellsync
