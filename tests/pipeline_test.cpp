#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "numerics/statistics.h"

namespace cellsync {
namespace {

Pipeline_config fast_config() {
    Pipeline_config c;
    c.kernel.n_cells = 15000;
    c.kernel.n_bins = 100;
    c.kernel.seed = 77;
    c.basis_size = 12;
    c.cv_folds = 4;
    c.lambda_grid = default_lambda_grid(9, 1e-6, 1e0);
    return c;
}

TEST(Pipeline, EndToEndRecoversProfileWithCv) {
    const Pipeline_config config = fast_config();
    const Smooth_volume_model volume;
    const Kernel_grid kernel = build_kernel(config.cell_cycle, volume,
                                            linspace(0.0, 180.0, 13), config.kernel);
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    Rng rng(31);
    const Noise_model noise{Noise_type::relative_gaussian, 0.05};
    const Measurement_series data =
        forward_measurements_noisy(kernel, truth.f, noise, rng);

    const Pipeline_result result = deconvolve_series(data, config, volume);
    ASSERT_TRUE(result.lambda_selection.has_value());
    EXPECT_EQ(result.lambda_selection->method, "kfold");
    EXPECT_DOUBLE_EQ(result.estimate.lambda, result.lambda_selection->best_lambda);

    const Vector grid = linspace(0.05, 0.95, 37);
    EXPECT_GT(pearson_correlation(result.estimate.sample(grid), truth.sample(grid)), 0.95);
}

TEST(Pipeline, FixedLambdaPathSkipsSelection) {
    Pipeline_config config = fast_config();
    config.select_lambda = false;
    config.deconvolution.lambda = 1e-3;
    const Smooth_volume_model volume;
    const Kernel_grid kernel = build_kernel(config.cell_cycle, volume,
                                            linspace(0.0, 150.0, 11), config.kernel);
    const Measurement_series data =
        forward_measurements(kernel, [](double phi) { return 2.0 + phi; });
    const Pipeline_result result = deconvolve_series(data, config, volume);
    EXPECT_FALSE(result.lambda_selection.has_value());
    EXPECT_DOUBLE_EQ(result.estimate.lambda, 1e-3);
}

TEST(Pipeline, ComponentsAreExposedForReuse) {
    Pipeline_config config = fast_config();
    config.select_lambda = false;
    const Smooth_volume_model volume;
    const Kernel_grid kernel = build_kernel(config.cell_cycle, volume,
                                            linspace(0.0, 150.0, 11), config.kernel);
    const Measurement_series data =
        forward_measurements(kernel, [](double) { return 3.0; });
    const Pipeline_result result = deconvolve_series(data, config, volume);
    ASSERT_NE(result.basis, nullptr);
    ASSERT_NE(result.deconvolver, nullptr);
    EXPECT_EQ(result.basis->size(), config.basis_size);
    // The returned deconvolver can run further estimates.
    Deconvolution_options options;
    options.lambda = 1e-2;
    EXPECT_NO_THROW(result.deconvolver->estimate(data, options));
}

TEST(Pipeline, InvalidInputsRejected) {
    const Pipeline_config config = fast_config();
    const Smooth_volume_model volume;
    Measurement_series bad;
    bad.times = {0.0};
    bad.values = {1.0};
    bad.sigmas = {1.0};
    EXPECT_THROW(deconvolve_series(bad, config, volume), std::invalid_argument);

    Pipeline_config bad_config = fast_config();
    bad_config.cell_cycle.mu_sst = 0.0;
    const Measurement_series data = Measurement_series::with_unit_sigma(
        "x", {0.0, 15.0, 30.0}, {1.0, 1.0, 1.0});
    EXPECT_THROW(deconvolve_series(data, bad_config, volume), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
