#include "core/constraints.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "biology/volume_model.h"
#include "numerics/special.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

TEST(Beta0, MatchesPointEvaluationForNarrowDistribution) {
    // With a very tight transition distribution, beta0 -> beta(mu_sst).
    Cell_cycle_config config;
    config.cv_sst = 0.001;
    EXPECT_NEAR(beta0(config), growth_rate_beta(config.mu_sst), 1e-6);
}

TEST(Beta0, DefaultConfigValueIsReasonable) {
    // beta(0.15) = 0.4/0.85 ~ 0.4706; averaging over the Gaussian inflates
    // it only slightly (convexity of 1/(1-phi)).
    const double b0 = beta0(Cell_cycle_config{});
    EXPECT_GT(b0, 0.470);
    EXPECT_LT(b0, 0.475);
}

TEST(ConservationRow, ConstantProfileSatisfiesConstraint) {
    // f == c: f(1) - 0.4 f(0) - 0.6 <f(phi_sst)> = c (1 - 0.4 - 0.6) = 0.
    const Natural_spline_basis basis(10);
    const Vector row = conservation_row(basis, Cell_cycle_config{});
    const Vector ones(basis.size(), 1.0);
    EXPECT_NEAR(dot(row, ones), 0.0, 1e-9);
}

TEST(ConservationRow, ViolatingProfileDetected) {
    // f(phi) = phi: f(1)=1, f(0)=0, <f(phi_sst)> ~ 0.15
    // -> 1 - 0 - 0.6*0.15 = 0.91 != 0.
    const Natural_spline_basis basis(10);
    const Vector row = conservation_row(basis, Cell_cycle_config{});
    const Vector alpha = basis.knots();  // expansion == identity
    EXPECT_NEAR(dot(row, alpha), 1.0 - 0.6 * 0.15, 1e-3);
}

TEST(RateContinuityRow, LinearProfileResidualMatchesAnalyticForm) {
    // For f = phi: LHS integral(w1 f) = beta0*1 - 0 - <beta(phi) phi>;
    // RHS integral(w2 f') = 0.4 + 0.6 - 1 = 0. Check against direct
    // numerical evaluation through the row.
    Cell_cycle_config config;
    config.cv_sst = 0.001;  // tight: averages collapse to point values
    const Natural_spline_basis basis(12);
    const Vector row = rate_continuity_row(basis, config);
    const Vector alpha = basis.knots();
    const double expected =
        growth_rate_beta(config.mu_sst) * (1.0 - 0.0 - config.mu_sst) - 0.0;
    EXPECT_NEAR(dot(row, alpha), expected, 1e-3);
}

TEST(RateContinuityRow, ConstantProfileViolatesUnlessBalanced) {
    // f == c: LHS = beta0 c - beta0 c - c beta0 = -c beta0; RHS = 0.
    // So the row applied to a constant is -beta0 * c.
    const Natural_spline_basis basis(10);
    const Cell_cycle_config config;
    const Vector row = rate_continuity_row(basis, config);
    const Vector ones(basis.size(), 1.0);
    EXPECT_NEAR(dot(row, ones), -beta0(config), 1e-6);
}

TEST(BuildConstraints, AllBlocksPresentByDefault) {
    const Natural_spline_basis basis(8);
    const Constraint_set set = build_constraints(basis, Cell_cycle_config{});
    EXPECT_EQ(set.equality.rows(), 2u);  // conservation + rate continuity
    EXPECT_EQ(set.equality.cols(), 8u);
    EXPECT_EQ(set.inequality.rows(), 101u);  // default positivity grid
    EXPECT_EQ(set.equality_rhs.size(), 2u);
    EXPECT_EQ(set.inequality_rhs.size(), 101u);
    for (double v : set.equality_rhs) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BuildConstraints, OptionsDisableBlocks) {
    const Natural_spline_basis basis(8);
    Constraint_options options;
    options.positivity = false;
    options.rate_continuity = false;
    const Constraint_set set = build_constraints(basis, Cell_cycle_config{}, options);
    EXPECT_EQ(set.equality.rows(), 1u);
    EXPECT_EQ(set.inequality.rows(), 0u);

    options = {};
    options.conservation = false;
    options.rate_continuity = false;
    options.positivity = false;
    const Constraint_set none = build_constraints(basis, Cell_cycle_config{}, options);
    EXPECT_EQ(none.equality.rows(), 0u);
    EXPECT_EQ(none.inequality.rows(), 0u);
}

TEST(BuildConstraints, PositivityGridConfigurable) {
    const Natural_spline_basis basis(8);
    Constraint_options options;
    options.positivity_points = 21;
    const Constraint_set set = build_constraints(basis, Cell_cycle_config{}, options);
    EXPECT_EQ(set.inequality.rows(), 21u);
    options.positivity_points = 1;
    EXPECT_THROW(build_constraints(basis, Cell_cycle_config{}, options),
                 std::invalid_argument);
}

TEST(BuildConstraints, PositivityRowsAreBasisValues) {
    const Natural_spline_basis basis(6);
    Constraint_options options;
    options.positivity_points = 11;
    const Constraint_set set = build_constraints(basis, Cell_cycle_config{}, options);
    const Vector grid = linspace(0.0, 1.0, 11);
    for (std::size_t p = 0; p < 11; ++p) {
        for (std::size_t i = 0; i < basis.size(); ++i) {
            EXPECT_NEAR(set.inequality(p, i), basis.value(i, grid[p]), 1e-12);
        }
    }
}

TEST(BuildConstraints, InvalidConfigRejected) {
    const Natural_spline_basis basis(6);
    Cell_cycle_config bad;
    bad.mu_sst = -1.0;
    EXPECT_THROW(build_constraints(basis, bad), std::invalid_argument);
}

// Property sweep: both equality rows annihilate profiles that genuinely
// satisfy the division balance — constructed here as f with
// f(1) = 0.4 f(0) + 0.6 f(mu_sst) for a tight transition distribution.
class ConservationProperty : public ::testing::TestWithParam<double> {};

TEST_P(ConservationProperty, BalancedProfilesAreFeasible) {
    Cell_cycle_config config;
    config.mu_sst = GetParam();
    config.cv_sst = 0.0005;
    const Natural_spline_basis basis(16);
    // Build alpha for f = A + B*cos(2 pi phi): f(0)=f(1)=A+B, so the
    // balance needs A+B = 0.4(A+B) + 0.6 f(mu). Choose B from A = 1.
    // f(mu) = A + B cos(2 pi mu) -> A+B = 0.4A + 0.4B + 0.6A + 0.6B cmu
    // -> B (0.6 - 0.6 cmu) = 0 ... degenerate; instead use numeric check:
    // verify the row value equals the analytic residual for a generic f.
    const Vector row = conservation_row(basis, config);
    Vector alpha(basis.size());
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const double k = basis.knots()[i];
        alpha[i] = 2.0 + std::sin(5.0 * k);
    }
    const auto f = [&](double phi) { return basis.expand(alpha, phi); };
    const double analytic = f(1.0) - 0.4 * f(0.0) - 0.6 * f(config.mu_sst);
    EXPECT_NEAR(dot(row, alpha), analytic, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(MuSweep, ConservationProperty,
                         ::testing::Values(0.10, 0.15, 0.25, 0.35));

}  // namespace
}  // namespace cellsync
