#include "numerics/nelder_mead.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(NelderMead, QuadraticBowl) {
    const Objective f = [](const Vector& x) {
        return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
    };
    const Nelder_mead_result r = nelder_mead(f, {0.0, 0.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-4);
    EXPECT_NEAR(r.x[1], -2.0, 1e-4);
    EXPECT_LT(r.value, 1e-7);
}

TEST(NelderMead, RosenbrockValley) {
    const Objective f = [](const Vector& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    Nelder_mead_options options;
    options.max_evaluations = 50000;
    options.restarts = 3;
    const Nelder_mead_result r = nelder_mead(f, {-1.2, 1.0}, options);
    EXPECT_NEAR(r.x[0], 1.0, 1e-2);
    EXPECT_NEAR(r.x[1], 1.0, 2e-2);
}

TEST(NelderMead, OneDimensional) {
    const Objective f = [](const Vector& x) { return std::cos(x[0]); };
    const Nelder_mead_result r = nelder_mead(f, {3.0});
    EXPECT_NEAR(r.x[0], 3.14159265, 1e-3);
}

TEST(NelderMead, NonFiniteObjectiveTreatedAsRejected) {
    // Objective invalid for x < 0; minimum at x = 1 within the valid region.
    const Objective f = [](const Vector& x) {
        if (x[0] < 0.0) return std::numeric_limits<double>::quiet_NaN();
        return (x[0] - 1.0) * (x[0] - 1.0);
    };
    const Nelder_mead_result r = nelder_mead(f, {2.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-4);
}

TEST(NelderMead, EmptyStartThrows) {
    EXPECT_THROW(nelder_mead([](const Vector&) { return 0.0; }, {}), std::invalid_argument);
}

TEST(NelderMead, EvaluationBudgetRespected) {
    std::size_t calls = 0;
    const Objective f = [&calls](const Vector& x) {
        ++calls;
        return x[0] * x[0];
    };
    Nelder_mead_options options;
    options.max_evaluations = 57;
    const Nelder_mead_result r = nelder_mead(f, {10.0}, options);
    EXPECT_LE(r.evaluations, 60u);  // small overshoot from finishing a step
    EXPECT_LE(calls, 60u);
}

TEST(NelderMead, ReportsConvergenceOnEasyProblem) {
    const Objective f = [](const Vector& x) { return x[0] * x[0] + x[1] * x[1]; };
    const Nelder_mead_result r = nelder_mead(f, {0.5, 0.5});
    EXPECT_TRUE(r.converged);
}

// Property sweep: convergence from multiple start points on a convex bowl.
class NelderMeadStarts : public ::testing::TestWithParam<double> {};

TEST_P(NelderMeadStarts, ConvergesFromAnyStart) {
    const Objective f = [](const Vector& x) {
        return 3.0 * x[0] * x[0] + 0.5 * x[1] * x[1] + x[0] * x[1];
    };
    const double s = GetParam();
    const Nelder_mead_result r = nelder_mead(f, {s, -s});
    EXPECT_LT(r.value, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(StartSweep, NelderMeadStarts,
                         ::testing::Values(-10.0, -1.0, 0.1, 1.0, 5.0, 20.0));

}  // namespace
}  // namespace cellsync
