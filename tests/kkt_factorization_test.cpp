#include "numerics/kkt_factorization.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/linear_solve.h"
#include "numerics/rng.h"

namespace cellsync {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed, double diag = 1.0) {
    Rng rng(seed);
    Matrix a(n + 2, n);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    Matrix h = gram(a);
    for (std::size_t i = 0; i < n; ++i) h(i, i) += diag;
    return h;
}

// Assemble the full KKT matrix the slow way and solve cold — the reference
// every cached/refactorized solve must reproduce.
Vector cold_kkt_solve(const Matrix& h0, const Matrix& h1, const Matrix& eq, double lambda,
                      double ridge, const Vector& rhs) {
    const std::size_t n = h0.rows();
    const std::size_t me = eq.rows();
    Matrix kkt(n + me, n + me);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            kkt(i, j) = h0(i, j) + (h1.empty() ? 0.0 : lambda * h1(i, j));
        }
        kkt(i, i) += ridge;
    }
    for (std::size_t r = 0; r < me; ++r) {
        for (std::size_t j = 0; j < n; ++j) {
            kkt(n + r, j) = eq(r, j);
            kkt(j, n + r) = eq(r, j);
        }
    }
    return ldlt_solve(kkt, rhs);
}

TEST(KktFactorization, UnconstrainedSolveMatchesCholesky) {
    const std::size_t n = 8;
    const Matrix h = random_spd(n, 5);
    Kkt_factorization kkt(h, Matrix(), Matrix(0, n));
    kkt.factorize(0.0);
    Rng rng(9);
    const Vector g = rng.normal_vector(n);
    const Vector x = kkt.solve(g, Vector{});
    // H x = -g.
    const Vector reference = cholesky_solve(h, scaled(g, -1.0));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], reference[i], 1e-9);
}

TEST(KktFactorization, RefactorizedSolveEqualsColdSolve) {
    const std::size_t n = 7;
    const Matrix h0 = random_spd(n, 11);
    const Matrix h1 = random_spd(n, 13, 0.1);
    Matrix eq(2, n);
    for (std::size_t j = 0; j < n; ++j) {
        eq(0, j) = 1.0;
        eq(1, j) = static_cast<double>(j);
    }

    Kkt_factorization kkt(h0, h1, eq);
    Rng rng(17);
    Vector rhs = rng.normal_vector(n + 2);

    // Sweep lambda up and down: every refactorized solve must match a cold
    // assemble-and-factor from scratch.
    for (double lambda : {1e-4, 1e-2, 1.0, 1e-2, 1e-4}) {
        kkt.factorize(lambda, 1e-9);
        const Vector warm = kkt.solve_kkt(rhs);
        const Vector cold = cold_kkt_solve(h0, h1, eq, lambda, 1e-9, rhs);
        ASSERT_EQ(warm.size(), cold.size());
        for (std::size_t i = 0; i < warm.size(); ++i) {
            EXPECT_DOUBLE_EQ(warm[i], cold[i]) << "lambda " << lambda;
        }
    }
}

TEST(KktFactorization, SameLambdaReusesFactorization) {
    const std::size_t n = 6;
    Kkt_factorization kkt(random_spd(n, 3), random_spd(n, 4, 0.1), Matrix(0, n));
    kkt.factorize(1e-3);
    EXPECT_EQ(kkt.factorization_count(), 1u);
    kkt.factorize(1e-3);  // cache hit
    kkt.factorize(1e-3);
    EXPECT_EQ(kkt.factorization_count(), 1u);
    kkt.factorize(1e-2);  // lambda changed: refactor
    EXPECT_EQ(kkt.factorization_count(), 2u);
    kkt.factorize(1e-2, 1e-6);  // ridge changed: refactor
    EXPECT_EQ(kkt.factorization_count(), 3u);
}

TEST(KktFactorization, EqualityConstrainedMinimization) {
    // min 0.5 x'Hx + g'x  s.t.  sum(x) = 1: verify stationarity on the
    // constraint manifold and feasibility.
    const std::size_t n = 5;
    const Matrix h = random_spd(n, 23);
    Matrix eq(1, n, 1.0);
    Kkt_factorization kkt(h, Matrix(), eq);
    kkt.factorize(0.0);
    Rng rng(29);
    const Vector g = rng.normal_vector(n);
    const Vector x = kkt.solve(g, Vector{1.0});
    EXPECT_NEAR(sum(x), 1.0, 1e-9);
    // Hx + g must be a multiple of the all-ones constraint gradient.
    const Vector resid = h * x + g;
    for (std::size_t i = 1; i < n; ++i) EXPECT_NEAR(resid[i], resid[0], 1e-8);
}

TEST(KktFactorization, Validation) {
    EXPECT_THROW(Kkt_factorization(Matrix(3, 2), Matrix(), Matrix(0, 3)),
                 std::invalid_argument);
    EXPECT_THROW(Kkt_factorization(random_spd(3, 1), random_spd(4, 1), Matrix(0, 3)),
                 std::invalid_argument);
    EXPECT_THROW(Kkt_factorization(random_spd(3, 1), Matrix(), Matrix(1, 4)),
                 std::invalid_argument);

    Kkt_factorization kkt(random_spd(3, 2), Matrix(), Matrix(0, 3));
    EXPECT_THROW(kkt.factorize(-1.0), std::invalid_argument);
    EXPECT_FALSE(kkt.is_factorized());
    EXPECT_THROW(kkt.solve(Vector(3, 0.0), Vector{}), std::logic_error);
    kkt.factorize(0.0);
    EXPECT_TRUE(kkt.is_factorized());
    EXPECT_THROW(kkt.solve(Vector(2, 0.0), Vector{}), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
