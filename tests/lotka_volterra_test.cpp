#include "models/lotka_volterra.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(LotkaVolterra, ParameterValidation) {
    Lotka_volterra_params p;
    EXPECT_NO_THROW(p.validate());
    p.a = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.x1_0 = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(LotkaVolterra, FixedPointIsStationary) {
    Lotka_volterra_params p;
    p.a = 1.0;
    p.b = 0.5;
    p.c = 2.0;
    p.d = 1.5;
    const Ode_rhs rhs = lotka_volterra_rhs(p);
    const Vector derivative = rhs(0.0, {p.x1_center(), p.x2_center()});
    EXPECT_NEAR(derivative[0], 0.0, 1e-14);
    EXPECT_NEAR(derivative[1], 0.0, 1e-14);
}

TEST(LotkaVolterra, ConservedQuantityAlongTrajectory) {
    // H = c x1 - d ln x1 + b x2 - a ln x2 is a first integral.
    const Lotka_volterra_params p;
    const Ode_solution sol = solve_lotka_volterra(p, 30.0);
    auto h = [&](const Vector& y) {
        return p.c * y[0] - p.d * std::log(y[0]) + p.b * y[1] - p.a * std::log(y[1]);
    };
    const double h0 = h(sol.states.front());
    for (const Vector& y : sol.states) {
        EXPECT_NEAR(h(y), h0, 1e-6);
    }
}

TEST(LotkaVolterra, SolutionsStayPositive) {
    const Lotka_volterra_params p = paper_lv_params();
    const Ode_solution sol = solve_lotka_volterra(p, 450.0);
    for (const Vector& y : sol.states) {
        EXPECT_GT(y[0], 0.0);
        EXPECT_GT(y[1], 0.0);
    }
}

TEST(LotkaVolterra, TimeScalingScalesPeriodExactly) {
    Lotka_volterra_params p;
    const double period = measure_period(p, 60.0);
    const Lotka_volterra_params fast = p.time_scaled(2.0);
    const double fast_period = measure_period(fast, 60.0);
    EXPECT_NEAR(fast_period, period / 2.0, 0.01 * period);
    EXPECT_THROW(p.time_scaled(0.0), std::invalid_argument);
}

TEST(LotkaVolterra, PaperParamsGive150MinutePeriod) {
    const Lotka_volterra_params p = paper_lv_params(150.0);
    const double period = measure_period(p, 800.0);
    EXPECT_NEAR(period, 150.0, 1.0);
}

TEST(LotkaVolterra, PaperParamsProduceStrongOscillation) {
    // The Fig 2 shape: x2 spikes several-fold above its trough.
    const Lotka_volterra_params p = paper_lv_params(150.0);
    const Ode_solution sol = solve_lotka_volterra(p, 150.0);
    const Vector x2 = sol.component(1);
    const auto [mn, mx] = std::minmax_element(x2.begin(), x2.end());
    EXPECT_GT(*mx / std::max(*mn, 1e-9), 5.0);
}

TEST(LotkaVolterra, MeasurePeriodValidation) {
    const Lotka_volterra_params p;
    EXPECT_THROW(measure_period(p, 60.0, 0), std::invalid_argument);
    // Horizon too short to see two crossings:
    EXPECT_THROW(measure_period(p, 0.5), std::runtime_error);
}

TEST(LotkaVolterra, ProfileSamplesOneCycle) {
    const Lotka_volterra_params p = paper_lv_params(150.0);
    const Gene_profile x1 = lotka_volterra_profile(p, 0, 150.0);
    const Gene_profile x2 = lotka_volterra_profile(p, 1, 150.0);
    EXPECT_EQ(x1.name, "lv-x1");
    EXPECT_EQ(x2.name, "lv-x2");
    const Ode_solution sol = solve_lotka_volterra(p, 150.0);
    for (double phi : {0.0, 0.2, 0.5, 0.8, 1.0}) {
        EXPECT_NEAR(x1(phi), sol.interpolate(phi * 150.0, 0), 5e-3) << "phi=" << phi;
    }
    EXPECT_THROW(lotka_volterra_profile(p, 2, 150.0), std::invalid_argument);
    EXPECT_THROW(lotka_volterra_profile(p, 0, 0.0), std::invalid_argument);
}

TEST(LotkaVolterra, PaperParamsRejectNonPositivePeriod) {
    EXPECT_THROW(paper_lv_params(0.0), std::invalid_argument);
    EXPECT_THROW(paper_lv_params(-10.0), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
