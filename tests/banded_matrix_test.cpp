#include "numerics/banded.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "numerics/rng.h"
#include "spline/bspline.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

// Bitwise equality: the banded kernels promise bit-identity with the dense
// reference, not just closeness, so the tests compare representations.
void expect_bits(double a, double b) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
        << a << " vs " << b;
}

void expect_bits(const Vector& a, const Vector& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) expect_bits(a[i], b[i]);
}

void expect_bits(const Matrix& a, const Matrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) expect_bits(a(i, j), b(i, j));
    }
}

// A random matrix whose row i is nonzero exactly on a random contiguous
// span (possibly empty, single-column, or full-width).
Matrix random_banded(Rng& rng, std::size_t rows, std::size_t cols) {
    Matrix m(rows, cols, 0.0);
    for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t kind = rng.index(8);
        std::size_t begin = 0, end = 0;
        if (kind == 0) {
            // empty row
        } else if (kind == 1) {
            begin = rng.index(cols);
            end = begin + 1;  // single column
        } else if (kind == 2) {
            end = cols;  // full width
        } else {
            begin = rng.index(cols);
            end = begin + 1 + rng.index(cols - begin);
        }
        for (std::size_t j = begin; j < end; ++j) {
            double v = rng.uniform(-2.0, 2.0);
            if (v == 0.0) v = 0.5;  // keep span entries nonzero
            m(i, j) = v;
        }
        // Guarantee nonzero endpoints so the detected span equals [begin, end).
        if (end > begin) {
            if (m(i, begin) == 0.0) m(i, begin) = 1.0;
            if (m(i, end - 1) == 0.0) m(i, end - 1) = -1.0;
        }
    }
    return m;
}

Vector random_vector(Rng& rng, std::size_t n) {
    Vector x(n);
    for (double& v : x) v = rng.uniform(-3.0, 3.0);
    return x;
}

TEST(BandedMatrix, SpanDetection) {
    const Matrix m{{0.0, 0.0, 0.0, 0.0},   // all-zero
                   {1.0, 2.0, 3.0, 4.0},   // full width
                   {0.0, 0.0, 5.0, 0.0},   // single column
                   {0.0, 1.0, 2.0, 0.0},   // interior band
                   {0.0, 1.0, 0.0, 2.0}};  // interior zero stays inside
    const Banded_matrix b(m);
    EXPECT_TRUE(b.row_span(0).empty());
    EXPECT_EQ(b.row_span(0).begin, 0u);
    EXPECT_EQ(b.row_span(0).end, 0u);
    EXPECT_EQ(b.row_span(1).begin, 0u);
    EXPECT_EQ(b.row_span(1).end, 4u);
    EXPECT_EQ(b.row_span(2).begin, 2u);
    EXPECT_EQ(b.row_span(2).end, 3u);
    EXPECT_EQ(b.row_span(3).begin, 1u);
    EXPECT_EQ(b.row_span(3).end, 3u);
    EXPECT_EQ(b.row_span(4).begin, 1u);
    EXPECT_EQ(b.row_span(4).end, 4u);
    EXPECT_EQ(b.max_bandwidth(), 4u);
    EXPECT_DOUBLE_EQ(b.band_occupancy(), (0.0 + 4.0 + 1.0 + 2.0 + 3.0) / 20.0);
}

TEST(BandedMatrix, NonFiniteEntriesCountAsNonzero) {
    Matrix m(2, 3, 0.0);
    m(0, 1) = std::numeric_limits<double>::quiet_NaN();
    m(1, 2) = std::numeric_limits<double>::infinity();
    const Banded_matrix b(m);
    EXPECT_EQ(b.row_span(0).begin, 1u);
    EXPECT_EQ(b.row_span(0).end, 2u);
    EXPECT_EQ(b.row_span(1).begin, 2u);
    EXPECT_EQ(b.row_span(1).end, 3u);

    // Inside the band, non-finite values propagate through the products.
    const Vector y = b * Vector{1.0, 1.0, 1.0};
    EXPECT_TRUE(std::isnan(y[0]));
    EXPECT_TRUE(std::isinf(y[1]));
    const Matrix g = gram(b);
    EXPECT_TRUE(std::isnan(g(1, 1)));
}

TEST(BandedMatrix, ProductsMatchDenseReferenceBitwise) {
    Rng rng(20260807);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t rows = 1 + rng.index(24);
        const std::size_t cols = 1 + rng.index(16);
        const Matrix dense = random_banded(rng, rows, cols);
        const Banded_matrix banded(dense);

        const Vector x = random_vector(rng, cols);
        expect_bits(banded * x, matvec_reference(dense, x));

        const Vector z = random_vector(rng, rows);
        expect_bits(transposed_times(banded, z), transposed_times_reference(dense, z));

        expect_bits(gram(banded), gram_reference(dense));

        Vector w = random_vector(rng, rows);
        for (double& v : w) v = 0.1 + std::abs(v);
        expect_bits(weighted_gram(banded, w), weighted_gram_reference(dense, w));
    }
}

TEST(BandedMatrix, DegenerateShapes) {
    // All-zero matrix: every product is exactly zero.
    const Banded_matrix zero(Matrix(3, 4, 0.0));
    EXPECT_DOUBLE_EQ(zero.band_occupancy(), 0.0);
    EXPECT_EQ(zero.max_bandwidth(), 0u);
    expect_bits(zero * Vector{1.0, 2.0, 3.0, 4.0}, Vector(3, 0.0));
    expect_bits(gram(zero), Matrix(4, 4, 0.0));

    // Empty matrix.
    const Banded_matrix empty{Matrix()};
    EXPECT_TRUE(empty.empty());
    EXPECT_DOUBLE_EQ(empty.band_occupancy(), 1.0);
    EXPECT_EQ(gram(empty).rows(), 0u);

    // Fully dense matrix: occupancy 1, still bit-identical.
    Rng rng(7);
    Matrix dense(5, 3);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 3; ++j) dense(i, j) = rng.uniform(0.5, 2.0);
    }
    const Banded_matrix full(dense);
    EXPECT_DOUBLE_EQ(full.band_occupancy(), 1.0);
    expect_bits(gram(full), gram_reference(dense));
}

TEST(BandedMatrix, RowSubsetKernelsMatchCopyOutReference) {
    Rng rng(99);
    const Matrix dense = random_banded(rng, 12, 7);
    const Banded_matrix banded(dense);
    const std::vector<std::size_t> rows{1, 3, 3, 8, 11};
    Vector w(rows.size());
    for (double& v : w) v = rng.uniform(0.5, 2.0);
    const Vector x = random_vector(rng, rows.size());

    // Reference: copy the rows into a submatrix and run the dense kernels.
    Matrix sub(rows.size(), dense.cols());
    for (std::size_t r = 0; r < rows.size(); ++r) sub.set_row(r, dense.row(rows[r]));
    expect_bits(weighted_gram_rows(banded, rows, w), weighted_gram_reference(sub, w));
    expect_bits(transposed_times_rows(banded, rows, x), transposed_times_reference(sub, x));
}

TEST(BandedMatrix, TransposedTimesSpanMatchesFullProduct) {
    Rng rng(42);
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}, {7.0, 8.0}};
    // x structurally zero outside [1, 3): the clipped product must match
    // the full one bitwise.
    const Vector x{0.0, 1.5, -2.5, 0.0};
    expect_bits(transposed_times_span(a, x, Row_span{1, 3}),
                transposed_times_reference(a, x));
    // Full span is always safe.
    const Vector y = random_vector(rng, 4);
    expect_bits(transposed_times_span(a, y, Row_span{0, 4}),
                transposed_times_reference(a, y));
}

TEST(BandedMatrix, RowDotMatchesDenseDot) {
    Rng rng(5);
    const Matrix dense = random_banded(rng, 6, 5);
    const Banded_matrix banded(dense);
    const Vector x = random_vector(rng, 5);
    for (std::size_t i = 0; i < 6; ++i) {
        double ref = 0.0;
        for (std::size_t j = 0; j < 5; ++j) ref += dense(i, j) * x[j];
        expect_bits(row_dot(banded, i, x), ref);
    }
}

TEST(BandedMatrix, BsplineDesignIsBandedNaturalSplineIsNot) {
    const Vector grid = linspace(0.0, 1.0, 40);

    const Bspline_basis bspline(12);
    const Banded_matrix bdesign = bspline.design_matrix_banded(grid);
    EXPECT_LE(bdesign.max_bandwidth(), 4u);  // cubic: at most 4 supported functions
    EXPECT_LT(bdesign.band_occupancy(), 0.5);
    // The banded design wraps exactly the dense design.
    expect_bits(bdesign.dense(), bspline.design_matrix(grid));

    const Natural_spline_basis natural(12);
    const Banded_matrix ndesign = natural.design_matrix_banded(grid);
    EXPECT_GT(ndesign.band_occupancy(), 0.9);  // global support: nearly full
    expect_bits(ndesign.dense(), natural.design_matrix(grid));
}

TEST(BandedMatrix, DimensionChecksThrow) {
    const Banded_matrix b{Matrix(3, 2, 1.0)};
    EXPECT_THROW(b * Vector{1.0}, std::invalid_argument);
    EXPECT_THROW(transposed_times(b, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(weighted_gram(b, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(weighted_gram_rows(b, {0}, Vector{1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(weighted_gram_rows(b, {7}, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(transposed_times_rows(b, {0}, Vector{1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(transposed_times_rows(b, {9}, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(row_dot(b, 3, Vector{1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(row_dot(b, 0, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(transposed_times_span(Matrix(3, 2, 1.0), Vector{1.0, 2.0, 3.0},
                                       Row_span{2, 5}),
                 std::invalid_argument);
    EXPECT_THROW(transposed_times_span(Matrix(3, 2, 1.0), Vector{1.0}, Row_span{0, 1}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
