#include "spline/cubic_spline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/vector_ops.h"

namespace cellsync {
namespace {

TEST(CubicSpline, InterpolatesKnots) {
    const Cubic_spline s({0.0, 0.3, 0.7, 1.0}, {1.0, -2.0, 4.0, 0.5});
    EXPECT_NEAR(s(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s(0.3), -2.0, 1e-12);
    EXPECT_NEAR(s(0.7), 4.0, 1e-12);
    EXPECT_NEAR(s(1.0), 0.5, 1e-12);
}

TEST(CubicSpline, TwoKnotsDegenerateToLine) {
    const Cubic_spline s({0.0, 2.0}, {1.0, 5.0});
    EXPECT_DOUBLE_EQ(s(1.0), 3.0);
    EXPECT_DOUBLE_EQ(s.derivative(0.5), 2.0);
    EXPECT_DOUBLE_EQ(s.second_derivative(1.0), 0.0);
}

TEST(CubicSpline, NaturalBoundaryConditions) {
    const Cubic_spline s({0.0, 0.25, 0.5, 0.75, 1.0}, {0.0, 1.0, 0.0, -1.0, 0.0});
    EXPECT_NEAR(s.second_derivative(0.0), 0.0, 1e-12);
    EXPECT_NEAR(s.second_derivative(1.0), 0.0, 1e-12);
}

TEST(CubicSpline, ReproducesStraightLineExactly) {
    // A line is a natural spline: zero second derivatives everywhere.
    Vector x = linspace(0.0, 1.0, 7);
    Vector y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = 3.0 * x[i] - 1.0;
    const Cubic_spline s(x, y);
    for (double q : {0.05, 0.33, 0.61, 0.99}) {
        EXPECT_NEAR(s(q), 3.0 * q - 1.0, 1e-12);
        EXPECT_NEAR(s.derivative(q), 3.0, 1e-12);
        EXPECT_NEAR(s.second_derivative(q), 0.0, 1e-12);
    }
}

TEST(CubicSpline, ApproximatesSmoothFunction) {
    Vector x = linspace(0.0, 1.0, 21);
    Vector y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::sin(6.0 * x[i]);
    const Cubic_spline s(x, y);
    // Natural boundary conditions cost O(h^2) accuracy near the ends (the
    // target has nonzero curvature there); the interior is O(h^4).
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        const double tol = (q < 0.15 || q > 0.85) ? 2e-2 : 1e-3;
        EXPECT_NEAR(s(q), std::sin(6.0 * q), tol) << "q=" << q;
    }
}

TEST(CubicSpline, DerivativeMatchesFiniteDifference) {
    const Cubic_spline s({0.0, 0.4, 0.8, 1.0}, {0.0, 2.0, -1.0, 3.0});
    const double h = 1e-6;
    for (double q : {0.1, 0.5, 0.9}) {
        const double fd = (s(q + h) - s(q - h)) / (2.0 * h);
        EXPECT_NEAR(s.derivative(q), fd, 1e-6);
    }
}

TEST(CubicSpline, SecondDerivativeContinuousAtKnots) {
    const Cubic_spline s({0.0, 0.4, 0.8, 1.0}, {0.0, 2.0, -1.0, 3.0});
    for (double knot : {0.4, 0.8}) {
        const double left = s.second_derivative(knot - 1e-10);
        const double right = s.second_derivative(knot + 1e-10);
        EXPECT_NEAR(left, right, 1e-6);
    }
}

TEST(CubicSpline, LinearExtrapolationOutsideSpan) {
    const Cubic_spline s({0.0, 0.5, 1.0}, {0.0, 1.0, 0.0});
    const double slope_right = s.derivative(1.0);
    EXPECT_NEAR(s(1.2), s(1.0) + 0.2 * slope_right, 1e-12);
    EXPECT_DOUBLE_EQ(s.second_derivative(1.5), 0.0);
    const double slope_left = s.derivative(0.0);
    EXPECT_NEAR(s(-0.3), s(0.0) - 0.3 * slope_left, 1e-12);
}

TEST(CubicSpline, ValidationErrors) {
    EXPECT_THROW(Cubic_spline({0.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(Cubic_spline({0.0, 1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(Cubic_spline({0.0, 0.0, 1.0}, {1.0, 2.0, 3.0}), std::invalid_argument);
    EXPECT_THROW(Cubic_spline({1.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(CubicSpline, KnotSecondDerivativesExposeNaturalEnds) {
    const Cubic_spline s({0.0, 0.5, 1.0}, {0.0, 1.0, 0.0});
    const Vector& m = s.knot_second_derivatives();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_DOUBLE_EQ(m.front(), 0.0);
    EXPECT_DOUBLE_EQ(m.back(), 0.0);
    EXPECT_LT(m[1], 0.0);  // concave at the interior peak
}

}  // namespace
}  // namespace cellsync
