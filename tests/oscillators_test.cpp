#include "models/oscillators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(Goodwin, ParameterValidation) {
    Goodwin_params p;
    EXPECT_NO_THROW(p.validate());
    p.k1 = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.hill = 0.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.initial = {1.0};
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Goodwin, OscillatesWithHighHillCoefficient) {
    const Goodwin_params p;  // hill = 10 oscillates
    const Ode_solution sol = rk45_solve(goodwin_rhs(p), p.initial, 0.0, 400.0);
    // Count maxima of x over the window — a sustained oscillation has >= 3.
    const Vector x = sol.component(0);
    int maxima = 0;
    for (std::size_t i = 1; i + 1 < x.size(); ++i) {
        if (x[i] > x[i - 1] && x[i] > x[i + 1]) ++maxima;
    }
    EXPECT_GE(maxima, 3);
}

TEST(Goodwin, StatesRemainPositive) {
    const Goodwin_params p;
    const Ode_solution sol = rk45_solve(goodwin_rhs(p), p.initial, 0.0, 200.0);
    for (const Vector& y : sol.states) {
        for (double v : y) EXPECT_GT(v, -1e-9);
    }
}

TEST(Repressilator, ParameterValidation) {
    Repressilator_params p;
    EXPECT_NO_THROW(p.validate());
    p.alpha = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.initial = {1.0, 2.0};
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Repressilator, SustainedOscillationInProteins) {
    const Repressilator_params p;
    const Ode_solution sol = rk45_solve(repressilator_rhs(p), p.initial, 0.0, 500.0);
    const Vector protein = sol.component(3);
    const auto [mn, mx] = std::minmax_element(
        protein.begin() + static_cast<std::ptrdiff_t>(protein.size() / 2),
                                              protein.end());
    EXPECT_GT(*mx / std::max(*mn, 1e-9), 2.0);  // large swings persist
}

TEST(Repressilator, ThreeProteinsPhaseShifted) {
    const Repressilator_params p;
    const Ode_solution sol = rk45_solve(repressilator_rhs(p), p.initial, 0.0, 300.0);
    // At the final time the three proteins should not all be equal
    // (they cycle out of phase).
    const Vector& last = sol.states.back();
    const double spread = std::max({last[3], last[4], last[5]}) -
                          std::min({last[3], last[4], last[5]});
    EXPECT_GT(spread, 1.0);
}

TEST(OscillatorProfile, WrapsComponentAsPhaseFunction) {
    const Goodwin_params p;
    const Gene_profile profile =
        oscillator_profile(goodwin_rhs(p), p.initial, 0, 100.0, 50.0, "goodwin-x");
    EXPECT_EQ(profile.name, "goodwin-x");
    for (double phi = 0.0; phi <= 1.0; phi += 0.1) {
        EXPECT_GE(profile(phi), 0.0);
    }
}

TEST(OscillatorProfile, Validation) {
    const Goodwin_params p;
    EXPECT_THROW(oscillator_profile(goodwin_rhs(p), p.initial, 9, 100.0, 0.0, "x"),
                 std::invalid_argument);
    EXPECT_THROW(oscillator_profile(goodwin_rhs(p), p.initial, 0, 0.0, 0.0, "x"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
