#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(Csv, ParsesSimpleTable) {
    const Table t = read_csv_string("time,value\n0,1.5\n15,2.5\n30,3.5\n");
    EXPECT_EQ(t.column_count(), 2u);
    EXPECT_EQ(t.row_count(), 3u);
    EXPECT_DOUBLE_EQ(t.column("time")[1], 15.0);
    EXPECT_DOUBLE_EQ(t.column("value")[2], 3.5);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
    const Table t = read_csv_string(
        "# provenance comment\n\ntime,value\n# interior comment\n0,1\n\n1,2\n");
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Csv, TrimsWhitespaceAroundFields) {
    const Table t = read_csv_string("a , b\n 1.0 ,\t2.0 \n");
    EXPECT_DOUBLE_EQ(t.column("a")[0], 1.0);
    EXPECT_DOUBLE_EQ(t.column("b")[0], 2.0);
}

TEST(Csv, ScientificNotationAndNegatives) {
    const Table t = read_csv_string("x\n-1.5e-3\n2E4\n");
    EXPECT_DOUBLE_EQ(t.column("x")[0], -1.5e-3);
    EXPECT_DOUBLE_EQ(t.column("x")[1], 2e4);
}

TEST(Csv, LeadingPlusSignAccepted) {
    // Regression: std::from_chars rejects '+'-signed doubles, so "+1.5"
    // used to throw even though it is a standard numeric spelling.
    const Table t = read_csv_string("x\n+1.5\n+2E4\n+.25\n+1e-3\n");
    EXPECT_DOUBLE_EQ(t.column("x")[0], 1.5);
    EXPECT_DOUBLE_EQ(t.column("x")[1], 2e4);
    EXPECT_DOUBLE_EQ(t.column("x")[2], 0.25);
    EXPECT_DOUBLE_EQ(t.column("x")[3], 1e-3);
}

TEST(Csv, BarePlusAndSignPairsRejected) {
    EXPECT_THROW(read_csv_string("x\n+\n"), std::runtime_error);
    EXPECT_THROW(read_csv_string("x\n+-1\n"), std::runtime_error);
    EXPECT_THROW(read_csv_string("x\n++1\n"), std::runtime_error);
}

TEST(Csv, NonFiniteValuesRejectedWithClearMessage) {
    for (const char* bad : {"inf", "-inf", "+inf", "nan", "-nan", "INF", "NaN"}) {
        try {
            read_csv_string(std::string("x\n") + bad + "\n");
            FAIL() << "expected non-finite rejection for '" << bad << "'";
        } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
                << "message for '" << bad << "' was: " << e.what();
        }
    }
}

TEST(Csv, OutOfRangeValueRejected) {
    try {
        read_csv_string("x\n1e999\n");
        FAIL() << "expected out-of-range rejection";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("range"), std::string::npos);
    }
}

TEST(Csv, RaggedRowReportsLineNumber) {
    try {
        read_csv_string("a,b\n1,2\n3\n");
        FAIL() << "expected ragged-row error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(Csv, NonNumericFieldReportsFieldText) {
    try {
        read_csv_string("a\nhello\n");
        FAIL() << "expected non-numeric error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("hello"), std::string::npos);
    }
}

TEST(Csv, EmptyInputRejected) {
    EXPECT_THROW(read_csv_string(""), std::runtime_error);
    EXPECT_THROW(read_csv_string("# only a comment\n"), std::runtime_error);
}

TEST(Csv, EmptyHeaderFieldRejected) {
    EXPECT_THROW(read_csv_string("a,,c\n1,2,3\n"), std::runtime_error);
}

TEST(Csv, MissingFileThrows) {
    EXPECT_THROW(read_csv_file("/nonexistent/path/data.csv"), std::runtime_error);
}

TEST(Csv, WriteReadRoundTrip) {
    Table t;
    t.add_column("time", {0.0, 15.0, 30.0});
    t.add_column("value", {1.23456789012345, -2.5, 3.75e-8});
    std::ostringstream out;
    write_csv(out, t);
    const Table back = read_csv_string(out.str());
    EXPECT_EQ(back.column_count(), 2u);
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_DOUBLE_EQ(back.column("time")[r], t.column("time")[r]);
        EXPECT_DOUBLE_EQ(back.column("value")[r], t.column("value")[r]);
    }
}

TEST(Csv, FileRoundTrip) {
    Table t;
    t.add_column("x", {1.0, 2.0});
    const std::string path = ::testing::TempDir() + "/cellsync_csv_test.csv";
    write_csv_file(path, t);
    const Table back = read_csv_file(path);
    EXPECT_DOUBLE_EQ(back.column("x")[1], 2.0);
    std::remove(path.c_str());
}

TEST(Csv, WriteFailureIsReportedNotSwallowed) {
    if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full";
    Table t;
    t.add_column("x", {1.0, 2.0});
    // /dev/full opens fine but every flushed write fails with ENOSPC;
    // without the post-flush stream check a truncated file was reported
    // as success.
    EXPECT_THROW(write_csv_file("/dev/full", t), std::runtime_error);
}

}  // namespace
}  // namespace cellsync
