#include "population/cell_type_census.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

Census_options fast_census() {
    Census_options o;
    o.n_cells = 20000;
    o.seed = 14;
    return o;
}

TEST(CellTypeCensus, FractionsSumToOneAtEveryTime) {
    const Census_series s = simulate_census(Cell_cycle_config{}, thresholds_mid(),
                                            linspace(0.0, 150.0, 11), fast_census());
    for (std::size_t m = 0; m < s.times.size(); ++m) {
        double total = 0.0;
        for (std::size_t k = 0; k < cell_type_count; ++k) total += s.fractions(m, k);
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(CellTypeCensus, StartsAllSwarmer) {
    const Census_series s =
        simulate_census(Cell_cycle_config{}, thresholds_mid(), {0.0}, fast_census());
    EXPECT_NEAR(s.fractions(0, 0), 1.0, 1e-12);  // SW fraction
}

TEST(CellTypeCensus, SwarmersConvertToStalkedOverFirstCycle) {
    // By mid-cycle (75 min, phase ~0.5) the initial swarmers are stalked.
    const Census_series s = simulate_census(Cell_cycle_config{}, thresholds_mid(),
                                            {0.0, 75.0}, fast_census());
    EXPECT_LT(s.type_series(Cell_type::swarmer)[1], 0.1);
    EXPECT_GT(s.type_series(Cell_type::stalked_early)[1], 0.5);
}

TEST(CellTypeCensus, PredivisionalTypesAppearLate) {
    const Census_series s = simulate_census(Cell_cycle_config{}, thresholds_mid(),
                                            {75.0, 120.0, 135.0}, fast_census());
    const Vector stepd = s.type_series(Cell_type::early_predivisional);
    const Vector stlpd = s.type_series(Cell_type::late_predivisional);
    // At 75 min (phase ~0.5): essentially no late predivisional cells.
    EXPECT_LT(stlpd[0], 0.02);
    // By 135 min (phase ~0.9): late predivisional cells present.
    EXPECT_GT(stlpd[2], 0.1);
    EXPECT_GT(stepd[1], stepd[0]);
}

TEST(CellTypeCensus, NewSwarmersReappearAfterDivision) {
    // At mid-cycle (75 min) the synchronized isolate has no swarmers left;
    // by the division wave (150 min) SW daughters have repopulated the
    // class.
    const Census_series s = simulate_census(Cell_cycle_config{}, thresholds_mid(),
                                            {75.0, 150.0}, fast_census());
    EXPECT_LT(s.type_series(Cell_type::swarmer)[0], 0.05);
    EXPECT_GT(s.type_series(Cell_type::swarmer)[1], 0.05);
}

TEST(CellTypeCensus, ThresholdRangeBracketsMidline) {
    // Same seed -> same population, so threshold monotonicity is exact:
    // widening the STE window ([phi_sst, ste_to_stepd)) grows STE, and
    // raising stepd_to_stlpd shrinks STLPD ([stepd_to_stlpd, 1]).
    const Vector times{110.0};
    const Census_series lo = simulate_census(Cell_cycle_config{}, thresholds_low(),
                                             times, fast_census());
    const Census_series mid = simulate_census(Cell_cycle_config{}, thresholds_mid(),
                                              times, fast_census());
    const Census_series hi = simulate_census(Cell_cycle_config{}, thresholds_high(),
                                             times, fast_census());
    const auto ste = static_cast<std::size_t>(Cell_type::stalked_early);
    EXPECT_LE(lo.fractions(0, ste), mid.fractions(0, ste));
    EXPECT_LE(mid.fractions(0, ste), hi.fractions(0, ste));
    const auto stlpd = static_cast<std::size_t>(Cell_type::late_predivisional);
    EXPECT_GE(lo.fractions(0, stlpd), mid.fractions(0, stlpd));
    EXPECT_GE(mid.fractions(0, stlpd), hi.fractions(0, stlpd));
}

TEST(CellTypeCensus, ValidationErrors) {
    EXPECT_THROW(simulate_census(Cell_cycle_config{}, thresholds_mid(), {}, fast_census()),
                 std::invalid_argument);
    EXPECT_THROW(
        simulate_census(Cell_cycle_config{}, thresholds_mid(), {-5.0}, fast_census()),
        std::invalid_argument);
    EXPECT_THROW(
        simulate_census(Cell_cycle_config{}, thresholds_mid(), {10.0, 5.0}, fast_census()),
        std::invalid_argument);
    Census_options bad = fast_census();
    bad.n_cells = 0;
    EXPECT_THROW(simulate_census(Cell_cycle_config{}, thresholds_mid(), {0.0}, bad),
                 std::invalid_argument);
    EXPECT_THROW(simulate_census(Cell_cycle_config{}, Cell_type_thresholds{0.9, 0.5}, {0.0},
                                 fast_census()),
                 std::invalid_argument);
}

TEST(CellTypeCensus, TypeSeriesExtractsColumns) {
    const Census_series s = simulate_census(Cell_cycle_config{}, thresholds_mid(),
                                            {0.0, 75.0}, fast_census());
    const Vector sw = s.type_series(Cell_type::swarmer);
    ASSERT_EQ(sw.size(), 2u);
    EXPECT_DOUBLE_EQ(sw[0], s.fractions(0, 0));
}

}  // namespace
}  // namespace cellsync
