#include "biology/gene_profiles.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(GeneProfiles, ConstantProfile) {
    const Gene_profile p = constant_profile(2.5);
    EXPECT_DOUBLE_EQ(p(0.0), 2.5);
    EXPECT_DOUBLE_EQ(p(0.7), 2.5);
    EXPECT_THROW(constant_profile(-1.0), std::invalid_argument);
}

TEST(GeneProfiles, SinusoidShapeAndBounds) {
    const Gene_profile p = sinusoid_profile(3.0, 2.0);
    EXPECT_NEAR(p(0.0), 3.0, 1e-12);
    EXPECT_NEAR(p(0.25), 5.0, 1e-12);
    EXPECT_NEAR(p(0.75), 1.0, 1e-12);
    for (double phi = 0.0; phi <= 1.0; phi += 0.01) EXPECT_GE(p(phi), 0.0);
}

TEST(GeneProfiles, SinusoidRejectsNegativeExcursion) {
    EXPECT_THROW(sinusoid_profile(1.0, 2.0), std::invalid_argument);
}

TEST(GeneProfiles, SinusoidMultipleCycles) {
    const Gene_profile p = sinusoid_profile(2.0, 1.0, 2.0);
    EXPECT_NEAR(p(0.0), p(0.5), 1e-12);  // two full cycles on [0,1]
}

TEST(GeneProfiles, PulseLocalizedAndBaselineElsewhere) {
    const Gene_profile p = pulse_profile(1.0, 4.0, 0.5, 0.1);
    EXPECT_NEAR(p(0.5), 5.0, 1e-12);       // peak = baseline + height
    EXPECT_DOUBLE_EQ(p(0.2), 1.0);         // outside support
    EXPECT_DOUBLE_EQ(p(0.8), 1.0);
    EXPECT_GT(p(0.45), 1.0);
    EXPECT_THROW(pulse_profile(1.0, 1.0, 0.5, 0.0), std::invalid_argument);
    EXPECT_THROW(pulse_profile(-1.0, 1.0, 0.5, 0.1), std::invalid_argument);
}

TEST(GeneProfiles, FtszLikeEncodesTranscriptionDelay) {
    const Gene_profile p = ftsz_like_profile();
    // Silent before the SW->ST transition (paper Sec 4.3 / Kelly 1998).
    EXPECT_DOUBLE_EQ(p(0.0), 0.0);
    EXPECT_DOUBLE_EQ(p(0.10), 0.0);
    EXPECT_DOUBLE_EQ(p(0.16), 0.0);
    // Peak at phi = 0.4.
    EXPECT_NEAR(p(0.40), 10.0, 1e-12);
    // Declines after the peak, ending at final_level.
    EXPECT_LT(p(0.7), p(0.5));
    EXPECT_NEAR(p(1.0), 0.0, 1e-12);
}

TEST(GeneProfiles, FtszLikeParameterValidation) {
    EXPECT_THROW(ftsz_like_profile(0.5, 0.4), std::invalid_argument);
    EXPECT_THROW(ftsz_like_profile(0.0, 0.4), std::invalid_argument);
    EXPECT_THROW(ftsz_like_profile(0.16, 0.4, 10.0, 20.0), std::invalid_argument);
    EXPECT_THROW(ftsz_like_profile(0.16, 0.4, -1.0), std::invalid_argument);
}

TEST(GeneProfiles, FtszLikeIsContinuousAtSegmentJoints) {
    const Gene_profile p = ftsz_like_profile(0.2, 0.5, 8.0, 2.0);
    const double eps = 1e-9;
    EXPECT_NEAR(p(0.2 - eps), p(0.2 + eps), 1e-6);
    EXPECT_NEAR(p(0.5 - eps), p(0.5 + eps), 1e-6);
}

TEST(GeneProfiles, StepTransitionsBetweenLevels) {
    const Gene_profile p = step_profile(1.0, 5.0, 0.5, 0.2);
    EXPECT_DOUBLE_EQ(p(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p(1.0), 5.0);
    EXPECT_NEAR(p(0.5), 3.0, 1e-12);  // midpoint of the smoothstep
    EXPECT_THROW(step_profile(1.0, 5.0, 0.5, 0.0), std::invalid_argument);
}

TEST(GeneProfiles, TabulatedInterpolatesAndClampsNegatives) {
    const Gene_profile p =
        tabulated_profile("custom", {0.0, 0.5, 1.0}, {1.0, -3.0, 2.0});
    EXPECT_DOUBLE_EQ(p(0.5), 0.0);  // clamped at zero
    EXPECT_DOUBLE_EQ(p(0.0), 1.0);
    EXPECT_EQ(p.name, "custom");
}

TEST(GeneProfiles, SampleMatchesPointwiseEvaluation) {
    const Gene_profile p = sinusoid_profile(2.0, 1.0);
    const Vector grid = linspace(0.0, 1.0, 11);
    const Vector s = p.sample(grid);
    ASSERT_EQ(s.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) EXPECT_DOUBLE_EQ(s[i], p(grid[i]));
}

}  // namespace
}  // namespace cellsync
