// The task-graph scheduler's contract: dependency ordering, deterministic
// slot-writes for any thread count, exception propagation with transitive
// cancellation of dependents, and pool reusability afterwards — the
// invariants the pipelined experiment runner builds on.
#include "core/task_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/worker_pool.h"

namespace cellsync {
namespace {

TEST(TaskGraph, DependenciesMustPointBackwards) {
    Task_graph graph;
    const auto a = graph.add_node("a", 1, [](std::size_t) {});
    EXPECT_EQ(a, 0u);
    EXPECT_THROW(graph.add_node("b", 1, [](std::size_t) {}, {5}), std::invalid_argument);
    // Self-dependency is forward-pointing too (id == own id): rejected.
    EXPECT_THROW(graph.add_node("c", 1, [](std::size_t) {}, {1}), std::invalid_argument);
}

TEST(TaskGraph, DiamondRespectsDependencyOrdering) {
    // a -> {b, c} -> d: every task stamps a global sequence number; b and
    // c must observe a finished, d must observe both. Repeat across
    // thread counts — ordering comes from the graph, not luck.
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        Worker_pool pool(threads);
        Task_graph graph;
        std::atomic<int> sequence{0};
        std::vector<int> stamp(4, -1);
        const auto a = graph.add_node("a", 1, [&](std::size_t) { stamp[0] = sequence++; });
        const auto b =
            graph.add_node("b", 1, [&](std::size_t) { stamp[1] = sequence++; }, {a});
        const auto c =
            graph.add_node("c", 1, [&](std::size_t) { stamp[2] = sequence++; }, {a});
        graph.add_node("d", 1, [&](std::size_t) { stamp[3] = sequence++; }, {b, c});
        pool.run(graph);
        EXPECT_EQ(sequence.load(), 4);
        EXPECT_LT(stamp[0], stamp[1]);
        EXPECT_LT(stamp[0], stamp[2]);
        EXPECT_GT(stamp[3], stamp[1]);
        EXPECT_GT(stamp[3], stamp[2]);
    }
}

TEST(TaskGraph, BatchNodeDrainsEveryIndexBeforeDependentsStart) {
    Worker_pool pool(4);
    Task_graph graph;
    std::vector<std::atomic<int>> hits(97);
    std::atomic<std::size_t> seen_by_dependent{0};
    const auto batch = graph.add_node("batch", hits.size(), [&](std::size_t i) {
        ++hits[i];
    });
    graph.add_node(
        "after", 1,
        [&](std::size_t) {
            std::size_t done = 0;
            for (const auto& h : hits) done += static_cast<std::size_t>(h.load());
            seen_by_dependent = done;
        },
        {batch});
    pool.run(graph);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_EQ(seen_by_dependent.load(), hits.size());
}

TEST(TaskGraph, IndependentNodesOverlap) {
    // Two root nodes, two threads: a slow node must not serialize ahead
    // of an independent fast one. The fast node finishing while the slow
    // one still runs is exactly the kernel-build/solve overlap the
    // experiment runner relies on.
    Worker_pool pool(2);
    Task_graph graph;
    std::atomic<bool> slow_done{false};
    std::atomic<bool> fast_saw_slow_running{false};
    graph.add_node("slow", 1, [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        slow_done = true;
    });
    graph.add_node("fast", 1, [&](std::size_t) {
        if (!slow_done.load()) fast_saw_slow_running = true;
    });
    pool.run(graph);
    EXPECT_TRUE(fast_saw_slow_running.load());
}

TEST(TaskGraph, SlotWritesAreBitIdenticalAcrossThreadCounts) {
    auto run = [](std::size_t threads) {
        Worker_pool pool(threads);
        Task_graph graph;
        std::vector<double> stage1(64), stage2(64);
        const auto first = graph.add_node("stage1", stage1.size(), [&](std::size_t i) {
            stage1[i] = static_cast<double>(i * i) + 0.25;
        });
        graph.add_node(
            "stage2", stage2.size(),
            [&](std::size_t i) { stage2[i] = stage1[i] * 3.0 + stage1[(i + 1) % 64]; },
            {first});
        pool.run(graph);
        return stage2;
    };
    const std::vector<double> serial = run(1);
    EXPECT_EQ(serial, run(4));
    EXPECT_EQ(serial, run(8));
}

TEST(TaskGraph, MidGraphExceptionCancelsDependentsAndPropagates) {
    Worker_pool pool(3);
    Task_graph graph;
    std::atomic<int> upstream_ran{0};
    std::atomic<int> downstream_ran{0};
    std::atomic<int> independent_ran{0};
    std::vector<std::atomic<int>> failing_hits(16);
    const auto up = graph.add_node("up", 1, [&](std::size_t) { ++upstream_ran; });
    const auto failing = graph.add_node(
        "failing", failing_hits.size(),
        [&](std::size_t i) {
            ++failing_hits[i];
            if (i == 5) throw std::runtime_error("node failure at index 5");
        },
        {up});
    const auto down =
        graph.add_node("down", 4, [&](std::size_t) { ++downstream_ran; }, {failing});
    graph.add_node("transitive", 2, [&](std::size_t) { ++downstream_ran; }, {down});
    graph.add_node("independent", 8, [&](std::size_t) { ++independent_ran; });

    EXPECT_THROW(pool.run(graph), std::runtime_error);
    EXPECT_EQ(upstream_ran.load(), 1);
    // The failing node still drains its own indices (slot-writers never
    // leave holes)...
    for (const auto& h : failing_hits) EXPECT_EQ(h.load(), 1);
    // ...but nothing downstream of it ever runs, transitively.
    EXPECT_EQ(downstream_ran.load(), 0);
    // Nodes not depending on the failure are unaffected.
    EXPECT_EQ(independent_ran.load(), 8);

    // The pool survives a failed graph.
    std::atomic<int> ok{0};
    pool.parallel_for(10, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(TaskGraph, BarrierNodesCompleteWithoutTasks) {
    Worker_pool pool(2);
    Task_graph graph;
    std::vector<int> order;
    std::mutex order_mutex;
    auto record = [&](int id) {
        const std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(id);
    };
    const auto a = graph.add_node("a", 1, [&](std::size_t) { record(0); });
    const auto b = graph.add_node("b", 1, [&](std::size_t) { record(1); });
    // Pure barrier joining a and b; c runs only after both.
    const auto barrier = graph.add_node("barrier", 0, {}, {a, b});
    graph.add_node("c", 1, [&](std::size_t) { record(2); }, {barrier});
    pool.run(graph);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order.back(), 2);
}

TEST(TaskGraph, EmptyGraphAndReuseAreNoOps) {
    Worker_pool pool(2);
    const Task_graph empty;
    pool.run(empty);  // no nodes: returns immediately

    // The same graph object can be run repeatedly.
    Task_graph graph;
    std::atomic<int> runs{0};
    graph.add_node("count", 5, [&](std::size_t) { ++runs; });
    pool.run(graph);
    pool.run(graph);
    EXPECT_EQ(runs.load(), 10);
}

TEST(TaskGraph, RapidSmallGraphsNeverLeakAcrossGenerations) {
    // Stress the stale-generation guard with many tiny graphs posted
    // back-to-back, mirroring the worker-pool test that hardened
    // parallel_for.
    Worker_pool pool(4);
    for (int round = 0; round < 1000; ++round) {
        Task_graph graph;
        std::atomic<std::size_t> ran{0};
        const auto a =
            graph.add_node("a", 1 + static_cast<std::size_t>(round % 3),
                           [&](std::size_t) { ++ran; });
        graph.add_node("b", 1, [&](std::size_t) { ++ran; }, {a});
        pool.run(graph);
        ASSERT_EQ(ran.load(), 2 + static_cast<std::size_t>(round % 3)) << "round " << round;
    }
}

}  // namespace
}  // namespace cellsync
