#include "models/regulatory_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(RegulatoryNetwork, ConstructionAndValidation) {
    EXPECT_THROW(Regulatory_network(0), std::invalid_argument);
    Regulatory_network net(2);
    EXPECT_EQ(net.gene_count(), 2u);
    EXPECT_THROW(net.set_production(5, 1.0), std::out_of_range);
    EXPECT_THROW(net.set_production(0, 0.0), std::invalid_argument);
    EXPECT_THROW(net.set_basal(0, -1.0), std::invalid_argument);
    EXPECT_THROW(net.set_decay(0, 0.0), std::invalid_argument);
    EXPECT_THROW(net.add_edge({0, 9, true, 1.0, 2.0}), std::out_of_range);
    EXPECT_THROW(net.add_edge({0, 1, true, 0.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(net.add_edge({0, 1, true, 1.0, 0.5}), std::invalid_argument);
    EXPECT_NO_THROW(net.add_edge({0, 1, true, 1.0, 2.0}));
    EXPECT_EQ(net.edges().size(), 1u);
}

TEST(RegulatoryNetwork, UnregulatedGeneReachesProductionOverDecay) {
    Regulatory_network net(1);
    net.set_basal(0, 2.0);
    net.set_production(0, 1e-9);  // effectively basal-only
    net.set_decay(0, 0.5);
    const Ode_solution sol = net.simulate({0.0}, 40.0);
    EXPECT_NEAR(sol.states.back()[0], 4.0, 1e-3);  // basal / decay
}

TEST(RegulatoryNetwork, ActivationRaisesRepressionLowersSteadyState) {
    // Gene 1 regulated by a constitutively high gene 0.
    auto build = [](bool activating) {
        Regulatory_network net(2);
        net.set_basal(0, 5.0);
        net.set_production(0, 1e-9);
        net.set_decay(0, 1.0);  // gene 0 -> steady 5 (far above threshold 1)
        net.set_basal(1, 0.1);
        net.set_production(1, 4.0);
        net.set_decay(1, 1.0);
        net.add_edge({0, 1, activating, 1.0, 2.0});
        return net;
    };
    const Ode_solution activated = build(true).simulate({5.0, 0.5}, 40.0);
    const Ode_solution repressed = build(false).simulate({5.0, 0.5}, 40.0);
    // Activated: ~0.1 + 4*H(5) ~ 3.95; repressed: ~0.1 + 4*(1-H) ~ 0.25.
    EXPECT_GT(activated.states.back()[1], 3.0);
    EXPECT_LT(repressed.states.back()[1], 0.6);
}

TEST(RegulatoryNetwork, StatesStayNonNegative) {
    const Ring_oscillator ring = ring_oscillator_network(150.0);
    const Ode_solution sol = ring.network.simulate(ring.initial, 600.0);
    for (const Vector& state : sol.states) {
        for (double x : state) EXPECT_GT(x, -1e-9);
    }
}

TEST(RegulatoryNetwork, RingOscillatorSustainsOscillation) {
    const Ring_oscillator ring = ring_oscillator_network(150.0);
    const Ode_solution sol = ring.network.simulate(ring.initial, 900.0);
    // Count genuine maxima of gene 0 in the second half.
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = sol.times.size() / 2; i < sol.times.size(); ++i) {
        lo = std::min(lo, sol.states[i][0]);
        hi = std::max(hi, sol.states[i][0]);
    }
    EXPECT_GT(hi / std::max(lo, 1e-9), 2.0);  // sustained amplitude
}

TEST(RegulatoryNetwork, RingOscillatorPeriodMatchesRequest) {
    const Ring_oscillator ring = ring_oscillator_network(150.0);
    const Ode_solution sol = ring.network.simulate(ring.initial, 1200.0);
    // Peak-to-peak period of gene 0 after the transient.
    Vector peaks;
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = sol.times.size() / 4; i < sol.times.size(); ++i) {
        lo = std::min(lo, sol.states[i][0]);
        hi = std::max(hi, sol.states[i][0]);
    }
    const double floor_level = lo + 0.5 * (hi - lo);
    for (std::size_t i = 1; i + 1 < sol.times.size(); ++i) {
        if (sol.times[i] < 300.0) continue;
        if (sol.states[i][0] > floor_level && sol.states[i][0] > sol.states[i - 1][0] &&
            sol.states[i][0] > sol.states[i + 1][0]) {
            peaks.push_back(sol.times[i]);
        }
    }
    ASSERT_GE(peaks.size(), 3u);
    const double period =
        (peaks.back() - peaks.front()) / static_cast<double>(peaks.size() - 1);
    EXPECT_NEAR(period, 150.0, 7.5);  // within 5%
}

TEST(RegulatoryNetwork, ThreeGenesPhaseShiftedAroundRing) {
    const Ring_oscillator ring = ring_oscillator_network(150.0);
    const Ode_solution sol = ring.network.simulate(ring.initial, 600.0);
    const Vector& last = sol.states.back();
    const double spread = *std::max_element(last.begin(), last.end()) -
                          *std::min_element(last.begin(), last.end());
    EXPECT_GT(spread, 0.5);  // genes cycle out of phase, never collapse together
}

TEST(RegulatoryNetwork, ProfileExtractionNonNegativeAndPeriodSized) {
    const Ring_oscillator ring = ring_oscillator_network(150.0);
    const Gene_profile p =
        ring.network.profile(ring.initial, 0, ring.period, 450.0, "ring-gene0");
    EXPECT_EQ(p.name, "ring-gene0");
    double lo = 1e300, hi = -1e300;
    for (double phi = 0.0; phi <= 1.0; phi += 0.01) {
        EXPECT_GE(p(phi), 0.0);
        lo = std::min(lo, p(phi));
        hi = std::max(hi, p(phi));
    }
    EXPECT_GT(hi - lo, 1.0);  // a full cycle captured
}

TEST(RegulatoryNetwork, SimulateValidatesInitialState) {
    Regulatory_network net(2);
    EXPECT_THROW(net.simulate({1.0}, 10.0), std::invalid_argument);
    EXPECT_THROW(net.profile({1.0}, 0, 10.0, 0.0, "x"), std::invalid_argument);
}

TEST(RegulatoryNetwork, BadPeriodRejected) {
    EXPECT_THROW(ring_oscillator_network(0.0), std::invalid_argument);
    EXPECT_THROW(ring_oscillator_network(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
