// Regression tests for the repo-wide strict number-parsing policy
// (io/csv.h parse_strict_double / parse_strict_uint64) — the from_chars
// rules every number entering the system goes through: CSV fields,
// kernel-file time columns, manifest counters, and (since the policy
// was extended to the CLI) every numeric cellsync_deconvolve flag.
// std::stod's silent prefix parse ("1.5junk" -> 1.5) and inf/nan
// acceptance are exactly the locale-/garbage-tolerant bug class PR 5
// removed from kernel_io; these tests pin the strict behavior at the
// library level, and tools/CMakeLists.txt pins the CLI's use of it
// end-to-end (cli_rejects_* ctest entries).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "io/csv.h"

namespace cellsync {
namespace {

TEST(StrictParseDouble, ParsesPlainAndSignedValues) {
    EXPECT_EQ(parse_strict_double("1.5"), 1.5);
    EXPECT_EQ(parse_strict_double("-2.25e3"), -2250.0);
    EXPECT_EQ(parse_strict_double("+0.5"), 0.5);  // leading '+' allowed, as in CSV
    EXPECT_EQ(parse_strict_double("0"), 0.0);
}

TEST(StrictParseDouble, RejectsTrailingGarbage) {
    // The exact bug class: std::stod("1.5junk") returns 1.5 and a CLI
    // built on it silently runs with a truncated flag value.
    EXPECT_THROW(parse_strict_double("1.5junk"), std::runtime_error);
    EXPECT_THROW(parse_strict_double("1.5 "), std::runtime_error);
    EXPECT_THROW(parse_strict_double(" 1.5"), std::runtime_error);
    EXPECT_THROW(parse_strict_double("1,5"), std::runtime_error);
    EXPECT_THROW(parse_strict_double(""), std::runtime_error);
    EXPECT_THROW(parse_strict_double("+"), std::runtime_error);
    EXPECT_THROW(parse_strict_double("+-1"), std::runtime_error);
}

TEST(StrictParseDouble, RejectsNonFinite) {
    for (const char* text : {"inf", "Inf", "INF", "-inf", "+inf", "nan", "NaN", "-nan"}) {
        EXPECT_THROW(parse_strict_double(text), std::runtime_error) << text;
    }
}

TEST(StrictParseDouble, RejectsOutOfRange) {
    EXPECT_THROW(parse_strict_double("1e999"), std::runtime_error);
    EXPECT_THROW(parse_strict_double("-1e999"), std::runtime_error);
}

TEST(StrictParseDouble, ErrorMessageNamesTheOffendingText) {
    try {
        parse_strict_double("1.5junk");
        FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("1.5junk"), std::string::npos) << e.what();
    }
}

TEST(StrictParseUint64, ParsesDecimalDigits) {
    EXPECT_EQ(parse_strict_uint64("0"), 0u);
    EXPECT_EQ(parse_strict_uint64("42"), 42u);
    EXPECT_EQ(parse_strict_uint64("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(StrictParseUint64, RejectsSignsGarbageAndOverflow) {
    // std::stoull("-1") wraps to 2^64-1 — a negative --threads or a
    // corrupted manifest byte count must fail loudly instead.
    EXPECT_THROW(parse_strict_uint64("-1"), std::runtime_error);
    EXPECT_THROW(parse_strict_uint64("+1"), std::runtime_error);
    EXPECT_THROW(parse_strict_uint64("12junk"), std::runtime_error);
    EXPECT_THROW(parse_strict_uint64("0x10"), std::runtime_error);
    EXPECT_THROW(parse_strict_uint64(" 1"), std::runtime_error);
    EXPECT_THROW(parse_strict_uint64(""), std::runtime_error);
    EXPECT_THROW(parse_strict_uint64("1.5"), std::runtime_error);
    EXPECT_THROW(parse_strict_uint64("18446744073709551616"), std::runtime_error);
}

TEST(StrictParseUint64, MatchesManifestFallbackExpectations) {
    // kernel_cache's manifest parser treats any throw as "malformed
    // manifest, rescan the directory": both failure kinds must throw
    // std::runtime_error (not some other type that would escape its
    // catch block).
    try {
        parse_strict_uint64("12\t34");
        FAIL() << "expected a throw";
    } catch (const std::runtime_error&) {
    }
}

}  // namespace
}  // namespace cellsync
