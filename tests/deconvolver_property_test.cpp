// Property suites over the deconvolution estimator: invariants that must
// hold across the lambda range and every constraint combination.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "biology/gene_profiles.h"
#include "core/deconvolver.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

// Shared kernel/deconvolver for the whole file.
struct Shared {
    static const Kernel_grid& kernel() {
        static const Kernel_grid k = [] {
            Kernel_build_options options;
            options.n_cells = 25000;
            options.n_bins = 120;
            options.seed = 606;
            return build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                linspace(0.0, 180.0, 13), options);
        }();
        return k;
    }
    static const Deconvolver& deconvolver() {
        static const Deconvolver d(std::make_shared<Natural_spline_basis>(14), kernel(),
                                   Cell_cycle_config{});
        return d;
    }
    static const Measurement_series& data() {
        static const Measurement_series m = [] {
            Rng rng(44);
            return forward_measurements_noisy(kernel(), ftsz_like_profile().f,
                                              {Noise_type::relative_gaussian, 0.08}, rng);
        }();
        return m;
    }
};

// --- Lambda-path monotonicity (unconstrained ridge path) ----------------

class LambdaPath : public ::testing::TestWithParam<int> {};

TEST_P(LambdaPath, ChiSquaredRisesAndRoughnessFallsWithLambda) {
    const double lambda_lo = std::pow(10.0, -GetParam());
    const double lambda_hi = 10.0 * lambda_lo;
    const Single_cell_estimate lo =
        Shared::deconvolver().estimate_unconstrained(Shared::data(), lambda_lo);
    const Single_cell_estimate hi =
        Shared::deconvolver().estimate_unconstrained(Shared::data(), lambda_hi);
    EXPECT_LE(lo.chi_squared, hi.chi_squared + 1e-9)
        << "misfit must be monotone in lambda";
    EXPECT_GE(lo.roughness, hi.roughness - 1e-9)
        << "roughness must be antitone in lambda";
}

INSTANTIATE_TEST_SUITE_P(Decades, LambdaPath, ::testing::Values(1, 2, 3, 4, 5, 6));

// --- Constraint-combination invariants -----------------------------------

using Combo = std::tuple<bool, bool, bool>;  // positivity, conservation, rate

class ConstraintCombos : public ::testing::TestWithParam<Combo> {};

TEST_P(ConstraintCombos, EstimateHonorsEveryEnabledConstraint) {
    const auto& [positivity, conservation, rate] = GetParam();
    Deconvolution_options options;
    options.lambda = 1e-4;
    options.constraints.positivity = positivity;
    options.constraints.conservation = conservation;
    options.constraints.rate_continuity = rate;

    const Single_cell_estimate est = Shared::deconvolver().estimate(Shared::data(), options);
    EXPECT_TRUE(all_finite(est.coefficients()));

    if (positivity) {
        for (double phi = 0.0; phi <= 1.0; phi += 0.01) {
            EXPECT_GE(est(phi), -1e-6) << "phi=" << phi;
        }
    }
    if (conservation) {
        const Vector row = conservation_row(Shared::deconvolver().basis(),
                                            Shared::deconvolver().config());
        EXPECT_NEAR(dot(row, est.coefficients()), 0.0, 1e-6);
    }
    if (rate) {
        const Vector row = rate_continuity_row(Shared::deconvolver().basis(),
                                               Shared::deconvolver().config());
        EXPECT_NEAR(dot(row, est.coefficients()), 0.0, 1e-6);
    }
    // Objective consistency holds in every configuration.
    EXPECT_NEAR(est.objective, est.chi_squared + est.lambda * est.roughness, 1e-8);
}

TEST_P(ConstraintCombos, AddingConstraintsNeverImprovesTheObjective) {
    const auto& [positivity, conservation, rate] = GetParam();
    Deconvolution_options constrained;
    constrained.lambda = 1e-4;
    constrained.constraints.positivity = positivity;
    constrained.constraints.conservation = conservation;
    constrained.constraints.rate_continuity = rate;
    Deconvolution_options free;
    free.lambda = 1e-4;
    free.constraints.positivity = false;
    free.constraints.conservation = false;
    free.constraints.rate_continuity = false;

    const double obj_constrained =
        Shared::deconvolver().estimate(Shared::data(), constrained).objective;
    const double obj_free = Shared::deconvolver().estimate(Shared::data(), free).objective;
    EXPECT_GE(obj_constrained, obj_free - 1e-8)
        << "a feasible-set restriction cannot lower the optimum";
}

INSTANTIATE_TEST_SUITE_P(AllCombos, ConstraintCombos,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                                            ::testing::Bool()));

// --- Measurement-scaling equivariance ------------------------------------

TEST(DeconvolverProperties, EstimateScalesLinearlyWithDataAndLambda) {
    // Scaling (G, sigma) by s and lambda by 1/s^2 scales f_hat by s
    // exactly: substituting alpha = s beta in the criterion gives
    // C(s beta; sG, s sigma, lambda/s^2) = C(beta; G, sigma, lambda), and
    // all constraints are homogeneous. The QP path gets a looser tolerance
    // for its absolute feasibility thresholds near the positivity
    // boundary.
    const double s = 2.0;
    Measurement_series scaled_data = Shared::data();
    for (double& v : scaled_data.values) v *= s;
    for (double& sig : scaled_data.sigmas) sig *= s;
    const double lambda = 1e-4;
    const double scaled_lambda = lambda / (s * s);

    const Single_cell_estimate base_free =
        Shared::deconvolver().estimate_unconstrained(Shared::data(), lambda);
    const Single_cell_estimate scaled_free =
        Shared::deconvolver().estimate_unconstrained(scaled_data, scaled_lambda);
    for (double phi = 0.0; phi <= 1.0; phi += 0.1) {
        EXPECT_NEAR(scaled_free(phi), s * base_free(phi),
                    1e-6 * std::max(1.0, std::abs(base_free(phi))));
    }

    Deconvolution_options options;
    options.lambda = lambda;
    Deconvolution_options scaled_options;
    scaled_options.lambda = scaled_lambda;
    const Single_cell_estimate base = Shared::deconvolver().estimate(Shared::data(), options);
    const Single_cell_estimate scaled =
        Shared::deconvolver().estimate(scaled_data, scaled_options);
    for (double phi = 0.0; phi <= 1.0; phi += 0.1) {
        EXPECT_NEAR(scaled(phi), s * base(phi), 2e-2 * std::max(1.0, std::abs(base(phi))));
    }
}

TEST(DeconvolverProperties, FittedValuesReproducedByForwardTransform) {
    Deconvolution_options options;
    options.lambda = 1e-3;
    const Single_cell_estimate est = Shared::deconvolver().estimate(Shared::data(), options);
    const Vector via_kernel =
        Shared::kernel().apply([&](double phi) { return est(phi); });
    for (std::size_t m = 0; m < via_kernel.size(); ++m) {
        EXPECT_NEAR(via_kernel[m], est.fitted[m], 1e-6)
            << "K alpha and integral Q f_alpha must agree, m=" << m;
    }
}

}  // namespace
}  // namespace cellsync
