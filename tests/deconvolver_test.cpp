#include "core/deconvolver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"
#include "numerics/statistics.h"

namespace cellsync {
namespace {

// Shared kernel fixture: building the Monte-Carlo kernel once keeps the
// whole suite fast while every test still exercises the real pipeline.
class DeconvolverTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        config_ = new Cell_cycle_config{};
        Kernel_build_options options;
        options.n_cells = 30000;
        options.n_bins = 150;
        options.seed = 2011;
        kernel_ = new Kernel_grid(build_kernel(*config_, Smooth_volume_model{},
                                               linspace(0.0, 180.0, 13), options));
        basis_ = new std::shared_ptr<Natural_spline_basis>(
            std::make_shared<Natural_spline_basis>(14));
        deconvolver_ = new Deconvolver(*basis_, *kernel_, *config_);
    }

    static void TearDownTestSuite() {
        delete deconvolver_;
        delete basis_;
        delete kernel_;
        delete config_;
        deconvolver_ = nullptr;
        basis_ = nullptr;
        kernel_ = nullptr;
        config_ = nullptr;
    }

    static Cell_cycle_config* config_;
    static Kernel_grid* kernel_;
    static std::shared_ptr<Natural_spline_basis>* basis_;
    static Deconvolver* deconvolver_;
};

Cell_cycle_config* DeconvolverTest::config_ = nullptr;
Kernel_grid* DeconvolverTest::kernel_ = nullptr;
std::shared_ptr<Natural_spline_basis>* DeconvolverTest::basis_ = nullptr;
Deconvolver* DeconvolverTest::deconvolver_ = nullptr;

TEST_F(DeconvolverTest, KernelMatrixShape) {
    EXPECT_EQ(deconvolver_->kernel_matrix().rows(), 13u);
    EXPECT_EQ(deconvolver_->kernel_matrix().cols(), 14u);
    EXPECT_EQ(deconvolver_->penalty().rows(), 14u);
}

TEST_F(DeconvolverTest, RecoversConstantProfileExactly) {
    // The constant profile is the transform's fixed point and satisfies
    // RNA conservation (c = 0.4c + 0.6c), so with the rate-continuity
    // constraint disabled recovery is essentially exact.
    const Measurement_series data =
        forward_measurements(*kernel_, [](double) { return 4.0; });
    Deconvolution_options options;
    options.lambda = 1e-3;
    options.constraints.rate_continuity = false;
    const Single_cell_estimate est = deconvolver_->estimate(data, options);
    for (double phi = 0.0; phi <= 1.0; phi += 0.05) {
        EXPECT_NEAR(est(phi), 4.0, 0.02) << "phi=" << phi;
    }
    EXPECT_LT(est.chi_squared, 1e-4);
}

TEST_F(DeconvolverTest, RateContinuityExcludesNonzeroConstants) {
    // Paper Eq 12 applied to a constant c gives -beta0 * c = 0: only the
    // zero profile is a feasible constant. The estimator therefore trades
    // a little data misfit for feasibility on constant data — a property
    // of the published constraint itself, documented here as a test.
    const Natural_spline_basis& basis = dynamic_cast<const Natural_spline_basis&>(
        deconvolver_->basis());
    const Vector row = rate_continuity_row(basis, deconvolver_->config());
    const Vector ones(basis.size(), 1.0);
    EXPECT_GT(std::abs(dot(row, ones)), 0.1);  // constants are infeasible

    const Measurement_series data =
        forward_measurements(*kernel_, [](double) { return 4.0; });
    Deconvolution_options options;
    options.lambda = 1e-3;
    const Single_cell_estimate est = deconvolver_->estimate(data, options);
    // Still close to constant, but with a structured deviation.
    for (double phi = 0.0; phi <= 1.0; phi += 0.05) {
        EXPECT_NEAR(est(phi), 4.0, 0.5) << "phi=" << phi;
    }
    EXPECT_GT(est.chi_squared, 1e-6);
}

TEST_F(DeconvolverTest, RecoversSinusoidShape) {
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    const Measurement_series data = forward_measurements(*kernel_, truth.f);
    Deconvolution_options options;
    options.lambda = 1e-4;
    const Single_cell_estimate est = deconvolver_->estimate(data, options);
    const Vector grid = linspace(0.05, 0.95, 19);  // interior (edges are hardest)
    EXPECT_GT(pearson_correlation(est.sample(grid), truth.sample(grid)), 0.98);
    EXPECT_LT(nrmse(est.sample(grid), truth.sample(grid)), 0.08);
}

TEST_F(DeconvolverTest, PositivityConstraintHolds) {
    // Profile hugging zero: unconstrained ridge would undershoot below 0.
    const Gene_profile truth = pulse_profile(0.0, 5.0, 0.4, 0.12);
    const Measurement_series data = forward_measurements(*kernel_, truth.f);
    Deconvolution_options options;
    options.lambda = 1e-5;
    const Single_cell_estimate constrained = deconvolver_->estimate(data, options);
    for (double phi = 0.0; phi <= 1.0; phi += 0.01) {
        EXPECT_GE(constrained(phi), -1e-7) << "phi=" << phi;
    }
    const Single_cell_estimate unconstrained =
        deconvolver_->estimate_unconstrained(data, options.lambda);
    double most_negative = 0.0;
    for (double phi = 0.0; phi <= 1.0; phi += 0.01) {
        most_negative = std::min(most_negative, unconstrained(phi));
    }
    EXPECT_LT(most_negative, -1e-3);  // confirms the constraint was doing work
}

TEST_F(DeconvolverTest, ConservationConstraintSatisfiedAtOptimum) {
    const Gene_profile truth = sinusoid_profile(3.0, 1.5);
    const Measurement_series data = forward_measurements(*kernel_, truth.f);
    Deconvolution_options options;
    options.lambda = 1e-4;
    const Single_cell_estimate est = deconvolver_->estimate(data, options);
    const Vector row = conservation_row(deconvolver_->basis(), deconvolver_->config());
    EXPECT_NEAR(dot(row, est.coefficients()), 0.0, 1e-7);
    const Vector rate_row =
        rate_continuity_row(deconvolver_->basis(), deconvolver_->config());
    EXPECT_NEAR(dot(rate_row, est.coefficients()), 0.0, 1e-7);
}

TEST_F(DeconvolverTest, LambdaControlsRoughness) {
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    Rng rng(5);
    const Noise_model noise{Noise_type::relative_gaussian, 0.05};
    const Measurement_series data =
        forward_measurements_noisy(*kernel_, truth.f, noise, rng);
    Deconvolution_options smooth_opts;
    smooth_opts.lambda = 1.0;
    Deconvolution_options rough_opts;
    rough_opts.lambda = 1e-7;
    const Single_cell_estimate smooth = deconvolver_->estimate(data, smooth_opts);
    const Single_cell_estimate rough = deconvolver_->estimate(data, rough_opts);
    EXPECT_LT(smooth.roughness, rough.roughness);
    EXPECT_GE(smooth.chi_squared, rough.chi_squared);
}

TEST_F(DeconvolverTest, FittedValuesAndDiagnosticsConsistent) {
    const Measurement_series data =
        forward_measurements(*kernel_, [](double phi) { return 2.0 + phi * (1.0 - phi); });
    Deconvolution_options options;
    options.lambda = 1e-3;
    const Single_cell_estimate est = deconvolver_->estimate(data, options);
    ASSERT_EQ(est.fitted.size(), data.size());
    double chi2 = 0.0;
    const Vector w = data.weights();
    for (std::size_t m = 0; m < data.size(); ++m) {
        chi2 += w[m] * (data.values[m] - est.fitted[m]) * (data.values[m] - est.fitted[m]);
    }
    EXPECT_NEAR(est.chi_squared, chi2, 1e-9);
    EXPECT_NEAR(est.objective, est.chi_squared + est.lambda * est.roughness, 1e-9);
    EXPECT_GT(est.qp_iterations, 0u);
}

TEST_F(DeconvolverTest, UnconstrainedMatchesConstrainedWhenConstraintsInactive) {
    // Fit a comfortably positive profile with constraints off except
    // equalities disabled too: the QP should agree with the ridge solve.
    const Measurement_series data =
        forward_measurements(*kernel_, [](double phi) { return 5.0 + std::sin(6.28 * phi); });
    Deconvolution_options options;
    options.lambda = 1e-3;
    options.constraints.positivity = false;
    options.constraints.conservation = false;
    options.constraints.rate_continuity = false;
    const Single_cell_estimate qp = deconvolver_->estimate(data, options);
    const Single_cell_estimate ridge =
        deconvolver_->estimate_unconstrained(data, options.lambda);
    EXPECT_LT(norm_inf(qp.coefficients() - ridge.coefficients()), 1e-6);
}

TEST_F(DeconvolverTest, SeriesValidationErrors) {
    Measurement_series bad = forward_measurements(*kernel_, [](double) { return 1.0; });
    bad.times[3] += 0.5;  // no longer matches the kernel grid
    EXPECT_THROW(deconvolver_->estimate(bad), std::invalid_argument);

    Measurement_series short_series;
    short_series.times = {0.0, 15.0};
    short_series.values = {1.0, 1.0};
    short_series.sigmas = {1.0, 1.0};
    EXPECT_THROW(deconvolver_->estimate(short_series), std::invalid_argument);

    const Measurement_series good = forward_measurements(*kernel_, [](double) { return 1.0; });
    Deconvolution_options bad_options;
    bad_options.lambda = -1.0;
    EXPECT_THROW(deconvolver_->estimate(good, bad_options), std::invalid_argument);
}

TEST_F(DeconvolverTest, EstimateOnRowsSubsetWorks) {
    const Measurement_series data =
        forward_measurements(*kernel_, [](double phi) { return 3.0 + phi; });
    Deconvolution_options options;
    options.lambda = 1e-3;
    const Single_cell_estimate est =
        deconvolver_->estimate_on_rows(data, {0, 2, 4, 6, 8, 10, 12}, options);
    EXPECT_EQ(est.coefficients().size(), 14u);
    EXPECT_THROW(deconvolver_->estimate_on_rows(data, {}, options), std::invalid_argument);
    EXPECT_THROW(deconvolver_->estimate_on_rows(data, {0, 0}, options), std::invalid_argument);
    EXPECT_THROW(deconvolver_->estimate_on_rows(data, {99}, options), std::invalid_argument);
}

TEST_F(DeconvolverTest, HatMatrixTraceBetweenZeroAndM) {
    const Measurement_series data =
        forward_measurements(*kernel_, [](double phi) { return 2.0 + phi; });
    const Matrix a = deconvolver_->hat_matrix(data, 1e-3);
    EXPECT_EQ(a.rows(), data.size());
    double trace = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) trace += a(i, i);
    EXPECT_GT(trace, 0.0);
    EXPECT_LT(trace, static_cast<double>(data.size()) + 1e-9);
    // More smoothing -> fewer effective dof.
    const Matrix a_smooth = deconvolver_->hat_matrix(data, 10.0);
    double trace_smooth = 0.0;
    for (std::size_t i = 0; i < a_smooth.rows(); ++i) trace_smooth += a_smooth(i, i);
    EXPECT_LT(trace_smooth, trace);
}

TEST_F(DeconvolverTest, SampleTimeMapsPhaseToMinutes) {
    const Measurement_series data =
        forward_measurements(*kernel_, [](double phi) { return 1.0 + phi; });
    Deconvolution_options options;
    options.lambda = 1e-2;
    const Single_cell_estimate est = deconvolver_->estimate(data, options);
    const Vector t{0.0, 75.0, 150.0};
    const Vector by_time = est.sample_time(t, 150.0);
    EXPECT_DOUBLE_EQ(by_time[0], est(0.0));
    EXPECT_DOUBLE_EQ(by_time[1], est(0.5));
    EXPECT_DOUBLE_EQ(by_time[2], est(1.0));
    EXPECT_THROW(est.sample_time(t, 0.0), std::invalid_argument);
}

TEST(DeconvolverConstruction, NullBasisRejected) {
    Kernel_build_options options;
    options.n_cells = 1000;
    options.n_bins = 20;
    const Kernel_grid kernel =
        build_kernel(Cell_cycle_config{}, Smooth_volume_model{}, {0.0, 30.0}, options);
    EXPECT_THROW(Deconvolver(nullptr, kernel, Cell_cycle_config{}), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
