#include "numerics/interpolation.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

TEST(LinearInterpolant, HitsKnots) {
    const Linear_interpolant f({0.0, 1.0, 2.0}, {10.0, 20.0, 15.0});
    EXPECT_DOUBLE_EQ(f(0.0), 10.0);
    EXPECT_DOUBLE_EQ(f(1.0), 20.0);
    EXPECT_DOUBLE_EQ(f(2.0), 15.0);
}

TEST(LinearInterpolant, MidpointsAreAverages) {
    const Linear_interpolant f({0.0, 1.0, 2.0}, {10.0, 20.0, 15.0});
    EXPECT_DOUBLE_EQ(f(0.5), 15.0);
    EXPECT_DOUBLE_EQ(f(1.5), 17.5);
}

TEST(LinearInterpolant, ClampsOutsideGrid) {
    const Linear_interpolant f({0.0, 1.0}, {3.0, 7.0});
    EXPECT_DOUBLE_EQ(f(-5.0), 3.0);
    EXPECT_DOUBLE_EQ(f(9.0), 7.0);
}

TEST(LinearInterpolant, DerivativePiecewiseConstant) {
    const Linear_interpolant f({0.0, 1.0, 3.0}, {0.0, 2.0, 2.0});
    EXPECT_DOUBLE_EQ(f.derivative(0.5), 2.0);
    EXPECT_DOUBLE_EQ(f.derivative(2.0), 0.0);
    EXPECT_DOUBLE_EQ(f.derivative(-1.0), 0.0);  // outside: flat extrapolation
}

TEST(LinearInterpolant, ValidationErrors) {
    EXPECT_THROW(Linear_interpolant({0.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(Linear_interpolant({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(Linear_interpolant({1.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(Linear_interpolant({0.0, 1.0}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
