#include "core/experiment_design.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "spline/spline_basis.h"

namespace cellsync {
namespace {

Kernel_build_options fast_options(std::uint64_t seed = 5) {
    Kernel_build_options o;
    o.n_cells = 10000;
    o.n_bins = 100;
    o.seed = seed;
    return o;
}

TEST(ExperimentDesign, ScoreFieldsArePopulatedAndFinite) {
    const Kernel_grid kernel = build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                            linspace(0.0, 180.0, 13), fast_options());
    const Natural_spline_basis basis(12);
    const Design_score score = score_design(kernel, basis, 1e-3, "baseline");
    EXPECT_EQ(score.label, "baseline");
    EXPECT_EQ(score.measurement_count, 13u);
    EXPECT_GT(score.a_criterion, 0.0);
    EXPECT_TRUE(std::isfinite(score.neg_log10_d_criterion));
    EXPECT_GT(score.effective_dof, 0.0);
    EXPECT_LT(score.effective_dof, 13.0 + 1e-9);
}

TEST(ExperimentDesign, MoreSamplesImproveConditioning) {
    const Cell_cycle_config config;
    const Smooth_volume_model volume;
    const Natural_spline_basis basis(12);
    const Kernel_grid sparse =
        build_kernel(config, volume, linspace(0.0, 180.0, 7), fast_options());
    const Kernel_grid dense =
        build_kernel(config, volume, linspace(0.0, 180.0, 25), fast_options());
    const Design_score sparse_score = score_design(sparse, basis, 1e-3);
    const Design_score dense_score = score_design(dense, basis, 1e-3);
    EXPECT_LT(dense_score.a_criterion, sparse_score.a_criterion);
    EXPECT_LT(dense_score.neg_log10_d_criterion, sparse_score.neg_log10_d_criterion);
    EXPECT_GT(dense_score.effective_dof, sparse_score.effective_dof);
}

TEST(ExperimentDesign, StrongerRegularizationReducesEffectiveDof) {
    const Kernel_grid kernel = build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                            linspace(0.0, 180.0, 13), fast_options());
    const Natural_spline_basis basis(12);
    const Design_score loose = score_design(kernel, basis, 1e-6);
    const Design_score tight = score_design(kernel, basis, 1e0);
    EXPECT_GT(loose.effective_dof, tight.effective_dof);
    EXPECT_GT(loose.a_criterion, tight.a_criterion);  // penalty shrinks variance
}

TEST(ExperimentDesign, CompareDesignsRanksCandidates) {
    const Cell_cycle_config config;
    const Smooth_volume_model volume;
    const Natural_spline_basis basis(10);
    const std::vector<std::pair<std::string, Vector>> candidates = {
        {"uniform-13", linspace(0.0, 180.0, 13)},
        {"uniform-7", linspace(0.0, 180.0, 7)},
    };
    const std::vector<Design_score> scores =
        compare_designs(config, volume, candidates, basis, 1e-3, fast_options());
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_EQ(scores[0].label, "uniform-13");
    EXPECT_LT(scores[0].a_criterion, scores[1].a_criterion);
}

TEST(ExperimentDesign, Validation) {
    const Kernel_grid kernel = build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                            {0.0, 60.0}, fast_options());
    const Natural_spline_basis basis(8);
    EXPECT_THROW(score_design(kernel, basis, -1.0), std::invalid_argument);
    EXPECT_THROW(compare_designs(Cell_cycle_config{}, Smooth_volume_model{}, {}, basis, 1e-3),
                 std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
