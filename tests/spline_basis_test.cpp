#include "spline/spline_basis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/quadrature.h"

namespace cellsync {
namespace {

TEST(NaturalSplineBasis, CardinalPropertyAtKnots) {
    const Natural_spline_basis basis(8);
    for (std::size_t i = 0; i < basis.size(); ++i) {
        for (std::size_t j = 0; j < basis.size(); ++j) {
            EXPECT_NEAR(basis.value(i, basis.knots()[j]), i == j ? 1.0 : 0.0, 1e-12);
        }
    }
}

TEST(NaturalSplineBasis, PartitionOfUnityEverywhere) {
    // Cardinal interpolation of the constant function 1 reproduces 1.
    const Natural_spline_basis basis(10);
    for (double x = 0.0; x <= 1.0; x += 0.01) {
        double s = 0.0;
        for (std::size_t i = 0; i < basis.size(); ++i) s += basis.value(i, x);
        EXPECT_NEAR(s, 1.0, 1e-10) << "x=" << x;
    }
}

TEST(NaturalSplineBasis, ReproducesLinearFunctions) {
    // alpha_i = knot_i makes the expansion the identity function.
    const Natural_spline_basis basis(9);
    const Vector alpha = basis.knots();
    for (double x = 0.0; x <= 1.0; x += 0.05) {
        EXPECT_NEAR(basis.expand(alpha, x), x, 1e-10);
        EXPECT_NEAR(basis.expand_derivative(alpha, x), 1.0, 1e-8);
    }
}

TEST(NaturalSplineBasis, MinimumKnotCountEnforced) {
    EXPECT_THROW(Natural_spline_basis(3), std::invalid_argument);
    EXPECT_NO_THROW(Natural_spline_basis(4));
}

TEST(NaturalSplineBasis, CustomKnotsValidated) {
    EXPECT_NO_THROW(Natural_spline_basis(Vector{0.0, 0.2, 0.3, 0.9, 1.0}));
    EXPECT_THROW(Natural_spline_basis(Vector{0.1, 0.5, 0.8, 1.0}), std::invalid_argument);
    EXPECT_THROW(Natural_spline_basis(Vector{0.0, 0.5, 0.4, 1.0}), std::invalid_argument);
    EXPECT_THROW(Natural_spline_basis(Vector{0.0, 0.5, 0.9, 0.95}), std::invalid_argument);
}

TEST(NaturalSplineBasis, IndexOutOfRangeThrows) {
    const Natural_spline_basis basis(5);
    EXPECT_THROW(basis.value(5, 0.5), std::out_of_range);
    EXPECT_THROW(basis.derivative(5, 0.5), std::out_of_range);
    EXPECT_THROW(basis.second_derivative(9, 0.5), std::out_of_range);
}

TEST(NaturalSplineBasis, PenaltyMatrixMatchesQuadrature) {
    const Natural_spline_basis basis(6);
    const Matrix exact = basis.penalty_matrix();
    // Compare the closed-form penalty with brute-force quadrature.
    for (std::size_t i = 0; i < basis.size(); ++i) {
        for (std::size_t j = i; j < basis.size(); ++j) {
            // Integrate knot interval by knot interval: the integrand is a
            // pure quadratic on each, so Simpson is exact there and the
            // comparison is tight.
            double numeric = 0.0;
            for (std::size_t k = 0; k + 1 < basis.knots().size(); ++k) {
                numeric += integrate_simpson(
                    [&](double x) {
                        return basis.second_derivative(i, x) * basis.second_derivative(j, x);
                    },
                    basis.knots()[k], basis.knots()[k + 1], 4);
            }
            const double tol = 1e-9 * std::max(1.0, std::abs(exact(i, j)));
            EXPECT_NEAR(exact(i, j), numeric, tol) << "i=" << i << " j=" << j;
        }
    }
}

TEST(NaturalSplineBasis, PenaltyIsSymmetricPsd) {
    const Natural_spline_basis basis(12);
    const Matrix omega = basis.penalty_matrix();
    for (std::size_t i = 0; i < omega.rows(); ++i) {
        for (std::size_t j = 0; j < omega.cols(); ++j) {
            EXPECT_NEAR(omega(i, j), omega(j, i), 1e-12);
        }
    }
    // PSD check: x' Omega x >= 0 for a few vectors; zero for linear alpha
    // (natural splines penalize only curvature).
    const Vector linear = basis.knots();
    EXPECT_NEAR(dot(linear, omega * linear), 0.0, 1e-10);
    Vector bump(basis.size(), 0.0);
    bump[basis.size() / 2] = 1.0;
    EXPECT_GT(dot(bump, omega * bump), 0.0);
}

TEST(NaturalSplineBasis, DesignMatrixShapesAndValues) {
    const Natural_spline_basis basis(5);
    const Vector pts = linspace(0.0, 1.0, 11);
    const Matrix b = basis.design_matrix(pts);
    EXPECT_EQ(b.rows(), 11u);
    EXPECT_EQ(b.cols(), 5u);
    EXPECT_NEAR(b(0, 0), 1.0, 1e-12);  // first knot, first cardinal
    const Matrix d = basis.derivative_matrix(pts);
    EXPECT_EQ(d.rows(), 11u);
}

TEST(NaturalSplineBasis, ExpandValidatesCoefficientCount) {
    const Natural_spline_basis basis(5);
    EXPECT_THROW(basis.expand({1.0, 2.0}, 0.5), std::invalid_argument);
    EXPECT_THROW(basis.expand_derivative({1.0}, 0.5), std::invalid_argument);
}

// Property sweep: interpolation error of smooth functions decays fast with
// knot count.
class BasisResolution : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BasisResolution, SineInterpolationError) {
    const std::size_t nc = GetParam();
    const Natural_spline_basis basis(nc);
    Vector alpha(nc);
    for (std::size_t i = 0; i < nc; ++i) alpha[i] = std::sin(2.0 * 3.14159265 * basis.knots()[i]);
    double worst = 0.0;
    for (double x = 0.0; x <= 1.0; x += 0.005) {
        worst = std::max(worst, std::abs(basis.expand(alpha, x) -
                                         std::sin(2.0 * 3.14159265 * x)));
    }
    // Interior error shrinks like h^4; boundary (natural BC) like h^2.
    const double h = 1.0 / static_cast<double>(nc - 1);
    EXPECT_LT(worst, 10.0 * h * h);
}

INSTANTIATE_TEST_SUITE_P(KnotSweep, BasisResolution, ::testing::Values(6, 10, 16, 24, 32));

}  // namespace
}  // namespace cellsync
