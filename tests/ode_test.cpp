#include "numerics/ode.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cellsync {
namespace {

// y' = -y, y(0) = 1 -> y(t) = exp(-t).
const Ode_rhs decay = [](double, const Vector& y) { return Vector{-y[0]}; };

// Harmonic oscillator: y'' = -y as a 2-state system; energy is conserved.
const Ode_rhs harmonic = [](double, const Vector& y) { return Vector{y[1], -y[0]}; };

TEST(Rk4, ExponentialDecayAccuracy) {
    const Ode_solution sol = rk4_solve(decay, {1.0}, 0.0, 2.0, 200);
    EXPECT_NEAR(sol.states.back()[0], std::exp(-2.0), 1e-9);
    EXPECT_EQ(sol.times.size(), 201u);
    EXPECT_DOUBLE_EQ(sol.times.back(), 2.0);
}

TEST(Rk4, FourthOrderConvergence) {
    auto error_with = [](std::size_t steps) {
        const Ode_solution sol = rk4_solve(decay, {1.0}, 0.0, 1.0, steps);
        return std::abs(sol.states.back()[0] - std::exp(-1.0));
    };
    const double e1 = error_with(10);
    const double e2 = error_with(20);
    EXPECT_GT(e1 / e2, 12.0);  // ~16x for 4th order
}

TEST(Rk4, RejectsBadArguments) {
    EXPECT_THROW(rk4_solve(decay, {1.0}, 0.0, 1.0, 0), std::invalid_argument);
    EXPECT_THROW(rk4_solve(decay, {1.0}, 1.0, 1.0, 10), std::invalid_argument);
}

TEST(Rk45, ExponentialDecayToTolerance) {
    const Ode_solution sol = rk45_solve(decay, {1.0}, 0.0, 5.0);
    EXPECT_NEAR(sol.states.back()[0], std::exp(-5.0), 1e-7);
}

TEST(Rk45, HarmonicOscillatorPeriodAndEnergy) {
    Ode_options options;
    options.rel_tol = 1e-10;
    options.abs_tol = 1e-12;
    const double two_pi = 2.0 * std::numbers::pi;
    const Ode_solution sol = rk45_solve(harmonic, {1.0, 0.0}, 0.0, two_pi, options);
    EXPECT_NEAR(sol.states.back()[0], 1.0, 1e-7);
    EXPECT_NEAR(sol.states.back()[1], 0.0, 1e-7);
    for (const Vector& y : sol.states) {
        EXPECT_NEAR(y[0] * y[0] + y[1] * y[1], 1.0, 1e-6);
    }
}

TEST(Rk45, AdaptiveUsesFewerStepsThanFixedForSameAccuracy) {
    Ode_options options;
    options.rel_tol = 1e-6;
    const Ode_solution sol = rk45_solve(decay, {1.0}, 0.0, 10.0, options);
    EXPECT_LT(sol.times.size(), 200u);  // fixed-step RK4 would need far more
}

TEST(Rk45, TimeGridIsMonotone) {
    const Ode_solution sol = rk45_solve(harmonic, {1.0, 0.0}, 0.0, 10.0);
    for (std::size_t i = 0; i + 1 < sol.times.size(); ++i) {
        EXPECT_LT(sol.times[i], sol.times[i + 1]);
    }
    EXPECT_DOUBLE_EQ(sol.times.back(), 10.0);
}

TEST(Rk45, RejectsReversedInterval) {
    EXPECT_THROW(rk45_solve(decay, {1.0}, 1.0, 0.5), std::invalid_argument);
}

TEST(Rk45, StepBudgetExhaustionThrows) {
    Ode_options options;
    options.max_steps = 3;
    EXPECT_THROW(rk45_solve(harmonic, {1.0, 0.0}, 0.0, 100.0, options), std::runtime_error);
}

TEST(OdeSolution, InterpolateBetweenSamplesAndClamp) {
    const Ode_solution sol = rk4_solve(decay, {1.0}, 0.0, 1.0, 100);
    EXPECT_NEAR(sol.interpolate(0.5, 0), std::exp(-0.5), 1e-4);
    EXPECT_DOUBLE_EQ(sol.interpolate(-1.0, 0), 1.0);
    EXPECT_NEAR(sol.interpolate(99.0, 0), std::exp(-1.0), 1e-8);
    EXPECT_THROW(sol.interpolate(0.5, 3), std::out_of_range);
}

TEST(OdeSolution, ComponentExtraction) {
    const Ode_solution sol = rk4_solve(harmonic, {1.0, 0.0}, 0.0, 1.0, 10);
    const Vector x = sol.component(0);
    EXPECT_EQ(x.size(), sol.times.size());
    EXPECT_DOUBLE_EQ(x.front(), 1.0);
    EXPECT_THROW(sol.component(2), std::out_of_range);
}

// Property sweep: RK45 local tolerance controls global error across several
// tolerance decades for the decay problem.
class Rk45Tolerance : public ::testing::TestWithParam<double> {};

TEST_P(Rk45Tolerance, GlobalErrorTracksTolerance) {
    Ode_options options;
    options.rel_tol = GetParam();
    options.abs_tol = GetParam() * 1e-2;
    const Ode_solution sol = rk45_solve(decay, {1.0}, 0.0, 3.0, options);
    const double err = std::abs(sol.states.back()[0] - std::exp(-3.0));
    EXPECT_LT(err, 200.0 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(ToleranceSweep, Rk45Tolerance,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10));

}  // namespace
}  // namespace cellsync
