#include "io/expression_data.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

TEST(ExpressionData, SeriesFromTableHappyPath) {
    Table t;
    t.add_column("time", {0.0, 15.0});
    t.add_column("value", {1.0, 2.0});
    t.add_column("sigma", {0.1, 0.2});
    const Measurement_series s = series_from_table(t, "gene");
    EXPECT_EQ(s.label, "gene");
    EXPECT_DOUBLE_EQ(s.sigmas[1], 0.2);
}

TEST(ExpressionData, SigmaColumnOptionalDefaultsToUnit) {
    Table t;
    t.add_column("time", {0.0, 15.0});
    t.add_column("value", {1.0, 2.0});
    const Measurement_series s = series_from_table(t, "gene");
    EXPECT_DOUBLE_EQ(s.sigmas[0], 1.0);
}

TEST(ExpressionData, MissingColumnsRejected) {
    Table t;
    t.add_column("time", {0.0, 15.0});
    EXPECT_THROW(series_from_table(t, "gene"), std::invalid_argument);
    Table t2;
    t2.add_column("value", {1.0, 2.0});
    EXPECT_THROW(series_from_table(t2, "gene"), std::invalid_argument);
}

TEST(ExpressionData, TableFromSeriesRoundTrip) {
    const Measurement_series s =
        Measurement_series::with_unit_sigma("g", {0.0, 10.0}, {3.0, 4.0});
    const Table t = table_from_series(s);
    const Measurement_series back = series_from_table(t, s.label);
    EXPECT_DOUBLE_EQ(back.values[1], 4.0);
    EXPECT_DOUBLE_EQ(back.times[0], 0.0);
}

TEST(ExpressionData, EmbeddedFtszDatasetParsesAndValidates) {
    const Measurement_series s = ftsz_population_dataset();
    EXPECT_NO_THROW(s.validate());
    EXPECT_EQ(s.size(), 11u);  // 0..150 min at 15-min spacing
    EXPECT_DOUBLE_EQ(s.times.front(), 0.0);
    EXPECT_DOUBLE_EQ(s.times.back(), 150.0);
    for (double v : s.values) EXPECT_GT(v, 0.0);
}

TEST(ExpressionData, PanelFromWideTable) {
    Table t;
    t.add_column("time", {0.0, 15.0, 30.0});
    t.add_column("dnaA", {1.0, 2.0, 3.0});
    t.add_column("dnaA_sigma", {0.1, 0.2, 0.3});
    t.add_column("ftsZ", {4.0, 5.0, 6.0});
    const auto panel = panel_from_table(t);
    ASSERT_EQ(panel.size(), 2u);
    EXPECT_EQ(panel[0].label, "dnaA");
    EXPECT_DOUBLE_EQ(panel[0].sigmas[1], 0.2);
    EXPECT_EQ(panel[1].label, "ftsZ");
    EXPECT_DOUBLE_EQ(panel[1].sigmas[1], 1.0);  // unit sigma when absent
    EXPECT_DOUBLE_EQ(panel[1].values[2], 6.0);
    EXPECT_DOUBLE_EQ(panel[0].times[2], 30.0);
}

TEST(ExpressionData, PanelValidationErrors) {
    Table no_time;
    no_time.add_column("geneA", {1.0, 2.0});
    EXPECT_THROW(panel_from_table(no_time), std::invalid_argument);

    Table only_time;
    only_time.add_column("time", {0.0, 15.0});
    EXPECT_THROW(panel_from_table(only_time), std::invalid_argument);

    Table stray_sigma;
    stray_sigma.add_column("time", {0.0, 15.0});
    stray_sigma.add_column("geneA", {1.0, 2.0});
    stray_sigma.add_column("geneB_sigma", {0.1, 0.2});
    EXPECT_THROW(panel_from_table(stray_sigma), std::invalid_argument);

    // 'time' is not a gene, so it cannot own a sigma column; this must be
    // rejected rather than silently dropped.
    Table time_sigma;
    time_sigma.add_column("time", {0.0, 15.0});
    time_sigma.add_column("time_sigma", {0.1, 0.2});
    time_sigma.add_column("geneA", {1.0, 2.0});
    EXPECT_THROW(panel_from_table(time_sigma), std::invalid_argument);
}

TEST(ExpressionData, FtszGenerationInfoMatchesDocumentedProvenance) {
    const Ftsz_generation_info info = ftsz_generation_info();
    EXPECT_DOUBLE_EQ(info.onset, 0.16);
    EXPECT_DOUBLE_EQ(info.peak_phi, 0.40);
    EXPECT_DOUBLE_EQ(info.noise_level, 0.08);
}

}  // namespace
}  // namespace cellsync
