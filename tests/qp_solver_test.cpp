#include "numerics/qp_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/rng.h"

namespace cellsync {
namespace {

Qp_problem unconstrained_bowl() {
    // min (x0-1)^2 + (x1-2)^2.
    Qp_problem p;
    p.hessian = Matrix{{2.0, 0.0}, {0.0, 2.0}};
    p.gradient = {-2.0, -4.0};
    p.eq_matrix = Matrix(0, 2);
    p.ineq_matrix = Matrix(0, 2);
    return p;
}

TEST(QpSolver, UnconstrainedMinimum) {
    const Qp_result r = solve_qp(unconstrained_bowl());
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-9);
    EXPECT_NEAR(r.x[1], 2.0, 1e-9);
    EXPECT_NEAR(r.objective, -5.0, 1e-9);  // 0.5 x'Hx + g'x at (1,2)
}

TEST(QpSolver, ActiveInequalityBindsAtOptimum) {
    // Same bowl, but require x1 <= 1, i.e. -x1 >= -1.
    Qp_problem p = unconstrained_bowl();
    p.ineq_matrix = Matrix{{0.0, -1.0}};
    p.ineq_rhs = {-1.0};
    const Qp_result r = solve_qp(p);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-9);
    EXPECT_NEAR(r.x[1], 1.0, 1e-9);
    ASSERT_EQ(r.active_set.size(), 1u);
    EXPECT_EQ(r.active_set[0], 0u);
    EXPECT_LT(kkt_violation(p, r), 1e-7);
}

TEST(QpSolver, InactiveInequalityIgnored) {
    Qp_problem p = unconstrained_bowl();
    p.ineq_matrix = Matrix{{0.0, -1.0}};
    p.ineq_rhs = {-100.0};  // x1 <= 100: never binds
    const Qp_result r = solve_qp(p);
    EXPECT_NEAR(r.x[1], 2.0, 1e-9);
    EXPECT_TRUE(r.active_set.empty());
}

TEST(QpSolver, EqualityConstraintRespected) {
    // min (x0-1)^2 + (x1-2)^2 s.t. x0 + x1 = 1 -> x = (0, 1).
    Qp_problem p = unconstrained_bowl();
    p.eq_matrix = Matrix{{1.0, 1.0}};
    p.eq_rhs = {1.0};
    const Qp_result r = solve_qp(p, {}, Vector{0.5, 0.5});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.0, 1e-9);
    EXPECT_NEAR(r.x[1], 1.0, 1e-9);
    EXPECT_LT(kkt_violation(p, r), 1e-8);
}

TEST(QpSolver, EqualityPlusInequality) {
    // min x0^2 + x1^2 s.t. x0 + x1 = 1, x0 >= 0.7.
    Qp_problem p;
    p.hessian = Matrix{{2.0, 0.0}, {0.0, 2.0}};
    p.gradient = {0.0, 0.0};
    p.eq_matrix = Matrix{{1.0, 1.0}};
    p.eq_rhs = {1.0};
    p.ineq_matrix = Matrix{{1.0, 0.0}};
    p.ineq_rhs = {0.7};
    const Qp_result r = solve_qp(p, {}, Vector{0.8, 0.2});
    EXPECT_NEAR(r.x[0], 0.7, 1e-9);
    EXPECT_NEAR(r.x[1], 0.3, 1e-9);
    EXPECT_LT(kkt_violation(p, r), 1e-8);
}

TEST(QpSolver, NonNegativityBox) {
    // min (x0+1)^2 + (x1-1)^2 s.t. x >= 0 -> x = (0, 1).
    Qp_problem p;
    p.hessian = Matrix{{2.0, 0.0}, {0.0, 2.0}};
    p.gradient = {2.0, -2.0};
    p.eq_matrix = Matrix(0, 2);
    p.ineq_matrix = Matrix::identity(2);
    p.ineq_rhs = {0.0, 0.0};
    const Qp_result r = solve_qp(p);
    EXPECT_NEAR(r.x[0], 0.0, 1e-9);
    EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(QpSolver, ProvidedInfeasibleStartRejected) {
    Qp_problem p = unconstrained_bowl();
    p.ineq_matrix = Matrix{{1.0, 0.0}};
    p.ineq_rhs = {0.0};
    EXPECT_THROW(solve_qp(p, {}, Vector{-1.0, 0.0}), std::invalid_argument);
}

TEST(QpSolver, ShapeValidation) {
    Qp_problem p = unconstrained_bowl();
    p.gradient = {1.0};
    EXPECT_THROW(solve_qp(p), std::invalid_argument);
    p = unconstrained_bowl();
    p.eq_matrix = Matrix{{1.0, 1.0}};
    p.eq_rhs = {};
    EXPECT_THROW(solve_qp(p), std::invalid_argument);
    p = unconstrained_bowl();
    p.hessian = Matrix(2, 3);
    EXPECT_THROW(solve_qp(p), std::invalid_argument);
}

TEST(QpSolver, DegeneratePositivityGridHandled) {
    // Many redundant copies of the same constraint x0 >= 0 must not break
    // the working-set logic.
    Qp_problem p;
    p.hessian = Matrix{{2.0, 0.0}, {0.0, 2.0}};
    p.gradient = {2.0, -2.0};
    p.eq_matrix = Matrix(0, 2);
    p.ineq_matrix = Matrix(6, 2);
    for (std::size_t r = 0; r < 6; ++r) p.ineq_matrix(r, 0) = 1.0;
    p.ineq_rhs.assign(6, 0.0);
    const Qp_result result = solve_qp(p);
    EXPECT_NEAR(result.x[0], 0.0, 1e-9);
    EXPECT_NEAR(result.x[1], 1.0, 1e-9);
}

TEST(QpDualSolver, MatchesPrimalOnBasicProblems) {
    // Same optimum from both methods on a mix of constraint structures.
    {
        const Qp_result r = solve_qp_dual(unconstrained_bowl());
        EXPECT_NEAR(r.x[0], 1.0, 1e-8);
        EXPECT_NEAR(r.x[1], 2.0, 1e-8);
    }
    {
        Qp_problem p = unconstrained_bowl();
        p.ineq_matrix = Matrix{{0.0, -1.0}};
        p.ineq_rhs = {-1.0};
        const Qp_result r = solve_qp_dual(p);
        EXPECT_NEAR(r.x[1], 1.0, 1e-8);
        EXPECT_LT(kkt_violation(p, r), 1e-6);
    }
    {
        Qp_problem p;
        p.hessian = Matrix{{2.0, 0.0}, {0.0, 2.0}};
        p.gradient = {2.0, -2.0};
        p.eq_matrix = Matrix(0, 2);
        p.ineq_matrix = Matrix::identity(2);
        p.ineq_rhs = {0.0, 0.0};
        const Qp_result r = solve_qp_dual(p);
        EXPECT_NEAR(r.x[0], 0.0, 1e-8);
        EXPECT_NEAR(r.x[1], 1.0, 1e-8);
    }
}

TEST(QpDualSolver, EqualityConstraintsViaNullSpace) {
    // min (x0-1)^2 + (x1-2)^2 s.t. x0 + x1 = 1 -> (0, 1).
    Qp_problem p = unconstrained_bowl();
    p.eq_matrix = Matrix{{1.0, 1.0}};
    p.eq_rhs = {1.0};
    const Qp_result r = solve_qp_dual(p);
    EXPECT_NEAR(r.x[0], 0.0, 1e-8);
    EXPECT_NEAR(r.x[1], 1.0, 1e-8);
    // With an inequality on top: x0 >= 0.7 -> (0.7, 0.3).
    p.hessian = Matrix{{2.0, 0.0}, {0.0, 2.0}};
    p.gradient = {0.0, 0.0};
    p.ineq_matrix = Matrix{{1.0, 0.0}};
    p.ineq_rhs = {0.7};
    const Qp_result rc = solve_qp_dual(p);
    EXPECT_NEAR(rc.x[0], 0.7, 1e-8);
    EXPECT_NEAR(rc.x[1], 0.3, 1e-8);
}

TEST(QpDualSolver, FullyDeterminedByEqualities) {
    Qp_problem p = unconstrained_bowl();
    p.eq_matrix = Matrix{{1.0, 0.0}, {0.0, 1.0}};
    p.eq_rhs = {5.0, 6.0};
    const Qp_result r = solve_qp_dual(p);
    EXPECT_NEAR(r.x[0], 5.0, 1e-8);
    EXPECT_NEAR(r.x[1], 6.0, 1e-8);
}

TEST(QpDualSolver, InconsistentEqualitiesThrow) {
    Qp_problem p = unconstrained_bowl();
    p.eq_matrix = Matrix{{1.0, 1.0}, {1.0, 1.0}};
    p.eq_rhs = {1.0, 2.0};
    EXPECT_THROW(solve_qp_dual(p), std::runtime_error);
}

TEST(QpDualSolver, InfeasibleInequalitiesThrow) {
    Qp_problem p = unconstrained_bowl();
    p.ineq_matrix = Matrix{{1.0, 0.0}, {-1.0, 0.0}};
    p.ineq_rhs = {1.0, 0.0};  // x0 >= 1 and x0 <= 0
    EXPECT_THROW(solve_qp_dual(p), std::runtime_error);
}

TEST(QpDualSolver, RedundantConstraintGridHandled) {
    // Many duplicated/near-parallel rows — the degenerate case that
    // motivates using the dual method in the deconvolver.
    Qp_problem p;
    p.hessian = Matrix{{2.0, 0.0}, {0.0, 2.0}};
    p.gradient = {2.0, -2.0};
    p.eq_matrix = Matrix(0, 2);
    p.ineq_matrix = Matrix(40, 2);
    for (std::size_t r = 0; r < 40; ++r) {
        p.ineq_matrix(r, 0) = 1.0;
        p.ineq_matrix(r, 1) = 1e-6 * static_cast<double>(r);  // nearly parallel
    }
    p.ineq_rhs.assign(40, 0.0);
    const Qp_result r = solve_qp_dual(p);
    EXPECT_NEAR(r.x[0], 0.0, 1e-6);
    EXPECT_NEAR(r.x[1], 1.0, 1e-6);
}

TEST(QpWarmStart, PrimalInitialWorkingSetMatchesColdSolve) {
    // The working-set warm start must land on the same optimum the cold
    // primal solve finds, in fewer or equal iterations.
    Qp_problem p = unconstrained_bowl();
    p.ineq_matrix = Matrix{{0.0, -1.0}, {1.0, 0.0}};
    p.ineq_rhs = {-1.0, 0.0};  // x1 <= 1 (binding), x0 >= 0 (slack)
    const Qp_result cold = solve_qp(p);
    ASSERT_EQ(cold.active_set, (std::vector<std::size_t>{0}));

    const Qp_result warm = solve_qp(p, {}, cold.x, cold.active_set);
    EXPECT_TRUE(warm.converged);
    EXPECT_NEAR(warm.x[0], cold.x[0], 1e-9);
    EXPECT_NEAR(warm.x[1], cold.x[1], 1e-9);
    EXPECT_LE(warm.iterations, cold.iterations);

    // A stale hint (the slack constraint) is shed, not fatal.
    const Qp_result stale = solve_qp(p, {}, cold.x, {0, 1});
    EXPECT_NEAR(stale.x[1], cold.x[1], 1e-9);
    EXPECT_LT(kkt_violation(p, stale), 1e-6);

    EXPECT_THROW(solve_qp(p, {}, cold.x, {5}), std::invalid_argument);
}

TEST(QpWarmStart, ReducedWarmAcceptsCorrectHintAndMatchesCold) {
    // min (y0+1)^2 + (y1-2)^2 s.t. y >= 0: optimum (0, 2), row 0 active.
    const Matrix hessian{{2.0, 0.0}, {0.0, 2.0}};
    const Vector gradient{2.0, -4.0};
    const Matrix ineq = Matrix::identity(2);
    const Vector rhs{0.0, 0.0};
    const Qp_result cold = solve_qp_dual_reduced(hessian, gradient, ineq, rhs);
    ASSERT_EQ(cold.active_set, (std::vector<std::size_t>{0}));

    const auto warm = try_solve_qp_reduced_warm(hessian, gradient, ineq, rhs, {0});
    ASSERT_TRUE(warm.has_value());
    EXPECT_TRUE(warm->converged);
    EXPECT_EQ(warm->iterations, 1u);
    EXPECT_NEAR(warm->x[0], cold.x[0], 1e-8);
    EXPECT_NEAR(warm->x[1], cold.x[1], 1e-8);
    EXPECT_EQ(warm->active_set, cold.active_set);
}

TEST(QpWarmStart, ReducedWarmRepairsSmallActiveSetDrift) {
    // Hinting the wrong row: the bounded repair drops it, picks up the
    // right one, and still reports the true optimum.
    const Matrix hessian{{2.0, 0.0}, {0.0, 2.0}};
    const Vector gradient{2.0, -4.0};
    const Matrix ineq = Matrix::identity(2);
    const Vector rhs{0.0, 0.0};
    const auto warm = try_solve_qp_reduced_warm(hessian, gradient, ineq, rhs, {1});
    ASSERT_TRUE(warm.has_value());
    EXPECT_NEAR(warm->x[0], 0.0, 1e-8);
    EXPECT_NEAR(warm->x[1], 2.0, 1e-8);
    EXPECT_EQ(warm->active_set, (std::vector<std::size_t>{0}));
}

TEST(QpWarmStart, ReducedWarmRejectsUnusableHints) {
    const Matrix hessian{{2.0, 0.0}, {0.0, 2.0}};
    const Vector gradient{2.0, -4.0};
    const Matrix ineq = Matrix::identity(2);
    const Vector rhs{0.0, 0.0};
    // Empty hint is a cold solve's job.
    EXPECT_FALSE(try_solve_qp_reduced_warm(hessian, gradient, ineq, rhs, {}).has_value());
    // Out-of-range hints are caller bugs.
    EXPECT_THROW(try_solve_qp_reduced_warm(hessian, gradient, ineq, rhs, {7}),
                 std::invalid_argument);
    // More hinted rows than dimensions cannot be an independent set.
    EXPECT_FALSE(
        try_solve_qp_reduced_warm(hessian, gradient, ineq, rhs, {0, 1, 0}).has_value());
}

TEST(QpWarmStart, PreparedWarmMatchesPreparedColdThroughEqualities) {
    // Full-space problem with an equality: warm through the shared prep
    // must agree with the cold prepared path.
    const Matrix hessian{{2.0, 0.0}, {0.0, 2.0}};
    const Vector gradient{0.0, 0.0};
    const Matrix eq{{1.0, 1.0}};
    const Vector eq_rhs{1.0};
    const Matrix ineq{{1.0, 0.0}};
    const Vector ineq_rhs{0.7};  // x0 >= 0.7 binds: optimum (0.7, 0.3)
    const Qp_constraint_prep prep(2, eq, eq_rhs, ineq, ineq_rhs);
    const Qp_result cold = solve_qp_dual_prepared(hessian, gradient, prep);
    ASSERT_EQ(cold.active_set.size(), 1u);

    const auto warm =
        try_solve_qp_prepared_warm(hessian, gradient, prep, cold.active_set);
    ASSERT_TRUE(warm.has_value());
    EXPECT_NEAR(warm->x[0], cold.x[0], 1e-8);
    EXPECT_NEAR(warm->x[1], cold.x[1], 1e-8);
    EXPECT_NEAR(warm->x[0], 0.7, 1e-6);
}

// Property suite: random strictly convex problems with random box
// constraints must satisfy the KKT conditions at the reported optimum.
class QpRandomProblems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QpRandomProblems, KktHoldsAtReportedOptimum) {
    Rng rng(GetParam());
    const std::size_t n = 3 + rng.index(6);

    // SPD Hessian H = A'A + n I.
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    Matrix h = gram(a);
    for (std::size_t i = 0; i < n; ++i) h(i, i) += static_cast<double>(n);

    Qp_problem p;
    p.hessian = h;
    p.gradient = rng.normal_vector(n);
    p.eq_matrix = Matrix(0, n);
    p.ineq_matrix = Matrix::identity(n);  // x >= 0
    p.ineq_rhs.assign(n, 0.0);

    const Qp_result r = solve_qp(p);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(kkt_violation(p, r), 1e-6);
    for (double xi : r.x) EXPECT_GE(xi, -1e-9);

    // The dual method must land on the same optimum.
    const Qp_result rd = solve_qp_dual(p);
    EXPECT_LT(kkt_violation(p, rd), 1e-6);
    EXPECT_NEAR(rd.objective, r.objective, 1e-6 * std::max(1.0, std::abs(r.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QpRandomProblems,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace cellsync
