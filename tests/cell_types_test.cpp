#include "biology/cell_types.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

TEST(CellTypes, LabelsAreStable) {
    EXPECT_EQ(to_string(Cell_type::swarmer), "SW");
    EXPECT_EQ(to_string(Cell_type::stalked_early), "STE");
    EXPECT_EQ(to_string(Cell_type::early_predivisional), "STEPD");
    EXPECT_EQ(to_string(Cell_type::late_predivisional), "STLPD");
}

TEST(CellTypes, PaperThresholdPresets) {
    EXPECT_DOUBLE_EQ(thresholds_low().ste_to_stepd, 0.60);
    EXPECT_DOUBLE_EQ(thresholds_low().stepd_to_stlpd, 0.85);
    EXPECT_DOUBLE_EQ(thresholds_mid().ste_to_stepd, 0.65);
    EXPECT_DOUBLE_EQ(thresholds_mid().stepd_to_stlpd, 0.875);
    EXPECT_DOUBLE_EQ(thresholds_high().ste_to_stepd, 0.70);
    EXPECT_DOUBLE_EQ(thresholds_high().stepd_to_stlpd, 0.90);
}

TEST(CellTypes, ThresholdValidation) {
    EXPECT_NO_THROW(thresholds_mid().validate());
    EXPECT_THROW((Cell_type_thresholds{0.9, 0.6}.validate()), std::invalid_argument);
    EXPECT_THROW((Cell_type_thresholds{0.0, 0.5}.validate()), std::invalid_argument);
    EXPECT_THROW((Cell_type_thresholds{0.5, 1.0}.validate()), std::invalid_argument);
}

TEST(CellTypes, ClassificationBoundaries) {
    const Cell_type_thresholds t = thresholds_mid();
    const double phi_sst = 0.15;
    EXPECT_EQ(classify_cell(0.00, phi_sst, t), Cell_type::swarmer);
    EXPECT_EQ(classify_cell(0.149, phi_sst, t), Cell_type::swarmer);
    EXPECT_EQ(classify_cell(0.15, phi_sst, t), Cell_type::stalked_early);
    EXPECT_EQ(classify_cell(0.649, phi_sst, t), Cell_type::stalked_early);
    EXPECT_EQ(classify_cell(0.65, phi_sst, t), Cell_type::early_predivisional);
    EXPECT_EQ(classify_cell(0.874, phi_sst, t), Cell_type::early_predivisional);
    EXPECT_EQ(classify_cell(0.875, phi_sst, t), Cell_type::late_predivisional);
    EXPECT_EQ(classify_cell(1.0, phi_sst, t), Cell_type::late_predivisional);
}

TEST(CellTypes, PerCellTransitionPhaseRespected) {
    // A cell with a late personal transition is still a swarmer at phi=0.3.
    EXPECT_EQ(classify_cell(0.3, 0.35, thresholds_mid()), Cell_type::swarmer);
    EXPECT_EQ(classify_cell(0.3, 0.25, thresholds_mid()), Cell_type::stalked_early);
}

TEST(CellTypes, PhiClampedToUnitInterval) {
    EXPECT_EQ(classify_cell(-0.2, 0.15, thresholds_mid()), Cell_type::swarmer);
    EXPECT_EQ(classify_cell(1.7, 0.15, thresholds_mid()), Cell_type::late_predivisional);
}

TEST(CellTypes, InvalidArgumentsThrow) {
    EXPECT_THROW(classify_cell(0.5, 0.0, thresholds_mid()), std::invalid_argument);
    EXPECT_THROW(classify_cell(0.5, 1.0, thresholds_mid()), std::invalid_argument);
    EXPECT_THROW(classify_cell(0.5, 0.15, Cell_type_thresholds{0.9, 0.5}),
                 std::invalid_argument);
}

// Property sweep: classification is monotone in phi — later phases never
// map to earlier types.
class ClassificationMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ClassificationMonotone, TypeIndexNonDecreasingInPhi) {
    const double phi_sst = GetParam();
    const Cell_type_thresholds t = thresholds_mid();
    int prev = -1;
    for (double phi = 0.0; phi <= 1.0; phi += 0.001) {
        const int type = static_cast<int>(classify_cell(phi, phi_sst, t));
        EXPECT_GE(type, prev) << "phi=" << phi;
        prev = type;
    }
    EXPECT_EQ(prev, 3);  // ends in STLPD
}

INSTANTIATE_TEST_SUITE_P(PhiSstSweep, ClassificationMonotone,
                         ::testing::Values(0.10, 0.15, 0.20, 0.30));

}  // namespace
}  // namespace cellsync
