#include "numerics/rng.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "numerics/statistics.h"

namespace cellsync {
namespace {

TEST(Rng, SameSeedSameStream) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.uniform() == b.uniform()) ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRangeRespected) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 3.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformDegenerateAndInvalid) {
    Rng rng(7);
    EXPECT_DOUBLE_EQ(rng.uniform(1.5, 1.5), 1.5);
    EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
    Rng rng(11);
    Vector draws(20000);
    for (double& d : draws) d = rng.normal(5.0, 2.0);
    EXPECT_NEAR(mean(draws), 5.0, 0.05);
    EXPECT_NEAR(stddev(draws), 2.0, 0.05);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
    Rng rng(3);
    EXPECT_DOUBLE_EQ(rng.normal(4.0, 0.0), 4.0);
}

TEST(Rng, NormalRejectsNegativeSigma) {
    Rng rng(3);
    EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, TruncatedNormalStaysInWindow) {
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.truncated_normal(0.15, 0.02, 0.1, 0.2);
        EXPECT_GE(x, 0.1);
        EXPECT_LE(x, 0.2);
    }
}

TEST(Rng, TruncatedNormalPathologicalWindowClamps) {
    Rng rng(13);
    // Window 50 sigma away: rejection fails, clamp to nearest edge.
    const double x = rng.truncated_normal(0.0, 0.01, 5.0, 6.0);
    EXPECT_DOUBLE_EQ(x, 5.0);
}

TEST(Rng, TruncatedNormalRejectsEmptyWindow) {
    Rng rng(13);
    EXPECT_THROW(rng.truncated_normal(0.0, 1.0, 2.0, 1.0), std::invalid_argument);
}

TEST(Rng, LognormalIsPositive) {
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, IndexWithinBounds) {
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
    EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, NormalVectorHasRequestedLength) {
    Rng rng(23);
    EXPECT_EQ(rng.normal_vector(5).size(), 5u);
    EXPECT_TRUE(rng.normal_vector(0).empty());
}

}  // namespace
}  // namespace cellsync
