#include "core/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace cellsync {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        Worker_pool pool(threads);
        EXPECT_EQ(pool.thread_count(), threads);
        std::vector<std::atomic<int>> hits(257);
        pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(WorkerPool, SlotWritesAreDeterministic) {
    // Tasks writing into their own slot produce the same result for any
    // thread count — the invariant the batch engine builds on.
    auto run = [](std::size_t threads) {
        Worker_pool pool(threads);
        std::vector<double> out(100);
        pool.parallel_for(out.size(), [&](std::size_t i) {
            out[i] = static_cast<double>(i * i) + 0.5;
        });
        return out;
    };
    const std::vector<double> serial = run(1);
    EXPECT_EQ(serial, run(4));
}

TEST(WorkerPool, ReusableAcrossBatches) {
    Worker_pool pool(4);
    for (int round = 0; round < 25; ++round) {
        std::atomic<std::size_t> total{0};
        pool.parallel_for(50, [&](std::size_t i) { total += i; });
        EXPECT_EQ(total.load(), 50u * 49u / 2u);
    }
}

TEST(WorkerPool, RapidBackToBackBatchesNeverLeakAcrossGenerations) {
    // Stress the stale-generation guard: tiny batches posted in quick
    // succession mean workers regularly wake up after their batch has
    // already drained; every task must still run against its own batch's
    // counter, exactly once.
    Worker_pool pool(4);
    for (int round = 0; round < 2000; ++round) {
        const std::size_t count = 1 + static_cast<std::size_t>(round % 4);
        std::atomic<std::size_t> ran{0};
        pool.parallel_for(count, [&](std::size_t) { ++ran; });
        ASSERT_EQ(ran.load(), count) << "round " << round;
    }
}

TEST(WorkerPool, FirstExceptionPropagatesAfterDrain) {
    Worker_pool pool(3);
    std::vector<std::atomic<int>> hits(40);
    EXPECT_THROW(pool.parallel_for(hits.size(),
                                   [&](std::size_t i) {
                                       ++hits[i];
                                       if (i == 7) throw std::runtime_error("task 7");
                                   }),
                 std::runtime_error);
    // Remaining tasks still ran.
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    // The pool survives a throwing batch.
    std::atomic<int> ok{0};
    pool.parallel_for(10, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(WorkerPool, EveryTaskThrowingStillDrainsAndRethrowsExactlyOne) {
    // The pathological end of the propagation contract: all 64 tasks
    // throw concurrently. Exactly one exception must surface (the first
    // recorded), every index must still have run (no hang, no abandoned
    // slots), and the pool must stay usable — this is what guarantees a
    // throwing per-gene task can always be turned into a labeled error by
    // the layer above instead of taking the process down.
    Worker_pool pool(4);
    std::vector<std::atomic<int>> hits(64);
    for (int round = 0; round < 5; ++round) {
        for (auto& h : hits) h = 0;
        EXPECT_THROW(pool.parallel_for(hits.size(),
                                       [&](std::size_t i) {
                                           ++hits[i];
                                           throw std::runtime_error(
                                               "task " + std::to_string(i));
                                       }),
                     std::runtime_error);
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
    std::atomic<int> ok{0};
    pool.parallel_for(16, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 16);
}

TEST(WorkerPool, NonStdExceptionPropagatesWithoutTerminate) {
    // Tasks may throw anything; the pool must carry it across threads via
    // exception_ptr rather than std::terminate-ing the worker.
    Worker_pool pool(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallel_for(8,
                                   [&](std::size_t i) {
                                       ++ran;
                                       if (i == 3) throw 42;  // NOLINT
                                   }),
                 int);
    EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPool, EmptyBatchIsNoOp) {
    Worker_pool pool(2);
    bool ran = false;
    pool.parallel_for(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(WorkerPool, DefaultUsesHardwareConcurrency) {
    Worker_pool pool;
    EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace cellsync
