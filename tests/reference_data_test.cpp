#include "io/reference_data.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

TEST(ReferenceData, FractionsSumToOne) {
    const Reference_census ref = judd_reference_census(linspace(75.0, 150.0, 6));
    for (std::size_t m = 0; m < ref.times.size(); ++m) {
        double total = 0.0;
        for (std::size_t k = 0; k < cell_type_count; ++k) total += ref.fractions(m, k);
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

TEST(ReferenceData, EarlyTimesAreSwarmerFree) {
    // By 75 minutes (phase ~0.5) the synchronized isolate has fully
    // transitioned: SW fraction near zero until division repopulates it.
    const Reference_census ref = judd_reference_census({75.0, 90.0});
    EXPECT_LT(ref.fractions(0, 0), 0.05);
}

TEST(ReferenceData, LatePredivisionalRisesTowardDivision) {
    const Reference_census ref = judd_reference_census({90.0, 120.0, 140.0}, {}, thresholds_mid(), 0.0);
    const std::size_t stlpd = static_cast<std::size_t>(Cell_type::late_predivisional);
    EXPECT_LT(ref.fractions(0, stlpd), ref.fractions(2, stlpd));
}

TEST(ReferenceData, ScatterPerturbsButPreservesNormalization) {
    const Vector times = linspace(75.0, 150.0, 6);
    const Reference_census clean = judd_reference_census(times, {}, thresholds_mid(), 0.0);
    const Reference_census noisy = judd_reference_census(times, {}, thresholds_mid(), 0.03);
    double max_diff = 0.0;
    for (std::size_t m = 0; m < times.size(); ++m) {
        double total = 0.0;
        for (std::size_t k = 0; k < cell_type_count; ++k) {
            total += noisy.fractions(m, k);
            max_diff = std::max(max_diff,
                                std::abs(noisy.fractions(m, k) - clean.fractions(m, k)));
        }
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
    EXPECT_GT(max_diff, 1e-4);  // scatter did something
    EXPECT_LT(max_diff, 0.2);   // but stayed bounded
}

TEST(ReferenceData, DeterministicOutput) {
    const Vector times{80.0, 100.0};
    const Reference_census a = judd_reference_census(times);
    const Reference_census b = judd_reference_census(times);
    for (std::size_t m = 0; m < times.size(); ++m) {
        for (std::size_t k = 0; k < cell_type_count; ++k) {
            EXPECT_DOUBLE_EQ(a.fractions(m, k), b.fractions(m, k));
        }
    }
}

TEST(ReferenceData, Validation) {
    EXPECT_THROW(judd_reference_census({}), std::invalid_argument);
    EXPECT_THROW(judd_reference_census({100.0, 50.0}), std::invalid_argument);
    EXPECT_THROW(judd_reference_census({50.0}, {}, thresholds_mid(), -1.0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
