#include "numerics/special.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(GaussianPdf, StandardPeakValue) {
    EXPECT_NEAR(gaussian_pdf(0.0), 1.0 / std::sqrt(2.0 * std::numbers::pi), 1e-15);
}

TEST(GaussianPdf, SymmetricAboutMean) {
    EXPECT_DOUBLE_EQ(gaussian_pdf(1.3), gaussian_pdf(-1.3));
    EXPECT_DOUBLE_EQ(gaussian_pdf(2.0, 1.0, 0.5), gaussian_pdf(0.0, 1.0, 0.5));
}

TEST(GaussianPdf, ScalesWithSigma) {
    EXPECT_NEAR(gaussian_pdf(0.0, 0.0, 2.0), gaussian_pdf(0.0) / 2.0, 1e-15);
}

TEST(GaussianPdf, RejectsBadSigma) {
    EXPECT_THROW(gaussian_pdf(0.0, 0.0, 0.0), std::invalid_argument);
    EXPECT_THROW(gaussian_pdf(0.0, 0.0, -1.0), std::invalid_argument);
}

TEST(GaussianCdf, KnownValues) {
    EXPECT_NEAR(gaussian_cdf(0.0), 0.5, 1e-15);
    EXPECT_NEAR(gaussian_cdf(1.959963984540054), 0.975, 1e-9);
    EXPECT_NEAR(gaussian_cdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(GaussianCdf, MonotoneIncreasing) {
    double prev = 0.0;
    for (double x = -5.0; x <= 5.0; x += 0.25) {
        const double c = gaussian_cdf(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(GaussianQuantile, InvertsCdf) {
    for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
        EXPECT_NEAR(gaussian_cdf(gaussian_quantile(p)), p, 1e-12) << "p=" << p;
    }
}

TEST(GaussianQuantile, RejectsBoundaryProbabilities) {
    EXPECT_THROW(gaussian_quantile(0.0), std::invalid_argument);
    EXPECT_THROW(gaussian_quantile(1.0), std::invalid_argument);
    EXPECT_THROW(gaussian_quantile(-0.5), std::invalid_argument);
}

TEST(TruncatedNormalMean, SymmetricWindowKeepsMean) {
    EXPECT_NEAR(truncated_normal_mean(2.0, 0.5, 1.0, 3.0), 2.0, 1e-12);
}

TEST(TruncatedNormalMean, RightTruncationPullsDown) {
    EXPECT_LT(truncated_normal_mean(0.0, 1.0, -5.0, 0.0), 0.0);
}

TEST(TruncatedNormalMean, EmptyMassFallsToNearestBoundary) {
    // Window far in the upper tail: mean collapses toward the window.
    const double m = truncated_normal_mean(0.0, 0.1, 5.0, 6.0);
    EXPECT_GE(m, 5.0);
    EXPECT_LE(m, 6.0);
}

TEST(TruncatedNormalMean, RejectsBadArguments) {
    EXPECT_THROW(truncated_normal_mean(0.0, 0.0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(truncated_normal_mean(0.0, 1.0, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
