#include "spline/bspline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/vector_ops.h"

namespace cellsync {
namespace {

TEST(BsplineBasis, PartitionOfUnity) {
    const Bspline_basis basis(9);
    for (double x = 0.0; x <= 1.0; x += 0.01) {
        double s = 0.0;
        for (std::size_t i = 0; i < basis.size(); ++i) s += basis.value(i, x);
        EXPECT_NEAR(s, 1.0, 1e-12) << "x=" << x;
    }
}

TEST(BsplineBasis, NonNegativeEverywhere) {
    const Bspline_basis basis(7);
    for (double x = 0.0; x <= 1.0; x += 0.01) {
        for (std::size_t i = 0; i < basis.size(); ++i) {
            EXPECT_GE(basis.value(i, x), -1e-15);
        }
    }
}

TEST(BsplineBasis, LocalSupport) {
    const Bspline_basis basis(10);
    // The first basis function must vanish on the right half of the domain.
    EXPECT_DOUBLE_EQ(basis.value(0, 0.8), 0.0);
    EXPECT_DOUBLE_EQ(basis.value(9, 0.1), 0.0);
    // But be positive near its own support.
    EXPECT_GT(basis.value(0, 0.0), 0.0);
    EXPECT_GT(basis.value(9, 1.0), 0.0);
}

TEST(BsplineBasis, ClampedEndValues) {
    // Clamped cubic B-splines: first function equals 1 at x=0, last at x=1.
    const Bspline_basis basis(8);
    EXPECT_NEAR(basis.value(0, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(basis.value(7, 1.0), 1.0, 1e-12);
}

TEST(BsplineBasis, DerivativesSumToZero) {
    // d/dx of a partition of unity is zero.
    const Bspline_basis basis(9);
    for (double x : {0.1, 0.37, 0.62, 0.9}) {
        double s = 0.0;
        for (std::size_t i = 0; i < basis.size(); ++i) s += basis.derivative(i, x);
        EXPECT_NEAR(s, 0.0, 1e-10);
    }
}

TEST(BsplineBasis, DerivativeMatchesFiniteDifference) {
    const Bspline_basis basis(8);
    const double h = 1e-7;
    for (std::size_t i : {0u, 3u, 7u}) {
        for (double x : {0.2, 0.5, 0.8}) {
            const double fd = (basis.value(i, x + h) - basis.value(i, x - h)) / (2.0 * h);
            EXPECT_NEAR(basis.derivative(i, x), fd, 1e-5) << "i=" << i << " x=" << x;
        }
    }
}

TEST(BsplineBasis, SecondDerivativeMatchesFiniteDifference) {
    const Bspline_basis basis(8);
    const double h = 1e-5;
    for (std::size_t i : {1u, 4u, 6u}) {
        for (double x : {0.25, 0.55, 0.85}) {
            const double fd =
                (basis.value(i, x + h) - 2.0 * basis.value(i, x) + basis.value(i, x - h)) /
                (h * h);
            EXPECT_NEAR(basis.second_derivative(i, x), fd, 1e-3) << "i=" << i << " x=" << x;
        }
    }
}

TEST(BsplineBasis, PenaltyMatrixSymmetricPsd) {
    const Bspline_basis basis(8);
    const Matrix omega = basis.penalty_matrix();
    for (std::size_t i = 0; i < omega.rows(); ++i) {
        for (std::size_t j = 0; j < omega.cols(); ++j) {
            EXPECT_NEAR(omega(i, j), omega(j, i), 1e-9);
        }
    }
    // Constant function has zero roughness.
    const Vector ones(basis.size(), 1.0);
    EXPECT_NEAR(dot(ones, omega * ones), 0.0, 1e-8);
}

TEST(BsplineBasis, MinimumCountEnforced) {
    EXPECT_THROW(Bspline_basis(3), std::invalid_argument);
    EXPECT_NO_THROW(Bspline_basis(4));
}

TEST(BsplineBasis, IndexOutOfRangeThrows) {
    const Bspline_basis basis(5);
    EXPECT_THROW(basis.value(5, 0.5), std::out_of_range);
    EXPECT_THROW(basis.derivative(6, 0.5), std::out_of_range);
    EXPECT_THROW(basis.second_derivative(7, 0.5), std::out_of_range);
}

TEST(BsplineBasis, KnotVectorClampedStructure) {
    const Bspline_basis basis(6);
    const Vector& t = basis.knot_vector();
    EXPECT_EQ(t.size(), 10u);  // count + degree + 1
    EXPECT_DOUBLE_EQ(t[0], 0.0);
    EXPECT_DOUBLE_EQ(t[3], 0.0);
    EXPECT_DOUBLE_EQ(t[6], 1.0);
    EXPECT_DOUBLE_EQ(t[9], 1.0);
}

}  // namespace
}  // namespace cellsync
