// Cross-solver consistency sweeps: the three linear solvers, the two QP
// methods, and the quadrature rules must agree with each other across
// random problem sizes — catching bugs that single-solver unit tests with
// hand-picked numbers cannot.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/linear_solve.h"
#include "numerics/qp_solver.h"
#include "numerics/quadrature.h"
#include "numerics/rng.h"

namespace cellsync {
namespace {

class SolverConsistency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverConsistency, LuQrCholeskyAgreeOnSpdSystems) {
    const std::size_t n = GetParam();
    Rng rng(1000 + n);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    Matrix spd = gram(a);
    for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
    const Vector b = rng.normal_vector(n);

    const Vector x_lu = lu_solve(spd, b);
    const Vector x_chol = cholesky_solve(spd, b);
    const Vector x_qr = qr_least_squares(spd, b);
    const Vector x_ldlt = ldlt_solve(spd, b);
    EXPECT_LT(norm_inf(x_lu - x_chol), 1e-8);
    EXPECT_LT(norm_inf(x_lu - x_qr), 1e-7);
    EXPECT_LT(norm_inf(x_lu - x_ldlt), 1e-8);
}

TEST_P(SolverConsistency, InverseConsistentWithDeterminant) {
    const std::size_t n = GetParam();
    Rng rng(2000 + n);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    const double det_a = determinant(a);
    if (std::abs(det_a) < 1e-6) return;  // skip near-singular draws
    const double det_inv = determinant(inverse(a));
    EXPECT_NEAR(det_a * det_inv, 1.0, 1e-6 * std::max(1.0, std::abs(det_a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverConsistency,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34));

class QpMethodAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QpMethodAgreement, PrimalAndDualReachTheSameOptimum) {
    Rng rng(GetParam());
    const std::size_t n = 4 + rng.index(6);
    Matrix a(n + 2, n);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    Qp_problem p;
    p.hessian = gram(a);
    for (std::size_t i = 0; i < n; ++i) p.hessian(i, i) += 2.0;
    p.gradient = rng.normal_vector(n);
    // One homogeneous equality row plus non-negativity.
    p.eq_matrix = Matrix(1, n, 1.0);
    p.eq_rhs = {0.0};
    p.ineq_matrix = Matrix::identity(n);
    p.ineq_rhs.assign(n, 0.0);

    const Qp_result primal = solve_qp(p);
    const Qp_result dual = solve_qp_dual(p);
    EXPECT_NEAR(primal.objective, dual.objective,
                1e-6 * std::max(1.0, std::abs(primal.objective)));
    EXPECT_LT(kkt_violation(p, primal), 1e-6);
    EXPECT_LT(kkt_violation(p, dual), 1e-6);
    EXPECT_LT(norm_inf(primal.x - dual.x), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QpMethodAgreement,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39, 40));

class QuadratureAgreement : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureAgreement, GaussAndSimpsonAgreeOnSmoothIntegrands) {
    const int k = GetParam();
    const auto f = [k](double x) { return std::exp(-k * x) * std::cos(k * x); };
    const double gauss = integrate_gauss(f, 0.0, 1.0, 48);
    const double simpson_value = integrate_simpson(f, 0.0, 1.0, 512);
    EXPECT_NEAR(gauss, simpson_value, 1e-10 * std::max(1.0, std::abs(gauss)));
}

INSTANTIATE_TEST_SUITE_P(Frequencies, QuadratureAgreement, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace cellsync
