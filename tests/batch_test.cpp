#include "core/batch.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

class BatchTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        Kernel_build_options options;
        options.n_cells = 20000;
        options.n_bins = 120;
        options.seed = 99;
        kernel_ = new Kernel_grid(build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                               linspace(0.0, 180.0, 13), options));
        deconvolver_ = new Deconvolver(std::make_shared<Natural_spline_basis>(12), *kernel_,
                                       Cell_cycle_config{});
    }
    static void TearDownTestSuite() {
        delete deconvolver_;
        delete kernel_;
        deconvolver_ = nullptr;
        kernel_ = nullptr;
    }
    static Kernel_grid* kernel_;
    static Deconvolver* deconvolver_;
};

Kernel_grid* BatchTest::kernel_ = nullptr;
Deconvolver* BatchTest::deconvolver_ = nullptr;

std::vector<Measurement_series> gene_panel(const Kernel_grid& kernel) {
    // Genes peaking at different cycle points, like the paper's regulator
    // panel.
    std::vector<Gene_profile> profiles = {
        pulse_profile(0.5, 5.0, 0.25, 0.15),
        pulse_profile(0.5, 5.0, 0.55, 0.15),
        pulse_profile(0.5, 5.0, 0.80, 0.15),
    };
    profiles[0].name = "early-gene";
    profiles[1].name = "mid-gene";
    profiles[2].name = "late-gene";
    std::vector<Measurement_series> panel;
    Rng rng(7);
    for (const Gene_profile& p : profiles) {
        panel.push_back(forward_measurements_noisy(
            kernel, p.f, {Noise_type::relative_gaussian, 0.05}, rng, p.name));
    }
    return panel;
}

TEST_F(BatchTest, AllGenesEstimated) {
    Batch_options options;
    options.lambda_grid = default_lambda_grid(9, 1e-6, 1e0);
    options.cv_folds = 4;
    const std::vector<Batch_entry> batch =
        deconvolve_batch(*deconvolver_, gene_panel(*kernel_), options);
    ASSERT_EQ(batch.size(), 3u);
    for (const Batch_entry& entry : batch) {
        EXPECT_TRUE(entry.estimate.has_value()) << entry.label << ": " << entry.error;
        EXPECT_TRUE(entry.error.empty());
        EXPECT_GT(entry.lambda, 0.0);
    }
}

TEST_F(BatchTest, PeakOrderingRecoversTranscriptionalProgram) {
    Batch_options options;
    options.lambda_grid = default_lambda_grid(9, 1e-6, 1e0);
    options.cv_folds = 4;
    const std::vector<Batch_entry> batch =
        deconvolve_batch(*deconvolver_, gene_panel(*kernel_), options);
    const std::vector<Peak_summary> peaks = peak_ordering(batch);
    ASSERT_EQ(peaks.size(), 3u);
    EXPECT_EQ(peaks[0].label, "early-gene");
    EXPECT_EQ(peaks[1].label, "mid-gene");
    EXPECT_EQ(peaks[2].label, "late-gene");
    EXPECT_NEAR(peaks[0].peak_phi, 0.25, 0.10);
    EXPECT_NEAR(peaks[1].peak_phi, 0.55, 0.10);
    EXPECT_NEAR(peaks[2].peak_phi, 0.80, 0.10);
}

TEST_F(BatchTest, FailedGeneReportedNotThrown) {
    std::vector<Measurement_series> panel = gene_panel(*kernel_);
    // Corrupt one gene: wrong time grid.
    panel[1].times[3] += 1.0;
    Batch_options options;
    options.select_lambda = false;
    options.deconvolution.lambda = 1e-3;
    const std::vector<Batch_entry> batch = deconvolve_batch(*deconvolver_, panel, options);
    EXPECT_TRUE(batch[0].estimate.has_value());
    EXPECT_FALSE(batch[1].estimate.has_value());
    EXPECT_FALSE(batch[1].error.empty());
    EXPECT_TRUE(batch[2].estimate.has_value());
    // peak_ordering silently skips the failure.
    EXPECT_EQ(peak_ordering(batch).size(), 2u);
}

TEST_F(BatchTest, FixedLambdaPath) {
    Batch_options options;
    options.select_lambda = false;
    options.deconvolution.lambda = 2.5e-4;
    const std::vector<Batch_entry> batch =
        deconvolve_batch(*deconvolver_, gene_panel(*kernel_), options);
    for (const Batch_entry& entry : batch) {
        EXPECT_DOUBLE_EQ(entry.lambda, 2.5e-4);
    }
}

TEST_F(BatchTest, EmptyPanelRejected) {
    EXPECT_THROW(deconvolve_batch(*deconvolver_, {}, Batch_options{}),
                 std::invalid_argument);
}

TEST(PeakOrdering, GridValidation) {
    EXPECT_THROW(peak_ordering({}, 2), std::invalid_argument);
    EXPECT_TRUE(peak_ordering({}, 11).empty());
}

}  // namespace
}  // namespace cellsync
