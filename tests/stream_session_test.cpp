#include "stream/stream_session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

struct Session_fixture {
    std::shared_ptr<const Kernel_grid> kernel;
    std::shared_ptr<const Design_artifacts> artifacts;
    std::vector<Measurement_series> panel;
};

const Session_fixture& fixture() {
    static const Session_fixture fixed = [] {
        Session_fixture out;
        const Vector times = linspace(0.0, 150.0, 11);
        Cell_cycle_config config;
        Kernel_build_options options;
        options.n_cells = 4000;
        options.n_bins = 60;
        options.seed = 13;
        out.kernel = std::make_shared<const Kernel_grid>(
            build_kernel(config, Smooth_volume_model{}, times, options));
        out.artifacts = make_design_artifacts(
            std::make_shared<Natural_spline_basis>(12), *out.kernel, config);
        Rng rng(31);
        const Noise_model noise{Noise_type::relative_gaussian, 0.08};
        out.panel = {
            forward_measurements_noisy(*out.kernel, ftsz_like_profile().f, noise, rng,
                                       "ftsZ"),
            forward_measurements_noisy(*out.kernel, pulse_profile(0.0, 6.0, 0.7, 0.15).f,
                                       noise, rng, "pulse"),
            forward_measurements_noisy(*out.kernel, sinusoid_profile(3.0, 2.0).f, noise,
                                       rng, "wave"),
        };
        return out;
    }();
    return fixed;
}

Stream_session_options session_options(std::size_t threads) {
    Stream_session_options options;
    options.threads = threads;
    options.stream.lambda = 3e-4;
    return options;
}

/// Feed the whole fixture panel through a session, timepoint by timepoint.
std::vector<std::vector<Stream_update>> feed_all(Stream_session& session) {
    std::vector<std::vector<Stream_update>> all;
    const std::vector<Measurement_series>& panel = fixture().panel;
    for (std::size_t m = 0; m < panel.front().size(); ++m) {
        std::vector<Stream_record> records;
        for (const Measurement_series& series : panel) {
            records.push_back({series.label, series.values[m], series.sigmas[m]});
        }
        all.push_back(session.append_timepoint(panel.front().times[m], records));
    }
    return all;
}

TEST(StreamSession, ResultsAreBitIdenticalAcrossThreadCounts) {
    Stream_session serial(fixture().artifacts, session_options(1));
    Stream_session parallel(fixture().artifacts, session_options(4));
    feed_all(serial);
    feed_all(parallel);
    EXPECT_GE(parallel.thread_count(), 1u);
    for (const Measurement_series& series : fixture().panel) {
        const Streaming_deconvolver* a = serial.find_stream(series.label);
        const Streaming_deconvolver* b = parallel.find_stream(series.label);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        const Vector& ca = a->current().coefficients();
        const Vector& cb = b->current().coefficients();
        ASSERT_EQ(ca.size(), cb.size());
        for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i], cb[i]) << series.label << " coefficient " << i;
        }
    }
}

TEST(StreamSession, UpdatesFollowRecordOrderAndAutoOpenStreams) {
    Stream_session session(fixture().artifacts, session_options(2));
    const std::vector<std::vector<Stream_update>> all = feed_all(session);
    ASSERT_EQ(session.stream_count(), 3u);
    const std::vector<std::string> labels = session.labels();
    ASSERT_EQ(labels.size(), 3u);
    EXPECT_EQ(labels[0], "ftsZ");
    EXPECT_EQ(labels[1], "pulse");
    EXPECT_EQ(labels[2], "wave");
    for (std::size_t m = 0; m < all.size(); ++m) {
        ASSERT_EQ(all[m].size(), 3u);
        for (std::size_t g = 0; g < 3; ++g) {
            EXPECT_EQ(all[m][g].label, fixture().panel[g].label);
            EXPECT_TRUE(all[m][g].error.empty()) << all[m][g].error;
            EXPECT_EQ(all[m][g].observed, m + 1);
            ASSERT_TRUE(all[m][g].estimate.has_value());
        }
    }
}

// The archcheck determinism pass bans hashed containers in src/ so that
// no iteration order can reach reporting order; this test holds the
// positive half of that contract: every order a session exposes is the
// registration order, even when labels are opened in an order that a
// sorted or hashed container would visit differently.
TEST(StreamSession, ReportingOrderIsRegistrationOrderNotContainerOrder) {
    Stream_session session(fixture().artifacts, session_options(2));
    // Deliberately anti-alphabetical registration (a sorted map would
    // visit zeta last-first; a hashed one, who knows).
    const std::vector<std::string> registered = {"zeta", "mid", "alpha"};
    for (const std::string& label : registered) session.open_stream(label);
    EXPECT_EQ(session.labels(), registered);

    // Appending records for a mix of old and brand-new labels keeps the
    // registry in registration order, appending only the new ones.
    const Measurement_series& first = fixture().panel.front();
    std::vector<Stream_record> records;
    for (const char* label : {"beta", "alpha", "zeta"}) {
        records.push_back({label, first.values[0], first.sigmas[0]});
    }
    const std::vector<Stream_update> updates =
        session.append_timepoint(first.times[0], records);
    ASSERT_EQ(updates.size(), 3u);
    EXPECT_EQ(updates[0].label, "beta");   // slot order = record order
    EXPECT_EQ(updates[1].label, "alpha");
    EXPECT_EQ(updates[2].label, "zeta");
    const std::vector<std::string> expected = {"zeta", "mid", "alpha", "beta"};
    EXPECT_EQ(session.labels(), expected);
    EXPECT_EQ(session.stream_count(), 4u);

    // The aggregate walks (converged_count / total_stats) traverse the
    // same registration order; their results must match a by-label sum
    // regardless of traversal, proving iteration order is irrelevant to
    // what the session reports.
    Stream_solve_stats by_label;
    std::size_t converged = 0;
    for (const std::string& label : expected) {
        const Streaming_deconvolver* stream = session.find_stream(label);
        ASSERT_NE(stream, nullptr) << label;
        by_label.updates += stream->stats().updates;
        by_label.warm_accepts += stream->stats().warm_accepts;
        by_label.cold_solves += stream->stats().cold_solves;
        if (stream->converged()) ++converged;
    }
    const Stream_solve_stats total = session.total_stats();
    EXPECT_EQ(total.updates, by_label.updates);
    EXPECT_EQ(total.warm_accepts, by_label.warm_accepts);
    EXPECT_EQ(total.cold_solves, by_label.cold_solves);
    EXPECT_EQ(session.converged_count(), converged);
}

TEST(StreamSession, ThrowingUpdateSurfacesAsLabeledErrorNotHangOrAbort) {
    Stream_session session(fixture().artifacts, session_options(4));
    const Measurement_series& first = fixture().panel.front();

    std::vector<Stream_record> records;
    records.push_back({"good", first.values[0], first.sigmas[0]});
    records.push_back({"bad", std::nan(""), 1.0});  // non-finite value -> task throws
    const std::vector<Stream_update> updates =
        session.append_timepoint(first.times[0], records);
    ASSERT_EQ(updates.size(), 2u);

    EXPECT_TRUE(updates[0].error.empty()) << updates[0].error;
    ASSERT_TRUE(updates[0].estimate.has_value());

    // The failure is labeled with the gene and exception type (the batch
    // engine's error format), the estimate slot stays empty, and the
    // failed stream did not advance.
    EXPECT_FALSE(updates[1].estimate.has_value());
    EXPECT_NE(updates[1].error.find("bad"), std::string::npos) << updates[1].error;
    EXPECT_NE(updates[1].error.find("invalid_argument"), std::string::npos)
        << updates[1].error;
    EXPECT_EQ(updates[1].observed, 0u);

    // The failed gene can retry the same timepoint with a sane value.
    const std::vector<Stream_update> retry =
        session.append_timepoint(first.times[0], {{"bad", first.values[0], 1.0}});
    EXPECT_TRUE(retry[0].error.empty()) << retry[0].error;
    EXPECT_EQ(retry[0].observed, 1u);
}

TEST(StreamSession, StructuralMisuseThrows) {
    Stream_session session(fixture().artifacts, session_options(1));
    EXPECT_THROW(session.append_timepoint(0.0, {}), std::invalid_argument);
    EXPECT_THROW(session.append_timepoint(0.0, {{"", 1.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(
        session.append_timepoint(0.0, {{"dup", 1.0, 1.0}, {"dup", 2.0, 1.0}}),
        std::invalid_argument);
    EXPECT_THROW(session.open_stream(""), std::invalid_argument);
    EXPECT_THROW(Stream_session(nullptr, session_options(1)), std::invalid_argument);
}

TEST(StreamSession, ConvergenceRollupCountsStreams) {
    Stream_session_options options = session_options(2);
    options.stream.convergence.coefficient_tol = 5e-2;
    options.stream.convergence.score_tol = 5e-2;
    options.stream.convergence.min_observed = 3;
    Stream_session session(fixture().artifacts, options);
    EXPECT_FALSE(session.all_converged());  // no streams yet

    // Noiseless series stabilize quickly.
    const std::vector<Measurement_series> clean = {
        forward_measurements(*fixture().kernel, sinusoid_profile(3.0, 2.0).f, "a"),
        forward_measurements(*fixture().kernel, sinusoid_profile(4.0, 1.0, 1.0, 0.5).f,
                             "b"),
    };
    for (std::size_t m = 0; m < clean.front().size(); ++m) {
        std::vector<Stream_record> records;
        for (const Measurement_series& series : clean) {
            records.push_back({series.label, series.values[m], series.sigmas[m]});
        }
        session.append_timepoint(clean.front().times[m], records);
        if (session.all_converged()) break;  // early stop, like a live monitor
    }
    EXPECT_TRUE(session.all_converged());
    EXPECT_EQ(session.converged_count(), 2u);
    const Stream_solve_stats stats = session.total_stats();
    EXPECT_GT(stats.updates, 0u);
    EXPECT_EQ(stats.updates, stats.warm_accepts + stats.cold_solves);
}

TEST(StreamSession, KernelCacheConstructorResolvesThroughCache) {
    const Vector times = linspace(0.0, 150.0, 11);
    Cell_cycle_config config;
    Stream_session_options options = session_options(1);
    options.basis_size = 12;
    options.kernel.n_cells = 4000;
    options.kernel.n_bins = 60;
    options.kernel.seed = 13;  // same tuple as the fixture kernel
    Kernel_cache cache;
    Stream_session session(config, Smooth_volume_model{}, times, cache, options);
    EXPECT_EQ(cache.stats().builds, 1u);
    ASSERT_NE(session.kernel(), nullptr);

    // A second session over the same cache reuses the simulation.
    Stream_session again(config, Smooth_volume_model{}, times, cache, options);
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().memory_hits, 1u);
    EXPECT_EQ(session.kernel().get(), again.kernel().get());

    // And the cache-built session reproduces the fixture's results
    // bit-for-bit (the kernel tuple is identical).
    feed_all(session);
    Stream_session adopted(fixture().artifacts, session_options(1));
    feed_all(adopted);
    for (const Measurement_series& series : fixture().panel) {
        const Vector& ca = session.find_stream(series.label)->current().coefficients();
        const Vector& cb = adopted.find_stream(series.label)->current().coefficients();
        ASSERT_EQ(ca.size(), cb.size());
        for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i], cb[i]) << series.label << " coefficient " << i;
        }
    }
}

}  // namespace
}  // namespace cellsync
