#include "io/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

TEST(Table, EmptyTable) {
    const Table t;
    EXPECT_EQ(t.column_count(), 0u);
    EXPECT_EQ(t.row_count(), 0u);
    EXPECT_FALSE(t.has_column("x"));
}

TEST(Table, AddAndRetrieveColumns) {
    Table t;
    t.add_column("time", {0.0, 1.0, 2.0});
    t.add_column("value", {5.0, 6.0, 7.0});
    EXPECT_EQ(t.column_count(), 2u);
    EXPECT_EQ(t.row_count(), 3u);
    EXPECT_TRUE(t.has_column("time"));
    EXPECT_DOUBLE_EQ(t.column("value")[1], 6.0);
    EXPECT_DOUBLE_EQ(t.column(0)[2], 2.0);
    EXPECT_EQ(t.names()[1], "value");
}

TEST(Table, DuplicateNameRejected) {
    Table t;
    t.add_column("x", {1.0});
    EXPECT_THROW(t.add_column("x", {2.0}), std::invalid_argument);
}

TEST(Table, LengthMismatchRejected) {
    Table t;
    t.add_column("x", {1.0, 2.0});
    EXPECT_THROW(t.add_column("y", {1.0}), std::invalid_argument);
}

TEST(Table, MissingColumnThrows) {
    Table t;
    t.add_column("x", {1.0});
    EXPECT_THROW(t.column("nope"), std::invalid_argument);
    EXPECT_THROW(t.column(5), std::out_of_range);
}

}  // namespace
}  // namespace cellsync
