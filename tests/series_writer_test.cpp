#include "io/series_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "io/csv.h"

namespace cellsync {
namespace {

TEST(SeriesWriter, AccumulatesColumns) {
    Series_writer w("minutes", {0.0, 15.0, 30.0});
    w.add("x1", {1.0, 2.0, 3.0}).add("x2", {4.0, 5.0, 6.0});
    EXPECT_EQ(w.table().column_count(), 3u);
    EXPECT_DOUBLE_EQ(w.table().column("x2")[2], 6.0);
}

TEST(SeriesWriter, RejectsLengthMismatchAndDuplicates) {
    Series_writer w("minutes", {0.0, 15.0});
    EXPECT_THROW(w.add("x", {1.0}), std::invalid_argument);
    w.add("x", {1.0, 2.0});
    EXPECT_THROW(w.add("x", {3.0, 4.0}), std::invalid_argument);
}

TEST(SeriesWriter, CsvStringIsParseable) {
    Series_writer w("phi", {0.0, 0.5, 1.0});
    w.add("f", {1.0, 2.0, 1.0});
    const Table back = read_csv_string(w.to_csv_string());
    EXPECT_EQ(back.row_count(), 3u);
    EXPECT_DOUBLE_EQ(back.column("f")[1], 2.0);
}

TEST(SeriesWriter, WritesToFile) {
    Series_writer w("t", {1.0, 2.0});
    w.add("y", {10.0, 20.0});
    const std::string path = ::testing::TempDir() + "/cellsync_series_test.csv";
    w.write(path);
    const Table back = read_csv_file(path);
    EXPECT_DOUBLE_EQ(back.column("y")[0], 10.0);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace cellsync
