#include "core/batch_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

class BatchEngineTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        Kernel_build_options options;
        options.n_cells = 20000;
        options.n_bins = 120;
        options.seed = 99;
        kernel_ = new Kernel_grid(build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                               linspace(0.0, 180.0, 13), options));
        artifacts_ = new std::shared_ptr<const Design_artifacts>(make_design_artifacts(
            std::make_shared<Natural_spline_basis>(12), *kernel_, Cell_cycle_config{}));
    }
    static void TearDownTestSuite() {
        delete artifacts_;
        delete kernel_;
        artifacts_ = nullptr;
        kernel_ = nullptr;
    }

    static std::vector<Measurement_series> make_panel(std::size_t genes) {
        Rng rng(2025);
        std::vector<Measurement_series> panel;
        for (std::size_t g = 0; g < genes; ++g) {
            const Gene_profile truth = sinusoid_profile(
                3.0, 2.0, 1.0, static_cast<double>(g) / static_cast<double>(genes));
            panel.push_back(forward_measurements_noisy(
                *kernel_, truth.f, {Noise_type::relative_gaussian, 0.05}, rng,
                "gene" + std::to_string(g)));
        }
        return panel;
    }

    static Batch_options fast_options() {
        Batch_options options;
        options.lambda_grid = default_lambda_grid(5, 1e-5, 1e-1);
        options.cv_folds = 4;
        return options;
    }

    static Kernel_grid* kernel_;
    static std::shared_ptr<const Design_artifacts>* artifacts_;
};

Kernel_grid* BatchEngineTest::kernel_ = nullptr;
std::shared_ptr<const Design_artifacts>* BatchEngineTest::artifacts_ = nullptr;

TEST_F(BatchEngineTest, ParallelRunReproducesSerialRunBitForBit) {
    const std::vector<Measurement_series> panel = make_panel(6);
    const Batch_options options = fast_options();

    Batch_engine_options serial_opts;
    serial_opts.threads = 1;
    const Batch_engine serial(*artifacts_, serial_opts);
    Batch_engine_options parallel_opts;
    parallel_opts.threads = 4;
    const Batch_engine parallel(*artifacts_, parallel_opts);
    EXPECT_EQ(parallel.thread_count(), 4u);

    const std::vector<Batch_entry> a = serial.run(panel, options);
    const std::vector<Batch_entry> b = parallel.run(panel, options);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t g = 0; g < a.size(); ++g) {
        EXPECT_EQ(a[g].label, b[g].label);
        ASSERT_TRUE(a[g].estimate.has_value()) << a[g].error;
        ASSERT_TRUE(b[g].estimate.has_value()) << b[g].error;
        EXPECT_EQ(a[g].lambda, b[g].lambda);
        // Bit-for-bit: coefficient vectors compare equal as doubles.
        EXPECT_EQ(a[g].estimate->coefficients(), b[g].estimate->coefficients())
            << "gene " << g;
    }
}

TEST_F(BatchEngineTest, EngineMatchesSerialDeconvolveBatch) {
    const std::vector<Measurement_series> panel = make_panel(4);
    const Batch_options options = fast_options();

    const Deconvolver deconvolver(*artifacts_);
    const std::vector<Batch_entry> reference = deconvolve_batch(deconvolver, panel, options);

    Batch_engine_options engine_opts;
    engine_opts.threads = 3;
    const Batch_engine engine(*artifacts_, engine_opts);
    const std::vector<Batch_entry> parallel = engine.run(panel, options);

    ASSERT_EQ(reference.size(), parallel.size());
    for (std::size_t g = 0; g < reference.size(); ++g) {
        ASSERT_TRUE(reference[g].estimate.has_value());
        ASSERT_TRUE(parallel[g].estimate.has_value());
        EXPECT_EQ(reference[g].estimate->coefficients(),
                  parallel[g].estimate->coefficients());
    }
}

TEST_F(BatchEngineTest, MalformedSeriesFailsAloneWithLabeledError) {
    std::vector<Measurement_series> panel = make_panel(5);
    // Corrupt one series: wrong sampling grid (times do not match the
    // kernel), which throws std::invalid_argument inside the estimate.
    panel[2].times[3] += 7.5;
    panel[2].label = "broken-gene";

    Batch_engine_options engine_opts;
    engine_opts.threads = 4;
    const Batch_engine engine(*artifacts_, engine_opts);
    const std::vector<Batch_entry> batch = engine.run(panel, fast_options());

    ASSERT_EQ(batch.size(), 5u);
    for (std::size_t g = 0; g < batch.size(); ++g) {
        if (g == 2) continue;
        EXPECT_TRUE(batch[g].estimate.has_value()) << batch[g].error;
        EXPECT_TRUE(batch[g].error.empty());
    }
    const Batch_entry& failed = batch[2];
    EXPECT_FALSE(failed.estimate.has_value());
    // The error channel names the gene and the exception type.
    EXPECT_NE(failed.error.find("broken-gene"), std::string::npos) << failed.error;
    EXPECT_NE(failed.error.find("invalid_argument"), std::string::npos) << failed.error;
}

TEST_F(BatchEngineTest, CrossValidateMatchesSerialSelector) {
    const std::vector<Measurement_series> panel = make_panel(1);
    const Vector grid = default_lambda_grid(7, 1e-6, 1e0);

    const Deconvolver deconvolver(*artifacts_);
    const Lambda_selection serial =
        select_lambda_kfold(deconvolver, panel[0], Deconvolution_options{}, grid, 5);

    Batch_engine_options engine_opts;
    engine_opts.threads = 4;
    const Batch_engine engine(*artifacts_, engine_opts);
    const Lambda_selection parallel =
        engine.cross_validate(panel[0], Deconvolution_options{}, grid, 5);

    EXPECT_EQ(serial.best_lambda, parallel.best_lambda);
    ASSERT_EQ(serial.scores.size(), parallel.scores.size());
    for (std::size_t i = 0; i < serial.scores.size(); ++i) {
        EXPECT_EQ(serial.scores[i], parallel.scores[i]);
    }
}

TEST_F(BatchEngineTest, BootstrapIsThreadCountInvariant) {
    const std::vector<Measurement_series> panel = make_panel(1);
    Deconvolution_options options;
    options.lambda = 1e-3;
    Bootstrap_options boot;
    boot.replicates = 24;
    const Vector grid = linspace(0.1, 0.9, 9);

    Batch_engine_options serial_opts;
    serial_opts.threads = 1;
    Batch_engine_options parallel_opts;
    parallel_opts.threads = 4;
    const Confidence_band a =
        Batch_engine(*artifacts_, serial_opts).bootstrap(panel[0], options, grid, boot);
    const Confidence_band b =
        Batch_engine(*artifacts_, parallel_opts).bootstrap(panel[0], options, grid, boot);

    EXPECT_EQ(a.replicates_used, b.replicates_used);
    EXPECT_EQ(a.lower, b.lower);
    EXPECT_EQ(a.median, b.median);
    EXPECT_EQ(a.upper, b.upper);
}

TEST_F(BatchEngineTest, SharedArtifactsAreReusedAcrossConsumers) {
    // The engine, its deconvolver, and an external Deconvolver bound to
    // the same artifacts all see one identical design.
    const Batch_engine engine(*artifacts_);
    const Deconvolver external(*artifacts_);
    EXPECT_EQ(&engine.artifacts(), artifacts_->get());
    EXPECT_EQ(external.artifacts().get(), artifacts_->get());
    EXPECT_EQ(&engine.deconvolver().kernel_matrix(), &external.kernel_matrix());
}

TEST_F(BatchEngineTest, RunsUnderTheEngineConstraintGeometry) {
    // An engine built for a non-default geometry applies it even when the
    // per-call options carry defaults: no silent per-solve rebuild, no
    // two-option-structs-out-of-sync trap.
    const std::vector<Measurement_series> panel = make_panel(1);
    Batch_engine_options engine_opts;
    engine_opts.constraints.rate_continuity = false;
    engine_opts.constraints.positivity_points = 61;
    const Batch_engine engine(std::make_shared<Natural_spline_basis>(12), *kernel_,
                              Cell_cycle_config{}, engine_opts);

    Batch_options options = fast_options();  // default constraint options
    options.select_lambda = false;
    options.deconvolution.lambda = 1e-3;
    const std::vector<Batch_entry> batch = engine.run(panel, options);
    ASSERT_TRUE(batch[0].estimate.has_value()) << batch[0].error;

    Deconvolution_options reference_options;
    reference_options.lambda = 1e-3;
    reference_options.constraints = engine_opts.constraints;
    const Single_cell_estimate reference =
        engine.deconvolver().estimate(panel[0], reference_options);
    EXPECT_EQ(batch[0].estimate->coefficients(), reference.coefficients());
}

TEST_F(BatchEngineTest, EmptyPanelThrows) {
    const Batch_engine engine(*artifacts_);
    EXPECT_THROW(engine.run({}, fast_options()), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
