#include "numerics/qp_backend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/rng.h"

namespace cellsync {
namespace {

// Random strictly convex positivity-only problem (x >= 0, no equalities):
// the structure both backends support.
Qp_problem positivity_problem(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    Matrix a(n + 3, n);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    Qp_problem p;
    p.hessian = gram(a);
    for (std::size_t i = 0; i < n; ++i) p.hessian(i, i) += 0.5;
    p.gradient = rng.normal_vector(n);
    p.eq_matrix = Matrix(0, n);
    p.ineq_matrix = Matrix::identity(n);
    p.ineq_rhs.assign(n, 0.0);
    return p;
}

TEST(QpBackend, BackendsAgreeOnPositivityOnlyProblems) {
    const Active_set_qp_solver active_set;
    const Nnls_qp_solver nnls;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const Qp_problem p = positivity_problem(4 + seed % 9, seed);
        ASSERT_TRUE(active_set.supports(p));
        ASSERT_TRUE(nnls.supports(p));
        const Qp_result a = active_set.solve(p);
        const Qp_result b = nnls.solve(p);
        ASSERT_TRUE(a.converged);
        ASSERT_TRUE(b.converged);
        ASSERT_EQ(a.x.size(), b.x.size());
        for (std::size_t i = 0; i < a.x.size(); ++i) {
            EXPECT_NEAR(a.x[i], b.x[i], 1e-8) << "seed " << seed << " coord " << i;
            EXPECT_GE(b.x[i], 0.0);
        }
        EXPECT_NEAR(a.objective, b.objective, 1e-8);
        EXPECT_LT(kkt_violation(p, b), 1e-7);
    }
}

TEST(QpBackend, NnlsRejectsEqualityConstrainedProblems) {
    Qp_problem p = positivity_problem(6, 3);
    p.eq_matrix = Matrix(1, 6, 1.0);
    p.eq_rhs = {0.0};
    const Nnls_qp_solver nnls;
    EXPECT_FALSE(nnls.supports(p));
    EXPECT_THROW(nnls.solve(p), std::invalid_argument);
}

TEST(QpBackend, NnlsRejectsNonIdentityInequalities) {
    Qp_problem p = positivity_problem(6, 4);
    p.ineq_matrix(0, 1) = 0.5;  // no longer the identity
    EXPECT_FALSE(Nnls_qp_solver{}.supports(p));
    p = positivity_problem(6, 4);
    p.ineq_rhs[2] = 1.0;  // nonzero rhs
    EXPECT_FALSE(Nnls_qp_solver{}.supports(p));
}

TEST(QpBackend, SupportsRejectsMalformedRhsWithoutReadingIt) {
    // A malformed problem (identity inequality block but missing rhs)
    // must be rejected by supports() — reaching solve_qp's validation via
    // the dispatcher, never read out of bounds.
    Qp_problem p = positivity_problem(6, 8);
    p.ineq_rhs.clear();
    EXPECT_FALSE(Nnls_qp_solver{}.supports(p));
    p.ineq_rhs.assign(3, 0.0);  // too short
    EXPECT_FALSE(Nnls_qp_solver{}.supports(p));
    EXPECT_THROW(make_qp_solver(Qp_backend::automatic)->solve(p), std::invalid_argument);
}

TEST(QpBackend, ActiveSetSupportsEverything) {
    Qp_problem p = positivity_problem(5, 7);
    p.eq_matrix = Matrix(1, 5, 1.0);
    p.eq_rhs = {1.0};
    EXPECT_TRUE(Active_set_qp_solver{}.supports(p));
    const Qp_result r = Active_set_qp_solver{}.solve(p);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(sum(r.x), 1.0, 1e-7);
}

TEST(QpBackend, AutomaticDispatchesPerProblemStructure) {
    const auto automatic = make_qp_solver(Qp_backend::automatic);
    EXPECT_EQ(automatic->name(), "automatic");

    // Positivity-only problem: must match the NNLS fast path's answer.
    const Qp_problem fast = positivity_problem(7, 11);
    const Qp_result via_auto = automatic->solve(fast);
    const Qp_result via_nnls = make_qp_solver(Qp_backend::nnls)->solve(fast);
    for (std::size_t i = 0; i < via_auto.x.size(); ++i) {
        EXPECT_DOUBLE_EQ(via_auto.x[i], via_nnls.x[i]);
    }

    // General problem: falls back to the active-set method.
    Qp_problem general = positivity_problem(5, 13);
    general.eq_matrix = Matrix(1, 5, 1.0);
    general.eq_rhs = {2.0};
    const Qp_result r = automatic->solve(general);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(sum(r.x), 2.0, 1e-7);
}

TEST(QpBackend, FactoryAndNames) {
    EXPECT_EQ(make_qp_solver(Qp_backend::active_set)->name(), "active_set");
    EXPECT_EQ(make_qp_solver(Qp_backend::nnls)->name(), "nnls");
    EXPECT_STREQ(to_string(Qp_backend::automatic), "automatic");
    EXPECT_STREQ(to_string(Qp_backend::nnls), "nnls");
    EXPECT_EQ(qp_backend_from_string("active-set"), Qp_backend::active_set);
    EXPECT_EQ(qp_backend_from_string("auto"), Qp_backend::automatic);
    EXPECT_THROW(qp_backend_from_string("simplex"), std::invalid_argument);
}

TEST(QpBackend, PreparedSolveMatchesColdDualSolve) {
    // The shared-constraint preparation must not change results at all.
    Rng rng(21);
    const std::size_t n = 10;
    Qp_problem p = positivity_problem(n, 17);
    p.eq_matrix = Matrix(2, n);
    for (std::size_t j = 0; j < n; ++j) {
        p.eq_matrix(0, j) = 1.0;
        p.eq_matrix(1, j) = static_cast<double>(j) / static_cast<double>(n);
    }
    p.eq_rhs = {1.0, 0.3};

    const Qp_constraint_prep prep(n, p.eq_matrix, p.eq_rhs, p.ineq_matrix, p.ineq_rhs);
    for (int trial = 0; trial < 4; ++trial) {
        p.gradient = rng.normal_vector(n);
        const Qp_result cold = solve_qp_dual(p);
        const Qp_result warm = solve_qp_dual_prepared(p.hessian, p.gradient, prep);
        ASSERT_EQ(cold.x.size(), warm.x.size());
        for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(cold.x[i], warm.x[i]);
        EXPECT_EQ(cold.active_set, warm.active_set);
    }
}

}  // namespace
}  // namespace cellsync
