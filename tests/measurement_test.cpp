#include "io/measurement.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cellsync {
namespace {

Measurement_series good_series() {
    Measurement_series s;
    s.label = "test";
    s.times = {0.0, 15.0, 30.0};
    s.values = {1.0, 2.0, 3.0};
    s.sigmas = {0.1, 0.2, 0.4};
    return s;
}

TEST(MeasurementSeries, ValidSeriesPasses) {
    EXPECT_NO_THROW(good_series().validate());
    EXPECT_EQ(good_series().size(), 3u);
}

TEST(MeasurementSeries, LengthMismatchThrows) {
    Measurement_series s = good_series();
    s.values.pop_back();
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s = good_series();
    s.sigmas.push_back(1.0);
    EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(MeasurementSeries, NeedsAtLeastTwoPoints) {
    Measurement_series s;
    s.times = {0.0};
    s.values = {1.0};
    s.sigmas = {1.0};
    EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(MeasurementSeries, TimesMustAscend) {
    Measurement_series s = good_series();
    s.times = {0.0, 30.0, 15.0};
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s.times = {0.0, 15.0, 15.0};
    EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(MeasurementSeries, SigmasMustBePositive) {
    Measurement_series s = good_series();
    s.sigmas[1] = 0.0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s.sigmas[1] = -0.5;
    EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(MeasurementSeries, NonFiniteValuesRejected) {
    Measurement_series s = good_series();
    s.values[0] = std::nan("");
    EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(MeasurementSeries, WeightsAreInverseVariance) {
    const Vector w = good_series().weights();
    EXPECT_NEAR(w[0], 100.0, 1e-9);
    EXPECT_NEAR(w[1], 25.0, 1e-9);
    EXPECT_NEAR(w[2], 6.25, 1e-9);
}

TEST(MeasurementSeries, WithUnitSigmaFactory) {
    const Measurement_series s =
        Measurement_series::with_unit_sigma("g", {0.0, 10.0}, {5.0, 6.0});
    EXPECT_EQ(s.label, "g");
    EXPECT_DOUBLE_EQ(s.sigmas[0], 1.0);
    EXPECT_DOUBLE_EQ(s.sigmas[1], 1.0);
    EXPECT_THROW(Measurement_series::with_unit_sigma("g", {10.0, 0.0}, {5.0, 6.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
