#include "numerics/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(Statistics, MeanAndVariance) {
    const Vector v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
}

TEST(Statistics, EmptyAndShortInputsThrow) {
    EXPECT_THROW(mean({}), std::invalid_argument);
    EXPECT_THROW(variance({1.0}), std::invalid_argument);
    EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Statistics, CoefficientOfVariation) {
    const Vector v{9.0, 10.0, 11.0};
    EXPECT_NEAR(coefficient_of_variation(v), 1.0 / 10.0, 1e-12);
    EXPECT_THROW(coefficient_of_variation({-1.0, 1.0}), std::invalid_argument);
}

TEST(Statistics, QuantileInterpolates) {
    const Vector v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
    EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(Statistics, MedianUnsortedInput) {
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Statistics, PearsonPerfectCorrelation) {
    const Vector a{1.0, 2.0, 3.0};
    EXPECT_NEAR(pearson_correlation(a, {2.0, 4.0, 6.0}), 1.0, 1e-12);
    EXPECT_NEAR(pearson_correlation(a, {6.0, 4.0, 2.0}), -1.0, 1e-12);
}

TEST(Statistics, PearsonRejectsDegenerateInput) {
    EXPECT_THROW(pearson_correlation({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(pearson_correlation({1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(pearson_correlation({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(Statistics, ErrorMetrics) {
    const Vector a{1.0, 2.0, 3.0};
    const Vector b{1.0, 2.0, 7.0};
    EXPECT_NEAR(rmse(a, b), 4.0 / std::sqrt(3.0), 1e-12);
    EXPECT_NEAR(mae(a, b), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(max_abs_error(a, b), 4.0);
}

TEST(Statistics, NrmseNormalizesByReferenceRange) {
    const Vector ref{0.0, 10.0};
    const Vector est{1.0, 10.0};
    EXPECT_NEAR(nrmse(est, ref), (1.0 / std::sqrt(2.0)) / 10.0, 1e-12);
    EXPECT_THROW(nrmse(est, {5.0, 5.0}), std::invalid_argument);
}

TEST(Statistics, IdenticalSeriesHaveZeroError) {
    const Vector a{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
    EXPECT_DOUBLE_EQ(mae(a, a), 0.0);
    EXPECT_DOUBLE_EQ(max_abs_error(a, a), 0.0);
}

TEST(Statistics, HistogramCountsAndDropsOutOfRange) {
    const Vector v{0.05, 0.15, 0.15, 0.95, -1.0, 2.0};
    const auto counts = histogram(v, 0.0, 1.0, 10);
    ASSERT_EQ(counts.size(), 10u);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[9], 1u);
    std::size_t total = 0;
    for (auto c : counts) total += c;
    EXPECT_EQ(total, 4u);  // two values out of range
}

TEST(Statistics, HistogramRejectsBadArguments) {
    EXPECT_THROW(histogram({1.0}, 0.0, 1.0, 0), std::invalid_argument);
    EXPECT_THROW(histogram({1.0}, 1.0, 0.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
