#include "stream/streaming_deconvolver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/deconvolver.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

constexpr double test_lambda = 3e-4;

/// One small kernel + design shared by every test (simulation is the
/// expensive part; the streams themselves are cheap).
struct Stream_fixture {
    std::shared_ptr<const Kernel_grid> kernel;
    std::shared_ptr<const Design_artifacts> artifacts;
};

const Stream_fixture& fixture() {
    static const Stream_fixture fixed = [] {
        Stream_fixture out;
        const Vector times = linspace(0.0, 150.0, 11);
        Cell_cycle_config config;
        Kernel_build_options options;
        options.n_cells = 4000;
        options.n_bins = 60;
        options.seed = 11;
        out.kernel = std::make_shared<const Kernel_grid>(
            build_kernel(config, Smooth_volume_model{}, times, options));
        out.artifacts = make_design_artifacts(
            std::make_shared<Natural_spline_basis>(12), *out.kernel, config);
        return out;
    }();
    return fixed;
}

Measurement_series noisy_series(const Gene_profile& profile, std::uint64_t seed,
                                const std::string& label) {
    Rng rng(seed);
    return forward_measurements_noisy(*fixture().kernel, profile.f,
                                      {Noise_type::relative_gaussian, 0.08}, rng, label);
}

Stream_options stream_options() {
    Stream_options options;
    options.lambda = test_lambda;
    return options;
}

Deconvolution_options batch_options() {
    Deconvolution_options options;
    options.lambda = test_lambda;
    return options;
}

void expect_final_bit_identity(const Measurement_series& series, bool warm_start) {
    const Deconvolver deconvolver(fixture().artifacts);
    const Single_cell_estimate batch = deconvolver.estimate(series, batch_options());

    Stream_options options = stream_options();
    options.warm_start = warm_start;
    Streaming_deconvolver stream(fixture().artifacts, series.label, options);
    for (std::size_t m = 0; m < series.size(); ++m) {
        stream.append(series.times[m], series.values[m], series.sigmas[m]);
    }
    ASSERT_TRUE(stream.complete());

    const Vector& a = batch.coefficients();
    const Vector& b = stream.current().coefficients();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "coefficient " << i << " (warm_start=" << warm_start
                              << ", gene " << series.label << ")";
    }
    EXPECT_EQ(batch.chi_squared, stream.current().chi_squared);
    EXPECT_EQ(batch.roughness, stream.current().roughness);
    EXPECT_EQ(batch.objective, stream.current().objective);
}

TEST(StreamingDeconvolver, FinalEstimateBitIdenticalToBatch) {
    // Constraint-binding profiles (positivity active) and a smooth one
    // (unconstrained optimum) — the identity must hold either way.
    expect_final_bit_identity(noisy_series(ftsz_like_profile(), 5, "ftsZ"), true);
    expect_final_bit_identity(noisy_series(pulse_profile(0.0, 6.0, 0.7, 0.15), 6, "pulse"),
                              true);
    expect_final_bit_identity(noisy_series(sinusoid_profile(3.0, 2.0), 7, "wave"), true);
}

TEST(StreamingDeconvolver, BitIdentityHoldsWithWarmStartDisabled) {
    expect_final_bit_identity(noisy_series(ftsz_like_profile(), 5, "ftsZ"), false);
}

TEST(StreamingDeconvolver, FailedAppendRollsBackAndStreamRecovers) {
    const Measurement_series series = noisy_series(ftsz_like_profile(), 9, "ftsZ");
    const Deconvolver deconvolver(fixture().artifacts);
    const Single_cell_estimate batch = deconvolver.estimate(series, batch_options());

    Streaming_deconvolver stream(fixture().artifacts, series.label, stream_options());
    for (std::size_t m = 0; m < series.size(); ++m) {
        if (m == 4) {
            // Wrong grid time, bad sigma, non-finite value: each rejected
            // without corrupting the accumulated state.
            EXPECT_THROW(stream.append(series.times[m] + 5.0, 1.0, 1.0),
                         std::invalid_argument);
            EXPECT_THROW(stream.append(series.times[m], 1.0, -1.0), std::invalid_argument);
            EXPECT_THROW(stream.append(series.times[m], std::nan(""), 1.0),
                         std::invalid_argument);
            EXPECT_EQ(stream.observed(), 4u);
        }
        stream.append(series.times[m], series.values[m], series.sigmas[m]);
    }
    const Vector& a = batch.coefficients();
    const Vector& b = stream.current().coefficients();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "coefficient " << i;
    }
}

TEST(StreamingDeconvolver, AppendPastCompletionThrows) {
    const Measurement_series series = noisy_series(sinusoid_profile(3.0, 2.0), 8, "wave");
    Streaming_deconvolver stream(fixture().artifacts, series.label, stream_options());
    for (std::size_t m = 0; m < series.size(); ++m) {
        stream.append(series.times[m], series.values[m], series.sigmas[m]);
    }
    EXPECT_THROW(stream.append(series.times.back() + 15.0, 1.0, 1.0), std::logic_error);
}

TEST(StreamingDeconvolver, CurrentBeforeFirstAppendThrows) {
    Streaming_deconvolver stream(fixture().artifacts, "empty", stream_options());
    EXPECT_FALSE(stream.has_estimate());
    EXPECT_THROW(stream.current(), std::logic_error);
}

TEST(StreamingDeconvolver, TracksObservedSeriesAndStats) {
    const Measurement_series series = noisy_series(ftsz_like_profile(), 12, "ftsZ");
    Streaming_deconvolver stream(fixture().artifacts, series.label, stream_options());
    for (std::size_t m = 0; m < 5; ++m) {
        stream.append(series.times[m], series.values[m], series.sigmas[m]);
    }
    EXPECT_EQ(stream.observed(), 5u);
    EXPECT_FALSE(stream.complete());
    const Measurement_series prefix = stream.observed_series();
    ASSERT_EQ(prefix.size(), 5u);
    for (std::size_t m = 0; m < 5; ++m) {
        EXPECT_EQ(prefix.times[m], series.times[m]);
        EXPECT_EQ(prefix.values[m], series.values[m]);
        EXPECT_EQ(prefix.sigmas[m], series.sigmas[m]);
    }
    const Stream_solve_stats& stats = stream.stats();
    EXPECT_EQ(stats.updates, 5u);
    EXPECT_EQ(stats.warm_accepts + stats.cold_solves, stats.updates);
    // Every mid-stream estimate is usable: finite profile, fit diagnostics.
    EXPECT_TRUE(std::isfinite(stream.current().chi_squared));
    EXPECT_TRUE(all_finite(stream.current().coefficients()));
}

TEST(StreamingDeconvolver, ConvergenceDetectsStabilizedEstimate) {
    // Noiseless measurements: after a few timepoints the estimate stops
    // moving and the tracker must say so (and keep accepting appends).
    const Measurement_series series =
        forward_measurements(*fixture().kernel, sinusoid_profile(3.0, 2.0).f, "clean");
    Stream_options options = stream_options();
    options.convergence.coefficient_tol = 5e-2;
    options.convergence.score_tol = 5e-2;
    options.convergence.min_observed = 3;
    Streaming_deconvolver stream(fixture().artifacts, series.label, options);
    bool converged_before_complete = false;
    for (std::size_t m = 0; m < series.size(); ++m) {
        stream.append(series.times[m], series.values[m], series.sigmas[m]);
        if (stream.converged() && !stream.complete()) converged_before_complete = true;
    }
    EXPECT_TRUE(converged_before_complete);
    EXPECT_TRUE(stream.converged());
    EXPECT_LE(stream.last_coefficient_delta(), 5e-2);
}

TEST(StreamingDeconvolver, ConstructionValidation) {
    EXPECT_THROW(Streaming_deconvolver(nullptr, "x", stream_options()),
                 std::invalid_argument);
    Stream_options bad_lambda = stream_options();
    bad_lambda.lambda = -1.0;
    EXPECT_THROW(Streaming_deconvolver(fixture().artifacts, "x", bad_lambda),
                 std::invalid_argument);
    Stream_options bad_stable = stream_options();
    bad_stable.convergence.stable_updates = 0;
    EXPECT_THROW(Streaming_deconvolver(fixture().artifacts, "x", bad_stable),
                 std::invalid_argument);
    Stream_options bad_score = stream_options();
    bad_score.convergence.score_points = 1;
    EXPECT_THROW(Streaming_deconvolver(fixture().artifacts, "x", bad_score),
                 std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
