#include "population/kernel_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "population/kernel_io.h"

namespace cellsync {
namespace {

Kernel_build_options tiny_options() {
    Kernel_build_options o;
    o.n_cells = 2000;
    o.n_bins = 40;
    o.seed = 7;
    return o;
}

std::string fresh_dir(const std::string& name) {
    const std::string dir = testing::TempDir() + "cellsync_kernel_cache_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

void expect_bit_identical(const Kernel_grid& a, const Kernel_grid& b) {
    ASSERT_EQ(a.time_count(), b.time_count());
    ASSERT_EQ(a.bin_count(), b.bin_count());
    for (std::size_t m = 0; m < a.time_count(); ++m) {
        EXPECT_EQ(a.times()[m], b.times()[m]) << "time " << m;
        for (std::size_t c = 0; c < a.bin_count(); ++c) {
            EXPECT_EQ(a.q()(m, c), b.q()(m, c)) << "entry (" << m << ", " << c << ")";
        }
    }
    for (std::size_t c = 0; c < a.bin_count(); ++c) {
        EXPECT_EQ(a.phi_centers()[c], b.phi_centers()[c]) << "center " << c;
    }
}

TEST(KernelCache, MemoryHitReturnsSameGridWithoutRebuilding) {
    Kernel_cache cache;
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0, 60.0};

    const auto first = cache.get_or_build(config, vm, times, tiny_options());
    const auto second = cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(first.get(), second.get());  // shared, not re-simulated
    const Kernel_cache_stats stats = cache.stats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.memory_hits, 1u);
    EXPECT_EQ(stats.disk_hits, 0u);
}

TEST(KernelCache, KeyCoversEveryBuildInput) {
    const Cell_cycle_config config;
    const Smooth_volume_model smooth;
    const Linear_volume_model linear;
    const Vector times{0.0, 30.0};
    const Kernel_build_options options = tiny_options();
    const std::string base = Kernel_cache::cache_key(config, smooth, times, options);

    Cell_cycle_config other_config = config;
    other_config.mu_sst = 0.18;
    EXPECT_NE(Kernel_cache::cache_key(other_config, smooth, times, options), base);

    EXPECT_NE(Kernel_cache::cache_key(config, linear, times, options), base);

    EXPECT_NE(Kernel_cache::cache_key(config, smooth, {0.0, 45.0}, options), base);

    Kernel_build_options other_options = options;
    other_options.seed = 8;
    EXPECT_NE(Kernel_cache::cache_key(config, smooth, times, other_options), base);
    other_options = options;
    other_options.n_bins = 41;
    EXPECT_NE(Kernel_cache::cache_key(config, smooth, times, other_options), base);
    other_options = options;
    other_options.n_cells = 2001;
    EXPECT_NE(Kernel_cache::cache_key(config, smooth, times, other_options), base);

    // And identical inputs agree, including through copies.
    EXPECT_EQ(Kernel_cache::cache_key(Cell_cycle_config{}, Smooth_volume_model{}, times,
                                      tiny_options()),
              base);
}

TEST(KernelCache, DifferentInputsTriggerRebuilds) {
    Kernel_cache cache;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    Cell_cycle_config config;
    cache.get_or_build(config, vm, times, tiny_options());
    config.mu_sst = 0.20;
    cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(cache.stats().builds, 2u);
    EXPECT_EQ(cache.stats().memory_hits, 0u);
}

TEST(KernelCache, DiskRoundTripIsBitIdenticalToFreshBuild) {
    const std::string dir = fresh_dir("roundtrip");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 25.0, 50.0, 75.0};

    Kernel_cache writer(dir);
    const auto built = writer.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(writer.stats().builds, 1u);

    // A fresh cache instance has no memory entries: the hit must come from
    // disk and reproduce the simulated grid bit-for-bit.
    Kernel_cache reader(dir);
    const auto loaded = reader.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(reader.stats().builds, 0u);
    EXPECT_EQ(reader.stats().disk_hits, 1u);
    expect_bit_identical(*built, *loaded);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, ClearMemoryFallsThroughToDisk) {
    const std::string dir = fresh_dir("clear");
    Kernel_cache cache(dir);
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    cache.get_or_build(config, vm, times, tiny_options());
    cache.clear_memory();
    cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, CorruptDiskEntryDegradesToRebuild) {
    const std::string dir = fresh_dir("corrupt");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    {
        Kernel_cache cache(dir);
        cache.get_or_build(config, vm, times, tiny_options());
    }
    // Truncate the kernel file (sidecar stays valid) — the loader must
    // reject it and rebuild instead of throwing or serving garbage.
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".bin" || entry.path().extension() == ".csv") {
            std::ofstream truncate(entry.path(), std::ios::trunc);
            truncate << "phi,t0\nnot,a,kernel\n";
        }
    }
    Kernel_cache cache(dir);
    const auto kernel = cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().disk_hits, 0u);
    EXPECT_EQ(kernel->time_count(), 2u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, StaleSidecarKeyIsIgnored) {
    const std::string dir = fresh_dir("stale");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    {
        Kernel_cache cache(dir);
        cache.get_or_build(config, vm, times, tiny_options());
    }
    // Rewrite the sidecar with a different key: simulates a hash collision
    // or a torn write. The entry must not be served.
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".key") {
            std::ofstream rewrite(entry.path(), std::ios::trunc);
            rewrite << "some-other-key";
        }
    }
    Kernel_cache cache(dir);
    cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().disk_hits, 0u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, EmptyDirectoryRejected) {
    EXPECT_THROW(Kernel_cache(std::string{}), std::invalid_argument);
}

TEST(KernelCache, ManifestTracksEntriesBytesAndRecency) {
    const std::string dir = fresh_dir("manifest");
    const Smooth_volume_model vm;
    Cell_cycle_config config;
    Kernel_cache cache(dir);
    cache.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    const std::string first_hash = cache.manifest().entries[0].hash;
    config.mu_sst = 0.25;  // exactly representable: safe to grep in the key
    cache.get_or_build(config, vm, {0.0, 30.0}, tiny_options());

    Kernel_cache_manifest manifest = cache.manifest();
    ASSERT_EQ(manifest.entries.size(), 2u);
    EXPECT_EQ(manifest.max_bytes, 0u);
    EXPECT_GT(manifest.total_bytes, 0u);
    // Most recent first; keys carry the config provenance.
    EXPECT_GT(manifest.entries[0].last_use, manifest.entries[1].last_use);
    EXPECT_NE(manifest.entries[0].key.find("mu_sst=0.25"), std::string::npos)
        << manifest.entries[0].key;
    for (const Kernel_cache_entry_info& entry : manifest.entries) {
        EXPECT_GT(entry.bytes, 0u);
        EXPECT_NE(entry.key.find("cellsync-kernel-v1"), std::string::npos);
    }

    // A disk hit from a fresh instance bumps the entry's recency.
    config.mu_sst = 0.15;
    Kernel_cache reader(dir);
    reader.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    manifest = reader.manifest();
    ASSERT_EQ(manifest.entries.size(), 2u);
    EXPECT_EQ(manifest.entries[0].hash, first_hash);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, LruEvictionEnforcesSizeCap) {
    const std::string dir = fresh_dir("lru");
    const Smooth_volume_model vm;
    Cell_cycle_config config;

    // Size one entry, then cap the cache so only one fits.
    std::uint64_t entry_bytes = 0;
    {
        Kernel_cache sizing(dir);
        sizing.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
        entry_bytes = sizing.manifest().total_bytes;
        ASSERT_GT(entry_bytes, 0u);
    }
    Kernel_cache_limits limits;
    limits.max_disk_bytes = entry_bytes + entry_bytes / 2;
    Kernel_cache cache(dir, limits);

    // Touch the first entry (disk hit), then add a second: the cap forces
    // the older entry out.
    cache.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    Cell_cycle_config second = config;
    second.mu_sst = 0.25;
    cache.get_or_build(second, vm, {0.0, 30.0}, tiny_options());

    EXPECT_EQ(cache.stats().evictions, 1u);
    const Kernel_cache_manifest manifest = cache.manifest();
    ASSERT_EQ(manifest.entries.size(), 1u);
    EXPECT_NE(manifest.entries[0].key.find("mu_sst=0.25"), std::string::npos)
        << "the LRU entry, not the fresh one, must be evicted";
    EXPECT_LE(manifest.total_bytes, limits.max_disk_bytes);

    // The evicted tuple is gone from disk: a fresh instance re-simulates.
    Kernel_cache after(dir, limits);
    after.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    EXPECT_EQ(after.stats().builds, 1u);
    EXPECT_EQ(after.stats().disk_hits, 0u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, OversizedEntryStillCachesBestEffort) {
    const std::string dir = fresh_dir("oversized");
    Kernel_cache_limits limits;
    limits.max_disk_bytes = 1;  // smaller than any kernel
    Kernel_cache cache(dir, limits);
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    cache.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    // The just-stored entry is exempt from its own eviction pass: caching
    // beats thrashing when a single kernel exceeds the cap.
    EXPECT_EQ(cache.manifest().entries.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    Kernel_cache reader(dir, limits);
    reader.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    EXPECT_EQ(reader.stats().disk_hits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, ReadOnlyModeServesDiskWithoutWriting) {
    const std::string dir = fresh_dir("readonly");
    const Smooth_volume_model vm;
    Cell_cycle_config config;
    {
        Kernel_cache owner(dir);
        owner.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    }
    const auto manifest_before = std::filesystem::last_write_time(
        Kernel_cache::manifest_path(dir));
    std::size_t files_before = 0;
    for ([[maybe_unused]] const auto& entry : std::filesystem::directory_iterator(dir)) {
        ++files_before;
    }

    Kernel_cache_limits limits;
    limits.read_only = true;
    limits.max_disk_bytes = 1;  // would evict everything if enforced
    Kernel_cache fleet(dir, limits);

    // A cached tuple is served from disk...
    fleet.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    EXPECT_EQ(fleet.stats().disk_hits, 1u);
    EXPECT_EQ(fleet.stats().builds, 0u);

    // ...a miss simulates but is not persisted...
    Cell_cycle_config other = config;
    other.mu_sst = 0.25;
    fleet.get_or_build(other, vm, {0.0, 30.0}, tiny_options());
    EXPECT_EQ(fleet.stats().builds, 1u);
    EXPECT_EQ(fleet.stats().evictions, 0u);

    // ...and the directory is untouched: same files, manifest unmodified.
    std::size_t files_after = 0;
    for ([[maybe_unused]] const auto& entry : std::filesystem::directory_iterator(dir)) {
        ++files_after;
    }
    EXPECT_EQ(files_after, files_before);
    EXPECT_EQ(std::filesystem::last_write_time(Kernel_cache::manifest_path(dir)),
              manifest_before);

    // The unpersisted miss still memoizes in memory.
    fleet.get_or_build(other, vm, {0.0, 30.0}, tiny_options());
    EXPECT_EQ(fleet.stats().memory_hits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, ReadOnlyModeToleratesMissingDirectory) {
    const std::string dir = fresh_dir("readonly_missing") + "/nested/absent";
    Kernel_cache_limits limits;
    limits.read_only = true;
    // A writable cache would create the directory; read-only must accept
    // whatever is (not) there and fall back to simulation.
    Kernel_cache cache(dir, limits);
    const Smooth_volume_model vm;
    const auto kernel = cache.get_or_build(Cell_cycle_config{}, vm, {0.0, 30.0},
                                           tiny_options());
    EXPECT_EQ(kernel->time_count(), 2u);
    EXPECT_EQ(cache.stats().builds, 1u);
}

TEST(KernelCache, AsyncRequestsForOneKeyShareOneResolution) {
    Kernel_cache cache;
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};

    // Issue two requests before resolving either: the second joins the
    // first's in-flight state (counted as a memory hit at call time).
    Kernel_cache::Async_request first =
        cache.get_or_build_async(config, vm, times, tiny_options());
    Kernel_cache::Async_request second =
        cache.get_or_build_async(config, vm, times, tiny_options());
    ASSERT_TRUE(first.valid());
    ASSERT_TRUE(second.valid());
    EXPECT_EQ(cache.stats().builds, 0u);  // deferred: nothing ran yet

    const auto from_second = second.get();  // whoever calls get() first executes
    const auto from_first = first.get();
    EXPECT_EQ(from_first.get(), from_second.get());
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().memory_hits, 1u);

    // A request issued after completion is an ordinary memory hit.
    const auto third = cache.get_or_build_async(config, vm, times, tiny_options()).get();
    EXPECT_EQ(third.get(), from_first.get());
    EXPECT_EQ(cache.stats().memory_hits, 2u);
    EXPECT_EQ(cache.stats().builds, 1u);
}

TEST(KernelCache, DroppedAsyncRequestDoesNotPoisonLaterLookups) {
    Kernel_cache cache;
    const Vector times{0.0, 30.0};
    {
        // Issue a request and abandon it without get(); its volume model
        // goes out of scope. The abandoned in-flight entry must stay
        // inert: requests carry their own inputs, so nothing dangles.
        const Smooth_volume_model ephemeral;
        Kernel_cache::Async_request dropped = cache.get_or_build_async(
            Cell_cycle_config{}, ephemeral, times, tiny_options());
        EXPECT_TRUE(dropped.valid());
    }
    const Smooth_volume_model vm;
    const auto kernel = cache.get_or_build(Cell_cycle_config{}, vm, times, tiny_options());
    EXPECT_EQ(kernel->time_count(), 2u);
    EXPECT_EQ(cache.stats().builds, 1u);
    // The later caller joined the abandoned entry (counted as a memory
    // hit at call time) and then performed the resolution itself with
    // its own, live inputs.
    EXPECT_EQ(cache.stats().memory_hits, 1u);
}

TEST(KernelCache, AsyncGetBlocksJoinersUntilTheExecutorFinishes) {
    Kernel_cache cache;
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0, 60.0};
    Kernel_build_options options = tiny_options();
    options.n_cells = 20000;  // big enough that the join genuinely waits

    Kernel_cache::Async_request a = cache.get_or_build_async(config, vm, times, options);
    Kernel_cache::Async_request b = cache.get_or_build_async(config, vm, times, options);
    std::shared_ptr<const Kernel_grid> from_thread;
    std::thread joiner([&] { from_thread = b.get(); });
    const auto direct = a.get();
    joiner.join();
    ASSERT_NE(from_thread, nullptr);
    EXPECT_EQ(direct.get(), from_thread.get());
    EXPECT_EQ(cache.stats().builds, 1u);
}

// A pre-upgrade cache directory: kernel CSVs + sidecars, as written by
// the versions that stored entries in the CSV format.
std::string make_legacy_entry(const std::string& dir, const Cell_cycle_config& config,
                              const Volume_model& vm, const Vector& times,
                              const Kernel_build_options& options) {
    std::filesystem::create_directories(dir);
    const std::string key = Kernel_cache::cache_key(config, vm, times, options);
    const std::string hash = Kernel_cache::key_hash(key);
    const Kernel_grid kernel = build_kernel(config, vm, times, options);
    write_kernel_file(dir + "/kernel_" + hash + ".csv", kernel, Kernel_format::csv);
    std::ofstream sidecar(dir + "/kernel_" + hash + ".key", std::ios::binary);
    sidecar << key;
    return hash;
}

TEST(KernelCache, LegacyCsvEntryServedAndMigratedToBinary) {
    const std::string dir = fresh_dir("legacy_migrate");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    const std::string hash = make_legacy_entry(dir, config, vm, times, tiny_options());
    const Kernel_grid reference = build_kernel(config, vm, times, tiny_options());

    Kernel_cache cache(dir);
    const auto served = cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    EXPECT_EQ(cache.stats().builds, 0u);
    expect_bit_identical(*served, reference);

    // The touch migrated the entry: binary in place, CSV gone, same
    // sidecar, and the manifest accounts the new (smaller) footprint.
    EXPECT_TRUE(std::filesystem::exists(dir + "/kernel_" + hash + ".bin"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/kernel_" + hash + ".csv"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/kernel_" + hash + ".key"));
    const Kernel_cache_manifest manifest = cache.manifest();
    ASSERT_EQ(manifest.entries.size(), 1u);
    std::uint64_t on_disk = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename().string().rfind("kernel_", 0) == 0) {
            on_disk += std::filesystem::file_size(entry.path());
        }
    }
    EXPECT_EQ(manifest.entries[0].bytes, on_disk);

    // The migrated entry keeps serving from a fresh instance.
    Kernel_cache reader(dir);
    const auto reloaded = reader.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(reader.stats().disk_hits, 1u);
    expect_bit_identical(*reloaded, reference);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, TornMigrationBinaryFallsBackToLegacyCsv) {
    const std::string dir = fresh_dir("torn_migration");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    const std::string hash = make_legacy_entry(dir, config, vm, times, tiny_options());
    // A migration killed mid-write leaves a truncated .bin next to the
    // still-valid CSV; the cache must serve the CSV (no rebuild) and
    // complete the migration over the torn file.
    {
        std::ofstream torn(dir + "/kernel_" + hash + ".bin", std::ios::binary);
        torn << "cellsync-kernel-bin-v1\n\x01";
    }

    Kernel_cache cache(dir);
    const auto served = cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    EXPECT_EQ(cache.stats().builds, 0u);
    expect_bit_identical(*served, build_kernel(config, vm, times, tiny_options()));
    EXPECT_FALSE(std::filesystem::exists(dir + "/kernel_" + hash + ".csv"));

    // The rewritten binary is complete: a fresh instance loads it.
    Kernel_cache reader(dir);
    reader.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(reader.stats().disk_hits, 1u);
    EXPECT_EQ(reader.stats().builds, 0u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, InterruptedMigrationLeftoverCsvIsCleanedUp) {
    const std::string dir = fresh_dir("leftover_csv");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    const std::string hash = make_legacy_entry(dir, config, vm, times, tiny_options());
    // A migration killed after the binary landed but before the CSV was
    // removed leaves both files; the next writable touch must finish the
    // cleanup (and re-account the entry's bytes), not carry the orphan
    // forever.
    write_kernel_file(dir + "/kernel_" + hash + ".bin",
                      build_kernel(config, vm, times, tiny_options()),
                      Kernel_format::binary);

    Kernel_cache cache(dir);
    cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/kernel_" + hash + ".bin"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/kernel_" + hash + ".csv"));
    const Kernel_cache_manifest manifest = cache.manifest();
    ASSERT_EQ(manifest.entries.size(), 1u);
    EXPECT_EQ(manifest.entries[0].bytes,
              std::filesystem::file_size(dir + "/kernel_" + hash + ".bin") +
                  std::filesystem::file_size(dir + "/kernel_" + hash + ".key"));
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, ReadOnlyCacheServesLegacyCsvWithoutMigrating) {
    const std::string dir = fresh_dir("legacy_readonly");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    const std::string hash = make_legacy_entry(dir, config, vm, times, tiny_options());

    Kernel_cache_limits limits;
    limits.read_only = true;
    Kernel_cache fleet(dir, limits);
    const auto served = fleet.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(fleet.stats().disk_hits, 1u);
    EXPECT_EQ(fleet.stats().builds, 0u);
    expect_bit_identical(*served, build_kernel(config, vm, times, tiny_options()));

    // Fleet mode never writes: the CSV entry stays, nothing binary
    // appears, no manifest is created.
    EXPECT_TRUE(std::filesystem::exists(dir + "/kernel_" + hash + ".csv"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/kernel_" + hash + ".bin"));
    EXPECT_FALSE(std::filesystem::exists(Kernel_cache::manifest_path(dir)));
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, LruEvictionRemovesLegacyCsvEntries) {
    const std::string dir = fresh_dir("legacy_evict");
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    Cell_cycle_config old_config;
    old_config.mu_sst = 0.25;
    const std::string legacy_hash =
        make_legacy_entry(dir, old_config, vm, times, tiny_options());

    // A tight cap forces the never-touched legacy entry out when a new
    // (binary) entry lands; both of its files must disappear.
    Kernel_cache_limits limits;
    limits.max_disk_bytes = 1;
    Kernel_cache cache(dir, limits);
    cache.get_or_build(Cell_cycle_config{}, vm, times, tiny_options());
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(std::filesystem::exists(dir + "/kernel_" + legacy_hash + ".csv"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/kernel_" + legacy_hash + ".key"));
    EXPECT_EQ(cache.manifest().entries.size(), 1u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, EntryWriteFailureSkipsTheSidecar) {
    const std::string dir = fresh_dir("write_failure");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0};
    const std::string key = Kernel_cache::cache_key(config, vm, times, tiny_options());
    const std::string hash = Kernel_cache::key_hash(key);
    // A directory squatting on the entry path makes the kernel write fail
    // (stands in for a full disk). The cache must degrade to memory-only
    // for this entry — in particular it must NOT write the sidecar commit
    // marker, which would publish a corrupt/absent kernel as valid.
    std::filesystem::create_directories(dir + "/kernel_" + hash + ".bin");

    Kernel_cache cache(dir);
    const auto kernel = cache.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(kernel->time_count(), 2u);
    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_FALSE(std::filesystem::exists(dir + "/kernel_" + hash + ".key"));

    // A fresh instance sees no committed entry and rebuilds.
    Kernel_cache reader(dir);
    reader.get_or_build(config, vm, times, tiny_options());
    EXPECT_EQ(reader.stats().builds, 1u);
    EXPECT_EQ(reader.stats().disk_hits, 0u);
    std::filesystem::remove_all(dir);
}

TEST(KernelCache, MissingManifestIsRebuiltFromSidecars) {
    const std::string dir = fresh_dir("rebuild");
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    {
        Kernel_cache cache(dir);
        cache.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    }
    std::filesystem::remove(Kernel_cache::manifest_path(dir));
    Kernel_cache cache(dir);
    const Kernel_cache_manifest manifest = cache.manifest();
    ASSERT_EQ(manifest.entries.size(), 1u);
    EXPECT_GT(manifest.entries[0].bytes, 0u);
    EXPECT_NE(manifest.entries[0].key.find("cellsync-kernel-v1"), std::string::npos);
    // The rebuilt manifest still serves the disk entry.
    cache.get_or_build(config, vm, {0.0, 30.0}, tiny_options());
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cellsync
