// End-to-end: a 3-condition synthetic experiment through the experiment
// runner — kernels via the cache, per-condition Batch_engine solves,
// warm-started lambda selection, profile synchrony scores, and cold/warm
// determinism of the whole pipeline.
#include "core/experiment_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "numerics/statistics.h"

namespace cellsync {
namespace {

Kernel_build_options small_kernel() {
    Kernel_build_options o;
    o.n_cells = 4000;
    o.n_bins = 80;
    o.seed = 11;
    return o;
}

Cell_cycle_config fast_config() {
    Cell_cycle_config c;
    c.mean_cycle_minutes = 120.0;
    return c;
}

/// Noiseless panel for one condition: a cycle-regulated gene, a sinusoid,
/// and a constitutive (flat) gene, pushed through the condition's kernel.
std::vector<Measurement_series> make_panel(const Cell_cycle_config& config,
                                           const Vector& times) {
    const Kernel_grid kernel =
        build_kernel(config, Smooth_volume_model{}, times, small_kernel());
    return {
        forward_measurements(kernel, ftsz_like_profile().f, "ftsZ-like"),
        forward_measurements(kernel, sinusoid_profile(3.0, 2.0).f, "sinusoid"),
        forward_measurements(kernel, constant_profile(4.0).f, "flat"),
    };
}

Experiment_spec make_spec() {
    const Vector times = linspace(0.0, 150.0, 11);
    Experiment_spec spec;
    spec.kernel = small_kernel();
    spec.basis_size = 14;
    spec.batch.lambda_grid = default_lambda_grid(7, 1e-6, 1e-1);
    spec.threads = 2;

    Experiment_condition wildtype;
    wildtype.name = "wildtype";
    wildtype.panel = make_panel(wildtype.cell_cycle, times);

    Experiment_condition fast;
    fast.name = "fast";
    fast.cell_cycle = fast_config();
    fast.panel = make_panel(fast.cell_cycle, times);

    // Same biology as wildtype (kernel must come from the cache, not a
    // third simulation), fresh data realization is unnecessary: reuse.
    Experiment_condition repeat = wildtype;
    repeat.name = "repeat";

    spec.conditions = {wildtype, fast, repeat};
    return spec;
}

TEST(ExperimentRunner, ThreeConditionExperimentEndToEnd) {
    const Experiment_spec spec = make_spec();
    Kernel_cache cache;
    const Experiment_result result = run_experiment(spec, Smooth_volume_model{}, cache);

    ASSERT_EQ(result.conditions.size(), 3u);
    for (const Condition_result& condition : result.conditions) {
        ASSERT_EQ(condition.genes.size(), 3u);
        for (const Batch_entry& gene : condition.genes) {
            EXPECT_TRUE(gene.estimate.has_value()) << condition.name << ": " << gene.error;
        }
        EXPECT_EQ(condition.synchrony.size(), 3u);
    }

    // Two distinct kernels; the third condition reuses the first's.
    EXPECT_EQ(result.cache_stats.builds, 2u);
    EXPECT_EQ(result.cache_stats.memory_hits, 1u);

    // Recovery of the cycle-regulated truth from noiseless data.
    const Gene_profile truth = ftsz_like_profile();
    const Vector grid = linspace(0.04, 0.96, 47);
    const Single_cell_estimate& ftsz = *result.conditions[0].genes[0].estimate;
    Vector recovered(grid.size()), expected(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        recovered[i] = ftsz(grid[i]);
        expected[i] = truth(grid[i]);
    }
    EXPECT_GT(pearson_correlation(recovered, expected), 0.95);

    // Synchrony scores separate regulated from constitutive expression.
    const Condition_result& wildtype = result.conditions[0];
    const Gene_synchrony& ftsz_scores = wildtype.synchrony[0];
    const Gene_synchrony& flat_scores = wildtype.synchrony[2];
    EXPECT_EQ(ftsz_scores.label, "ftsZ-like");
    EXPECT_EQ(flat_scores.label, "flat");
    EXPECT_GT(ftsz_scores.order_parameter, flat_scores.order_parameter);
    EXPECT_LT(ftsz_scores.entropy, flat_scores.entropy);
    EXPECT_GT(flat_scores.entropy, 0.9);
    EXPECT_NEAR(ftsz_scores.peak_phi, 0.40, 0.10);
    EXPECT_GT(wildtype.mean_order_parameter, 0.0);
    EXPECT_GT(wildtype.mean_entropy, 0.0);
}

TEST(ExperimentRunner, WarmStartKeepsLambdaNearPreviousCondition) {
    const Experiment_spec spec = make_spec();
    const Experiment_result result = run_experiment(spec, Smooth_volume_model{});
    for (std::size_t g = 0; g < 3; ++g) {
        const Batch_entry& before = result.conditions[0].genes[g];
        const Batch_entry& after = result.conditions[1].genes[g];
        ASSERT_TRUE(before.estimate.has_value());
        ASSERT_TRUE(after.estimate.has_value());
        // The narrowed grid spans +/- warm_grid_decades around the
        // previous selection.
        const double decades =
            std::abs(std::log10(after.lambda) - std::log10(before.lambda));
        EXPECT_LE(decades, spec.warm_grid_decades + 1e-9)
            << before.label << ": " << before.lambda << " -> " << after.lambda;
    }
}

TEST(ExperimentRunner, ColdAndWarmCacheRunsAreBitIdentical) {
    const std::string dir =
        testing::TempDir() + "cellsync_experiment_runner_cache";
    std::filesystem::remove_all(dir);
    const Experiment_spec spec = make_spec();

    Kernel_cache cold_cache(dir);
    const Experiment_result cold = run_experiment(spec, Smooth_volume_model{}, cold_cache);
    EXPECT_EQ(cold_cache.stats().builds, 2u);

    // Fresh cache instance on the same directory: every kernel must come
    // from disk, and every coefficient must match the cold run exactly.
    Kernel_cache warm_cache(dir);
    const Experiment_result warm = run_experiment(spec, Smooth_volume_model{}, warm_cache);
    EXPECT_EQ(warm_cache.stats().builds, 0u);
    EXPECT_EQ(warm_cache.stats().disk_hits, 2u);

    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t g = 0; g < 3; ++g) {
            const Batch_entry& a = cold.conditions[c].genes[g];
            const Batch_entry& b = warm.conditions[c].genes[g];
            ASSERT_TRUE(a.estimate.has_value());
            ASSERT_TRUE(b.estimate.has_value());
            EXPECT_EQ(a.lambda, b.lambda);
            const Vector& ca = a.estimate->coefficients();
            const Vector& cb = b.estimate->coefficients();
            ASSERT_EQ(ca.size(), cb.size());
            for (std::size_t i = 0; i < ca.size(); ++i) {
                EXPECT_EQ(ca[i], cb[i])
                    << "condition " << c << " gene " << g << " coefficient " << i;
            }
        }
    }
    std::filesystem::remove_all(dir);
}

void expect_bit_identical_genes(const Experiment_result& a, const Experiment_result& b) {
    ASSERT_EQ(a.conditions.size(), b.conditions.size());
    for (std::size_t c = 0; c < a.conditions.size(); ++c) {
        ASSERT_EQ(a.conditions[c].genes.size(), b.conditions[c].genes.size());
        for (std::size_t g = 0; g < a.conditions[c].genes.size(); ++g) {
            const Batch_entry& x = a.conditions[c].genes[g];
            const Batch_entry& y = b.conditions[c].genes[g];
            ASSERT_EQ(x.label, y.label);
            ASSERT_EQ(x.estimate.has_value(), y.estimate.has_value()) << x.error << y.error;
            if (!x.estimate.has_value()) continue;
            EXPECT_EQ(x.lambda, y.lambda) << x.label;
            const Vector& cx = x.estimate->coefficients();
            const Vector& cy = y.estimate->coefficients();
            ASSERT_EQ(cx.size(), cy.size());
            for (std::size_t i = 0; i < cx.size(); ++i) {
                EXPECT_EQ(cx[i], cy[i])
                    << "condition " << c << " gene " << x.label << " coefficient " << i;
            }
        }
    }
}

TEST(ExperimentRunner, PipelinedMatchesSequentialBitForBit) {
    // The satellite guarantee of the task-graph refactor: the pipelined
    // schedule (kernel simulation of condition k+1 overlapping condition
    // k's solves) changes only the wall-clock shape. Per-gene lambdas and
    // coefficients — and even the cache counters — match the sequential
    // reference exactly, on a 3-condition panel, for several thread
    // counts.
    Experiment_spec sequential_spec = make_spec();
    sequential_spec.schedule = Experiment_schedule::sequential;
    Kernel_cache sequential_cache;
    const Experiment_result sequential =
        run_experiment(sequential_spec, Smooth_volume_model{}, sequential_cache);

    for (const std::size_t threads : {1u, 2u, 4u}) {
        Experiment_spec pipelined_spec = make_spec();
        pipelined_spec.schedule = Experiment_schedule::pipelined;
        pipelined_spec.threads = threads;
        Kernel_cache pipelined_cache;
        const Experiment_result pipelined =
            run_experiment(pipelined_spec, Smooth_volume_model{}, pipelined_cache);

        expect_bit_identical_genes(sequential, pipelined);
        EXPECT_EQ(pipelined.cache_stats.builds, sequential.cache_stats.builds);
        EXPECT_EQ(pipelined.cache_stats.memory_hits, sequential.cache_stats.memory_hits);
        EXPECT_EQ(pipelined.cache_stats.disk_hits, sequential.cache_stats.disk_hits);
        for (std::size_t c = 0; c < sequential.conditions.size(); ++c) {
            EXPECT_EQ(pipelined.conditions[c].name, sequential.conditions[c].name);
            ASSERT_EQ(pipelined.conditions[c].synchrony.size(),
                      sequential.conditions[c].synchrony.size());
            EXPECT_EQ(pipelined.conditions[c].mean_order_parameter,
                      sequential.conditions[c].mean_order_parameter);
        }
    }
}

TEST(ExperimentRunner, CacheStatsArePerRunDeltas) {
    // A long-lived cache reused across runs must not leak earlier runs'
    // counters into a later result (the old documented quirk): the second
    // run of the same spec is served entirely from memory and must say
    // so — zero builds, three memory hits — not report cumulative totals.
    const Experiment_spec spec = make_spec();
    Kernel_cache cache;
    const Experiment_result first = run_experiment(spec, Smooth_volume_model{}, cache);
    EXPECT_EQ(first.cache_stats.builds, 2u);
    EXPECT_EQ(first.cache_stats.memory_hits, 1u);

    const Experiment_result second = run_experiment(spec, Smooth_volume_model{}, cache);
    EXPECT_EQ(second.cache_stats.builds, 0u);
    EXPECT_EQ(second.cache_stats.disk_hits, 0u);
    EXPECT_EQ(second.cache_stats.memory_hits, 3u);
    expect_bit_identical_genes(first, second);
}

TEST(ExperimentRunner, ShardsPartitionGenesAndStayBitIdentical) {
    const Experiment_spec full_spec = make_spec();
    const Experiment_result full = run_experiment(full_spec, Smooth_volume_model{});

    constexpr std::size_t shards = 2;
    std::vector<Experiment_result> shard_results;
    std::size_t sharded_genes = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        const Experiment_spec shard = shard_experiment(full_spec, shards, s);
        for (const Experiment_condition& condition : shard.conditions) {
            sharded_genes += condition.panel.size();
        }
        if (!shard.conditions.empty()) {
            shard_results.push_back(run_experiment(shard, Smooth_volume_model{}));
        }
    }
    // Every (condition x gene) pair lands in exactly one shard...
    std::size_t full_genes = 0;
    for (const Experiment_condition& condition : full_spec.conditions) {
        full_genes += condition.panel.size();
    }
    EXPECT_EQ(sharded_genes, full_genes);

    // ...and each sharded estimate equals the unsharded run's bit for bit
    // (per-gene warm-start chains are label-local, so dropping other
    // genes cannot perturb a kept gene).
    std::size_t compared = 0;
    for (const Experiment_result& shard : shard_results) {
        for (const Condition_result& condition : shard.conditions) {
            const auto full_condition = std::find_if(
                full.conditions.begin(), full.conditions.end(),
                [&](const Condition_result& c) { return c.name == condition.name; });
            ASSERT_NE(full_condition, full.conditions.end()) << condition.name;
            for (const Batch_entry& gene : condition.genes) {
                const auto reference = std::find_if(
                    full_condition->genes.begin(), full_condition->genes.end(),
                    [&](const Batch_entry& e) { return e.label == gene.label; });
                ASSERT_NE(reference, full_condition->genes.end()) << gene.label;
                ASSERT_TRUE(gene.estimate.has_value()) << gene.error;
                ASSERT_TRUE(reference->estimate.has_value()) << reference->error;
                EXPECT_EQ(gene.lambda, reference->lambda) << gene.label;
                const Vector& a = gene.estimate->coefficients();
                const Vector& b = reference->estimate->coefficients();
                ASSERT_EQ(a.size(), b.size());
                for (std::size_t i = 0; i < a.size(); ++i) {
                    EXPECT_EQ(a[i], b[i]) << condition.name << " " << gene.label;
                }
                ++compared;
            }
        }
    }
    EXPECT_EQ(compared, sharded_genes);
}

TEST(ExperimentRunner, ShardingPinsResolvedNamesOfUnnamedConditions) {
    // Unnamed conditions resolve to positional "conditionN" labels. When
    // a fully filtered condition is dropped from a shard, the survivors
    // must keep the labels of the *unsharded* run — otherwise two shards
    // could write files under one name for different conditions and
    // merge-results would silently combine them.
    const Measurement_series gene_a = Measurement_series::with_unit_sigma(
        "geneA", linspace(0.0, 150.0, 11), Vector(11, 1.0));
    const Measurement_series gene_b = Measurement_series::with_unit_sigma(
        "geneB", linspace(0.0, 150.0, 11), Vector(11, 2.0));
    Experiment_spec spec;
    spec.conditions.resize(3);  // all unnamed
    spec.conditions[0].panel = {gene_a, gene_b};
    spec.conditions[1].panel = {gene_a};  // drops entirely from one shard
    spec.conditions[2].panel = {gene_a, gene_b};

    bool saw_drop = false;
    for (std::size_t s = 0; s < 2; ++s) {
        const Experiment_spec sharded = shard_experiment(spec, 2, s);
        for (const Experiment_condition& condition : sharded.conditions) {
            // Names come from the unsharded positions; the panel content
            // must match that original condition's genes.
            ASSERT_TRUE(condition.name == "condition0" || condition.name == "condition1" ||
                        condition.name == "condition2")
                << condition.name;
        }
        if (sharded.conditions.size() == 2) {
            saw_drop = true;
            EXPECT_EQ(sharded.conditions[0].name, "condition0");
            EXPECT_EQ(sharded.conditions[1].name, "condition2")
                << "a dropped condition must not shift later names";
        }
    }
    EXPECT_TRUE(saw_drop) << "geneA lands in exactly one shard, so the single-gene "
                             "condition must vanish from the other";
}

TEST(ExperimentRunner, ShardValidation) {
    const Experiment_spec spec = make_spec();
    EXPECT_THROW(shard_experiment(spec, 0, 0), std::invalid_argument);
    EXPECT_THROW(shard_experiment(spec, 2, 2), std::invalid_argument);
    // shards == 1 is the identity.
    const Experiment_spec same = shard_experiment(spec, 1, 0);
    ASSERT_EQ(same.conditions.size(), spec.conditions.size());
    for (std::size_t c = 0; c < spec.conditions.size(); ++c) {
        EXPECT_EQ(same.conditions[c].panel.size(), spec.conditions[c].panel.size());
    }
}

TEST(ExperimentRunner, ValidationErrors) {
    const Smooth_volume_model vm;
    Experiment_spec empty;
    EXPECT_THROW(run_experiment(empty, vm), std::invalid_argument);

    Experiment_spec bad_panel;
    bad_panel.conditions.resize(1);
    bad_panel.conditions[0].name = "empty";
    EXPECT_THROW(run_experiment(bad_panel, vm), std::invalid_argument);

    // Series on different time grids within one condition.
    Experiment_spec mismatched;
    mismatched.conditions.resize(1);
    Measurement_series a = Measurement_series::with_unit_sigma(
        "a", linspace(0.0, 150.0, 11), Vector(11, 1.0));
    Measurement_series b = Measurement_series::with_unit_sigma(
        "b", linspace(0.0, 120.0, 11), Vector(11, 1.0));
    mismatched.conditions[0].panel = {a, b};
    EXPECT_THROW(run_experiment(mismatched, vm), std::invalid_argument);
}

TEST(ExperimentRunner, DuplicateConditionNamesRejected) {
    const Smooth_volume_model vm;
    const Measurement_series series = Measurement_series::with_unit_sigma(
        "gene", linspace(0.0, 150.0, 11), Vector(11, 1.0));

    // Two conditions under one label would silently merge their results
    // and warm-start lambdas; the spec must be rejected before any
    // simulation happens, with an error naming the clash.
    Experiment_spec dup;
    dup.conditions.resize(2);
    dup.conditions[0].name = "wildtype";
    dup.conditions[0].panel = {series};
    dup.conditions[1].name = "wildtype";
    dup.conditions[1].panel = {series};
    try {
        run_experiment(dup, vm);
        FAIL() << "expected duplicate-name rejection";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("duplicate condition name 'wildtype'"),
                  std::string::npos)
            << e.what();
    }

    // An unnamed condition resolves to its positional label, so an
    // explicit "condition1" colliding with it is rejected too.
    Experiment_spec positional;
    positional.conditions.resize(2);
    positional.conditions[0].name = "condition1";
    positional.conditions[0].panel = {series};
    positional.conditions[1].name = "";  // resolves to "condition1"
    positional.conditions[1].panel = {series};
    EXPECT_THROW(run_experiment(positional, vm), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
