// End-to-end: a 3-condition synthetic experiment through the experiment
// runner — kernels via the cache, per-condition Batch_engine solves,
// warm-started lambda selection, profile synchrony scores, and cold/warm
// determinism of the whole pipeline.
#include "core/experiment_runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "numerics/statistics.h"

namespace cellsync {
namespace {

Kernel_build_options small_kernel() {
    Kernel_build_options o;
    o.n_cells = 4000;
    o.n_bins = 80;
    o.seed = 11;
    return o;
}

Cell_cycle_config fast_config() {
    Cell_cycle_config c;
    c.mean_cycle_minutes = 120.0;
    return c;
}

/// Noiseless panel for one condition: a cycle-regulated gene, a sinusoid,
/// and a constitutive (flat) gene, pushed through the condition's kernel.
std::vector<Measurement_series> make_panel(const Cell_cycle_config& config,
                                           const Vector& times) {
    const Kernel_grid kernel =
        build_kernel(config, Smooth_volume_model{}, times, small_kernel());
    return {
        forward_measurements(kernel, ftsz_like_profile().f, "ftsZ-like"),
        forward_measurements(kernel, sinusoid_profile(3.0, 2.0).f, "sinusoid"),
        forward_measurements(kernel, constant_profile(4.0).f, "flat"),
    };
}

Experiment_spec make_spec() {
    const Vector times = linspace(0.0, 150.0, 11);
    Experiment_spec spec;
    spec.kernel = small_kernel();
    spec.basis_size = 14;
    spec.batch.lambda_grid = default_lambda_grid(7, 1e-6, 1e-1);
    spec.threads = 2;

    Experiment_condition wildtype;
    wildtype.name = "wildtype";
    wildtype.panel = make_panel(wildtype.cell_cycle, times);

    Experiment_condition fast;
    fast.name = "fast";
    fast.cell_cycle = fast_config();
    fast.panel = make_panel(fast.cell_cycle, times);

    // Same biology as wildtype (kernel must come from the cache, not a
    // third simulation), fresh data realization is unnecessary: reuse.
    Experiment_condition repeat = wildtype;
    repeat.name = "repeat";

    spec.conditions = {wildtype, fast, repeat};
    return spec;
}

TEST(ExperimentRunner, ThreeConditionExperimentEndToEnd) {
    const Experiment_spec spec = make_spec();
    Kernel_cache cache;
    const Experiment_result result = run_experiment(spec, Smooth_volume_model{}, cache);

    ASSERT_EQ(result.conditions.size(), 3u);
    for (const Condition_result& condition : result.conditions) {
        ASSERT_EQ(condition.genes.size(), 3u);
        for (const Batch_entry& gene : condition.genes) {
            EXPECT_TRUE(gene.estimate.has_value()) << condition.name << ": " << gene.error;
        }
        EXPECT_EQ(condition.synchrony.size(), 3u);
    }

    // Two distinct kernels; the third condition reuses the first's.
    EXPECT_EQ(result.cache_stats.builds, 2u);
    EXPECT_EQ(result.cache_stats.memory_hits, 1u);

    // Recovery of the cycle-regulated truth from noiseless data.
    const Gene_profile truth = ftsz_like_profile();
    const Vector grid = linspace(0.04, 0.96, 47);
    const Single_cell_estimate& ftsz = *result.conditions[0].genes[0].estimate;
    Vector recovered(grid.size()), expected(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        recovered[i] = ftsz(grid[i]);
        expected[i] = truth(grid[i]);
    }
    EXPECT_GT(pearson_correlation(recovered, expected), 0.95);

    // Synchrony scores separate regulated from constitutive expression.
    const Condition_result& wildtype = result.conditions[0];
    const Gene_synchrony& ftsz_scores = wildtype.synchrony[0];
    const Gene_synchrony& flat_scores = wildtype.synchrony[2];
    EXPECT_EQ(ftsz_scores.label, "ftsZ-like");
    EXPECT_EQ(flat_scores.label, "flat");
    EXPECT_GT(ftsz_scores.order_parameter, flat_scores.order_parameter);
    EXPECT_LT(ftsz_scores.entropy, flat_scores.entropy);
    EXPECT_GT(flat_scores.entropy, 0.9);
    EXPECT_NEAR(ftsz_scores.peak_phi, 0.40, 0.10);
    EXPECT_GT(wildtype.mean_order_parameter, 0.0);
    EXPECT_GT(wildtype.mean_entropy, 0.0);
}

TEST(ExperimentRunner, WarmStartKeepsLambdaNearPreviousCondition) {
    const Experiment_spec spec = make_spec();
    const Experiment_result result = run_experiment(spec, Smooth_volume_model{});
    for (std::size_t g = 0; g < 3; ++g) {
        const Batch_entry& before = result.conditions[0].genes[g];
        const Batch_entry& after = result.conditions[1].genes[g];
        ASSERT_TRUE(before.estimate.has_value());
        ASSERT_TRUE(after.estimate.has_value());
        // The narrowed grid spans +/- warm_grid_decades around the
        // previous selection.
        const double decades =
            std::abs(std::log10(after.lambda) - std::log10(before.lambda));
        EXPECT_LE(decades, spec.warm_grid_decades + 1e-9)
            << before.label << ": " << before.lambda << " -> " << after.lambda;
    }
}

TEST(ExperimentRunner, ColdAndWarmCacheRunsAreBitIdentical) {
    const std::string dir =
        testing::TempDir() + "cellsync_experiment_runner_cache";
    std::filesystem::remove_all(dir);
    const Experiment_spec spec = make_spec();

    Kernel_cache cold_cache(dir);
    const Experiment_result cold = run_experiment(spec, Smooth_volume_model{}, cold_cache);
    EXPECT_EQ(cold_cache.stats().builds, 2u);

    // Fresh cache instance on the same directory: every kernel must come
    // from disk, and every coefficient must match the cold run exactly.
    Kernel_cache warm_cache(dir);
    const Experiment_result warm = run_experiment(spec, Smooth_volume_model{}, warm_cache);
    EXPECT_EQ(warm_cache.stats().builds, 0u);
    EXPECT_EQ(warm_cache.stats().disk_hits, 2u);

    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t g = 0; g < 3; ++g) {
            const Batch_entry& a = cold.conditions[c].genes[g];
            const Batch_entry& b = warm.conditions[c].genes[g];
            ASSERT_TRUE(a.estimate.has_value());
            ASSERT_TRUE(b.estimate.has_value());
            EXPECT_EQ(a.lambda, b.lambda);
            const Vector& ca = a.estimate->coefficients();
            const Vector& cb = b.estimate->coefficients();
            ASSERT_EQ(ca.size(), cb.size());
            for (std::size_t i = 0; i < ca.size(); ++i) {
                EXPECT_EQ(ca[i], cb[i])
                    << "condition " << c << " gene " << g << " coefficient " << i;
            }
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(ExperimentRunner, ValidationErrors) {
    const Smooth_volume_model vm;
    Experiment_spec empty;
    EXPECT_THROW(run_experiment(empty, vm), std::invalid_argument);

    Experiment_spec bad_panel;
    bad_panel.conditions.resize(1);
    bad_panel.conditions[0].name = "empty";
    EXPECT_THROW(run_experiment(bad_panel, vm), std::invalid_argument);

    // Series on different time grids within one condition.
    Experiment_spec mismatched;
    mismatched.conditions.resize(1);
    Measurement_series a = Measurement_series::with_unit_sigma(
        "a", linspace(0.0, 150.0, 11), Vector(11, 1.0));
    Measurement_series b = Measurement_series::with_unit_sigma(
        "b", linspace(0.0, 120.0, 11), Vector(11, 1.0));
    mismatched.conditions[0].panel = {a, b};
    EXPECT_THROW(run_experiment(mismatched, vm), std::invalid_argument);
}

TEST(ExperimentRunner, DuplicateConditionNamesRejected) {
    const Smooth_volume_model vm;
    const Measurement_series series = Measurement_series::with_unit_sigma(
        "gene", linspace(0.0, 150.0, 11), Vector(11, 1.0));

    // Two conditions under one label would silently merge their results
    // and warm-start lambdas; the spec must be rejected before any
    // simulation happens, with an error naming the clash.
    Experiment_spec dup;
    dup.conditions.resize(2);
    dup.conditions[0].name = "wildtype";
    dup.conditions[0].panel = {series};
    dup.conditions[1].name = "wildtype";
    dup.conditions[1].panel = {series};
    try {
        run_experiment(dup, vm);
        FAIL() << "expected duplicate-name rejection";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("duplicate condition name 'wildtype'"),
                  std::string::npos)
            << e.what();
    }

    // An unnamed condition resolves to its positional label, so an
    // explicit "condition1" colliding with it is rejected too.
    Experiment_spec positional;
    positional.conditions.resize(2);
    positional.conditions[0].name = "condition1";
    positional.conditions[0].panel = {series};
    positional.conditions[1].name = "";  // resolves to "condition1"
    positional.conditions[1].panel = {series};
    EXPECT_THROW(run_experiment(positional, vm), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
