#include "population/kernel_builder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "spline/spline_basis.h"

namespace cellsync {
namespace {

Kernel_build_options small_options() {
    Kernel_build_options o;
    o.n_cells = 20000;
    o.n_bins = 100;
    o.seed = 31;
    return o;
}

TEST(KernelGrid, ConstructorValidatesShapes) {
    const Vector times{0.0, 10.0};
    const Vector centers{0.25, 0.75};
    Matrix q(2, 2, 1.0);  // each row: density 1 everywhere = integrates to 1
    EXPECT_NO_THROW(Kernel_grid(times, centers, q));
    EXPECT_THROW(Kernel_grid({}, centers, q), std::invalid_argument);
    EXPECT_THROW(Kernel_grid(times, centers, Matrix(3, 2, 1.0)), std::invalid_argument);
    // Row not integrating to 1:
    Matrix bad(2, 2, 2.0);
    EXPECT_THROW(Kernel_grid(times, centers, bad), std::invalid_argument);
    // Negative density:
    Matrix neg(2, 2, 1.0);
    neg(0, 0) = -1.0;
    neg(0, 1) = 3.0;
    EXPECT_THROW(Kernel_grid(times, centers, neg), std::invalid_argument);
}

TEST(KernelGrid, SmallRowMassDriftIsRenormalizedNotRejected) {
    // Regression: a fixed 1e-6 row-mass gate rejected valid high-resolution
    // kernels whose summation rounding scales with n_bins. A uniform row
    // carrying a 5e-6 relative drift at 8000 bins is within the scaled
    // tolerance (1e-9 * n_bins = 8e-6) and must be renormalized, not thrown.
    const std::size_t bins = 8000;
    Vector centers(bins);
    for (std::size_t b = 0; b < bins; ++b) {
        centers[b] = (static_cast<double>(b) + 0.5) / static_cast<double>(bins);
    }
    const double drift = 1.0 + 5e-6;
    Matrix q(2, bins, drift);  // each row mass = 1 + 5e-6
    const Kernel_grid k({0.0, 10.0}, centers, q);
    for (std::size_t m = 0; m < 2; ++m) {
        double mass = 0.0;
        for (std::size_t b = 0; b < bins; ++b) mass += k.q()(m, b) * k.bin_width();
        EXPECT_NEAR(mass, 1.0, 1e-12) << "row " << m << " not renormalized";
    }
}

TEST(KernelGrid, GenuinelyNonNormalizableRowsStillHardError) {
    const Vector times{0.0, 10.0};
    const Vector centers{0.25, 0.75};
    // Mass far from 1.
    EXPECT_THROW(Kernel_grid(times, centers, Matrix(2, 2, 1.5)), std::invalid_argument);
    // Zero mass cannot be renormalized.
    EXPECT_THROW(Kernel_grid(times, centers, Matrix(2, 2, 0.0)), std::invalid_argument);
}

TEST(KernelGrid, ExactRowsSurviveRoundTripBitIdentically) {
    // Rows already at unit mass within the rounding floor must not be
    // touched: renormalizing them would perturb entries by an ulp-scale
    // factor and break serialize/load bit-identity.
    const std::size_t bins = 50;
    Vector centers(bins);
    Vector row(bins);
    double mass = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
        centers[b] = (static_cast<double>(b) + 0.5) / static_cast<double>(bins);
        row[b] = 1.0 + 0.5 * std::sin(2.0 * 3.141592653589793 * centers[b]);
        mass += row[b] / static_cast<double>(bins);
    }
    for (std::size_t b = 0; b < bins; ++b) row[b] /= mass;  // normalize once
    Matrix q(1, bins);
    q.set_row(0, row);
    const Kernel_grid first({0.0}, centers, q);
    const Kernel_grid second({0.0}, first.phi_centers(), first.q());
    for (std::size_t b = 0; b < bins; ++b) {
        EXPECT_EQ(first.q()(0, b), second.q()(0, b)) << "bin " << b;
    }
}

TEST(BuildKernel, RowsIntegrateToOneAtAllTimes) {
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Kernel_grid k = build_kernel(config, vm, linspace(0.0, 180.0, 13), small_options());
    EXPECT_EQ(k.time_count(), 13u);
    EXPECT_EQ(k.bin_count(), 100u);
    for (std::size_t m = 0; m < k.time_count(); ++m) {
        double mass = 0.0;
        for (std::size_t b = 0; b < k.bin_count(); ++b) mass += k.q()(m, b) * k.bin_width();
        EXPECT_NEAR(mass, 1.0, 1e-9) << "time " << k.times()[m];
    }
}

TEST(BuildKernel, InitialKernelConcentratedInSwarmerStage) {
    // At t=0 a synchronized culture has all cells below their phi_sst
    // (~0.15), so virtually all kernel mass sits at low phase.
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Kernel_grid k = build_kernel(config, vm, {0.0, 75.0}, small_options());
    double low_mass = 0.0;
    for (std::size_t b = 0; b < k.bin_count(); ++b) {
        if (k.phi_centers()[b] < 0.25) low_mass += k.q()(0, b) * k.bin_width();
    }
    EXPECT_GT(low_mass, 0.99);
}

TEST(BuildKernel, KernelSpreadsWithTime) {
    // Asynchrony grows: the phase spread at 150 min far exceeds t=0.
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Kernel_grid k = build_kernel(config, vm, {0.0, 150.0}, small_options());
    auto spread = [&](std::size_t row) {
        double mean_phi = 0.0;
        for (std::size_t b = 0; b < k.bin_count(); ++b) {
            mean_phi += k.phi_centers()[b] * k.q()(row, b) * k.bin_width();
        }
        double var = 0.0;
        for (std::size_t b = 0; b < k.bin_count(); ++b) {
            const double d = k.phi_centers()[b] - mean_phi;
            var += d * d * k.q()(row, b) * k.bin_width();
        }
        return std::sqrt(var);
    };
    EXPECT_GT(spread(1), 3.0 * spread(0));
}

TEST(BuildKernel, ConstantProfileIsFixedPoint) {
    // G(t) = integral Q * c = c at every time: deconvolution's sanity
    // anchor (concentration is volume-normalized).
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Kernel_grid k = build_kernel(config, vm, linspace(0.0, 180.0, 7), small_options());
    const Vector g = k.apply([](double) { return 3.7; });
    for (double v : g) EXPECT_NEAR(v, 3.7, 1e-9);
}

TEST(BuildKernel, ApplySampledMatchesApply) {
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Kernel_grid k = build_kernel(config, vm, {0.0, 60.0}, small_options());
    const auto f = [](double phi) { return 1.0 + phi * phi; };
    Vector fv(k.bin_count());
    for (std::size_t b = 0; b < k.bin_count(); ++b) fv[b] = f(k.phi_centers()[b]);
    const Vector g1 = k.apply(f);
    const Vector g2 = k.apply_sampled(fv);
    for (std::size_t m = 0; m < g1.size(); ++m) EXPECT_DOUBLE_EQ(g1[m], g2[m]);
    EXPECT_THROW(k.apply_sampled(Vector(3, 1.0)), std::invalid_argument);
}

TEST(BuildKernel, BasisMatrixConsistentWithApply) {
    // K alpha must equal apply(f_alpha) for any coefficients.
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Kernel_grid k = build_kernel(config, vm, linspace(0.0, 120.0, 5), small_options());
    const auto basis = Natural_spline_basis(8);
    const Matrix km = k.basis_matrix(basis);
    EXPECT_EQ(km.rows(), 5u);
    EXPECT_EQ(km.cols(), 8u);
    Vector alpha(8);
    for (std::size_t i = 0; i < 8; ++i) alpha[i] = 1.0 + std::sin(static_cast<double>(i));
    const Vector via_matrix = km * alpha;
    const Vector via_apply = k.apply([&](double phi) { return basis.expand(alpha, phi); });
    for (std::size_t m = 0; m < 5; ++m) EXPECT_NEAR(via_matrix[m], via_apply[m], 1e-10);
}

TEST(BuildKernel, DeterministicGivenSeed) {
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Kernel_grid a = build_kernel(config, vm, {0.0, 90.0}, small_options());
    const Kernel_grid b = build_kernel(config, vm, {0.0, 90.0}, small_options());
    for (std::size_t m = 0; m < a.time_count(); ++m) {
        for (std::size_t c = 0; c < a.bin_count(); ++c) {
            EXPECT_DOUBLE_EQ(a.q()(m, c), b.q()(m, c));
        }
    }
}

TEST(BuildKernel, ValidationErrors) {
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    EXPECT_THROW(build_kernel(config, vm, {}, small_options()), std::invalid_argument);
    EXPECT_THROW(build_kernel(config, vm, {-1.0, 10.0}, small_options()),
                 std::invalid_argument);
    EXPECT_THROW(build_kernel(config, vm, {10.0, 5.0}, small_options()),
                 std::invalid_argument);
    Kernel_build_options bad = small_options();
    bad.n_cells = 0;
    EXPECT_THROW(build_kernel(config, vm, {0.0, 10.0}, bad), std::invalid_argument);
    bad = small_options();
    bad.n_bins = 0;
    EXPECT_THROW(build_kernel(config, vm, {0.0, 10.0}, bad), std::invalid_argument);
}

TEST(BuildKernel, VolumeModelChangesKernel) {
    // The two models differ only on the swarmer stage [0, phi_sst), so
    // probe a time early enough that most cells are still swarmers.
    const Cell_cycle_config config;
    const Kernel_grid smooth =
        build_kernel(config, Smooth_volume_model{}, {6.0}, small_options());
    const Kernel_grid linear =
        build_kernel(config, Linear_volume_model{}, {6.0}, small_options());
    double diff = 0.0;
    for (std::size_t b = 0; b < smooth.bin_count(); ++b) {
        diff += std::abs(smooth.q()(0, b) - linear.q()(0, b)) * smooth.bin_width();
    }
    EXPECT_GT(diff, 1e-4);  // same cells, different volume weighting
}

}  // namespace
}  // namespace cellsync
