// Statistical validation of the population simulator against semi-analytic
// expectations that hold before the first division wave.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/special.h"
#include "numerics/statistics.h"
#include "population/phase_distribution.h"
#include "population/population_simulator.h"

namespace cellsync {
namespace {

// Before any cell reaches phi = 1, the population size is constant and the
// phase of cell k is phi0_k + t / T_k — everything is analytic in the
// draw distributions.

TEST(PopulationStatistics, SizeConstantBeforeFirstDivision) {
    // Earliest division: T >= 0.2 * 150 = 30 min, phi0 <= phi_sst, so no
    // divisions strictly before t = 30 * (1 - 0.95) ... conservatively use
    // t = 20: a cell dividing by then needs T(1 - phi0) <= 20, i.e.
    // T <= 20/(1-0.95) with extreme draws — possible but essentially never
    // with truncation at 0.2*mean. Check exactness at t = 10.
    Population_simulator sim(Cell_cycle_config{}, 30000, 71);
    const std::size_t n0 = sim.size();
    sim.advance_to(10.0);
    EXPECT_EQ(sim.size(), n0);
}

TEST(PopulationStatistics, MeanPhaseAdvancesAtMeanInverseCycleRate) {
    const Cell_cycle_config config;
    Population_simulator sim(config, 60000, 72);
    const Smooth_volume_model vm;

    auto mean_phase = [&]() {
        const auto snap = sim.snapshot(vm);
        double s = 0.0;
        for (const Snapshot_entry& e : snap) s += e.phi;
        return s / static_cast<double>(snap.size());
    };

    const double phase0 = mean_phase();
    // Initial phases are Uniform(0, phi_sst_k): mean ~ mu_sst / 2.
    EXPECT_NEAR(phase0, config.mu_sst / 2.0, 0.003);

    sim.advance_to(20.0);
    const double phase20 = mean_phase();
    // d<phi>/dt = E[1/T]; for Normal(150, 18) truncated, E[1/T] ~
    // (1/mu)(1 + cv^2) to second order.
    const double cv = config.cv_cycle;
    const double expected_rate = (1.0 + cv * cv) / config.mean_cycle_minutes;
    EXPECT_NEAR(phase20 - phase0, 20.0 * expected_rate, 0.002);
}

TEST(PopulationStatistics, PhaseSpreadGrowsLinearlambdaEarly) {
    // Var(phi(t)) = Var(phi0) + t^2 Var(1/T): the early-time spread grows
    // with t, dominated by cycle-time variability.
    Population_simulator sim(Cell_cycle_config{}, 60000, 73);
    const Smooth_volume_model vm;
    auto phase_sd = [&]() {
        const auto snap = sim.snapshot(vm);
        Vector phis(snap.size());
        for (std::size_t i = 0; i < snap.size(); ++i) phis[i] = snap[i].phi;
        return stddev(phis);
    };
    const double sd0 = phase_sd();
    sim.advance_to(25.0);
    const double sd25 = phase_sd();
    EXPECT_GT(sd25, sd0);
    // Predicted: sqrt(Var(phi0) + (25 * sd(1/T))^2). sd(1/T) ~ cv/mu.
    const Cell_cycle_config config;
    const double sd_invT = config.cv_cycle / config.mean_cycle_minutes;
    const double predicted = std::sqrt(sd0 * sd0 + 25.0 * 25.0 * sd_invT * sd_invT);
    EXPECT_NEAR(sd25, predicted, 0.005);
}

TEST(PopulationStatistics, TransitionPhasesMatchConfiguredGaussian) {
    const Cell_cycle_config config;
    Population_simulator sim(config, 50000, 74);
    const Smooth_volume_model vm;
    const auto snap = sim.snapshot(vm);
    Vector phi_sst(snap.size());
    for (std::size_t i = 0; i < snap.size(); ++i) phi_sst[i] = snap[i].phi_sst;
    EXPECT_NEAR(mean(phi_sst), config.mu_sst, 0.001);
    EXPECT_NEAR(stddev(phi_sst), config.sigma_sst(), 0.001);
    // Gaussian shape check at the quartiles.
    EXPECT_NEAR(quantile(phi_sst, 0.25),
                config.mu_sst + config.sigma_sst() * gaussian_quantile(0.25), 0.001);
    EXPECT_NEAR(quantile(phi_sst, 0.75),
                config.mu_sst + config.sigma_sst() * gaussian_quantile(0.75), 0.001);
}

TEST(PopulationStatistics, LongRunSizeGrowthApproachesDoublingPerCycle) {
    // Over several cycles an asynchronous population doubles once per mean
    // cycle time (within a tolerance covering the synchronized start's
    // transient and cycle-time dispersion).
    Population_simulator sim(Cell_cycle_config{}, 20000, 75);
    const double horizon = 450.0;  // three mean cycles
    sim.advance_to(horizon);
    const double growth = static_cast<double>(sim.size()) / 20000.0;
    const double doublings = std::log2(growth);
    EXPECT_NEAR(doublings, horizon / 150.0, 0.35);
}

TEST(PopulationStatistics, VolumeDensityIsNumberDensityReweighted) {
    // Q(phi) must equal n(phi) * v(phi) / integral(n v): check on a
    // mid-experiment snapshot, bin by bin.
    Population_simulator sim(Cell_cycle_config{}, 60000, 76);
    sim.advance_to(100.0);
    const Smooth_volume_model vm;
    const auto snap = sim.snapshot(vm);
    const std::size_t bins = 40;
    const Phase_density number = phase_number_density(snap, bins);
    const Phase_density volume = phase_volume_density(snap, bins);

    // Per-bin mean volume from the snapshot.
    Vector bin_volume(bins, 0.0), bin_count(bins, 0.0);
    for (const Snapshot_entry& e : snap) {
        auto b = static_cast<std::size_t>(std::min(e.phi, 0.999999) * bins);
        bin_volume[b] += e.relative_volume;
        bin_count[b] += 1.0;
    }
    double normalization = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
        if (bin_count[b] > 0.0) {
            normalization += number.density[b] * (bin_volume[b] / bin_count[b]) *
                             number.bin_width;
        }
    }
    for (std::size_t b = 0; b < bins; ++b) {
        if (bin_count[b] < 50.0) continue;  // skip statistically empty bins
        const double expected =
            number.density[b] * (bin_volume[b] / bin_count[b]) / normalization;
        EXPECT_NEAR(volume.density[b], expected, 0.02 * std::max(1.0, expected))
            << "bin " << b;
    }
}

}  // namespace
}  // namespace cellsync
