// Integration tests: the full forward -> deconvolve round trip across a
// family of single-cell profiles and noise conditions (the paper's Sec 4.1
// validation protocol), plus the headline Figure 2/3 and Figure 5 claims.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "biology/gene_profiles.h"
#include "core/cross_validation.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"
#include "io/expression_data.h"
#include "models/lotka_volterra.h"
#include "numerics/interpolation.h"
#include "numerics/statistics.h"

namespace cellsync {
namespace {

// One shared kernel for the whole file.
class EndToEnd {
  public:
    static const Kernel_grid& kernel() {
        static const Kernel_grid k = [] {
            Kernel_build_options options;
            options.n_cells = 40000;
            options.n_bins = 150;
            options.seed = 1105;  // arXiv month of the paper
            return build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                linspace(0.0, 180.0, 13), options);
        }();
        return k;
    }

    static const Deconvolver& deconvolver() {
        static const Deconvolver d(std::make_shared<Natural_spline_basis>(16), kernel(),
                                   Cell_cycle_config{});
        return d;
    }
};

Gene_profile profile_by_name(const std::string& name) {
    if (name == "sinusoid") return sinusoid_profile(3.0, 2.0);
    if (name == "pulse") return pulse_profile(0.5, 6.0, 0.45, 0.18);
    if (name == "step") return step_profile(1.0, 6.0, 0.5, 0.25);
    if (name == "ftsz") return ftsz_like_profile();
    if (name == "two-cycle") return sinusoid_profile(4.0, 1.5, 2.0);
    throw std::invalid_argument("unknown profile " + name);
}

// Round-trip recovery across (profile, noise level) pairs. The recovery
// bound loosens with noise; interior grid avoids the ill-posed endpoints.
using RoundTripParam = std::tuple<std::string, double>;

class RoundTrip : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(RoundTrip, RecoversSingleCellProfile) {
    const auto& [name, noise_level] = GetParam();
    const Gene_profile truth = profile_by_name(name);

    Rng rng(std::hash<std::string>{}(name) % 1000 + 7);
    Measurement_series data;
    if (noise_level == 0.0) {
        data = forward_measurements(EndToEnd::kernel(), truth.f, name);
    } else {
        const Noise_model noise{Noise_type::relative_gaussian, noise_level};
        data = forward_measurements_noisy(EndToEnd::kernel(), truth.f, noise, rng, name);
    }

    const Lambda_selection sel =
        select_lambda_kfold(EndToEnd::deconvolver(), data, Deconvolution_options{},
                            default_lambda_grid(11, 1e-7, 1e0), 5);
    Deconvolution_options options;
    options.lambda = sel.best_lambda;
    const Single_cell_estimate estimate = EndToEnd::deconvolver().estimate(data, options);

    const Vector grid = linspace(0.04, 0.96, 47);
    const Vector recovered = estimate.sample(grid);
    const Vector expected = truth.sample(grid);

    const double corr = pearson_correlation(recovered, expected);
    const double err = nrmse(recovered, expected);
    // The step profile's sharp edge is the hardest shape for a smoothing
    // deconvolution (spectral truncation smears it), so it gets looser
    // bounds; everything else must recover tightly.
    const bool hard = (name == "step");
    const double corr_floor = noise_level == 0.0 ? (hard ? 0.93 : 0.97) : (hard ? 0.75 : 0.90);
    const double err_ceiling = noise_level == 0.0 ? (hard ? 0.17 : 0.10) : (hard ? 0.50 : 0.20);
    EXPECT_GT(corr, corr_floor) << name << " @ noise " << noise_level;
    EXPECT_LT(err, err_ceiling) << name << " @ noise " << noise_level;

    // Physical invariants hold regardless of noise.
    for (double phi = 0.0; phi <= 1.0; phi += 0.02) {
        EXPECT_GE(estimate(phi), -1e-7);
    }
}

std::string round_trip_label(const ::testing::TestParamInfo<RoundTripParam>& info) {
    std::string label = std::get<0>(info.param);
    label += std::get<1>(info.param) == 0.0 ? "_noiseless" : "_noisy10";
    for (char& c : label) {
        if (c == '-') c = '_';
    }
    return label;
}

INSTANTIATE_TEST_SUITE_P(
    ProfileNoiseSweep, RoundTrip,
    ::testing::Combine(::testing::Values("sinusoid", "pulse", "step", "ftsz", "two-cycle"),
                       ::testing::Values(0.0, 0.10)),
    round_trip_label);

TEST(EndToEndLotkaVolterra, Figure2NoiselessRecovery) {
    // The Fig 2 protocol: LV single-cell truth -> population -> deconvolve.
    const Lotka_volterra_params lv = paper_lv_params(150.0);
    const Gene_profile x1 = lotka_volterra_profile(lv, 0, 150.0);
    const Measurement_series g1 = forward_measurements(EndToEnd::kernel(), x1.f, "x1");

    const Lambda_selection sel =
        select_lambda_kfold(EndToEnd::deconvolver(), g1, Deconvolution_options{},
                            default_lambda_grid(11, 1e-7, 1e0), 5);
    Deconvolution_options options;
    options.lambda = sel.best_lambda;
    const Single_cell_estimate estimate = EndToEnd::deconvolver().estimate(g1, options);

    const Vector grid = linspace(0.05, 0.95, 31);
    EXPECT_GT(pearson_correlation(estimate.sample(grid), x1.sample(grid)), 0.95);

    // The deconvolved profile must beat the raw population series as an
    // approximation of the single-cell truth (the figure's whole point).
    Vector population_as_profile(grid.size());
    const Linear_interpolant pop_interp(g1.times, g1.values);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        population_as_profile[i] = pop_interp(grid[i] * 150.0);
    }
    const double err_deconv = rmse(estimate.sample(grid), x1.sample(grid));
    const double err_population = rmse(population_as_profile, x1.sample(grid));
    EXPECT_LT(err_deconv, err_population);
}

TEST(EndToEndFtsz, Figure5DelayResolvedAndPostPeakDrop) {
    // Deconvolve the embedded ftsZ dataset and check the two published
    // findings: (1) the transcription delay before the SW->ST transition is
    // visible in f(phi) though invisible in G(t); (2) expression drops
    // after its peak with no subsequent rise, while raw G(t) rises at the
    // experiment's tail.
    const Measurement_series data = ftsz_population_dataset();
    Kernel_build_options kernel_options;
    kernel_options.n_cells = 40000;
    kernel_options.n_bins = 150;
    kernel_options.seed = 31415;
    const Kernel_grid kernel = build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                            data.times, kernel_options);
    const Deconvolver deconvolver(std::make_shared<Natural_spline_basis>(16), kernel,
                                  Cell_cycle_config{});
    const Lambda_selection sel =
        select_lambda_kfold(deconvolver, data, Deconvolution_options{},
                            default_lambda_grid(11, 1e-6, 1e0), 5);
    Deconvolution_options options;
    options.lambda = sel.best_lambda;
    const Single_cell_estimate f = deconvolver.estimate(data, options);

    // (1) Delay: before the SW->ST transition the profile sits on its low
    // plateau (the microarray background), far below the peak. The
    // criteria are expressed relative to the recovered range because the
    // synthetic dataset carries a documented +2.0 background term.
    double peak = 0.0, peak_phi = 0.0;
    double floor = 1e18;
    for (double phi = 0.0; phi <= 1.0; phi += 0.005) {
        const double v = f(phi);
        if (v > peak) {
            peak = v;
            peak_phi = phi;
        }
        floor = std::min(floor, v);
    }
    const double range = peak - floor;
    ASSERT_GT(range, 1.0);
    EXPECT_LT(f(0.05) - floor, 0.25 * range);
    EXPECT_LT(f(0.10) - floor, 0.30 * range);

    // Peak lands near phi ~ 0.4 (generation truth; tolerance for noise).
    EXPECT_NEAR(peak_phi, 0.40, 0.12);

    // (2) Post-peak drop: late expression well below peak...
    EXPECT_LT(f(0.85) - floor, 0.6 * range);
    // ...even though the raw population data rises toward the tail
    // (135 -> 150 min in the embedded series).
    EXPECT_GT(data.values.back(), data.values[9]);
}

TEST(EndToEndBaselines, ConstrainedEstimatorBeatsUnconstrainedUnderNoise) {
    // The physical constraints are a prior: on any single noise draw either
    // estimator can win, so compare average recovery error over several
    // independent realizations.
    const Gene_profile truth = ftsz_like_profile();
    const Noise_model noise{Noise_type::relative_gaussian, 0.10};
    const Vector grid = linspace(0.0, 1.0, 101);
    const Vector expected = truth.sample(grid);

    Deconvolution_options options;
    options.lambda = 1e-4;
    double err_constrained = 0.0;
    double err_unconstrained = 0.0;
    const int realizations = 6;
    for (int seed = 0; seed < realizations; ++seed) {
        Rng rng(71 + static_cast<std::uint64_t>(seed));
        const Measurement_series data =
            forward_measurements_noisy(EndToEnd::kernel(), truth.f, noise, rng);
        err_constrained +=
            rmse(EndToEnd::deconvolver().estimate(data, options).sample(grid), expected);
        err_unconstrained += rmse(
            EndToEnd::deconvolver().estimate_unconstrained(data, options.lambda).sample(grid),
            expected);
    }
    EXPECT_LE(err_constrained, err_unconstrained * 1.02);
}

TEST(EndToEndSmallData, FewMeasurementsStillWellPosed) {
    // Nm = 5 with 16 basis functions: heavily underdetermined, held up by
    // the regularizer and constraints.
    Kernel_build_options options;
    options.n_cells = 20000;
    options.n_bins = 100;
    options.seed = 2;
    const Kernel_grid kernel = build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                            linspace(0.0, 160.0, 5), options);
    const Deconvolver deconvolver(std::make_shared<Natural_spline_basis>(16), kernel,
                                  Cell_cycle_config{});
    const Gene_profile truth = sinusoid_profile(3.0, 1.5);
    const Measurement_series data = forward_measurements(kernel, truth.f);
    Deconvolution_options dopt;
    dopt.lambda = 1e-3;
    const Single_cell_estimate estimate = deconvolver.estimate(data, dopt);
    // Not expected to be sharp, but it must be finite, positive, and
    // capture the gross shape.
    const Vector grid = linspace(0.1, 0.9, 17);
    EXPECT_TRUE(all_finite(estimate.sample(grid)));
    EXPECT_GT(pearson_correlation(estimate.sample(grid), truth.sample(grid)), 0.6);
}

}  // namespace
}  // namespace cellsync
