// Concurrency stress tests — the workload the TSan CI leg exists for.
//
// Each test hammers one of the lock-protected seams (Worker_pool's
// run-generation handoff, Kernel_cache's shared in-flight resolutions,
// Stream_session's run serialization) with more contention than any
// normal workload produces, then asserts the determinism contract still
// holds: bit-identical results against a serial reference. Under
// -fsanitize=thread these tests turn latent ordering bugs into hard
// reports; under a plain build they still pin the sharing/bit-identity
// semantics. Sizes are deliberately small so the whole file stays fast
// under TSan's ~10x slowdown on a single core.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "core/task_graph.h"
#include "core/worker_pool.h"
#include "population/kernel_cache.h"
#include "spline/spline_basis.h"
#include "stream/stream_session.h"

namespace cellsync {
namespace {

Kernel_build_options tiny_options(std::uint64_t seed = 7) {
    Kernel_build_options o;
    o.n_cells = 2000;
    o.n_bins = 40;
    o.seed = seed;
    return o;
}

/// Spin barrier: release every participant at once so the calls under
/// test actually overlap instead of serializing on thread start-up.
void arrive_and_wait(std::atomic<int>& arrivals, int expected) {
    arrivals.fetch_add(1);
    while (arrivals.load() < expected) std::this_thread::yield();
}

// ---------------------------------------------------------------------
// Worker_pool: run-generation churn.
//
// Every run() bumps the pool's generation and re-publishes graph state;
// a worker descheduled between waking and claiming must never touch a
// later run's state (or the by-then-destroyed graph of its own run).
// Back-to-back runs of short graphs maximize the window where workers
// from run N are still draining while the caller is publishing run N+1.
// ---------------------------------------------------------------------

TEST(ConcurrencyStress, WorkerPoolGenerationChurn) {
    Worker_pool pool(4);
    constexpr std::size_t kSlots = 16;
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<double> a(kSlots, 0.0);
        std::vector<double> b(kSlots, 0.0);
        Task_graph graph;
        const Task_graph::Node_id first = graph.add_node(
            "fill", kSlots, [&a, iter](std::size_t i) {
                a[i] = static_cast<double>(i) + iter;
            });
        const Task_graph::Node_id barrier = graph.add_node("barrier", 0, {}, {first});
        graph.add_node(
            "double", kSlots, [&a, &b](std::size_t i) { b[i] = 2.0 * a[i]; },
            {barrier});
        pool.run(graph);
        for (std::size_t i = 0; i < kSlots; ++i) {
            ASSERT_EQ(a[i], static_cast<double>(i) + iter) << "iter " << iter;
            ASSERT_EQ(b[i], 2.0 * a[i]) << "iter " << iter;
        }
    }
}

TEST(ConcurrencyStress, WorkerPoolSurvivesThrowingRunsBetweenCleanOnes) {
    // A throwing node still drains, cancels its dependents, and must
    // leave the pool reusable: the next generation starts from a clean
    // scheduler state with the same worker threads.
    Worker_pool pool(4);
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<int> ran(8, 0);
        Task_graph graph;
        const Task_graph::Node_id boom = graph.add_node(
            "boom", 8, [&ran](std::size_t i) {
                ran[i] = 1;
                if (i == 3) throw std::runtime_error("stress failure");
            });
        graph.add_node(
            "cancelled", 8, [](std::size_t) { FAIL() << "dependent of a failed node ran"; },
            {boom});
        EXPECT_THROW(pool.run(graph), std::runtime_error);
        for (std::size_t i = 0; i < ran.size(); ++i) {
            EXPECT_EQ(ran[i], 1) << "failed node left index " << i << " undrained";
        }

        std::vector<double> out(8, 0.0);
        pool.parallel_for(out.size(),
                          [&out](std::size_t i) { out[i] = static_cast<double>(i); });
        for (std::size_t i = 0; i < out.size(); ++i) {
            ASSERT_EQ(out[i], static_cast<double>(i)) << "iter " << iter;
        }
    }
}

TEST(ConcurrencyStress, WorkerPoolConstructionTeardownChurn) {
    // Start-up and shutdown race the same generation/stopping flags the
    // runs do: a worker must see `stopping_` even if the pool is torn
    // down before it ever claims work.
    for (int iter = 0; iter < 40; ++iter) {
        Worker_pool pool(3);
        if (iter % 2 == 0) {
            std::vector<double> out(4, 0.0);
            pool.parallel_for(out.size(),
                              [&out](std::size_t i) { out[i] = static_cast<double>(i + 1); });
            ASSERT_EQ(out[3], 4.0);
        }
        // odd iterations: destroy without ever running
    }
}

// ---------------------------------------------------------------------
// Kernel_cache: N threads joining one in-flight async build.
// ---------------------------------------------------------------------

TEST(ConcurrencyStress, AsyncJoinersShareOneKernelBuild) {
    Kernel_cache cache;
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 30.0, 60.0};

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const Kernel_grid>> grids(kThreads);
    std::atomic<int> arrivals{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            arrive_and_wait(arrivals, kThreads);
            grids[t] = cache.get_or_build_async(config, vm, times, tiny_options()).get();
        });
    }
    for (std::thread& thread : threads) thread.join();

    // Exactly one simulation ran; every thread holds the same grid.
    ASSERT_NE(grids[0], nullptr);
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(grids[t].get(), grids[0].get()) << "thread " << t;
    }
    const Kernel_cache_stats stats = cache.stats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.memory_hits, static_cast<std::size_t>(kThreads - 1));
    EXPECT_EQ(stats.disk_hits, 0u);

    // Determinism contract: the shared resolution is bit-identical to an
    // uncontended serial build of the same tuple.
    Kernel_cache serial;
    const auto reference = serial.get_or_build(config, vm, times, tiny_options());
    ASSERT_EQ(reference->time_count(), grids[0]->time_count());
    ASSERT_EQ(reference->bin_count(), grids[0]->bin_count());
    for (std::size_t m = 0; m < reference->time_count(); ++m) {
        for (std::size_t c = 0; c < reference->bin_count(); ++c) {
            ASSERT_EQ(reference->q()(m, c), grids[0]->q()(m, c))
                << "entry (" << m << ", " << c << ")";
        }
    }
}

TEST(ConcurrencyStress, AbandonedAsyncRequestIsResolvedByLaterJoiners) {
    // A request dropped without get() leaves its shared state in flight;
    // joiners racing on the same key must elect one resolver among
    // themselves and all land on one grid.
    Kernel_cache cache;
    const Cell_cycle_config config;
    const Smooth_volume_model vm;
    const Vector times{0.0, 45.0};

    {
        Kernel_cache::Async_request dropped =
            cache.get_or_build_async(config, vm, times, tiny_options(11));
        EXPECT_TRUE(dropped.valid());
        // never calls get()
    }
    EXPECT_EQ(cache.stats().builds, 0u);

    constexpr int kThreads = 6;
    std::vector<std::shared_ptr<const Kernel_grid>> grids(kThreads);
    std::atomic<int> arrivals{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            arrive_and_wait(arrivals, kThreads);
            grids[t] =
                cache.get_or_build_async(config, vm, times, tiny_options(11)).get();
        });
    }
    for (std::thread& thread : threads) thread.join();

    ASSERT_NE(grids[0], nullptr);
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(grids[t].get(), grids[0].get()) << "thread " << t;
    }
    EXPECT_EQ(cache.stats().builds, 1u);
}

TEST(ConcurrencyStress, StatsSnapshotsRaceWithResolutions) {
    // stats() takes the cache lock for a consistent snapshot; hammer it
    // from a reader thread while builds and hits are in flight. The
    // assertion is weak on purpose (counters only move forward) — the
    // point is the data-race check.
    Kernel_cache cache;
    const Cell_cycle_config config;
    const Smooth_volume_model vm;

    std::atomic<bool> done{false};
    std::size_t max_seen = 0;
    std::thread reader([&] {
        while (!done.load()) {
            const Kernel_cache_stats s = cache.stats();
            const std::size_t total = s.builds + s.memory_hits + s.disk_hits;
            EXPECT_GE(total, max_seen);
            max_seen = total;
            std::this_thread::yield();
        }
    });

    constexpr int kLookups = 6;
    std::vector<std::thread> threads;
    threads.reserve(kLookups);
    for (int t = 0; t < kLookups; ++t) {
        threads.emplace_back([&, t] {
            // Two distinct keys: every thread builds-or-joins one of them.
            const Vector times{0.0, 30.0 + 15.0 * (t % 2)};
            cache.get_or_build(config, vm, times, tiny_options());
        });
    }
    for (std::thread& thread : threads) thread.join();
    done.store(true);
    reader.join();

    const Kernel_cache_stats stats = cache.stats();
    EXPECT_EQ(stats.builds, 2u);
    EXPECT_EQ(stats.builds + stats.memory_hits, static_cast<std::size_t>(kLookups));
}

// ---------------------------------------------------------------------
// Stream_session: concurrent appends vs. the serial reference.
// ---------------------------------------------------------------------

struct Stress_fixture {
    std::shared_ptr<const Kernel_grid> kernel;
    std::shared_ptr<const Design_artifacts> artifacts;
    std::vector<Measurement_series> panel;  ///< noiseless, one per gene
};

const Stress_fixture& stress_fixture() {
    static const Stress_fixture fixed = [] {
        Stress_fixture out;
        const Vector times = linspace(0.0, 150.0, 9);
        Cell_cycle_config config;
        out.kernel = std::make_shared<const Kernel_grid>(
            build_kernel(config, Smooth_volume_model{}, times, tiny_options()));
        out.artifacts = make_design_artifacts(
            std::make_shared<Natural_spline_basis>(10), *out.kernel, config);
        out.panel = {
            forward_measurements(*out.kernel, ftsz_like_profile().f, "ftsZ"),
            forward_measurements(*out.kernel, sinusoid_profile(3.0, 2.0).f, "wave"),
            forward_measurements(*out.kernel, pulse_profile(0.0, 6.0, 0.7, 0.15).f,
                                 "pulse"),
            forward_measurements(*out.kernel, sinusoid_profile(4.0, 1.0, 1.0, 0.5).f,
                                 "slow"),
        };
        return out;
    }();
    return fixed;
}

Stream_session_options stress_options(std::size_t threads) {
    Stream_session_options options;
    options.threads = threads;
    options.stream.lambda = 3e-4;
    return options;
}

TEST(ConcurrencyStress, ConcurrentPerGeneAppendsMatchSerialReference) {
    const Stress_fixture& fx = stress_fixture();

    // Serial reference: one thread, all genes per timepoint.
    Stream_session serial(fx.artifacts, stress_options(1));
    for (std::size_t m = 0; m < fx.panel.front().size(); ++m) {
        std::vector<Stream_record> records;
        for (const Measurement_series& series : fx.panel) {
            records.push_back({series.label, series.values[m], series.sigmas[m]});
        }
        serial.append_timepoint(fx.panel.front().times[m], records);
    }

    // Contended run: one appender thread per gene, all slamming the same
    // session. Appends to different streams commute (each stream's state
    // depends only on its own record sequence), so per-stream results
    // must be bit-identical to the serial reference no matter how the
    // session's run lock interleaves the threads.
    Stream_session shared(fx.artifacts, stress_options(2));
    std::atomic<int> arrivals{0};
    std::vector<std::thread> appenders;
    appenders.reserve(fx.panel.size());
    for (std::size_t g = 0; g < fx.panel.size(); ++g) {
        appenders.emplace_back([&, g] {
            const Measurement_series& series = fx.panel[g];
            arrive_and_wait(arrivals, static_cast<int>(fx.panel.size()));
            for (std::size_t m = 0; m < series.size(); ++m) {
                const std::vector<Stream_update> updates = shared.append_timepoint(
                    series.times[m], {{series.label, series.values[m], series.sigmas[m]}});
                ASSERT_EQ(updates.size(), 1u);
                ASSERT_TRUE(updates[0].error.empty()) << updates[0].error;
            }
        });
    }
    for (std::thread& thread : appenders) thread.join();

    ASSERT_EQ(shared.stream_count(), fx.panel.size());
    for (const Measurement_series& series : fx.panel) {
        const Streaming_deconvolver* a = serial.find_stream(series.label);
        const Streaming_deconvolver* b = shared.find_stream(series.label);
        ASSERT_NE(a, nullptr) << series.label;
        ASSERT_NE(b, nullptr) << series.label;
        const Vector& ca = a->current().coefficients();
        const Vector& cb = b->current().coefficients();
        ASSERT_EQ(ca.size(), cb.size());
        for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i], cb[i]) << series.label << " coefficient " << i;
        }
    }
}

}  // namespace
}  // namespace cellsync
