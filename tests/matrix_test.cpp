#include "numerics/matrix.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "numerics/rng.h"

namespace cellsync {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Matrix, DefaultIsEmpty) {
    const Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructor) {
    const Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, InitializerListRowMajor) {
    const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
    Matrix m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
    EXPECT_THROW(m.at(0, 2), std::out_of_range);
    m.at(1, 1) = 9.0;
    EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(Matrix, RowAndColExtraction) {
    const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Vector r = m.row(1);
    const Vector c = m.col(2);
    EXPECT_DOUBLE_EQ(r[0], 4.0);
    EXPECT_DOUBLE_EQ(c[0], 3.0);
    EXPECT_DOUBLE_EQ(c[1], 6.0);
    EXPECT_THROW(m.row(2), std::out_of_range);
    EXPECT_THROW(m.col(3), std::out_of_range);
}

TEST(Matrix, SetRowAndSetCol) {
    Matrix m(2, 2);
    m.set_row(0, {1.0, 2.0});
    m.set_col(1, {8.0, 9.0});
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
    EXPECT_THROW(m.set_row(0, {1.0}), std::invalid_argument);
}

TEST(Matrix, TransposedSwapsIndices) {
    const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, IdentityAndDiagonal) {
    const Matrix i = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
    const Matrix d = Matrix::diagonal({2.0, 3.0});
    EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, FromRows) {
    const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_DOUBLE_EQ(m(2, 0), 5.0);
}

TEST(Matrix, AdditionSubtraction) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{10.0, 20.0}, {30.0, 40.0}};
    EXPECT_DOUBLE_EQ((a + b)(1, 1), 44.0);
    EXPECT_DOUBLE_EQ((b - a)(0, 0), 9.0);
    EXPECT_THROW(a + Matrix(1, 2), std::invalid_argument);
}

TEST(Matrix, ScalarMultiple) {
    const Matrix a{{1.0, -2.0}};
    EXPECT_DOUBLE_EQ((3.0 * a)(0, 1), -6.0);
}

TEST(Matrix, MatrixProduct) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
    EXPECT_THROW(a * Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Vector y = a * Vector{1.0, 1.0};
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_THROW(a * Vector{1.0}, std::invalid_argument);
}

TEST(Matrix, TransposedTimesMatchesExplicitTranspose) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
    const Vector x{1.0, -1.0, 2.0};
    const Vector direct = transposed_times(a, x);
    const Vector explicit_t = a.transposed() * x;
    EXPECT_DOUBLE_EQ(direct[0], explicit_t[0]);
    EXPECT_DOUBLE_EQ(direct[1], explicit_t[1]);
}

TEST(Matrix, GramIsSymmetricAndCorrect) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
    const Matrix g = gram(a);
    EXPECT_DOUBLE_EQ(g(0, 0), 35.0);
    EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
    EXPECT_DOUBLE_EQ(g(0, 1), 44.0);
}

TEST(Matrix, WeightedGramAppliesWeights) {
    const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
    const Matrix g = weighted_gram(a, {2.0, 3.0});
    EXPECT_DOUBLE_EQ(g(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(g(1, 1), 3.0);
    EXPECT_THROW(weighted_gram(a, {1.0}), std::invalid_argument);
}

TEST(Matrix, AllFiniteAndNormInf) {
    Matrix m{{1.0, -5.0}, {2.0, 3.0}};
    EXPECT_TRUE(m.all_finite());
    EXPECT_DOUBLE_EQ(m.norm_inf(), 5.0);
    m(0, 0) = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(m.all_finite());
}

TEST(Matrix, ToStringRendersSomething) {
    const Matrix m{{1.0, 2.0}};
    EXPECT_NE(m.to_string().find("1"), std::string::npos);
}

// Non-finite policy (numerics/matrix.h): every product kernel follows IEEE
// semantics — a NaN or Inf paired with any value, including an exact zero,
// propagates. No kernel may skip terms based on runtime values.

TEST(Matrix, MatrixProductPropagatesNonFinite) {
    // NaN in A multiplied against a zero column of B: 0 * NaN = NaN.
    const Matrix a{{kNan, 1.0}, {2.0, 3.0}};
    const Matrix b{{0.0, 1.0}, {0.0, 1.0}};
    const Matrix c = a * b;
    EXPECT_TRUE(std::isnan(c(0, 0)));
    EXPECT_TRUE(std::isnan(c(0, 1)));
    EXPECT_DOUBLE_EQ(c(1, 0), 0.0);
}

TEST(Matrix, MatrixVectorProductPropagatesNonFinite) {
    const Matrix a{{1.0, kInf}, {kNan, 2.0}};
    const Vector y = a * Vector{1.0, 0.0};  // Inf * 0 = NaN, NaN * 1 = NaN
    EXPECT_TRUE(std::isnan(y[0]));
    EXPECT_TRUE(std::isnan(y[1]));
}

TEST(Matrix, TransposedTimesPropagatesNonFiniteAgainstZeroMultiplier) {
    // x[0] == 0 must NOT shortcut past the NaN row of a.
    const Matrix a{{kNan, 1.0}, {2.0, 3.0}};
    const Vector y = transposed_times(a, Vector{0.0, 1.0});
    EXPECT_TRUE(std::isnan(y[0]));
    EXPECT_DOUBLE_EQ(y[1], 3.0);

    // And a zero x entry against an Inf row: Inf * 0 = NaN.
    const Matrix b{{kInf, kInf}};
    const Vector z = transposed_times(b, Vector{0.0});
    EXPECT_TRUE(std::isnan(z[0]));
    EXPECT_TRUE(std::isnan(z[1]));
}

TEST(Matrix, WeightedGramPropagatesNonFinite) {
    const Matrix a{{kNan, 0.0}, {1.0, 1.0}};
    const Matrix g = weighted_gram(a, {1.0, 1.0});
    EXPECT_TRUE(std::isnan(g(0, 0)));
    EXPECT_TRUE(std::isnan(g(0, 1)));  // NaN * 0.0 = NaN
    EXPECT_TRUE(std::isnan(g(1, 0)));  // mirrored

    // A zero weight against a NaN row also propagates: w * NaN = NaN.
    const Matrix h = weighted_gram(a, {0.0, 1.0});
    EXPECT_TRUE(std::isnan(h(0, 0)));
}

// The compiled kernels (chunked when CELLSYNC_SIMD=1, the reference when
// 0) must agree with the reference loops bit for bit — the dispatch only
// reorders work across independent output elements, never within one
// output's accumulation.

void expect_bits_eq(const Vector& a, const Vector& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]), std::bit_cast<std::uint64_t>(b[i]));
    }
}

void expect_bits_eq(const Matrix& a, const Matrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            EXPECT_EQ(std::bit_cast<std::uint64_t>(a(i, j)),
                      std::bit_cast<std::uint64_t>(b(i, j)));
        }
    }
}

TEST(Matrix, CompiledKernelsMatchReferenceBitwise) {
    Rng rng(0xbead);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t rows = 1 + rng.index(33);  // odd sizes hit tail lanes
        const std::size_t cols = 1 + rng.index(19);
        Matrix a(rows, cols);
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < cols; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
        }
        Vector x(cols), z(rows), w(rows);
        for (double& v : x) v = rng.uniform(-3.0, 3.0);
        for (double& v : z) v = rng.uniform(-3.0, 3.0);
        for (double& v : w) v = rng.uniform(0.1, 2.0);

        expect_bits_eq(a * x, matvec_reference(a, x));
        expect_bits_eq(transposed_times(a, z), transposed_times_reference(a, z));
        expect_bits_eq(gram(a), gram_reference(a));
        expect_bits_eq(weighted_gram(a, w), weighted_gram_reference(a, w));
    }
}

}  // namespace
}  // namespace cellsync
