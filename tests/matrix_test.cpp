#include "numerics/matrix.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(Matrix, DefaultIsEmpty) {
    const Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructor) {
    const Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, InitializerListRowMajor) {
    const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
    Matrix m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
    EXPECT_THROW(m.at(0, 2), std::out_of_range);
    m.at(1, 1) = 9.0;
    EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(Matrix, RowAndColExtraction) {
    const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Vector r = m.row(1);
    const Vector c = m.col(2);
    EXPECT_DOUBLE_EQ(r[0], 4.0);
    EXPECT_DOUBLE_EQ(c[0], 3.0);
    EXPECT_DOUBLE_EQ(c[1], 6.0);
    EXPECT_THROW(m.row(2), std::out_of_range);
    EXPECT_THROW(m.col(3), std::out_of_range);
}

TEST(Matrix, SetRowAndSetCol) {
    Matrix m(2, 2);
    m.set_row(0, {1.0, 2.0});
    m.set_col(1, {8.0, 9.0});
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
    EXPECT_THROW(m.set_row(0, {1.0}), std::invalid_argument);
}

TEST(Matrix, TransposedSwapsIndices) {
    const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, IdentityAndDiagonal) {
    const Matrix i = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
    const Matrix d = Matrix::diagonal({2.0, 3.0});
    EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, FromRows) {
    const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_DOUBLE_EQ(m(2, 0), 5.0);
}

TEST(Matrix, AdditionSubtraction) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{10.0, 20.0}, {30.0, 40.0}};
    EXPECT_DOUBLE_EQ((a + b)(1, 1), 44.0);
    EXPECT_DOUBLE_EQ((b - a)(0, 0), 9.0);
    EXPECT_THROW(a + Matrix(1, 2), std::invalid_argument);
}

TEST(Matrix, ScalarMultiple) {
    const Matrix a{{1.0, -2.0}};
    EXPECT_DOUBLE_EQ((3.0 * a)(0, 1), -6.0);
}

TEST(Matrix, MatrixProduct) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
    EXPECT_THROW(a * Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Vector y = a * Vector{1.0, 1.0};
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_THROW(a * Vector{1.0}, std::invalid_argument);
}

TEST(Matrix, TransposedTimesMatchesExplicitTranspose) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
    const Vector x{1.0, -1.0, 2.0};
    const Vector direct = transposed_times(a, x);
    const Vector explicit_t = a.transposed() * x;
    EXPECT_DOUBLE_EQ(direct[0], explicit_t[0]);
    EXPECT_DOUBLE_EQ(direct[1], explicit_t[1]);
}

TEST(Matrix, GramIsSymmetricAndCorrect) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
    const Matrix g = gram(a);
    EXPECT_DOUBLE_EQ(g(0, 0), 35.0);
    EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
    EXPECT_DOUBLE_EQ(g(0, 1), 44.0);
}

TEST(Matrix, WeightedGramAppliesWeights) {
    const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
    const Matrix g = weighted_gram(a, {2.0, 3.0});
    EXPECT_DOUBLE_EQ(g(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(g(1, 1), 3.0);
    EXPECT_THROW(weighted_gram(a, {1.0}), std::invalid_argument);
}

TEST(Matrix, AllFiniteAndNormInf) {
    Matrix m{{1.0, -5.0}, {2.0, 3.0}};
    EXPECT_TRUE(m.all_finite());
    EXPECT_DOUBLE_EQ(m.norm_inf(), 5.0);
    m(0, 0) = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(m.all_finite());
}

TEST(Matrix, ToStringRendersSomething) {
    const Matrix m{{1.0, 2.0}};
    EXPECT_NE(m.to_string().find("1"), std::string::npos);
}

}  // namespace
}  // namespace cellsync
