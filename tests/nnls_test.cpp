#include "numerics/nnls.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "numerics/linear_solve.h"
#include "numerics/rng.h"

namespace cellsync {
namespace {

TEST(Nnls, UnconstrainedInteriorSolutionMatchesLeastSquares) {
    // Well-posed system with positive solution: NNLS == LS.
    const Matrix a{{2.0, 0.0}, {0.0, 3.0}, {1.0, 1.0}};
    const Vector b{2.0, 6.0, 3.0};
    const Nnls_result r = solve_nnls(a, b);
    EXPECT_TRUE(r.converged);
    const Vector ls = qr_least_squares(a, b);
    EXPECT_NEAR(r.x[0], ls[0], 1e-9);
    EXPECT_NEAR(r.x[1], ls[1], 1e-9);
}

TEST(Nnls, ClampsNegativeComponentToZero) {
    // LS solution would have a negative coefficient; NNLS forces it to 0.
    const Matrix a{{1.0, 1.0}, {1.0, -1.0}};
    const Vector b{0.0, 2.0};  // LS solution: (1, -1)
    const Nnls_result r = solve_nnls(a, b);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[1], 0.0, 1e-12);
    EXPECT_GE(r.x[0], 0.0);
}

TEST(Nnls, ZeroRhsGivesZeroSolution) {
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Nnls_result r = solve_nnls(a, {0.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.x[0], 0.0);
    EXPECT_DOUBLE_EQ(r.x[1], 0.0);
    EXPECT_DOUBLE_EQ(r.residual_norm, 0.0);
}

TEST(Nnls, RejectsShapeMismatch) {
    EXPECT_THROW(solve_nnls(Matrix(2, 2), Vector{1.0}), std::invalid_argument);
}

TEST(Nnls, ResidualNormIsReported) {
    // Inconsistent system: residual must be positive and correct.
    const Matrix a{{1.0}, {1.0}};
    const Nnls_result r = solve_nnls(a, {0.0, 2.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-12);
    EXPECT_NEAR(r.residual_norm, std::sqrt(2.0), 1e-12);
}

// Property: on random problems the NNLS solution satisfies the KKT
// conditions: x >= 0, gradient w = A'(b - Ax) <= tol on zero coordinates,
// |w| ~ 0 on positive coordinates.
class NnlsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NnlsRandom, KktConditionsHold) {
    Rng rng(GetParam());
    const std::size_t m = 12, n = 6;
    Matrix a(m, n);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    const Vector b = rng.normal_vector(m);

    const Nnls_result r = solve_nnls(a, b);
    EXPECT_TRUE(r.converged);
    const Vector grad = transposed_times(a, b - a * r.x);
    for (std::size_t j = 0; j < n; ++j) {
        EXPECT_GE(r.x[j], 0.0);
        if (r.x[j] > 1e-9) {
            EXPECT_NEAR(grad[j], 0.0, 1e-7) << "active coordinate " << j;
        } else {
            EXPECT_LE(grad[j], 1e-7) << "inactive coordinate " << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnlsRandom, ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace cellsync
