#include "population/population_simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "numerics/statistics.h"

namespace cellsync {
namespace {

TEST(PopulationSimulator, InitialPopulationIsSynchronizedSwarmers) {
    const Cell_cycle_config config;
    Population_simulator sim(config, 5000, 1);
    EXPECT_EQ(sim.size(), 5000u);
    EXPECT_DOUBLE_EQ(sim.time(), 0.0);
    for (const Simulated_cell& c : sim.cells()) {
        EXPECT_GE(c.phase_at(0.0), 0.0);
        EXPECT_LE(c.phase_at(0.0), c.params.phi_sst);
    }
}

TEST(PopulationSimulator, RejectsBadConstruction) {
    EXPECT_THROW(Population_simulator(Cell_cycle_config{}, 0, 1), std::invalid_argument);
    Cell_cycle_config bad;
    bad.mu_sst = 2.0;
    EXPECT_THROW(Population_simulator(bad, 10, 1), std::invalid_argument);
}

TEST(PopulationSimulator, TimeMovesForwardOnly) {
    Population_simulator sim(Cell_cycle_config{}, 100, 2);
    sim.advance_to(10.0);
    EXPECT_DOUBLE_EQ(sim.time(), 10.0);
    EXPECT_THROW(sim.advance_to(5.0), std::invalid_argument);
    sim.advance_to(10.0);  // same time is a no-op
}

TEST(PopulationSimulator, PhasesStayInUnitInterval) {
    Population_simulator sim(Cell_cycle_config{}, 2000, 3);
    const Smooth_volume_model vm;
    for (double t : {30.0, 75.0, 120.0, 180.0, 240.0}) {
        sim.advance_to(t);
        for (const Snapshot_entry& e : sim.snapshot(vm)) {
            EXPECT_GE(e.phi, 0.0);
            EXPECT_LE(e.phi, 1.0 + 1e-12) << "t=" << t;
        }
    }
}

TEST(PopulationSimulator, PopulationGrowsByDivision) {
    Population_simulator sim(Cell_cycle_config{}, 10000, 4);
    const std::size_t start = sim.size();
    sim.advance_to(180.0);
    EXPECT_GT(sim.size(), start);
    // After ~1.2 mean cycles from a synchronized start, most cells divided
    // exactly once: expect between 1.3x and 2.2x growth.
    const double growth = static_cast<double>(sim.size()) / static_cast<double>(start);
    EXPECT_GT(growth, 1.3);
    EXPECT_LT(growth, 2.2);
}

TEST(PopulationSimulator, DivisionProducesSwarmerAndStalkedDaughters) {
    // Run past the first division wave and check birth phases.
    Population_simulator sim(Cell_cycle_config{}, 5000, 5);
    sim.advance_to(170.0);
    std::size_t sw_births = 0, st_births = 0;
    for (const Simulated_cell& c : sim.cells()) {
        if (c.birth_time > 0.0) {
            if (c.birth_phase == 0.0) {
                ++sw_births;
            } else {
                EXPECT_NEAR(c.birth_phase, c.params.phi_sst, 1e-12);
                ++st_births;
            }
        }
    }
    EXPECT_GT(sw_births, 0u);
    // Every division creates exactly one of each.
    EXPECT_EQ(sw_births, st_births);
}

TEST(PopulationSimulator, DeterministicGivenSeed) {
    Population_simulator a(Cell_cycle_config{}, 500, 42);
    Population_simulator b(Cell_cycle_config{}, 500, 42);
    a.advance_to(100.0);
    b.advance_to(100.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.cells()[i].phase_at(100.0), b.cells()[i].phase_at(100.0));
    }
}

TEST(PopulationSimulator, SnapshotVolumesMatchModel) {
    Population_simulator sim(Cell_cycle_config{}, 200, 6);
    sim.advance_to(60.0);
    const Smooth_volume_model vm;
    const auto snap = sim.snapshot(vm);
    ASSERT_EQ(snap.size(), sim.size());
    for (const Snapshot_entry& e : snap) {
        EXPECT_NEAR(e.relative_volume, vm.relative_volume(e.phi, e.phi_sst), 1e-12);
        EXPECT_GE(e.relative_volume, 0.4 - 1e-12);
        EXPECT_LE(e.relative_volume, 1.0 + 1e-12);
    }
}

TEST(PopulationSimulator, TotalVolumeGrowsMonotonically) {
    Population_simulator sim(Cell_cycle_config{}, 5000, 7);
    const Smooth_volume_model vm;
    double prev = sim.total_relative_volume(vm);
    for (double t = 15.0; t <= 300.0; t += 15.0) {
        sim.advance_to(t);
        const double v = sim.total_relative_volume(vm);
        EXPECT_GT(v, prev * 0.999) << "t=" << t;  // growth (volume conserved at division)
        prev = v;
    }
}

TEST(PopulationSimulator, IncrementalAdvanceStatisticallyMatchesDirectAdvance) {
    // Determinism is guaranteed for identical advance_to() schedules; a
    // different schedule assigns RNG draws to daughters in a different
    // order, so only the statistics must agree.
    Population_simulator direct(Cell_cycle_config{}, 5000, 9);
    Population_simulator stepped(Cell_cycle_config{}, 5000, 9);
    direct.advance_to(150.0);
    for (double t = 10.0; t <= 150.0; t += 10.0) stepped.advance_to(t);
    const double size_ratio =
        static_cast<double>(direct.size()) / static_cast<double>(stepped.size());
    EXPECT_NEAR(size_ratio, 1.0, 0.02);
    const Smooth_volume_model vm;
    const double volume_ratio =
        direct.total_relative_volume(vm) / stepped.total_relative_volume(vm);
    EXPECT_NEAR(volume_ratio, 1.0, 0.02);
}

TEST(SimulatedCell, DivisionTimeArithmetic) {
    Simulated_cell c;
    c.birth_time = 10.0;
    c.birth_phase = 0.25;
    c.params = {0.15, 100.0};
    EXPECT_DOUBLE_EQ(c.division_time(), 10.0 + 75.0);
    EXPECT_DOUBLE_EQ(c.phase_at(60.0), 0.75);
}

}  // namespace
}  // namespace cellsync
