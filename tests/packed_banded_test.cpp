// Packed banded storage and the runtime ISA dispatch seam.
//
// The contract under test is the PR 6 bit-identity guarantee extended to
// the packed layout and to every auto-selectable dispatch tier: for any
// matrix whose rows are nonzero on contiguous spans, every product
// kernel returns bit-for-bit the dense reference result, whether the
// matrix is stored dense-backed (Banded_matrix) or packed
// (Packed_banded_matrix), and whichever of the scalar/avx2/fma tables is
// active. The fma_contract tier is the documented opt-out and is only
// checked for closeness, never identity.
//
// Tier coverage works two ways: in-process, every test in the
// TierSweep suite iterates simd::set_tier_for_testing over the tiers the
// build + CPU support; externally, tests/CMakeLists.txt registers extra
// runs of this binary with CELLSYNC_DISPATCH forced, exercising the env
// override path end to end.
#include "numerics/banded.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "numerics/rng.h"
#include "numerics/simd_dispatch.h"
#include "spline/bspline.h"
#include "spline/spline_basis.h"

namespace cellsync {
namespace {

void expect_bits(double a, double b) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
        << a << " vs " << b;
}

void expect_bits(const Vector& a, const Vector& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) expect_bits(a[i], b[i]);
}

void expect_bits(const Matrix& a, const Matrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) expect_bits(a(i, j), b(i, j));
    }
}

// Random banded matrix mixing the degenerate row shapes: all-zero rows,
// single-column rows, full-width rows, and random interior bands.
Matrix random_banded(Rng& rng, std::size_t rows, std::size_t cols) {
    Matrix m(rows, cols, 0.0);
    for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t kind = rng.index(8);
        std::size_t begin = 0, end = 0;
        if (kind == 0) {
            // empty row
        } else if (kind == 1) {
            begin = rng.index(cols);
            end = begin + 1;  // single column
        } else if (kind == 2) {
            end = cols;  // full width
        } else {
            begin = rng.index(cols);
            end = begin + 1 + rng.index(cols - begin);
        }
        for (std::size_t j = begin; j < end; ++j) {
            double v = rng.uniform(-2.0, 2.0);
            if (v == 0.0) v = 0.5;
            m(i, j) = v;
        }
        if (end > begin) {
            if (m(i, begin) == 0.0) m(i, begin) = 1.0;
            if (m(i, end - 1) == 0.0) m(i, end - 1) = -1.0;
        }
    }
    return m;
}

Vector random_vector(Rng& rng, std::size_t n) {
    Vector x(n);
    for (double& v : x) v = rng.uniform(-3.0, 3.0);
    return x;
}

std::vector<std::size_t> random_rows(Rng& rng, std::size_t m, std::size_t count) {
    std::vector<std::size_t> rows(count);
    for (std::size_t& r : rows) r = rng.index(m);  // duplicates allowed
    return rows;
}

// The tiers this build + CPU can actually execute (always at least
// scalar; the auto-selectable set the bit-identity contract covers).
std::vector<simd::Tier> supported_tiers() {
    std::vector<simd::Tier> tiers{simd::Tier::scalar};
    for (simd::Tier t : {simd::Tier::avx2, simd::Tier::fma}) {
        if (t <= simd::max_supported_tier()) tiers.push_back(t);
    }
    return tiers;
}

// RAII tier forcing so a failed ASSERT cannot leak a forced tier into
// the next test.
class Forced_tier {
  public:
    explicit Forced_tier(simd::Tier t) : ok_(simd::set_tier_for_testing(t)) {}
    ~Forced_tier() { simd::set_tier_for_testing(simd::max_supported_tier()); }
    bool ok() const { return ok_; }

  private:
    bool ok_;
};

// Runs `body` once per supported tier with that tier forced.
template <typename Body>
void for_each_tier(const Body& body) {
    for (simd::Tier tier : supported_tiers()) {
        Forced_tier forced(tier);
        ASSERT_TRUE(forced.ok()) << simd::tier_name(tier);
        SCOPED_TRACE(simd::tier_name(tier));
        body();
    }
}

TEST(PackedBanded, PackingRoundTripsAndDropsOnlyStructuralZeros) {
    Rng rng(11);
    for (int trial = 0; trial < 10; ++trial) {
        const Matrix dense = random_banded(rng, 1 + rng.index(20), 1 + rng.index(12));
        const Banded_matrix banded(dense);
        const Packed_banded_matrix packed(banded);
        ASSERT_EQ(packed.rows(), banded.rows());
        ASSERT_EQ(packed.cols(), banded.cols());
        // Identical spans, identical in-span values, reconstructible dense.
        for (std::size_t i = 0; i < packed.rows(); ++i) {
            ASSERT_EQ(packed.row_span(i).begin, banded.row_span(i).begin);
            ASSERT_EQ(packed.row_span(i).end, banded.row_span(i).end);
            const double* rv = packed.row_values(i);
            for (std::size_t k = 0; k < packed.row_span(i).width(); ++k) {
                expect_bits(rv[k], dense(i, packed.row_span(i).begin + k));
            }
        }
        expect_bits(packed.to_dense(), dense);
        EXPECT_DOUBLE_EQ(packed.band_occupancy(), banded.band_occupancy());
        EXPECT_EQ(packed.max_bandwidth(), banded.max_bandwidth());
        // Footprint really is the packed one.
        std::size_t inside = 0;
        for (const Row_span& s : packed.spans()) inside += s.width();
        EXPECT_EQ(packed.values().size(), inside);
    }
}

TEST(PackedBanded, DirectEmissionValidatesShape) {
    // Consistent direct emission.
    const Packed_banded_matrix p(3, {{0, 2}, {1, 3}}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(p.rows(), 2u);
    EXPECT_EQ(p.cols(), 3u);
    expect_bits(p.to_dense(), Matrix{{1.0, 2.0, 0.0}, {0.0, 3.0, 4.0}});

    // Value count must equal the span widths.
    EXPECT_THROW(Packed_banded_matrix(3, {{0, 2}}, {1.0}), std::invalid_argument);
    // Spans must fit the column count and be well-formed.
    EXPECT_THROW(Packed_banded_matrix(3, {{2, 5}}, {1.0, 2.0, 3.0}),
                 std::invalid_argument);
    EXPECT_THROW(Packed_banded_matrix(3, {{2, 1}}, {}), std::invalid_argument);
}

TEST(PackedBanded, EveryKernelMatchesDenseReferenceBitwiseUnderEveryTier) {
    for_each_tier([] {
        Rng rng(20260807);
        for (int trial = 0; trial < 25; ++trial) {
            const std::size_t m = 1 + rng.index(24);
            const std::size_t n = 1 + rng.index(16);
            const Matrix dense = random_banded(rng, m, n);
            const Banded_matrix banded(dense);
            const Packed_banded_matrix packed(dense);

            const Vector x = random_vector(rng, n);
            expect_bits(packed * x, matvec_reference(dense, x));
            expect_bits(packed * x, banded * x);

            const Vector z = random_vector(rng, m);
            expect_bits(transposed_times(packed, z), transposed_times_reference(dense, z));

            expect_bits(gram(packed), gram_reference(dense));

            Vector w = random_vector(rng, m);
            for (double& v : w) v = 0.1 + std::abs(v);
            expect_bits(weighted_gram(packed, w), weighted_gram_reference(dense, w));

            // Row-subset kernels against the copy-out reference.
            const std::vector<std::size_t> rows = random_rows(rng, m, 1 + rng.index(m));
            Matrix sub(rows.size(), n);
            Vector wr(rows.size()), xr(rows.size());
            for (std::size_t r = 0; r < rows.size(); ++r) {
                sub.set_row(r, dense.row(rows[r]));
                wr[r] = 0.1 + std::abs(rng.uniform(-2.0, 2.0));
                xr[r] = rng.uniform(-3.0, 3.0);
            }
            expect_bits(weighted_gram_rows(packed, rows, wr),
                        weighted_gram_reference(sub, wr));
            expect_bits(transposed_times_rows(packed, rows, xr),
                        transposed_times_reference(sub, xr));
            expect_bits(weighted_transposed_times_rows(packed, rows, wr, xr),
                        transposed_times_reference(sub, hadamard(wr, xr)));

            for (std::size_t i = 0; i < m; ++i) {
                double ref = 0.0;
                for (std::size_t j = 0; j < n; ++j) ref += dense(i, j) * x[j];
                expect_bits(row_dot(packed, i, x), ref);
            }
        }
    });
}

TEST(PackedBanded, BandedKernelsStayBitIdenticalUnderEveryTier) {
    // The dense-backed layout runs through the same dispatch tables; the
    // PR 6 guarantee must hold on every tier, not just the default one.
    for_each_tier([] {
        Rng rng(31);
        for (int trial = 0; trial < 10; ++trial) {
            const std::size_t m = 1 + rng.index(24);
            const std::size_t n = 1 + rng.index(16);
            const Matrix dense = random_banded(rng, m, n);
            const Banded_matrix banded(dense);
            const Vector x = random_vector(rng, n);
            const Vector z = random_vector(rng, m);
            Vector w = random_vector(rng, m);
            for (double& v : w) v = 0.1 + std::abs(v);
            expect_bits(banded * x, matvec_reference(dense, x));
            expect_bits(transposed_times(banded, z), transposed_times_reference(dense, z));
            expect_bits(gram(banded), gram_reference(dense));
            expect_bits(weighted_gram(banded, w), weighted_gram_reference(dense, w));
        }
    });
}

TEST(PackedBanded, DenseChunkedKernelsStayBitIdenticalUnderEveryTier) {
    // numerics/matrix.cpp routes the dense chunked kernels through the
    // same tables (CELLSYNC_SIMD builds); bit-identity to the references
    // is tier-independent.
    for_each_tier([] {
        Rng rng(47);
        Matrix a(17, 9);
        for (std::size_t i = 0; i < a.rows(); ++i) {
            for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.uniform(-2.0, 2.0);
        }
        const Vector x = random_vector(rng, a.cols());
        const Vector z = random_vector(rng, a.rows());
        Vector w = random_vector(rng, a.rows());
        for (double& v : w) v = 0.1 + std::abs(v);
        expect_bits(a * x, matvec_reference(a, x));
        expect_bits(transposed_times(a, z), transposed_times_reference(a, z));
        expect_bits(gram(a), gram_reference(a));
        expect_bits(weighted_gram(a, w), weighted_gram_reference(a, w));
    });
}

TEST(PackedBanded, DegenerateShapes) {
    for_each_tier([] {
        // Zero-row matrix.
        const Packed_banded_matrix none{Matrix()};
        EXPECT_TRUE(none.empty());
        EXPECT_DOUBLE_EQ(none.band_occupancy(), 1.0);
        EXPECT_EQ(gram(none).rows(), 0u);

        // All rows empty: products are exact zeros, storage is empty.
        const Packed_banded_matrix zero(Matrix(3, 4, 0.0));
        EXPECT_EQ(zero.values().size(), 0u);
        EXPECT_EQ(zero.max_bandwidth(), 0u);
        EXPECT_DOUBLE_EQ(zero.band_occupancy(), 0.0);
        expect_bits(zero * Vector{1.0, 2.0, 3.0, 4.0}, Vector(3, 0.0));
        expect_bits(transposed_times(zero, Vector{1.0, 2.0, 3.0}), Vector(4, 0.0));
        expect_bits(gram(zero), Matrix(4, 4, 0.0));

        // Single-column matrix.
        const Matrix col{{2.0}, {0.0}, {-3.0}};
        const Packed_banded_matrix packed_col(col);
        expect_bits(packed_col * Vector{1.5}, matvec_reference(col, Vector{1.5}));
        expect_bits(gram(packed_col), gram_reference(col));

        // Fully dense rows: occupancy 1, still bit-identical.
        Rng rng(7);
        Matrix dense(5, 3);
        for (std::size_t i = 0; i < 5; ++i) {
            for (std::size_t j = 0; j < 3; ++j) dense(i, j) = rng.uniform(0.5, 2.0);
        }
        const Packed_banded_matrix full(dense);
        EXPECT_DOUBLE_EQ(full.band_occupancy(), 1.0);
        expect_bits(gram(full), gram_reference(dense));
        expect_bits(full * Vector{1.0, 2.0, 3.0}, matvec_reference(dense, {1.0, 2.0, 3.0}));
    });
}

TEST(PackedBanded, NonFinitePropagates) {
    Matrix m(2, 3, 0.0);
    m(0, 1) = std::numeric_limits<double>::quiet_NaN();
    m(1, 2) = std::numeric_limits<double>::infinity();
    const Packed_banded_matrix packed(m);
    // Non-finite entries count as nonzero and land inside the packed spans.
    EXPECT_EQ(packed.row_span(0).begin, 1u);
    EXPECT_EQ(packed.row_span(0).end, 2u);
    EXPECT_EQ(packed.row_span(1).begin, 2u);
    EXPECT_EQ(packed.row_span(1).end, 3u);
    const Vector y = packed * Vector{1.0, 1.0, 1.0};
    EXPECT_TRUE(std::isnan(y[0]));
    EXPECT_TRUE(std::isinf(y[1]));
    const Matrix g = gram(packed);
    EXPECT_TRUE(std::isnan(g(1, 1)));
    EXPECT_TRUE(std::isnan(row_dot(packed, 0, Vector{1.0, 1.0, 1.0})));
}

TEST(PackedBanded, DimensionChecksThrow) {
    const Packed_banded_matrix p(Matrix(3, 2, 1.0));
    EXPECT_THROW(p * Vector{1.0}, std::invalid_argument);
    EXPECT_THROW(transposed_times(p, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(weighted_gram(p, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(weighted_gram_rows(p, {0}, Vector{1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(weighted_gram_rows(p, {7}, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(transposed_times_rows(p, {0}, Vector{1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(weighted_transposed_times_rows(p, {0}, Vector{1.0, 2.0}, Vector{1.0}),
                 std::invalid_argument);
    EXPECT_THROW(row_dot(p, 3, Vector{1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(row_dot(p, 0, Vector{1.0}), std::invalid_argument);
}

TEST(DesignMatrix, OccupancyThresholdPicksTheLayout) {
    // Sparse: one nonzero per 8-wide row -> occupancy 0.125 <= 0.25.
    Matrix sparse(8, 8, 0.0);
    for (std::size_t i = 0; i < 8; ++i) sparse(i, i) = 1.0 + static_cast<double>(i);
    const Design_matrix packed_choice(sparse);
    EXPECT_TRUE(packed_choice.is_packed());
    EXPECT_EQ(packed_choice.layout(), Design_layout::packed);
    EXPECT_THROW(packed_choice.banded(), std::logic_error);
    EXPECT_EQ(packed_choice.packed().values().size(), 8u);

    // Dense: everything nonzero -> stays banded (dense-backed).
    const Design_matrix banded_choice(Matrix(4, 4, 1.0));
    EXPECT_FALSE(banded_choice.is_packed());
    EXPECT_THROW(banded_choice.packed(), std::logic_error);
    expect_bits(banded_choice.banded().dense(), Matrix(4, 4, 1.0));

    // The threshold is a parameter: force-pack the dense one.
    const Design_matrix forced(Matrix(4, 4, 1.0), 1.0);
    EXPECT_TRUE(forced.is_packed());

    // Shared accessors agree across layouts.
    EXPECT_EQ(packed_choice.rows(), 8u);
    EXPECT_EQ(packed_choice.cols(), 8u);
    EXPECT_EQ(packed_choice.max_bandwidth(), 1u);
    EXPECT_DOUBLE_EQ(packed_choice.band_occupancy(), 0.125);
    EXPECT_EQ(packed_choice.row_span(3).begin, 3u);
}

TEST(DesignMatrix, KernelsDispatchIdenticallyAcrossLayouts) {
    for_each_tier([] {
        Rng rng(77);
        const Matrix dense = random_banded(rng, 20, 10);
        // Same matrix through both layouts, regardless of its occupancy.
        const Design_matrix as_banded(dense, 0.0);   // threshold 0 -> never packs
        const Design_matrix as_packed(dense, 1.0);   // threshold 1 -> always packs
        ASSERT_FALSE(as_banded.is_packed());
        ASSERT_TRUE(as_packed.is_packed());

        const Vector x = random_vector(rng, 10);
        const Vector z = random_vector(rng, 20);
        Vector w = random_vector(rng, 20);
        for (double& v : w) v = 0.1 + std::abs(v);
        const std::vector<std::size_t> rows{0, 3, 3, 11, 19};
        Vector wr(rows.size(), 1.25), xr(rows.size(), -0.5);

        expect_bits(as_banded * x, as_packed * x);
        expect_bits(transposed_times(as_banded, z), transposed_times(as_packed, z));
        expect_bits(gram(as_banded), gram(as_packed));
        expect_bits(weighted_gram(as_banded, w), weighted_gram(as_packed, w));
        expect_bits(weighted_gram_rows(as_banded, rows, wr),
                    weighted_gram_rows(as_packed, rows, wr));
        expect_bits(transposed_times_rows(as_banded, rows, xr),
                    transposed_times_rows(as_packed, rows, xr));
        expect_bits(weighted_transposed_times_rows(as_banded, rows, wr, xr),
                    weighted_transposed_times_rows(as_packed, rows, wr, xr));
        for (std::size_t i = 0; i < 20; ++i) {
            expect_bits(row_dot(as_banded, i, x), row_dot(as_packed, i, x));
        }
        expect_bits(matvec_reference(dense, x), as_packed * x);
    });
}

TEST(DesignMatrix, BsplineDesignGoesPackedAndMatchesDense) {
    // The real workload: a cubic B-spline design on a fine grid has
    // occupancy ~4/n_basis, well under the threshold.
    const Vector grid = linspace(0.0, 1.0, 60);
    const Bspline_basis bspline(24);
    const Design_matrix design = bspline.design_matrix_auto(grid);
    EXPECT_TRUE(design.is_packed());
    EXPECT_LE(design.band_occupancy(), packed_occupancy_threshold);
    EXPECT_LE(design.max_bandwidth(), 4u);  // cubic: at most 4 supported functions
    expect_bits(design.packed().to_dense(), bspline.design_matrix(grid));
    // And the packed emission never materialized a dense matrix; check
    // it agrees with the annotated-banded construction too.
    const Banded_matrix banded = bspline.design_matrix_banded(grid);
    expect_bits(design * Vector(24, 1.0), banded * Vector(24, 1.0));

    // Globally supported basis: occupancy ~1, stays dense-backed.
    const Natural_spline_basis natural(12);
    const Design_matrix ndesign = natural.design_matrix_auto(grid);
    EXPECT_FALSE(ndesign.is_packed());
}

TEST(SimdDispatch, TierMetadataIsConsistent) {
    // The startup-resolved tier is one of the auto-selectable,
    // bit-identical tiers and is executable on this machine.
    const simd::Tier startup = simd::active_tier();
    EXPECT_LE(startup, simd::max_supported_tier());
    EXPECT_TRUE(simd::tier_bit_identical(startup));
    EXPECT_NE(simd::active_tier_origin(), nullptr);

    EXPECT_STREQ(simd::tier_name(simd::Tier::scalar), "scalar");
    EXPECT_STREQ(simd::tier_name(simd::Tier::avx2), "avx2");
    EXPECT_STREQ(simd::tier_name(simd::Tier::fma), "fma");
    EXPECT_STREQ(simd::tier_name(simd::Tier::fma_contract), "fma-contract");
    EXPECT_TRUE(simd::tier_bit_identical(simd::Tier::scalar));
    EXPECT_TRUE(simd::tier_bit_identical(simd::Tier::avx2));
    EXPECT_TRUE(simd::tier_bit_identical(simd::Tier::fma));
    EXPECT_FALSE(simd::tier_bit_identical(simd::Tier::fma_contract));
    // max_supported_tier never reports the opt-out tier.
    EXPECT_NE(simd::max_supported_tier(), simd::Tier::fma_contract);

    // Forcing a supported tier works and is visible; scalar always is.
    ASSERT_TRUE(simd::set_tier_for_testing(simd::Tier::scalar));
    EXPECT_EQ(simd::active_tier(), simd::Tier::scalar);
    EXPECT_STREQ(simd::active_tier_origin(), "test");
    EXPECT_EQ(simd::kernels().tier, simd::Tier::scalar);
    ASSERT_TRUE(simd::set_tier_for_testing(simd::max_supported_tier()));
}

TEST(SimdDispatch, FmaContractTierIsCloseButOptIn) {
    if (!simd::set_tier_for_testing(simd::Tier::fma_contract)) {
        GTEST_SKIP() << "build/CPU has no fma_contract table";
    }
    // Contraction may change bits but must stay numerically tight; and
    // the tier is never what startup resolution picks (asserted above in
    // TierMetadataIsConsistent via tier_bit_identical(active_tier())).
    Rng rng(13);
    const Matrix dense = random_banded(rng, 30, 12);
    const Packed_banded_matrix packed(dense);
    const Vector x = random_vector(rng, 12);
    const Vector got = packed * x;
    const Vector ref = matvec_reference(dense, x);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], ref[i], 1e-12 * (1.0 + std::abs(ref[i])));
    }
    simd::set_tier_for_testing(simd::max_supported_tier());
}

}  // namespace
}  // namespace cellsync
