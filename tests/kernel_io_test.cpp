#include "io/kernel_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cellsync {
namespace {

Kernel_grid small_kernel() {
    Kernel_build_options options;
    options.n_cells = 5000;
    options.n_bins = 50;
    options.seed = 3;
    return build_kernel(Cell_cycle_config{}, Smooth_volume_model{}, {0.0, 30.0, 60.0},
                        options);
}

TEST(KernelIo, RoundTripPreservesGrid) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel(out, original);
    std::istringstream in(out.str());
    const Kernel_grid loaded = read_kernel(in);

    ASSERT_EQ(loaded.time_count(), original.time_count());
    ASSERT_EQ(loaded.bin_count(), original.bin_count());
    for (std::size_t m = 0; m < original.time_count(); ++m) {
        EXPECT_DOUBLE_EQ(loaded.times()[m], original.times()[m]);
        for (std::size_t b = 0; b < original.bin_count(); ++b) {
            EXPECT_DOUBLE_EQ(loaded.q()(m, b), original.q()(m, b));
        }
    }
}

TEST(KernelIo, RoundTrippedKernelProducesIdenticalTransforms) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel(out, original);
    std::istringstream in(out.str());
    const Kernel_grid loaded = read_kernel(in);

    const auto profile = [](double phi) { return 1.0 + phi * (1.0 - phi); };
    const Vector g0 = original.apply(profile);
    const Vector g1 = loaded.apply(profile);
    for (std::size_t m = 0; m < g0.size(); ++m) EXPECT_DOUBLE_EQ(g0[m], g1[m]);
}

TEST(KernelIo, FileRoundTrip) {
    const Kernel_grid original = small_kernel();
    const std::string path = ::testing::TempDir() + "/cellsync_kernel_test.csv";
    write_kernel_file(path, original);
    const Kernel_grid loaded = read_kernel_file(path);
    EXPECT_EQ(loaded.bin_count(), original.bin_count());
    std::remove(path.c_str());
}

TEST(KernelIo, MissingPhiColumnRejected) {
    std::istringstream in("t0,t30\n1.0,1.0\n1.0,1.0\n");
    EXPECT_THROW(read_kernel(in), std::runtime_error);
}

TEST(KernelIo, BadTimeColumnNameRejected) {
    std::istringstream in("phi,zzz\n0.25,1.0\n0.75,1.0\n");
    EXPECT_THROW(read_kernel(in), std::runtime_error);
}

TEST(KernelIo, CorruptedDensityRejected) {
    // Row scaled by 2: no longer integrates to 1 -> Kernel_grid invariant.
    std::istringstream in("phi,t0\n0.25,2.0\n0.75,2.0\n");
    EXPECT_THROW(read_kernel(in), std::invalid_argument);
}

TEST(KernelIo, NoTimeColumnsRejected) {
    std::istringstream in("phi\n0.5\n");
    EXPECT_THROW(read_kernel(in), std::runtime_error);
}

TEST(KernelIo, MissingFileThrows) {
    EXPECT_THROW(read_kernel_file("/nonexistent/kernel.csv"), std::runtime_error);
}

}  // namespace
}  // namespace cellsync
