#include "population/kernel_io.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cellsync {
namespace {

Kernel_grid small_kernel() {
    Kernel_build_options options;
    options.n_cells = 5000;
    options.n_bins = 50;
    options.seed = 3;
    return build_kernel(Cell_cycle_config{}, Smooth_volume_model{}, {0.0, 30.0, 60.0},
                        options);
}

TEST(KernelIo, RoundTripPreservesGrid) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel(out, original);
    std::istringstream in(out.str());
    const Kernel_grid loaded = read_kernel(in);

    ASSERT_EQ(loaded.time_count(), original.time_count());
    ASSERT_EQ(loaded.bin_count(), original.bin_count());
    for (std::size_t m = 0; m < original.time_count(); ++m) {
        EXPECT_DOUBLE_EQ(loaded.times()[m], original.times()[m]);
        for (std::size_t b = 0; b < original.bin_count(); ++b) {
            EXPECT_DOUBLE_EQ(loaded.q()(m, b), original.q()(m, b));
        }
    }
}

TEST(KernelIo, RoundTrippedKernelProducesIdenticalTransforms) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel(out, original);
    std::istringstream in(out.str());
    const Kernel_grid loaded = read_kernel(in);

    const auto profile = [](double phi) { return 1.0 + phi * (1.0 - phi); };
    const Vector g0 = original.apply(profile);
    const Vector g1 = loaded.apply(profile);
    for (std::size_t m = 0; m < g0.size(); ++m) EXPECT_DOUBLE_EQ(g0[m], g1[m]);
}

TEST(KernelIo, FileRoundTrip) {
    const Kernel_grid original = small_kernel();
    const std::string path = ::testing::TempDir() + "/cellsync_kernel_test.csv";
    write_kernel_file(path, original);
    const Kernel_grid loaded = read_kernel_file(path);
    EXPECT_EQ(loaded.bin_count(), original.bin_count());
    std::remove(path.c_str());
}

TEST(KernelIo, MissingPhiColumnRejected) {
    std::istringstream in("t0,t30\n1.0,1.0\n1.0,1.0\n");
    EXPECT_THROW(read_kernel(in), std::runtime_error);
}

TEST(KernelIo, BadTimeColumnNameRejected) {
    std::istringstream in("phi,zzz\n0.25,1.0\n0.75,1.0\n");
    EXPECT_THROW(read_kernel(in), std::runtime_error);
}

TEST(KernelIo, CorruptedDensityRejected) {
    // Row scaled by 2: no longer integrates to 1 -> Kernel_grid invariant.
    std::istringstream in("phi,t0\n0.25,2.0\n0.75,2.0\n");
    EXPECT_THROW(read_kernel(in), std::invalid_argument);
}

TEST(KernelIo, NoTimeColumnsRejected) {
    std::istringstream in("phi\n0.5\n");
    EXPECT_THROW(read_kernel(in), std::runtime_error);
}

TEST(KernelIo, MissingFileThrows) {
    EXPECT_THROW(read_kernel_file("/nonexistent/kernel.csv"), std::runtime_error);
}

// --- time column name parsing (regression: std::stod accepted trailing
// --- garbage and non-finite spellings) -------------------------------------

TEST(KernelIo, TimeColumnWithTrailingGarbageRejected) {
    // stod would parse 't1.5junk' as 1.5 and silently mislabel the slice.
    std::istringstream in("phi,t0,t1.5junk\n0.25,1.0,1.0\n0.75,1.0,1.0\n");
    EXPECT_THROW(read_kernel(in), std::runtime_error);
}

TEST(KernelIo, NonFiniteTimeColumnRejected) {
    std::istringstream inf_in("phi,tinf\n0.25,1.0\n0.75,1.0\n");
    EXPECT_THROW(read_kernel(inf_in), std::runtime_error);
    std::istringstream nan_in("phi,tnan\n0.25,1.0\n0.75,1.0\n");
    EXPECT_THROW(read_kernel(nan_in), std::runtime_error);
}

TEST(KernelIo, ScientificTimeColumnStillAccepted) {
    // Full-precision writes can emit exponent notation; it must keep
    // round-tripping under the stricter parser.
    std::istringstream in("phi,t1.5e2\n0.25,1.0\n0.75,1.0\n");
    const Kernel_grid kernel = read_kernel(in);
    EXPECT_DOUBLE_EQ(kernel.times()[0], 150.0);
}

// --- binary format ---------------------------------------------------------

TEST(KernelIo, BinaryRoundTripIsBitIdentical) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel_binary(out, original);
    std::istringstream in(out.str());
    const Kernel_grid loaded = read_kernel_binary(in);

    ASSERT_EQ(loaded.time_count(), original.time_count());
    ASSERT_EQ(loaded.bin_count(), original.bin_count());
    for (std::size_t m = 0; m < original.time_count(); ++m) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.times()[m]),
                  std::bit_cast<std::uint64_t>(original.times()[m]));
        for (std::size_t b = 0; b < original.bin_count(); ++b) {
            EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.q()(m, b)),
                      std::bit_cast<std::uint64_t>(original.q()(m, b)));
        }
    }
    for (std::size_t b = 0; b < original.bin_count(); ++b) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.phi_centers()[b]),
                  std::bit_cast<std::uint64_t>(original.phi_centers()[b]));
    }
}

TEST(KernelIo, BinaryIsSmallerThanCsv) {
    const Kernel_grid original = small_kernel();
    std::ostringstream csv, binary;
    write_kernel(csv, original);
    write_kernel_binary(binary, original);
    EXPECT_LT(binary.str().size(), csv.str().size());
}

TEST(KernelIo, BinaryPreservesDenormalsAndNegativeZero) {
    // Two bins of width 0.5: row mass = 0.5 * (a + b), so values summing
    // to 2 hit unit mass exactly and bypass renormalization. A denormal
    // (or -0.0) plus 2.0 rounds to exactly 2.0, so these extreme bit
    // patterns survive Kernel_grid construction untouched — the round
    // trip must keep them, not collapse them to +0.0.
    const double denormal = std::numeric_limits<double>::denorm_min();
    Matrix q(2, 2);
    q(0, 0) = denormal;
    q(0, 1) = 2.0;
    q(1, 0) = -0.0;
    q(1, 1) = 2.0;
    const Kernel_grid original({0.0, 30.0}, {0.25, 0.75}, q);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(original.q()(0, 0)),
              std::bit_cast<std::uint64_t>(denormal));

    std::ostringstream out;
    write_kernel_binary(out, original);
    std::istringstream in(out.str());
    const Kernel_grid loaded = read_kernel_binary(in);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.q()(0, 0)),
              std::bit_cast<std::uint64_t>(denormal));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.q()(1, 0)),
              std::bit_cast<std::uint64_t>(-0.0));
    EXPECT_TRUE(std::signbit(loaded.q()(1, 0)));
}

TEST(KernelIo, BinaryRejectsBadMagic) {
    std::istringstream in("phi,t0\n0.25,2.0\n0.75,2.0\n");
    EXPECT_THROW(read_kernel_binary(in), std::runtime_error);
}

TEST(KernelIo, BinaryRejectsUnsupportedVersion) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel_binary(out, original);
    std::string bytes = out.str();
    const auto v = bytes.find("-v1\n");
    ASSERT_NE(v, std::string::npos);
    bytes[v + 2] = '9';  // magic line of a future revision
    std::istringstream in(bytes);
    EXPECT_THROW(read_kernel_binary(in), std::runtime_error);
}

TEST(KernelIo, BinaryRejectsTruncation) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel_binary(out, original);
    const std::string bytes = out.str();
    for (const std::size_t keep :
         {bytes.size() - 1, bytes.size() / 2, std::size_t{30}, std::size_t{8}}) {
        std::istringstream in(bytes.substr(0, keep));
        EXPECT_THROW(read_kernel_binary(in), std::runtime_error) << "kept " << keep;
    }
}

TEST(KernelIo, BinaryRejectsCorruptDimensionsBeforeAllocating) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel_binary(out, original);
    const std::string bytes = out.str();
    const auto with_time_count = [&](std::uint32_t count) {
        std::string patched = bytes;
        for (int i = 0; i < 4; ++i) {  // u32 after the 23-byte magic + version
            patched[23 + 4 + i] = static_cast<char>((count >> (8 * i)) & 0xff);
        }
        return patched;
    };
    // Hugely implausible dims and dims merely too big for the file must
    // both be rejected up front — not by an OOM-scale allocation.
    for (const std::uint32_t count : {0xfffffffeu, 1000000u}) {
        std::istringstream in(with_time_count(count));
        EXPECT_THROW(read_kernel_binary(in), std::runtime_error) << count;
    }
}

TEST(KernelIo, BinaryRejectsChecksumMismatch) {
    const Kernel_grid original = small_kernel();
    std::ostringstream out;
    write_kernel_binary(out, original);
    std::string bytes = out.str();
    bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
    std::istringstream in(bytes);
    EXPECT_THROW(read_kernel_binary(in), std::runtime_error);
}

TEST(KernelIo, FileRoundTripAutoDetectsBothFormats) {
    const Kernel_grid original = small_kernel();
    const std::string csv_path = ::testing::TempDir() + "/cellsync_kernel_auto.csv";
    const std::string bin_path = ::testing::TempDir() + "/cellsync_kernel_auto.bin";
    write_kernel_file(csv_path, original, Kernel_format::csv);
    write_kernel_file(bin_path, original, Kernel_format::binary);

    Kernel_format detected = Kernel_format::binary;
    const Kernel_grid from_csv = read_kernel_file(csv_path, &detected);
    EXPECT_EQ(detected, Kernel_format::csv);
    const Kernel_grid from_bin = read_kernel_file(bin_path, &detected);
    EXPECT_EQ(detected, Kernel_format::binary);
    ASSERT_EQ(from_csv.bin_count(), original.bin_count());
    ASSERT_EQ(from_bin.bin_count(), original.bin_count());
    for (std::size_t m = 0; m < original.time_count(); ++m) {
        for (std::size_t b = 0; b < original.bin_count(); ++b) {
            EXPECT_EQ(from_bin.q()(m, b), original.q()(m, b));
            EXPECT_EQ(from_csv.q()(m, b), original.q()(m, b));
        }
    }
    std::remove(csv_path.c_str());
    std::remove(bin_path.c_str());
}

TEST(KernelIo, FormatNamesRoundTrip) {
    EXPECT_EQ(kernel_format_from_string("csv"), Kernel_format::csv);
    EXPECT_EQ(kernel_format_from_string("bin"), Kernel_format::binary);
    EXPECT_EQ(kernel_format_from_string("binary"), Kernel_format::binary);
    EXPECT_THROW(kernel_format_from_string("tsv"), std::invalid_argument);
    EXPECT_STREQ(to_string(Kernel_format::csv), "csv");
    EXPECT_STREQ(to_string(Kernel_format::binary), "binary");
}

// --- write durability (regression: a full disk produced a truncated file
// --- reported as success) --------------------------------------------------

TEST(KernelIo, WriteFailureIsReportedNotSwallowed) {
    if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full";
    const Kernel_grid original = small_kernel();
    // /dev/full opens fine but every flushed write fails with ENOSPC —
    // exactly the silent-truncation scenario.
    EXPECT_THROW(write_kernel_file("/dev/full", original, Kernel_format::csv),
                 std::runtime_error);
    EXPECT_THROW(write_kernel_file("/dev/full", original, Kernel_format::binary),
                 std::runtime_error);
}

}  // namespace
}  // namespace cellsync
