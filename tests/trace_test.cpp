// Trace_recorder contract tests: span capture across threads with
// correct nesting, Chrome-trace JSON well-formedness, and the
// observes-never-perturbs guarantee (tracing on vs. off changes no
// numeric result bit). Capture-dependent cases skip under
// -DCELLSYNC_TELEMETRY=OFF, where the writer must still emit a valid
// empty trace.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "biology/gene_profiles.h"
#include "core/experiment_runner.h"
#include "core/forward_model.h"
#include "core/task_graph.h"
#include "core/trace.h"
#include "core/worker_pool.h"

namespace cellsync::telemetry {
namespace {

/// Same minimal well-formedness check as telemetry_test.cpp: proves the
/// writer emits parseable JSON without pulling in a JSON library.
bool json_well_formed(const std::string& text) {
    std::size_t pos = 0;
    const auto skip_ws = [&] {
        while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    };
    const std::function<bool()> value = [&]() -> bool {
        const auto string_value = [&]() -> bool {
            if (pos >= text.size() || text[pos] != '"') return false;
            ++pos;
            while (pos < text.size()) {
                if (text[pos] == '\\') { pos += 2; continue; }
                if (text[pos] == '"') { ++pos; return true; }
                ++pos;
            }
            return false;
        };
        skip_ws();
        if (pos >= text.size()) return false;
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            skip_ws();
            if (pos < text.size() && text[pos] == '}') { ++pos; return true; }
            for (;;) {
                skip_ws();
                if (!string_value()) return false;
                skip_ws();
                if (pos >= text.size() || text[pos] != ':') return false;
                ++pos;
                if (!value()) return false;
                skip_ws();
                if (pos < text.size() && text[pos] == ',') { ++pos; continue; }
                if (pos < text.size() && text[pos] == '}') { ++pos; return true; }
                return false;
            }
        }
        if (c == '[') {
            ++pos;
            skip_ws();
            if (pos < text.size() && text[pos] == ']') { ++pos; return true; }
            for (;;) {
                if (!value()) return false;
                skip_ws();
                if (pos < text.size() && text[pos] == ',') { ++pos; continue; }
                if (pos < text.size() && text[pos] == ']') { ++pos; return true; }
                return false;
            }
        }
        if (c == '"') return string_value();
        if (text.compare(pos, 4, "true") == 0) { pos += 4; return true; }
        if (text.compare(pos, 5, "false") == 0) { pos += 5; return true; }
        if (text.compare(pos, 4, "null") == 0) { pos += 4; return true; }
        const std::size_t start = pos;
        if (text[pos] == '-') ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-')) {
            ++pos;
        }
        return pos > start;
    };
    if (!value()) return false;
    skip_ws();
    return pos == text.size();
}

TEST(Trace, SpanRecordsNameCategoryArgsAndDuration) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Trace_recorder& recorder = Trace_recorder::instance();
    recorder.enable();
    {
        const Trace_span span(
            "unit.span", "test",
            args_join(arg("gene", "ftsZ \"quoted\""), arg("index", std::int64_t{7})));
    }
    recorder.disable();

    const std::vector<Trace_event> events = recorder.collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "unit.span");
    EXPECT_EQ(events[0].category, "test");
    EXPECT_NE(events[0].args_json.find("\"gene\": \"ftsZ \\\"quoted\\\"\""),
              std::string::npos)
        << events[0].args_json;
    EXPECT_NE(events[0].args_json.find("\"index\": 7"), std::string::npos);
    EXPECT_GE(events[0].duration_ns, 0);
    EXPECT_GE(events[0].start_ns, recorder.epoch_ns());
}

TEST(Trace, DisabledRecorderCapturesNothing) {
    Trace_recorder& recorder = Trace_recorder::instance();
    recorder.enable();  // clears prior buffers
    recorder.disable();
    {
        const Trace_span span("ignored", "test");
    }
    EXPECT_TRUE(recorder.collect().empty());
}

TEST(Trace, SpanNestingIsPreservedAcrossThreads) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Trace_recorder& recorder = Trace_recorder::instance();
    recorder.enable();

    constexpr int kThreads = 4;
    std::atomic<int> arrivals{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&arrivals, t] {
            arrivals.fetch_add(1);
            while (arrivals.load() < kThreads) std::this_thread::yield();
            const Trace_span outer("outer:" + std::to_string(t), "test");
            {
                const Trace_span inner("inner:" + std::to_string(t), "test");
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    recorder.disable();

    // Each thread's pair landed in its own buffer with one dense tid,
    // and the inner span's interval is contained in the outer's.
    const std::vector<Trace_event> events = recorder.collect();
    std::map<std::string, const Trace_event*> by_name;
    for (const Trace_event& event : events) by_name[event.name] = &event;
    ASSERT_EQ(events.size(), 2u * kThreads);

    std::map<std::uint32_t, int> pairs_per_tid;
    for (int t = 0; t < kThreads; ++t) {
        const Trace_event* outer = by_name["outer:" + std::to_string(t)];
        const Trace_event* inner = by_name["inner:" + std::to_string(t)];
        ASSERT_NE(outer, nullptr) << t;
        ASSERT_NE(inner, nullptr) << t;
        EXPECT_EQ(outer->tid, inner->tid) << "thread " << t;
        EXPECT_GE(inner->start_ns, outer->start_ns) << "thread " << t;
        EXPECT_LE(inner->start_ns + inner->duration_ns,
                  outer->start_ns + outer->duration_ns)
            << "thread " << t;
        ++pairs_per_tid[outer->tid];
    }
    // Distinct threads got distinct buffers.
    EXPECT_EQ(pairs_per_tid.size(), static_cast<std::size_t>(kThreads));

    // collect() orders parents before their children within a tid.
    std::map<std::uint32_t, std::vector<const Trace_event*>> by_tid;
    for (const Trace_event& event : events) by_tid[event.tid].push_back(&event);
    for (const auto& [tid, list] : by_tid) {
        ASSERT_EQ(list.size(), 2u);
        EXPECT_EQ(list[0]->name.rfind("outer:", 0), 0u) << "tid " << tid;
    }
}

TEST(Trace, WorkerPoolEmitsSchedulerSpans) {
    if (!compiled_in) GTEST_SKIP() << "built with CELLSYNC_TELEMETRY=OFF";
    Trace_recorder& recorder = Trace_recorder::instance();
    recorder.enable();

    Worker_pool pool(3);
    std::vector<double> out(8, 0.0);
    Task_graph graph;
    const Task_graph::Node_id fill = graph.add_node(
        "fill", out.size(), [&out](std::size_t i) { out[i] = static_cast<double>(i); });
    graph.add_node(
        "double", out.size(), [&out](std::size_t i) { out[i] *= 2.0; }, {fill});
    pool.run(graph);
    recorder.disable();

    bool task_span = false;
    bool node_span = false;
    for (const Trace_event& event : recorder.collect()) {
        if (event.category == "scheduler" && event.name == "fill") task_span = true;
        if (event.category == "scheduler.node" && event.name == "node:double") {
            node_span = true;
        }
    }
    EXPECT_TRUE(task_span) << "no per-task scheduler span recorded";
    EXPECT_TRUE(node_span) << "no per-node resolve span recorded";
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], 2.0 * static_cast<double>(i));
    }
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
    Trace_recorder& recorder = Trace_recorder::instance();
    recorder.enable();
    {
        const Trace_span span("json.span", "test", arg("k", "v"));
    }
    recorder.disable();

    std::ostringstream out;
    recorder.write_chrome_trace(out);
    const std::string text = out.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    if (compiled_in) {
        EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
        EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
        EXPECT_NE(text.find("\"json.span\""), std::string::npos);
    } else {
        EXPECT_EQ(text.find("\"ph\""), std::string::npos);  // empty event list
    }
}

// ---------------------------------------------------------------------
// Observes-never-perturbs: a traced experiment's numeric outputs are
// bit-identical to an untraced run at any thread count.
// ---------------------------------------------------------------------

Experiment_spec traced_spec(std::size_t threads) {
    static const std::vector<Measurement_series> panel = [] {
        Kernel_build_options kernel_options;
        kernel_options.n_cells = 2000;
        kernel_options.n_bins = 40;
        kernel_options.seed = 7;
        const Kernel_grid kernel = build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                                linspace(0.0, 150.0, 9), kernel_options);
        return std::vector<Measurement_series>{
            forward_measurements(kernel, ftsz_like_profile().f, "ftsZ"),
            forward_measurements(kernel, sinusoid_profile(3.0, 2.0).f, "wave"),
            forward_measurements(kernel, pulse_profile(0.0, 6.0, 0.7, 0.15).f, "pulse"),
        };
    }();

    Experiment_spec spec;
    spec.kernel.n_cells = 2000;
    spec.kernel.n_bins = 40;
    spec.kernel.seed = 7;
    spec.basis_size = 10;
    spec.threads = threads;
    spec.batch.select_lambda = false;
    spec.batch.deconvolution.lambda = 3e-4;

    Experiment_condition reference;
    reference.name = "reference";
    reference.panel = panel;
    Experiment_condition fast;
    fast.name = "fast";
    fast.cell_cycle.mean_cycle_minutes = 120.0;
    fast.panel = panel;
    spec.conditions = {reference, fast};
    return spec;
}

TEST(Trace, TracedExperimentIsBitIdenticalToUntraced) {
    Trace_recorder& recorder = Trace_recorder::instance();
    recorder.disable();
    const Smooth_volume_model volume;
    const Experiment_result untraced = run_experiment(traced_spec(2), volume);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        recorder.enable();
        const Experiment_result traced = run_experiment(traced_spec(threads), volume);
        recorder.disable();

        ASSERT_EQ(traced.conditions.size(), untraced.conditions.size());
        for (std::size_t c = 0; c < traced.conditions.size(); ++c) {
            const Condition_result& a = untraced.conditions[c];
            const Condition_result& b = traced.conditions[c];
            ASSERT_EQ(a.genes.size(), b.genes.size()) << a.name;
            for (std::size_t g = 0; g < a.genes.size(); ++g) {
                ASSERT_TRUE(a.genes[g].estimate.has_value()) << a.genes[g].label;
                ASSERT_TRUE(b.genes[g].estimate.has_value()) << b.genes[g].label;
                const Vector& ca = a.genes[g].estimate->coefficients();
                const Vector& cb = b.genes[g].estimate->coefficients();
                ASSERT_EQ(ca.size(), cb.size());
                for (std::size_t i = 0; i < ca.size(); ++i) {
                    EXPECT_EQ(ca[i], cb[i])
                        << a.name << " gene " << a.genes[g].label << " coefficient "
                        << i << " with " << threads << " threads";
                }
            }
        }
        if (compiled_in) {
            // The traced run actually captured scheduler and QP spans —
            // bit-identity above wasn't vacuous.
            bool scheduler = false;
            bool qp = false;
            for (const Trace_event& event : recorder.collect()) {
                scheduler = scheduler || event.category.rfind("scheduler", 0) == 0;
                qp = qp || event.category == "qp";
            }
            EXPECT_TRUE(scheduler);
            EXPECT_TRUE(qp);
        }
    }
}

}  // namespace
}  // namespace cellsync::telemetry
