#include "models/parameter_estimation.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cellsync {
namespace {

TEST(LvFit, RelativeErrorMetric) {
    Lv_fit_result fit;
    fit.params = paper_lv_params(150.0);
    EXPECT_NEAR(fit.relative_error(fit.params), 0.0, 1e-15);
    Lotka_volterra_params truth = fit.params;
    truth.a *= 2.0;  // 100% error in one of four params -> 0.5 in rms
    EXPECT_NEAR(fit.relative_error(truth), 0.25, 1e-12);
}

TEST(LvFit, RecoversParametersFromCleanProfiles) {
    // Fit against the model's own trajectories: the optimizer should walk
    // back to (nearly) the true rates from a perturbed start.
    const Lotka_volterra_params truth = paper_lv_params(150.0);
    const Gene_profile x1 = lotka_volterra_profile(truth, 0, 150.0);
    const Gene_profile x2 = lotka_volterra_profile(truth, 1, 150.0);

    Lotka_volterra_params guess = truth;
    guess.a *= 1.3;
    guess.b *= 0.8;
    guess.c *= 1.15;
    guess.d *= 0.9;

    Nelder_mead_options options;
    options.max_evaluations = 4000;
    const Lv_fit_result fit =
        fit_lv_to_profiles(x1.f, x2.f, linspace(0.0, 1.0, 31), 150.0, guess, options);
    EXPECT_LT(fit.relative_error(truth), 0.05);
    EXPECT_LT(fit.objective, 1e-2);
}

TEST(LvFit, ProfilesValidation) {
    const Lotka_volterra_params p = paper_lv_params(150.0);
    const Gene_profile x1 = lotka_volterra_profile(p, 0, 150.0);
    const Gene_profile x2 = lotka_volterra_profile(p, 1, 150.0);
    EXPECT_THROW(fit_lv_to_profiles(x1.f, x2.f, {0.0, 0.5}, 150.0, p),
                 std::invalid_argument);
    EXPECT_THROW(fit_lv_to_profiles(x1.f, x2.f, linspace(0.0, 1.0, 11), 0.0, p),
                 std::invalid_argument);
}

TEST(LvFit, PopulationFitValidation) {
    const Measurement_series g1 =
        Measurement_series::with_unit_sigma("x1", {0.0, 15.0}, {1.0, 1.1});
    Measurement_series g2 =
        Measurement_series::with_unit_sigma("x2", {0.0, 15.0, 30.0}, {1.0, 1.1, 1.2});
    EXPECT_THROW(fit_lv_to_population(g1, g2, paper_lv_params(150.0)),
                 std::invalid_argument);
}

TEST(LvFit, PopulationFitRunsAndReturnsFiniteObjective) {
    // Minimal smoke test of the naive path: fit to (fake) population data.
    const Lotka_volterra_params truth = paper_lv_params(150.0);
    const Ode_solution sol = solve_lotka_volterra(truth, 150.0);
    Vector times = linspace(0.0, 150.0, 11);
    Vector v1(times.size()), v2(times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
        v1[i] = sol.interpolate(times[i], 0);
        v2[i] = sol.interpolate(times[i], 1);
    }
    const Measurement_series g1 = Measurement_series::with_unit_sigma("x1", times, v1);
    const Measurement_series g2 = Measurement_series::with_unit_sigma("x2", times, v2);
    Nelder_mead_options options;
    options.max_evaluations = 2000;
    const Lv_fit_result fit = fit_lv_to_population(g1, g2, truth, options);
    EXPECT_LT(fit.objective, 1e-6);  // fitting the model to itself
    EXPECT_LT(fit.relative_error(truth), 0.02);
}

}  // namespace
}  // namespace cellsync
