#include "biology/volume_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cellsync {
namespace {

// Property suite over the paper's constraint identities (Eqs 6-10), swept
// across the plausible range of transition phases.
class VolumeModelConstraints : public ::testing::TestWithParam<double> {};

TEST_P(VolumeModelConstraints, SmoothModelSatisfiesAnchorsEq6to8) {
    const double phi_sst = GetParam();
    const Smooth_volume_model m;
    EXPECT_NEAR(m.relative_volume(0.0, phi_sst), 0.4, 1e-12);   // Eq 7
    EXPECT_NEAR(m.relative_volume(phi_sst, phi_sst), 0.6, 1e-9);// Eq 8
    EXPECT_NEAR(m.relative_volume(1.0, phi_sst), 1.0, 1e-12);   // Eq 6
}

TEST_P(VolumeModelConstraints, SmoothModelSatisfiesRateContinuityEq9to10) {
    const double phi_sst = GetParam();
    const Smooth_volume_model m;
    const double v1 = m.derivative(1.0, phi_sst);
    EXPECT_NEAR(m.derivative(0.0, phi_sst), v1, 1e-9);       // Eq 9
    EXPECT_NEAR(m.derivative(phi_sst, phi_sst), v1, 1e-7);   // Eq 10
    EXPECT_NEAR(v1, growth_rate_beta(phi_sst), 1e-12);
}

TEST_P(VolumeModelConstraints, LinearModelSharesAnchorsButNotRates) {
    const double phi_sst = GetParam();
    const Linear_volume_model m;
    EXPECT_NEAR(m.relative_volume(0.0, phi_sst), 0.4, 1e-12);
    EXPECT_NEAR(m.relative_volume(phi_sst, phi_sst), 0.6, 1e-12);
    EXPECT_NEAR(m.relative_volume(1.0, phi_sst), 1.0, 1e-12);
    // The 2009 baseline violates rate continuity except at one special
    // phi_sst (1/3 for the SW piece).
    if (std::abs(phi_sst - 1.0 / 3.0) > 0.02) {
        EXPECT_GT(std::abs(m.derivative(0.0, phi_sst) - m.derivative(1.0, phi_sst)), 1e-3);
    }
}

TEST_P(VolumeModelConstraints, VolumeIsConservedAcrossDivision) {
    // SW daughter (0.4 V0) + ST daughter (0.6 V0) = mother (V0).
    const double phi_sst = GetParam();
    const Smooth_volume_model m;
    const double mother = m.relative_volume(1.0, phi_sst);
    const double daughters =
        m.relative_volume(0.0, phi_sst) + m.relative_volume(phi_sst, phi_sst);
    EXPECT_NEAR(daughters, mother, 1e-9);
}

TEST_P(VolumeModelConstraints, SmoothModelIsMonotoneIncreasing) {
    const double phi_sst = GetParam();
    const Smooth_volume_model m;
    double prev = m.relative_volume(0.0, phi_sst);
    for (double phi = 0.01; phi <= 1.0; phi += 0.01) {
        const double v = m.relative_volume(phi, phi_sst);
        EXPECT_GE(v, prev - 1e-12) << "phi=" << phi << " phi_sst=" << phi_sst;
        prev = v;
    }
}

TEST_P(VolumeModelConstraints, DerivativeMatchesFiniteDifference) {
    const double phi_sst = GetParam();
    const Smooth_volume_model m;
    const double h = 1e-7;
    for (double phi : {0.05, 0.5 * phi_sst, phi_sst + 0.05, 0.9}) {
        if (phi + h > 1.0 || phi - h < 0.0) continue;
        // Skip the junction where the piecewise definition switches.
        if (std::abs(phi - phi_sst) < 10.0 * h) continue;
        const double fd =
            (m.relative_volume(phi + h, phi_sst) - m.relative_volume(phi - h, phi_sst)) /
            (2.0 * h);
        EXPECT_NEAR(m.derivative(phi, phi_sst), fd, 1e-5) << "phi=" << phi;
    }
}

INSTANTIATE_TEST_SUITE_P(PhiSstSweep, VolumeModelConstraints,
                         ::testing::Values(0.10, 0.15, 0.20, 0.25, 0.30, 0.40));

TEST(VolumeModel, InvalidPhiSstThrows) {
    const Smooth_volume_model sm;
    const Linear_volume_model lm;
    EXPECT_THROW(sm.relative_volume(0.5, 0.0), std::invalid_argument);
    EXPECT_THROW(sm.relative_volume(0.5, 1.0), std::invalid_argument);
    EXPECT_THROW(lm.derivative(0.5, -0.1), std::invalid_argument);
    EXPECT_THROW(growth_rate_beta(1.0), std::invalid_argument);
}

TEST(VolumeModel, PhiClampedToUnitInterval) {
    const Smooth_volume_model m;
    EXPECT_DOUBLE_EQ(m.relative_volume(-0.5, 0.15), m.relative_volume(0.0, 0.15));
    EXPECT_DOUBLE_EQ(m.relative_volume(1.5, 0.15), m.relative_volume(1.0, 0.15));
}

TEST(VolumeModel, GrowthRateBetaFormula) {
    EXPECT_NEAR(growth_rate_beta(0.15), 0.4 / 0.85, 1e-15);
    EXPECT_NEAR(growth_rate_beta(0.5), 0.8, 1e-15);
}

TEST(VolumeModel, NamesAreStable) {
    EXPECT_EQ(Smooth_volume_model().name(), "smooth-2011");
    EXPECT_EQ(Linear_volume_model().name(), "linear-2009");
}

TEST(VolumeModel, SmoothAndLinearAgreeOnStalkedSegment) {
    // On [phi_sst, 1] both models are the same line through (phi_sst, 0.6)
    // and (1, 1).
    const Smooth_volume_model sm;
    const Linear_volume_model lm;
    for (double phi : {0.2, 0.5, 0.8, 1.0}) {
        EXPECT_NEAR(sm.relative_volume(phi, 0.15), lm.relative_volume(phi, 0.15), 1e-12);
    }
}

}  // namespace
}  // namespace cellsync
