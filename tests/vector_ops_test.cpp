#include "numerics/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cellsync {
namespace {

TEST(VectorOps, DotComputesInnerProduct) {
    EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

TEST(VectorOps, DotOfEmptyVectorsIsZero) {
    EXPECT_DOUBLE_EQ(dot({}, {}), 0.0);
}

TEST(VectorOps, DotRejectsSizeMismatch) {
    EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOps, Norm2OfUnitAxes) {
    EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(norm2({0.0, 0.0, 0.0}), 0.0);
}

TEST(VectorOps, NormInfPicksLargestMagnitude) {
    EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0, 5.0}), 7.0);
    EXPECT_DOUBLE_EQ(norm_inf({}), 0.0);
}

TEST(VectorOps, SumAddsEntries) {
    EXPECT_DOUBLE_EQ(sum({1.5, 2.5, -1.0}), 3.0);
}

TEST(VectorOps, AxpyAccumulatesInPlace) {
    Vector y{1.0, 1.0};
    axpy(2.0, {3.0, -1.0}, y);
    EXPECT_DOUBLE_EQ(y[0], 7.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(VectorOps, AxpyRejectsSizeMismatch) {
    Vector y{1.0};
    EXPECT_THROW(axpy(1.0, {1.0, 2.0}, y), std::invalid_argument);
}

TEST(VectorOps, ScaledMultipliesEachEntry) {
    const Vector r = scaled({1.0, -2.0}, -3.0);
    EXPECT_DOUBLE_EQ(r[0], -3.0);
    EXPECT_DOUBLE_EQ(r[1], 6.0);
}

TEST(VectorOps, ArithmeticOperators) {
    const Vector a{1.0, 2.0};
    const Vector b{10.0, 20.0};
    const Vector s = a + b;
    const Vector d = b - a;
    const Vector m = 2.0 * a;
    EXPECT_DOUBLE_EQ(s[1], 22.0);
    EXPECT_DOUBLE_EQ(d[0], 9.0);
    EXPECT_DOUBLE_EQ(m[1], 4.0);
}

TEST(VectorOps, HadamardMultipliesElementwise) {
    const Vector h = hadamard({2.0, 3.0}, {5.0, 7.0});
    EXPECT_DOUBLE_EQ(h[0], 10.0);
    EXPECT_DOUBLE_EQ(h[1], 21.0);
}

TEST(VectorOps, LinspaceEndpointsExact) {
    const Vector g = linspace(0.0, 1.0, 11);
    ASSERT_EQ(g.size(), 11u);
    EXPECT_DOUBLE_EQ(g.front(), 0.0);
    EXPECT_DOUBLE_EQ(g.back(), 1.0);
    EXPECT_NEAR(g[5], 0.5, 1e-15);
}

TEST(VectorOps, LinspaceDescendingAllowed) {
    const Vector g = linspace(1.0, 0.0, 3);
    EXPECT_DOUBLE_EQ(g[1], 0.5);
    EXPECT_DOUBLE_EQ(g.back(), 0.0);
}

TEST(VectorOps, LinspaceRejectsTooFewPoints) {
    EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(VectorOps, AllFiniteDetectsNanAndInf) {
    EXPECT_TRUE(all_finite({1.0, -2.0, 0.0}));
    EXPECT_FALSE(all_finite({1.0, std::numeric_limits<double>::quiet_NaN()}));
    EXPECT_FALSE(all_finite({std::numeric_limits<double>::infinity()}));
    EXPECT_TRUE(all_finite({}));
}

}  // namespace
}  // namespace cellsync
