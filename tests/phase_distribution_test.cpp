#include "population/phase_distribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace cellsync {
namespace {

std::vector<Snapshot_entry> uniform_snapshot(std::size_t n) {
    std::vector<Snapshot_entry> snap(n);
    for (std::size_t i = 0; i < n; ++i) {
        snap[i].phi = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
        snap[i].phi_sst = 0.15;
        snap[i].relative_volume = 1.0;
    }
    return snap;
}

TEST(PhaseDistribution, DensityIntegratesToOne) {
    const auto snap = uniform_snapshot(1000);
    const Phase_density d = phase_number_density(snap, 50);
    EXPECT_NEAR(d.mass(), 1.0, 1e-12);
    const Phase_density dv = phase_volume_density(snap, 50);
    EXPECT_NEAR(dv.mass(), 1.0, 1e-12);
}

TEST(PhaseDistribution, UniformSnapshotGivesFlatDensity) {
    const auto snap = uniform_snapshot(10000);
    const Phase_density d = phase_number_density(snap, 10);
    for (double rho : d.density) EXPECT_NEAR(rho, 1.0, 1e-9);
}

TEST(PhaseDistribution, ConcentratedSnapshotPeaksInOneBin) {
    std::vector<Snapshot_entry> snap(100);
    for (auto& e : snap) {
        e.phi = 0.55;
        e.relative_volume = 1.0;
        e.phi_sst = 0.15;
    }
    const Phase_density d = phase_number_density(snap, 10);
    EXPECT_NEAR(d.density[5], 10.0, 1e-12);  // all mass in bin [0.5, 0.6)
    for (std::size_t b = 0; b < 10; ++b) {
        if (b != 5) {
            EXPECT_DOUBLE_EQ(d.density[b], 0.0);
        }
    }
}

TEST(PhaseDistribution, VolumeWeightingShiftsMassToBigCells) {
    // Two groups: small cells at phi=0.05, large cells at phi=0.95.
    std::vector<Snapshot_entry> snap;
    for (int i = 0; i < 100; ++i) {
        snap.push_back({0.05, 0.15, 0.4});
        snap.push_back({0.95, 0.15, 1.0});
    }
    const Phase_density number = phase_number_density(snap, 10);
    const Phase_density volume = phase_volume_density(snap, 10);
    EXPECT_NEAR(number.density[0], number.density[9], 1e-12);
    EXPECT_GT(volume.density[9], volume.density[0]);  // 1.0 vs 0.4 weights
    EXPECT_NEAR(volume.density[9] / volume.density[0], 2.5, 1e-9);
}

TEST(PhaseDistribution, PhiExactlyOneLandsInLastBin) {
    std::vector<Snapshot_entry> snap{{1.0, 0.15, 1.0}};
    const Phase_density d = phase_number_density(snap, 4);
    EXPECT_GT(d.density[3], 0.0);
}

TEST(PhaseDistribution, UniformDensityHasVanishingResultant) {
    // The circular mean of a uniform density is undefined: the resultant
    // vector vanishes, which is what callers should test before trusting
    // the angle.
    const Phase_density d = phase_number_density(uniform_snapshot(100000), 100);
    EXPECT_NEAR(d.resultant_length(), 0.0, 1e-3);
}

TEST(PhaseDistribution, MeanPhaseMatchesCenterOfInteriorCluster) {
    // Away from the wrap point the circular mean agrees with the linear one.
    std::vector<Snapshot_entry> snap;
    for (int i = -2; i <= 2; ++i) {
        snap.push_back({0.6 + 0.01 * i, 0.15, 1.0});
    }
    const Phase_density d = phase_number_density(snap, 100);
    EXPECT_NEAR(d.mean_phase(), 0.6, 0.01);
    EXPECT_GT(d.resultant_length(), 0.9);
}

TEST(PhaseDistribution, MeanPhaseHandlesWrapPointCluster) {
    // Regression: a population tightly clustered around the phi ~ 0/1 wrap
    // point (half just below 1, half just above 0) used to report a linear
    // mean of ~0.5 — the antipode of the true cluster. The circular mean
    // must land at the wrap point itself.
    std::vector<Snapshot_entry> snap;
    for (int i = 0; i < 50; ++i) {
        snap.push_back({0.98, 0.15, 1.0});
        snap.push_back({0.02, 0.15, 1.0});
    }
    const Phase_density d = phase_number_density(snap, 100);
    const double m = d.mean_phase();
    // Circular distance from 0 (equivalently 1) is small.
    const double wrap_distance = std::min(m, 1.0 - m);
    EXPECT_LT(wrap_distance, 0.01);
    EXPECT_GT(d.resultant_length(), 0.9);  // tightly clustered, not uniform
}

TEST(PhaseDistribution, MeanPhaseStaysInUnitInterval) {
    // A cluster just below the wrap point: the resultant angle is negative
    // before wrapping and must come back as a value in [0, 1).
    std::vector<Snapshot_entry> snap(20, Snapshot_entry{0.97, 0.15, 1.0});
    const Phase_density d = phase_number_density(snap, 100);
    EXPECT_GE(d.mean_phase(), 0.0);
    EXPECT_LT(d.mean_phase(), 1.0);
    EXPECT_NEAR(d.mean_phase(), 0.975, 0.01);  // bin center of the 0.97 cluster
}

TEST(PhaseDistribution, ValidationErrors) {
    EXPECT_THROW(phase_number_density({}, 10), std::invalid_argument);
    EXPECT_THROW(phase_number_density(uniform_snapshot(5), 0), std::invalid_argument);
    // Zero-volume snapshot cannot be volume-weighted.
    std::vector<Snapshot_entry> zero{{0.5, 0.15, 0.0}};
    EXPECT_THROW(phase_volume_density(zero, 10), std::invalid_argument);
}

TEST(PhaseDistribution, BinCentersAreMidpoints) {
    const Phase_density d = phase_number_density(uniform_snapshot(10), 4);
    ASSERT_EQ(d.bin_centers.size(), 4u);
    EXPECT_DOUBLE_EQ(d.bin_centers[0], 0.125);
    EXPECT_DOUBLE_EQ(d.bin_centers[3], 0.875);
    EXPECT_DOUBLE_EQ(d.bin_width, 0.25);
}

}  // namespace
}  // namespace cellsync
