#include "biology/cell_cycle.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "numerics/statistics.h"

namespace cellsync {
namespace {

TEST(CellCycleConfig, DefaultsMatchPaper) {
    const Cell_cycle_config config;
    EXPECT_DOUBLE_EQ(config.mu_sst, 0.15);        // 2011 updated value
    EXPECT_DOUBLE_EQ(config.cv_sst, 0.13);
    EXPECT_DOUBLE_EQ(config.mean_cycle_minutes, 150.0);
    EXPECT_NO_THROW(config.validate());
    EXPECT_NEAR(config.sigma_sst(), 0.0195, 1e-12);
}

TEST(CellCycleConfig, ValidationCatchesBadFields) {
    Cell_cycle_config c;
    c.mu_sst = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.mu_sst = 1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.cv_sst = -0.1;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.mean_cycle_minutes = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.cv_cycle = 1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(DrawCellParameters, DistributionMomentsMatchConfig) {
    const Cell_cycle_config config;
    Rng rng(101);
    Vector phi_sst(20000), cycles(20000);
    for (std::size_t i = 0; i < phi_sst.size(); ++i) {
        const Cell_parameters p = draw_cell_parameters(config, rng);
        phi_sst[i] = p.phi_sst;
        cycles[i] = p.cycle_minutes;
    }
    EXPECT_NEAR(mean(phi_sst), 0.15, 0.002);
    EXPECT_NEAR(stddev(phi_sst), 0.0195, 0.002);
    EXPECT_NEAR(mean(cycles), 150.0, 1.0);
    EXPECT_NEAR(stddev(cycles), 18.0, 1.0);
}

TEST(DrawCellParameters, DrawsAreTruncatedToSaneWindows) {
    Cell_cycle_config config;
    config.cv_sst = 0.9;  // extreme spread to exercise truncation
    config.cv_cycle = 0.9;
    Rng rng(13);
    for (int i = 0; i < 5000; ++i) {
        const Cell_parameters p = draw_cell_parameters(config, rng);
        EXPECT_GT(p.phi_sst, 0.0);
        EXPECT_LT(p.phi_sst, 1.0);
        EXPECT_GE(p.cycle_minutes, 0.2 * config.mean_cycle_minutes);
        EXPECT_LE(p.cycle_minutes, 3.0 * config.mean_cycle_minutes);
    }
}

TEST(DrawInitialPhase, SynchronizedSwarmersStartInSwStage) {
    const Cell_cycle_config config;  // default mode: synchronized swarmers
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const Cell_parameters p = draw_cell_parameters(config, rng);
        const double phi0 = draw_initial_phase(config, p, rng);
        EXPECT_GE(phi0, 0.0);
        EXPECT_LE(phi0, p.phi_sst);  // paper: phi_k(0) <= phi_sst_k
    }
}

TEST(DrawInitialPhase, AllAtZeroMode) {
    Cell_cycle_config config;
    config.initial_mode = Initial_phase_mode::all_at_zero;
    Rng rng(5);
    const Cell_parameters p = draw_cell_parameters(config, rng);
    EXPECT_DOUBLE_EQ(draw_initial_phase(config, p, rng), 0.0);
}

TEST(DrawInitialPhase, StationaryModeMatchesExponentialAgeDensity) {
    // Steady state of a doubling population: density 2 ln2 * 2^{-phi};
    // mean = 1/ln2 - 1 ~ 0.4427.
    Cell_cycle_config config;
    config.initial_mode = Initial_phase_mode::stationary;
    Rng rng(7);
    Vector draws(40000);
    const Cell_parameters p{0.15, 150.0};
    for (double& d : draws) d = draw_initial_phase(config, p, rng);
    EXPECT_NEAR(mean(draws), 1.0 / std::log(2.0) - 1.0, 0.005);
    for (double d : draws) {
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
    }
}

TEST(AdvancePhase, LinearInTimeOverCycle) {
    const Cell_parameters p{0.15, 150.0};
    EXPECT_DOUBLE_EQ(advance_phase(0.0, 75.0, p), 0.5);
    EXPECT_DOUBLE_EQ(advance_phase(0.2, 30.0, p), 0.4);
    EXPECT_THROW(advance_phase(0.0, 10.0, Cell_parameters{0.15, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace cellsync
