#include "core/cross_validation.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "biology/gene_profiles.h"
#include "core/forward_model.h"
#include "spline/spline_basis.h"
#include "numerics/statistics.h"

namespace cellsync {
namespace {

class CrossValidationTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        Kernel_build_options options;
        options.n_cells = 20000;
        options.n_bins = 120;
        options.seed = 404;
        kernel_ = new Kernel_grid(build_kernel(Cell_cycle_config{}, Smooth_volume_model{},
                                               linspace(0.0, 180.0, 13), options));
        deconvolver_ = new Deconvolver(std::make_shared<Natural_spline_basis>(12), *kernel_,
                                       Cell_cycle_config{});
    }
    static void TearDownTestSuite() {
        delete deconvolver_;
        delete kernel_;
        deconvolver_ = nullptr;
        kernel_ = nullptr;
    }
    static Kernel_grid* kernel_;
    static Deconvolver* deconvolver_;
};

Kernel_grid* CrossValidationTest::kernel_ = nullptr;
Deconvolver* CrossValidationTest::deconvolver_ = nullptr;

TEST(LambdaGrid, DefaultGridIsLogSpaced) {
    const Vector grid = default_lambda_grid();
    EXPECT_EQ(grid.size(), 25u);
    EXPECT_NEAR(grid.front(), 1e-8, 1e-15);
    EXPECT_NEAR(grid.back(), 1e2, 1e-9);
    for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
        EXPECT_NEAR(grid[i + 1] / grid[i], grid[1] / grid[0], 1e-9);
    }
}

TEST(LambdaGrid, Validation) {
    EXPECT_THROW(default_lambda_grid(1), std::invalid_argument);
    EXPECT_THROW(default_lambda_grid(10, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(default_lambda_grid(10, 1.0, 0.5), std::invalid_argument);
}

TEST_F(CrossValidationTest, KfoldPicksModerateLambdaOnNoisyData) {
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    Rng rng(21);
    const Noise_model noise{Noise_type::relative_gaussian, 0.10};
    const Measurement_series data =
        forward_measurements_noisy(*kernel_, truth.f, noise, rng);
    const Lambda_selection sel = select_lambda_kfold(
        *deconvolver_, data, Deconvolution_options{}, default_lambda_grid(13, 1e-7, 1e1), 5);
    EXPECT_EQ(sel.method, "kfold");
    EXPECT_EQ(sel.scores.size(), 13u);
    // The selected lambda should beat both extremes of the grid on CV score.
    const double best_score = *std::min_element(sel.scores.begin(), sel.scores.end());
    EXPECT_LE(best_score, sel.scores.front());
    EXPECT_LE(best_score, sel.scores.back());
    EXPECT_GT(sel.best_lambda, 0.0);
}

TEST_F(CrossValidationTest, KfoldSelectionImprovesRecovery) {
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    Rng rng(22);
    const Noise_model noise{Noise_type::relative_gaussian, 0.10};
    const Measurement_series data =
        forward_measurements_noisy(*kernel_, truth.f, noise, rng);
    const Lambda_selection sel = select_lambda_kfold(
        *deconvolver_, data, Deconvolution_options{}, default_lambda_grid(13, 1e-7, 1e1), 5);

    Deconvolution_options best_opts;
    best_opts.lambda = sel.best_lambda;
    Deconvolution_options tiny_opts;
    tiny_opts.lambda = 1e-9;

    const Vector grid = linspace(0.0, 1.0, 101);
    const Vector truth_samples = truth.sample(grid);
    const double err_best =
        rmse(deconvolver_->estimate(data, best_opts).sample(grid), truth_samples);
    const double err_tiny =
        rmse(deconvolver_->estimate(data, tiny_opts).sample(grid), truth_samples);
    EXPECT_LE(err_best, err_tiny * 1.05);  // CV choice no worse than overfit
}

TEST_F(CrossValidationTest, GcvScoresFiniteAndMinimumInterior) {
    const Gene_profile truth = sinusoid_profile(3.0, 2.0);
    Rng rng(23);
    const Noise_model noise{Noise_type::relative_gaussian, 0.10};
    const Measurement_series data =
        forward_measurements_noisy(*kernel_, truth.f, noise, rng);
    const Lambda_selection sel =
        select_lambda_gcv(*deconvolver_, data, default_lambda_grid(15, 1e-7, 1e1));
    EXPECT_EQ(sel.method, "gcv");
    for (double s : sel.scores) EXPECT_TRUE(std::isfinite(s));
    EXPECT_GT(sel.best_lambda, 0.0);
}

TEST_F(CrossValidationTest, FoldsClampedToMeasurementCount) {
    const Measurement_series data =
        forward_measurements(*kernel_, [](double) { return 2.0; });
    // folds = 50 > Nm = 13 behaves as leave-one-out, not an error.
    const Lambda_selection sel = select_lambda_kfold(
        *deconvolver_, data, Deconvolution_options{}, default_lambda_grid(5, 1e-5, 1e-1), 50);
    EXPECT_EQ(sel.scores.size(), 5u);
}

TEST_F(CrossValidationTest, ValidationErrors) {
    const Measurement_series data =
        forward_measurements(*kernel_, [](double) { return 2.0; });
    EXPECT_THROW(
        select_lambda_kfold(*deconvolver_, data, Deconvolution_options{}, {}, 5),
        std::invalid_argument);
    EXPECT_THROW(select_lambda_kfold(*deconvolver_, data, Deconvolution_options{},
                                     default_lambda_grid(5), 1),
                 std::invalid_argument);
    EXPECT_THROW(select_lambda_gcv(*deconvolver_, data, {}), std::invalid_argument);
}

TEST_F(CrossValidationTest, DeterministicGivenSeed) {
    const Gene_profile truth = sinusoid_profile(3.0, 1.0);
    Rng rng(24);
    const Noise_model noise{Noise_type::relative_gaussian, 0.05};
    const Measurement_series data =
        forward_measurements_noisy(*kernel_, truth.f, noise, rng);
    const Vector grid = default_lambda_grid(7, 1e-6, 1e0);
    const Lambda_selection a = select_lambda_kfold(*deconvolver_, data,
                                                   Deconvolution_options{}, grid, 4, 123);
    const Lambda_selection b = select_lambda_kfold(*deconvolver_, data,
                                                   Deconvolution_options{}, grid, 4, 123);
    for (std::size_t i = 0; i < a.scores.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.scores[i], b.scores[i]);
    }
    EXPECT_DOUBLE_EQ(a.best_lambda, b.best_lambda);
}

}  // namespace
}  // namespace cellsync
