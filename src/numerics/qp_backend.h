// Pluggable QP solver backends (in the spirit of Uno's QPSolver /
// LinearSolver hierarchy): one interface, multiple concrete methods, so
// the estimation layer can swap solvers per problem structure and the
// benches can race them on identical inputs.
//
// Backends:
//  * active_set — the Goldfarb-Idnani dual active-set method (the general
//    work-horse; handles equality + inequality blocks);
//  * nnls       — Lawson-Hanson non-negative least squares, a fast path
//    for the positivity-only structure (no equalities, x >= 0): the QP is
//    rewritten as min ||L^T x + L^{-1} g|| over x >= 0 with H = L L^T;
//  * automatic  — per-problem dispatch: nnls when the structure allows,
//    active_set otherwise.
#pragma once

#include <memory>
#include <string>

#include "numerics/qp_solver.h"

namespace cellsync {

/// Backend selector carried by solver options and CLI flags.
enum class Qp_backend {
    automatic,   ///< nnls when supported, active_set otherwise
    active_set,  ///< Goldfarb-Idnani dual active-set
    nnls,        ///< Lawson-Hanson projected solver (positivity-only)
};

const char* to_string(Qp_backend backend);

/// Parse "automatic" / "active_set" / "nnls"; throws std::invalid_argument
/// on anything else.
Qp_backend qp_backend_from_string(const std::string& name);

/// Abstract QP solver: one convex QP in, one result out. Implementations
/// are stateless and safe to share across threads.
class Qp_solver {
  public:
    virtual ~Qp_solver() = default;

    virtual std::string name() const = 0;

    /// Can this backend handle the problem's structure? solve() on an
    /// unsupported problem throws std::invalid_argument.
    virtual bool supports(const Qp_problem& problem) const = 0;

    virtual Qp_result solve(const Qp_problem& problem, const Qp_options& options = {}) const = 0;
};

/// Goldfarb-Idnani dual active-set backend (wraps solve_qp_dual). Handles
/// every problem shape the library produces.
class Active_set_qp_solver final : public Qp_solver {
  public:
    std::string name() const override { return "active_set"; }
    bool supports(const Qp_problem& problem) const override;
    Qp_result solve(const Qp_problem& problem, const Qp_options& options = {}) const override;
};

/// NNLS-based projected backend for the positivity-only fast path:
/// no equality rows, inequality block exactly x >= 0 (identity matrix,
/// zero rhs), strictly positive-definite Hessian.
class Nnls_qp_solver final : public Qp_solver {
  public:
    std::string name() const override { return "nnls"; }
    bool supports(const Qp_problem& problem) const override;
    Qp_result solve(const Qp_problem& problem, const Qp_options& options = {}) const override;
};

/// Factory: automatic returns a dispatching solver that picks nnls when
/// supported and active_set otherwise.
std::unique_ptr<Qp_solver> make_qp_solver(Qp_backend backend);

}  // namespace cellsync
