// Numerical integration: composite trapezoid / Simpson rules on uniform
// grids, Gauss-Legendre nodes and weights, and convenience integrators for
// callables. Used for the integral transforms (paper Eq 3) and constraint
// rows (paper Eqs 17-19).
#pragma once

#include <functional>

#include "numerics/vector_ops.h"

namespace cellsync {

/// Nodes and weights of a quadrature rule on some interval.
struct Quadrature_rule {
    Vector nodes;
    Vector weights;
};

/// Composite trapezoid rule over samples y on the uniform grid
/// [a, a+h, ..., b]; y.size() >= 2. Throws std::invalid_argument otherwise.
double trapezoid(const Vector& y, double h);

/// Composite Simpson rule over uniformly spaced samples. Requires an odd
/// number of samples >= 3 (even panel count); throws otherwise.
double simpson(const Vector& y, double h);

/// Trapezoid rule on a possibly non-uniform grid x (ascending) with samples y.
double trapezoid_nonuniform(const Vector& x, const Vector& y);

/// n-point Gauss-Legendre rule on [lo, hi], exact for polynomials of degree
/// 2n-1. Nodes are computed by Newton iteration on Legendre polynomials.
/// Throws std::invalid_argument if n == 0 or lo >= hi.
Quadrature_rule gauss_legendre(std::size_t n, double lo, double hi);

/// Integrate f over [lo, hi] with an n-point Gauss-Legendre rule.
double integrate_gauss(const std::function<double(double)>& f, double lo, double hi,
                       std::size_t n = 32);

/// Integrate f over [lo, hi] with a composite Simpson rule on `panels`
/// uniform panels (panels >= 1).
double integrate_simpson(const std::function<double(double)>& f, double lo, double hi,
                         std::size_t panels = 256);

}  // namespace cellsync
