// Descriptive statistics and error metrics for validating simulations and
// scoring deconvolution accuracy (RMSE / correlation between the recovered
// f(phi) and the known single-cell truth in Figures 2-3).
#pragma once

#include "numerics/vector_ops.h"

namespace cellsync {

/// Arithmetic mean; throws std::invalid_argument on empty input.
double mean(const Vector& v);

/// Unbiased sample variance (n-1 denominator); needs >= 2 samples.
double variance(const Vector& v);

/// Sample standard deviation.
double stddev(const Vector& v);

/// Coefficient of variation stddev/mean; throws if mean == 0.
double coefficient_of_variation(const Vector& v);

/// Linearly interpolated quantile, q in [0,1]; throws on empty input or
/// q outside [0,1].
double quantile(Vector v, double q);

/// Median (q = 0.5 quantile).
double median(Vector v);

/// Pearson correlation; throws if either side has zero variance.
double pearson_correlation(const Vector& a, const Vector& b);

/// Root-mean-square error between two equal-length series.
double rmse(const Vector& a, const Vector& b);

/// RMSE normalized by the range (max-min) of the reference series `ref`;
/// throws if the reference is constant.
double nrmse(const Vector& estimate, const Vector& ref);

/// Mean absolute error.
double mae(const Vector& a, const Vector& b);

/// Maximum absolute deviation.
double max_abs_error(const Vector& a, const Vector& b);

/// Simple histogram of values into `bins` equal-width bins over [lo, hi).
/// Out-of-range values are dropped. Returns counts per bin.
std::vector<std::size_t> histogram(const Vector& v, double lo, double hi, std::size_t bins);

}  // namespace cellsync
