// Cached factorization of the parametric KKT system
//
//     M(lambda, ridge) = [ H0 + lambda*H1 + ridge*I    A^T ]
//                        [ A                           0   ]
//
// that underlies the deconvolution estimator: H0 is the (weighted) data
// Gram matrix, H1 the roughness penalty, and A the equality-constraint
// block. The blocks are fixed per design while lambda sweeps (CV grids,
// GCV paths) and the active set change, so re-deriving them per solve is
// pure waste. This object assembles them once, factors on demand, and
// keeps the factorization until (lambda, ridge) actually changes — a
// refactorization touches only the cached assembly buffer, never the
// callers' matrices.
#pragma once

#include <optional>

#include "numerics/linear_solve.h"
#include "numerics/matrix.h"
#include "numerics/vector_ops.h"

namespace cellsync {

class Kkt_factorization {
  public:
    /// `h_base` (n x n) is required; `h_lambda` may be empty (treated as
    /// zero) and otherwise must match `h_base`; `eq` may have zero rows.
    /// Throws std::invalid_argument on shape mismatch.
    Kkt_factorization(Matrix h_base, Matrix h_lambda, Matrix eq);

    std::size_t unknowns() const { return h_base_.rows(); }
    std::size_t equalities() const { return eq_.rows(); }

    /// Ensure the factorization matches (lambda, ridge). A no-op when both
    /// are unchanged from the current factorization (the cache hit);
    /// otherwise re-assembles from the cached blocks and refactors.
    /// Uses Cholesky when there is no equality block and the Hessian is
    /// positive definite, LDLT otherwise. Throws std::invalid_argument for
    /// lambda < 0 and std::runtime_error on a singular system.
    void factorize(double lambda, double ridge = 0.0);

    bool is_factorized() const { return chol_.has_value() || ldlt_.has_value(); }
    double lambda() const { return lambda_; }
    double ridge() const { return ridge_; }

    /// Number of actual (non-cached) factorizations performed — lets tests
    /// and diagnostics verify that lambda-sweep reuse really happens.
    std::size_t factorization_count() const { return factorization_count_; }

    /// Minimize 0.5 x' H(lambda) x + g' x subject to A x = b at the current
    /// factorization; returns the primal x (length n). Throws
    /// std::logic_error if factorize() has not been called.
    Vector solve(const Vector& gradient, const Vector& eq_rhs) const;

    /// Raw KKT solve M(lambda) z = rhs with rhs of length n + m_e; returns
    /// [x; multipliers].
    Vector solve_kkt(const Vector& rhs) const;

  private:
    Matrix h_base_;
    Matrix h_lambda_;
    Matrix eq_;
    Matrix assembled_;  // reused assembly buffer, (n+me) x (n+me)

    double lambda_ = -1.0;
    double ridge_ = 0.0;
    std::size_t factorization_count_ = 0;
    std::optional<Cholesky_factorization> chol_;  // me == 0 and H PD
    std::optional<Ldlt_factorization> ldlt_;      // the general case
};

}  // namespace cellsync
