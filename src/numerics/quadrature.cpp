#include "numerics/quadrature.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cellsync {

double trapezoid(const Vector& y, double h) {
    if (y.size() < 2) throw std::invalid_argument("trapezoid: need at least 2 samples");
    if (h <= 0.0) throw std::invalid_argument("trapezoid: step must be positive");
    double s = 0.5 * (y.front() + y.back());
    for (std::size_t i = 1; i + 1 < y.size(); ++i) s += y[i];
    return s * h;
}

double simpson(const Vector& y, double h) {
    if (y.size() < 3 || y.size() % 2 == 0) {
        throw std::invalid_argument("simpson: need an odd sample count >= 3");
    }
    if (h <= 0.0) throw std::invalid_argument("simpson: step must be positive");
    double s = y.front() + y.back();
    for (std::size_t i = 1; i + 1 < y.size(); ++i) s += (i % 2 == 1 ? 4.0 : 2.0) * y[i];
    return s * h / 3.0;
}

double trapezoid_nonuniform(const Vector& x, const Vector& y) {
    if (x.size() != y.size()) throw std::invalid_argument("trapezoid_nonuniform: size mismatch");
    if (x.size() < 2) throw std::invalid_argument("trapezoid_nonuniform: need at least 2 samples");
    double s = 0.0;
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
        const double dx = x[i + 1] - x[i];
        if (dx < 0.0) throw std::invalid_argument("trapezoid_nonuniform: grid must be ascending");
        s += 0.5 * dx * (y[i] + y[i + 1]);
    }
    return s;
}

Quadrature_rule gauss_legendre(std::size_t n, double lo, double hi) {
    if (n == 0) throw std::invalid_argument("gauss_legendre: n must be positive");
    if (!(lo < hi)) throw std::invalid_argument("gauss_legendre: need lo < hi");

    Quadrature_rule rule;
    rule.nodes.resize(n);
    rule.weights.resize(n);

    // Roots of P_n on [-1,1] by Newton iteration from Chebyshev-like guesses,
    // exploiting symmetry: compute the first half, mirror the rest.
    const std::size_t half = (n + 1) / 2;
    for (std::size_t i = 0; i < half; ++i) {
        double x = std::cos(std::numbers::pi * (static_cast<double>(i) + 0.75) /
                            (static_cast<double>(n) + 0.5));
        double dp = 0.0;
        for (int iter = 0; iter < 100; ++iter) {
            // Evaluate P_n(x) and P_n'(x) by the three-term recurrence.
            double p0 = 1.0, p1 = x;
            for (std::size_t k = 2; k <= n; ++k) {
                const double kk = static_cast<double>(k);
                const double p2 = ((2.0 * kk - 1.0) * x * p1 - (kk - 1.0) * p0) / kk;
                p0 = p1;
                p1 = p2;
            }
            const double pn = (n == 1) ? p1 : p1;
            dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
            const double dx = pn / dp;
            x -= dx;
            if (std::abs(dx) < 1e-15) break;
        }
        const double w = 2.0 / ((1.0 - x * x) * dp * dp);
        rule.nodes[i] = -x;  // ascending order
        rule.weights[i] = w;
        rule.nodes[n - 1 - i] = x;
        rule.weights[n - 1 - i] = w;
    }

    // Affine map [-1,1] -> [lo, hi].
    const double c = 0.5 * (hi + lo);
    const double hwidth = 0.5 * (hi - lo);
    for (std::size_t i = 0; i < n; ++i) {
        rule.nodes[i] = c + hwidth * rule.nodes[i];
        rule.weights[i] *= hwidth;
    }
    return rule;
}

double integrate_gauss(const std::function<double(double)>& f, double lo, double hi,
                       std::size_t n) {
    const Quadrature_rule r = gauss_legendre(n, lo, hi);
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += r.weights[i] * f(r.nodes[i]);
    return s;
}

double integrate_simpson(const std::function<double(double)>& f, double lo, double hi,
                         std::size_t panels) {
    if (panels == 0) throw std::invalid_argument("integrate_simpson: panels must be positive");
    const std::size_t samples = 2 * panels + 1;
    const double h = (hi - lo) / static_cast<double>(samples - 1);
    Vector y(samples);
    for (std::size_t i = 0; i < samples; ++i) y[i] = f(lo + h * static_cast<double>(i));
    return simpson(y, h);
}

}  // namespace cellsync
