// Baseline-ISA kernel table: the same chunked kernels every other tier
// compiles, built with the fleet-safe default flags (no -m options).
// Always present — this is the table the dispatcher falls back to on
// hosts or builds without the ISA translation units.
#include <cstddef>
#include <vector>

#include "numerics/simd.h"
#include "numerics/simd_dispatch.h"

#define CELLSYNC_KERNEL_TIER_NS k_scalar
#define CELLSYNC_KERNEL_TIER Tier::scalar
#include "numerics/simd_kernels.inc"
