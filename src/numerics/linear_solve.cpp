#include "numerics/linear_solve.h"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cellsync {

namespace {

struct Lu_factors {
    Matrix lu;                     // packed L (unit diagonal, below) and U (on/above)
    std::vector<std::size_t> piv;  // row permutation
    int sign = 1;                  // permutation sign, for determinants
};

Lu_factors lu_factor(const Matrix& a) {
    if (a.rows() != a.cols()) throw std::invalid_argument("lu_factor: matrix must be square");
    const std::size_t n = a.rows();
    Lu_factors f{a, std::vector<std::size_t>(n), 1};
    std::iota(f.piv.begin(), f.piv.end(), std::size_t{0});

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at or below the diagonal.
        std::size_t p = k;
        double best = std::abs(f.lu(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double v = std::abs(f.lu(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best < 1e-13 * std::max(1.0, f.lu.norm_inf())) {
            throw std::runtime_error("lu_factor: matrix is singular to working precision");
        }
        if (p != k) {
            for (std::size_t j = 0; j < n; ++j) std::swap(f.lu(k, j), f.lu(p, j));
            std::swap(f.piv[k], f.piv[p]);
            f.sign = -f.sign;
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            f.lu(i, k) /= f.lu(k, k);
            const double lik = f.lu(i, k);
            if (lik == 0.0) continue;
            for (std::size_t j = k + 1; j < n; ++j) f.lu(i, j) -= lik * f.lu(k, j);
        }
    }
    return f;
}

Vector lu_apply(const Matrix& lu, const std::vector<std::size_t>& piv, const Vector& b) {
    const std::size_t n = lu.rows();
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[piv[i]];
    // Forward substitution with unit-lower L.
    for (std::size_t i = 1; i < n; ++i) {
        double s = x[i];
        for (std::size_t j = 0; j < i; ++j) s -= lu(i, j) * x[j];
        x[i] = s;
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
        double s = x[ii];
        for (std::size_t j = ii + 1; j < n; ++j) s -= lu(ii, j) * x[j];
        x[ii] = s / lu(ii, ii);
    }
    return x;
}

Vector lu_apply(const Lu_factors& f, const Vector& b) { return lu_apply(f.lu, f.piv, b); }

}  // namespace

Vector lu_solve(const Matrix& a, const Vector& b) {
    if (a.rows() != b.size()) throw std::invalid_argument("lu_solve: rhs length mismatch");
    return lu_apply(lu_factor(a), b);
}

Matrix lu_solve(const Matrix& a, const Matrix& b) {
    if (a.rows() != b.rows()) throw std::invalid_argument("lu_solve: rhs rows mismatch");
    const Lu_factors f = lu_factor(a);
    Matrix x(a.cols(), b.cols());
    for (std::size_t j = 0; j < b.cols(); ++j) x.set_col(j, lu_apply(f, b.col(j)));
    return x;
}

double determinant(const Matrix& a) {
    if (a.rows() != a.cols()) throw std::invalid_argument("determinant: matrix must be square");
    if (a.rows() == 0) return 1.0;
    Lu_factors f;
    try {
        f = lu_factor(a);
    } catch (const std::runtime_error&) {
        return 0.0;
    }
    double d = static_cast<double>(f.sign);
    for (std::size_t i = 0; i < a.rows(); ++i) d *= f.lu(i, i);
    return d;
}

Matrix inverse(const Matrix& a) { return lu_solve(a, Matrix::identity(a.rows())); }

Matrix cholesky(const Matrix& a) {
    if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: matrix must be square");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double d = a(j, j);
        for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
        if (d <= 0.0 || !std::isfinite(d)) {
            throw std::runtime_error("cholesky: matrix is not positive definite");
        }
        l(j, j) = std::sqrt(d);
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
            l(i, j) = s / l(j, j);
        }
    }
    return l;
}

Cholesky_factorization::Cholesky_factorization(const Matrix& a) : lower_(cholesky(a)) {}

Vector Cholesky_factorization::forward(const Vector& b) const {
    if (b.size() != lower_.rows()) {
        throw std::invalid_argument("Cholesky_factorization: rhs length mismatch");
    }
    const std::size_t n = lower_.rows();
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t j = 0; j < i; ++j) s -= lower_(i, j) * y[j];
        y[i] = s / lower_(i, i);
    }
    return y;
}

Vector Cholesky_factorization::backward(const Vector& y) const {
    if (y.size() != lower_.rows()) {
        throw std::invalid_argument("Cholesky_factorization: rhs length mismatch");
    }
    const std::size_t n = lower_.rows();
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) s -= lower_(j, ii) * x[j];
        x[ii] = s / lower_(ii, ii);
    }
    return x;
}

Vector Cholesky_factorization::solve(const Vector& b) const { return backward(forward(b)); }

Vector cholesky_solve(const Matrix& a, const Vector& b) {
    if (a.rows() != b.size()) throw std::invalid_argument("cholesky_solve: rhs length mismatch");
    return Cholesky_factorization(a).solve(b);
}

Ldlt_factorization::Ldlt_factorization(const Matrix& a) {
    // Symmetric indefinite systems (KKT matrices) are solved by LU with
    // partial pivoting after symmetric equilibration. KKT blocks routinely
    // mix scales (Hessian entries ~1e7 from inverse-variance weights next
    // to O(1) constraint rows), and without equilibration the LU pivot
    // threshold — relative to the matrix norm — falsely rejects the small
    // but perfectly regular constraint pivots.
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("Ldlt_factorization: matrix must be square");
    }
    const std::size_t n = a.rows();
    scale_.assign(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        double row_norm = 0.0;
        for (std::size_t j = 0; j < n; ++j) row_norm = std::max(row_norm, std::abs(a(i, j)));
        scale_[i] = row_norm > 0.0 ? 1.0 / std::sqrt(row_norm) : 1.0;
    }
    Matrix scaled(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) scaled(i, j) = a(i, j) * scale_[i] * scale_[j];
    }
    Lu_factors f = lu_factor(scaled);
    lu_ = std::move(f.lu);
    piv_ = std::move(f.piv);
}

Vector Ldlt_factorization::solve(const Vector& b) const {
    if (b.size() != lu_.rows()) {
        throw std::invalid_argument("Ldlt_factorization: rhs length mismatch");
    }
    const std::size_t n = lu_.rows();
    // A x = b  <=>  (S A S)(S^{-1} x) = S b.
    Vector rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = b[i] * scale_[i];
    Vector z = lu_apply(lu_, piv_, rhs);
    for (std::size_t i = 0; i < n; ++i) z[i] *= scale_[i];
    return z;
}

Vector ldlt_solve(const Matrix& a, const Vector& b) {
    if (a.rows() != b.size()) throw std::invalid_argument("ldlt_solve: rhs length mismatch");
    return Ldlt_factorization(a).solve(b);
}

Vector qr_least_squares(const Matrix& a, const Vector& b) {
    if (a.rows() != b.size()) throw std::invalid_argument("qr_least_squares: rhs length mismatch");
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix r = a;
    Vector qtb = b;
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});

    // Column norms for pivoting.
    Vector cn(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t i = 0; i < m; ++i) s += r(i, j) * r(i, j);
        cn[j] = s;
    }

    const std::size_t kmax = std::min(m, n);
    std::size_t rank = kmax;
    const double tol = 1e-12;
    double first_pivot = 0.0;

    for (std::size_t k = 0; k < kmax; ++k) {
        // Column pivot: move the column with the largest remaining norm to k.
        std::size_t p = k;
        for (std::size_t j = k + 1; j < n; ++j)
            if (cn[j] > cn[p]) p = j;
        if (p != k) {
            for (std::size_t i = 0; i < m; ++i) std::swap(r(i, k), r(i, p));
            std::swap(cn[k], cn[p]);
            std::swap(perm[k], perm[p]);
        }

        // Householder reflection for column k.
        double nrm = 0.0;
        for (std::size_t i = k; i < m; ++i) nrm += r(i, k) * r(i, k);
        nrm = std::sqrt(nrm);
        if (k == 0) first_pivot = nrm;
        if (nrm <= tol * std::max(1.0, first_pivot)) {
            rank = k;
            break;
        }
        if (r(k, k) > 0.0) nrm = -nrm;
        Vector v(m - k);
        for (std::size_t i = k; i < m; ++i) v[i - k] = r(i, k);
        v[0] -= nrm;
        const double vtv = dot(v, v);
        if (vtv > 0.0) {
            // Apply H = I - 2 v v^T / (v^T v) to trailing columns and rhs.
            for (std::size_t j = k; j < n; ++j) {
                double s = 0.0;
                for (std::size_t i = k; i < m; ++i) s += v[i - k] * r(i, j);
                const double f = 2.0 * s / vtv;
                for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
            }
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i) s += v[i - k] * qtb[i];
            const double f = 2.0 * s / vtv;
            for (std::size_t i = k; i < m; ++i) qtb[i] -= f * v[i - k];
        }
        r(k, k) = nrm;
        // Downdate remaining column norms.
        for (std::size_t j = k + 1; j < n; ++j) cn[j] -= r(k, j) * r(k, j);
    }

    // Back-substitute on the leading rank x rank triangle.
    Vector xp(n, 0.0);
    for (std::size_t ii = rank; ii-- > 0;) {
        double s = qtb[ii];
        for (std::size_t j = ii + 1; j < rank; ++j) s -= r(ii, j) * xp[j];
        xp[ii] = s / r(ii, ii);
    }
    Vector x(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) x[perm[j]] = xp[j];
    return x;
}

double condition_number_1(const Matrix& a) {
    if (a.rows() != a.cols() || a.rows() == 0)
        throw std::invalid_argument("condition_number_1: matrix must be square and non-empty");
    auto norm1 = [](const Matrix& m) {
        double best = 0.0;
        for (std::size_t j = 0; j < m.cols(); ++j) {
            double s = 0.0;
            for (std::size_t i = 0; i < m.rows(); ++i) s += std::abs(m(i, j));
            best = std::max(best, s);
        }
        return best;
    };
    try {
        return norm1(a) * norm1(inverse(a));
    } catch (const std::runtime_error&) {
        return std::numeric_limits<double>::infinity();
    }
}

}  // namespace cellsync
