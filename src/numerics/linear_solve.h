// Dense linear solvers: LU with partial pivoting, Cholesky (LLT), LDLT for
// symmetric indefinite KKT systems, Householder QR least squares.
//
// All factorizations are written for the small dense systems that arise in
// the deconvolution pipeline (KKT systems of a few dozen unknowns). Each
// solver validates its input and throws `std::invalid_argument` for shape
// errors and `std::runtime_error` for numerically singular systems.
#pragma once

#include "numerics/matrix.h"
#include "numerics/vector_ops.h"

namespace cellsync {

/// Solve A x = b by LU factorization with partial pivoting.
/// A must be square with A.rows() == b.size(). Throws std::runtime_error if
/// A is singular to working precision.
Vector lu_solve(const Matrix& a, const Vector& b);

/// Solve A X = B column-by-column (B as matrix). Same contracts as lu_solve.
Matrix lu_solve(const Matrix& a, const Matrix& b);

/// Determinant via LU (sign-tracked product of pivots). Square input only.
double determinant(const Matrix& a);

/// Inverse via LU; prefer the solve forms when possible. Throws on singular.
Matrix inverse(const Matrix& a);

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns lower-triangular L. Throws std::runtime_error if A is not
/// positive definite (non-positive pivot encountered).
Matrix cholesky(const Matrix& a);

/// Reusable Cholesky factorization A = L L^T: factor once, solve many
/// right-hand sides. The factor-once/solve-many split is what the QP
/// backends and the KKT cache build on. Throws std::runtime_error if A is
/// not positive definite.
class Cholesky_factorization {
  public:
    explicit Cholesky_factorization(const Matrix& a);

    std::size_t size() const { return lower_.rows(); }
    const Matrix& lower() const { return lower_; }

    /// Solve A x = b.
    Vector solve(const Vector& b) const;

    /// Solve L y = b (forward substitution half).
    Vector forward(const Vector& b) const;

    /// Solve L^T x = y (back substitution half).
    Vector backward(const Vector& y) const;

  private:
    Matrix lower_;
};

/// Reusable factorization for symmetric (possibly indefinite) systems —
/// equilibrated LU with partial pivoting under the hood (see ldlt_solve for
/// why equilibration matters on mixed-scale KKT blocks). Factor once, solve
/// many right-hand sides. Throws std::runtime_error on singular input.
class Ldlt_factorization {
  public:
    explicit Ldlt_factorization(const Matrix& a);

    std::size_t size() const { return lu_.rows(); }

    /// Solve A x = b.
    Vector solve(const Vector& b) const;

  private:
    Matrix lu_;                      // packed L (unit lower) and U
    std::vector<std::size_t> piv_;   // row permutation
    Vector scale_;                   // symmetric equilibration diag
};

/// Solve A x = b for symmetric positive-definite A using Cholesky.
Vector cholesky_solve(const Matrix& a, const Vector& b);

/// Solve A x = b for symmetric (possibly indefinite) A using Bunch-Kaufman
/// style LDLT with symmetric diagonal pivoting. Intended for KKT systems.
/// Throws std::runtime_error on singular input.
Vector ldlt_solve(const Matrix& a, const Vector& b);

/// Minimum-norm least-squares solution of min ||A x - b||_2 via Householder
/// QR with column pivoting. Works for any rows >= 1; rank-deficient columns
/// get zero coefficients. Throws on dimension mismatch.
Vector qr_least_squares(const Matrix& a, const Vector& b);

/// Estimated 1-norm condition number via explicit inverse (small dense
/// matrices only). Returns +inf for singular input instead of throwing.
double condition_number_1(const Matrix& a);

}  // namespace cellsync
