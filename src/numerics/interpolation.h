// Piecewise-linear interpolation over tabulated series. The kernel builder
// produces Q(phi, t) on a discrete time grid; measurement times between
// grid points are served by these interpolants.
#pragma once

#include "numerics/vector_ops.h"

namespace cellsync {

/// Piecewise-linear interpolant over a strictly ascending grid.
/// Queries outside the grid clamp to the boundary values (constant
/// extrapolation), which is the correct behaviour for kernel time slices.
class Linear_interpolant {
  public:
    /// Throws std::invalid_argument if sizes differ, fewer than 2 points, or
    /// x is not strictly ascending.
    Linear_interpolant(Vector x, Vector y);

    /// Interpolated value at query point q.
    double operator()(double q) const;

    /// First derivative of the interpolant at q (piecewise constant; at a
    /// knot the right-segment slope is used, at the last knot the left).
    double derivative(double q) const;

    const Vector& x() const { return x_; }
    const Vector& y() const { return y_; }

  private:
    std::size_t segment(double q) const;

    Vector x_;
    Vector y_;
};

}  // namespace cellsync
