#include "numerics/matrix.h"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "numerics/simd.h"
#include "numerics/simd_dispatch.h"

namespace cellsync {

namespace {

void require_shape(bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("Matrix: ") + what);
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer list");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

double& Matrix::at(std::size_t i, std::size_t j) {
    if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at: index out of range");
    return data_[i * cols_ + j];
}

double Matrix::at(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at: index out of range");
    return data_[i * cols_ + j];
}

Vector Matrix::row(std::size_t i) const {
    if (i >= rows_) throw std::out_of_range("Matrix::row: index out of range");
    return Vector(data_.begin() + static_cast<std::ptrdiff_t>(i * cols_),
                  data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols_));
}

Vector Matrix::col(std::size_t j) const {
    if (j >= cols_) throw std::out_of_range("Matrix::col: index out of range");
    Vector v(rows_);
    for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
    return v;
}

void Matrix::set_row(std::size_t i, const Vector& v) {
    if (i >= rows_) throw std::out_of_range("Matrix::set_row: index out of range");
    require_shape(v.size() == cols_, "set_row: length mismatch");
    for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) = v[j];
}

void Matrix::set_col(std::size_t j, const Vector& v) {
    if (j >= cols_) throw std::out_of_range("Matrix::set_col: index out of range");
    require_shape(v.size() == rows_, "set_col: length mismatch");
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::diagonal(const Vector& d) {
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
    return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
    if (rows.empty()) return Matrix();
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t i = 0; i < rows.size(); ++i) m.set_row(i, rows[i]);
    return m;
}

bool Matrix::all_finite() const {
    for (double v : data_) {
        if (!std::isfinite(v)) return false;
    }
    return true;
}

double Matrix::norm_inf() const {
    double m = 0.0;
    for (double v : data_) m = std::max(m, std::abs(v));
    return m;
}

std::string Matrix::to_string(int precision) const {
    std::ostringstream os;
    os << std::setprecision(precision);
    for (std::size_t i = 0; i < rows_; ++i) {
        os << (i == 0 ? "[" : " ");
        for (std::size_t j = 0; j < cols_; ++j) os << (j ? " " : "") << (*this)(i, j);
        os << (i + 1 == rows_ ? "]" : "\n");
    }
    return os.str();
}

Matrix operator+(const Matrix& a, const Matrix& b) {
    require_shape(a.rows() == b.rows() && a.cols() == b.cols(), "operator+: shape mismatch");
    Matrix r(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) r(i, j) = a(i, j) + b(i, j);
    return r;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
    require_shape(a.rows() == b.rows() && a.cols() == b.cols(), "operator-: shape mismatch");
    Matrix r(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) r(i, j) = a(i, j) - b(i, j);
    return r;
}

Matrix operator*(double alpha, const Matrix& a) {
    Matrix r(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) r(i, j) = alpha * a(i, j);
    return r;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
    require_shape(a.cols() == b.rows(), "operator*: inner dimension mismatch");
    // k-outer / j-inner: every r(i, j) accumulates over k in increasing
    // order and the inner loop runs over independent outputs, so it
    // vectorizes without changing any element's accumulation order. No
    // value-based zero skip (see the non-finite policy in matrix.h).
    Matrix r(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = a(i, k);
            for (std::size_t j = 0; j < b.cols(); ++j) r(i, j) += aik * b(k, j);
        }
    }
    return r;
}

Vector matvec_reference(const Matrix& a, const Vector& x) {
    require_shape(a.cols() == x.size(), "operator*: matrix-vector dimension mismatch");
    Vector y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
        y[i] = s;
    }
    return y;
}

Vector transposed_times_reference(const Matrix& a, const Vector& x) {
    require_shape(a.rows() == x.size(), "transposed_times: dimension mismatch");
    Vector y(a.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double xi = x[i];
        for (std::size_t j = 0; j < a.cols(); ++j) y[j] += a(i, j) * xi;
    }
    return y;
}

Matrix gram_reference(const Matrix& a) {
    Matrix g(a.cols(), a.cols());
    for (std::size_t i = 0; i < a.cols(); ++i) {
        for (std::size_t j = i; j < a.cols(); ++j) {
            double s = 0.0;
            for (std::size_t k = 0; k < a.rows(); ++k) s += a(k, i) * a(k, j);
            g(i, j) = s;
            g(j, i) = s;
        }
    }
    return g;
}

Matrix weighted_gram_reference(const Matrix& a, const Vector& w) {
    require_shape(a.rows() == w.size(), "weighted_gram: weight length mismatch");
    Matrix g(a.cols(), a.cols());
    for (std::size_t i = 0; i < a.cols(); ++i) {
        for (std::size_t j = i; j < a.cols(); ++j) {
            double s = 0.0;
            for (std::size_t k = 0; k < a.rows(); ++k) s += w[k] * a(k, i) * a(k, j);
            g(i, j) = s;
            g(j, i) = s;
        }
    }
    return g;
}

#if CELLSYNC_SIMD

// Chunked kernels: fixed-width blocks of simd_chunk_doubles independent
// accumulator chains, living in numerics/simd_kernels.inc and reached
// through the runtime ISA dispatch table (numerics/simd_dispatch.h). Per
// output element the term order matches the reference loops exactly
// (increasing reduction index), so results are bit-identical on every
// default dispatch tier — the win comes from breaking the loop-carried
// reduction dependency and from contiguous stores the autovectorizer can
// widen (to ymm registers on the AVX2/FMA tiers).

Vector operator*(const Matrix& a, const Vector& x) {
    require_shape(a.cols() == x.size(), "operator*: matrix-vector dimension mismatch");
    Vector y(a.rows(), 0.0);
    simd::kernels().matvec(a.data().data(), a.rows(), a.cols(), x.data(), y.data());
    return y;
}

Vector transposed_times(const Matrix& a, const Vector& x) {
    require_shape(a.rows() == x.size(), "transposed_times: dimension mismatch");
    Vector y(a.cols(), 0.0);
    simd::kernels().transposed_times(a.data().data(), a.rows(), a.cols(), x.data(),
                                     y.data());
    return y;
}

namespace {

void mirror_upper(Matrix& g) {
    for (std::size_t i = 1; i < g.rows(); ++i) {
        for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
    }
}

}  // namespace

// The left factor column t[k] = w[k] * a(k, i) (or a(k, i) unweighted) is
// hoisted here, in the baseline-compiled TU, once per i — so the hoist
// arithmetic is byte-for-byte the same whichever dispatch tier fills the
// upper-triangle row behind it. The ((w * a) * a) association matches the
// reference loops exactly.
Matrix gram(const Matrix& a) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    const simd::Kernel_table& kt = simd::kernels();
    const double* ad = a.data().data();
    double* gd = &g(0, 0);
    Vector t(m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < m; ++k) t[k] = ad[k * n + i];
        kt.gram_row_blocked(gd + i * n, ad, t.data(), m, n, i);
    }
    mirror_upper(g);
    return g;
}

Matrix weighted_gram(const Matrix& a, const Vector& w) {
    require_shape(a.rows() == w.size(), "weighted_gram: weight length mismatch");
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    const simd::Kernel_table& kt = simd::kernels();
    const double* ad = a.data().data();
    double* gd = &g(0, 0);
    Vector t(m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < m; ++k) t[k] = w[k] * ad[k * n + i];
        kt.gram_row_blocked(gd + i * n, ad, t.data(), m, n, i);
    }
    mirror_upper(g);
    return g;
}

#else  // !CELLSYNC_SIMD

Vector operator*(const Matrix& a, const Vector& x) { return matvec_reference(a, x); }

Vector transposed_times(const Matrix& a, const Vector& x) {
    return transposed_times_reference(a, x);
}

Matrix gram(const Matrix& a) { return gram_reference(a); }

Matrix weighted_gram(const Matrix& a, const Vector& w) {
    return weighted_gram_reference(a, w);
}

#endif  // CELLSYNC_SIMD

}  // namespace cellsync
