// Kernel-table resolution: CPU detection, CELLSYNC_DISPATCH override,
// and the one place in the tree allowed to touch ISA-detection builtins
// (tools/cellsync_lint's `simd` rule bans them everywhere else so
// dispatch stays centralized).
#include "numerics/simd_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/telemetry.h"
#include "numerics/simd.h"

namespace cellsync::simd {

namespace k_scalar {
const Kernel_table& table();
}
#if defined(CELLSYNC_DISPATCH_ISA)
namespace k_avx2 {
const Kernel_table& table();
}
namespace k_fma {
const Kernel_table& table();
}
namespace k_fma_contract {
const Kernel_table& table();
}
#endif

namespace {

/// Resolution result: which table, and where the choice came from.
struct Resolution {
    const Kernel_table* table = nullptr;
    const char* origin = "build";
};

const Kernel_table* table_for(Tier tier) {
    switch (tier) {
        case Tier::scalar:
            return &k_scalar::table();
#if defined(CELLSYNC_DISPATCH_ISA)
        case Tier::avx2:
            return &k_avx2::table();
        case Tier::fma:
            return &k_fma::table();
        case Tier::fma_contract:
            return &k_fma_contract::table();
#else
        default:
            break;
#endif
    }
    return nullptr;
}

/// Best tier the host CPU can execute with this build's tables. Never
/// fma_contract: the opt-out tier shares the fma ISA requirements but is
/// only reached by explicit request.
Tier detect_cpu_tier() {
#if defined(CELLSYNC_DISPATCH_ISA)
    if (__builtin_cpu_supports("avx2")) {
        if (__builtin_cpu_supports("fma")) return Tier::fma;
        return Tier::avx2;
    }
#endif
    return Tier::scalar;
}

bool cpu_can_run(Tier tier) {
    const Tier best = detect_cpu_tier();
    if (tier == Tier::scalar) return true;
    if (tier == Tier::fma || tier == Tier::fma_contract) return best == Tier::fma;
    return best == Tier::fma || best == Tier::avx2;  // avx2
}

bool parse_tier(const char* s, Tier* out) {
    if (std::strcmp(s, "scalar") == 0) {
        *out = Tier::scalar;
    } else if (std::strcmp(s, "avx2") == 0) {
        *out = Tier::avx2;
    } else if (std::strcmp(s, "fma") == 0) {
        *out = Tier::fma;
    } else if (std::strcmp(s, "fma-contract") == 0) {
        *out = Tier::fma_contract;
    } else {
        return false;
    }
    return true;
}

Resolution resolve() {
    Resolution r;
    Tier tier = detect_cpu_tier();
    r.origin = "cpu";
#if !defined(CELLSYNC_DISPATCH_ISA)
    r.origin = "build";
#endif
    const char* env = std::getenv("CELLSYNC_DISPATCH");
    if (env != nullptr && *env != '\0') {  // empty counts as unset (CI matrix)
        Tier forced = Tier::scalar;
        if (!parse_tier(env, &forced)) {
            std::fprintf(stderr,
                         "cellsync: ignoring unknown CELLSYNC_DISPATCH value '%s' "
                         "(expected scalar|avx2|fma|fma-contract)\n",
                         env);
        } else if (table_for(forced) == nullptr || !cpu_can_run(forced)) {
            std::fprintf(stderr,
                         "cellsync: CELLSYNC_DISPATCH=%s not executable on this "
                         "build/host; staying at tier '%s'\n",
                         env, tier_name(tier));
        } else {
            tier = forced;
            r.origin = "env";
        }
    }
    r.table = table_for(tier);
    if (r.table == nullptr) r.table = &k_scalar::table();
    return r;
}

void publish_tier_gauge(Tier tier) {
    static telemetry::Gauge& g = telemetry::gauge("simd.dispatch_tier");
    g.set(static_cast<double>(tier));
}

const Resolution& startup_resolution() {
    static const Resolution r = [] {
        Resolution resolved = resolve();
        // Published once here (not per kernels() call — that is the hot
        // path) so --metrics-json always names the tier that produced
        // the run's numbers.
        publish_tier_gauge(resolved.table->tier);
        return resolved;
    }();
    return r;
}

/// Test-only override; null means "use the startup resolution".
std::atomic<const Kernel_table*> test_override{nullptr};

}  // namespace

const Kernel_table& kernels() {
    const Kernel_table* forced = test_override.load(std::memory_order_acquire);
    if (forced != nullptr) return *forced;
    return *startup_resolution().table;
}

Tier active_tier() { return kernels().tier; }

const char* active_tier_origin() {
    if (test_override.load(std::memory_order_acquire) != nullptr) return "test";
    return startup_resolution().origin;
}

Tier max_supported_tier() { return detect_cpu_tier(); }

const char* tier_name(Tier tier) {
    switch (tier) {
        case Tier::scalar:
            return "scalar";
        case Tier::avx2:
            return "avx2";
        case Tier::fma:
            return "fma";
        case Tier::fma_contract:
            return "fma-contract";
    }
    return "unknown";
}

bool tier_bit_identical(Tier tier) { return tier != Tier::fma_contract; }

bool set_tier_for_testing(Tier tier) {
    const Kernel_table* table = table_for(tier);
    if (table == nullptr || !cpu_can_run(tier)) return false;
    test_override.store(table, std::memory_order_release);
    publish_tier_gauge(tier);
    return true;
}

}  // namespace cellsync::simd
