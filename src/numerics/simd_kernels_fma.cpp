// AVX2+FMA kernel table, default mode: per-file
// "-mavx2;-mfma;-ffp-contract=off". FMA hardware is available to the
// compiler, but multiply + add contraction stays disabled — a fused
// multiply-add skips the intermediate rounding of the product and would
// change result bits, and this tier is inside the bit-identity
// contract. The explicit opt-out lives in simd_kernels_fma_contract.cpp.
#include <cstddef>
#include <vector>

#include "numerics/simd.h"
#include "numerics/simd_dispatch.h"

#if defined(CELLSYNC_DISPATCH_ISA) && defined(__AVX2__) && defined(__FMA__)
#define CELLSYNC_KERNEL_TIER_NS k_fma
#define CELLSYNC_KERNEL_TIER Tier::fma
#include "numerics/simd_kernels.inc"
#endif
