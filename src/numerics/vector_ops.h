// Vector type and elementary dense-vector operations.
//
// cellsync uses `std::vector<double>` as its vector type throughout; this
// header provides the named operations (dot products, norms, axpy-style
// updates) and arithmetic operators used by the linear-algebra and
// optimization layers. All functions validate dimensions and throw
// `std::invalid_argument` on mismatch.
#pragma once

#include <cstddef>
#include <vector>

namespace cellsync {

/// Dense column vector. Index i is element i; sizes are validated by every
/// operation in this header.
using Vector = std::vector<double>;

/// Euclidean inner product <a, b>. Throws if sizes differ.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm ||a||_2.
double norm2(const Vector& a);

/// Maximum absolute entry ||a||_inf. Returns 0 for an empty vector.
double norm_inf(const Vector& a);

/// Sum of all entries.
double sum(const Vector& a);

/// y := y + alpha * x. Throws if sizes differ.
void axpy(double alpha, const Vector& x, Vector& y);

/// Returns alpha * a.
Vector scaled(const Vector& a, double alpha);

/// Element-wise sum a + b.
Vector operator+(const Vector& a, const Vector& b);

/// Element-wise difference a - b.
Vector operator-(const Vector& a, const Vector& b);

/// Scalar product alpha * a.
Vector operator*(double alpha, const Vector& a);

/// Element-wise (Hadamard) product.
Vector hadamard(const Vector& a, const Vector& b);

/// Linearly spaced grid of `n >= 2` points from lo to hi inclusive.
/// Throws if n < 2.
Vector linspace(double lo, double hi, std::size_t n);

/// True if every entry is finite (no NaN / inf).
bool all_finite(const Vector& a);

}  // namespace cellsync
