#include "numerics/special.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cellsync {

double gaussian_pdf(double x) {
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double gaussian_pdf(double x, double mu, double sigma) {
    if (sigma <= 0.0) throw std::invalid_argument("gaussian_pdf: sigma must be positive");
    const double z = (x - mu) / sigma;
    return gaussian_pdf(z) / sigma;
}

double gaussian_cdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

double gaussian_cdf(double x, double mu, double sigma) {
    if (sigma <= 0.0) throw std::invalid_argument("gaussian_cdf: sigma must be positive");
    return gaussian_cdf((x - mu) / sigma);
}

double gaussian_quantile(double p) {
    if (!(p > 0.0 && p < 1.0)) {
        throw std::invalid_argument("gaussian_quantile: p must lie in (0,1)");
    }
    // Acklam's approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    double x;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - plow) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // One Newton refinement on CDF(x) = p.
    const double e = gaussian_cdf(x) - p;
    const double u = e / gaussian_pdf(x);
    x -= u / (1.0 + 0.5 * x * u);
    return x;
}

double truncated_normal_mean(double mu, double sigma, double lo, double hi) {
    if (sigma <= 0.0) throw std::invalid_argument("truncated_normal_mean: sigma must be positive");
    if (!(lo < hi)) throw std::invalid_argument("truncated_normal_mean: need lo < hi");
    const double a = (lo - mu) / sigma;
    const double b = (hi - mu) / sigma;
    const double z = gaussian_cdf(b) - gaussian_cdf(a);
    if (z <= 0.0) {
        // Truncation window carries essentially no mass; fall back to the
        // nearest boundary, which is the limit of the formula.
        return (mu < lo) ? lo : hi;
    }
    return mu + sigma * (gaussian_pdf(a) - gaussian_pdf(b)) / z;
}

}  // namespace cellsync
