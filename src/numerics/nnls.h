// Lawson-Hanson non-negative least squares.
//
// NNLS solves min ||A x - b||_2 subject to x >= 0. cellsync uses it as a
// simpler baseline estimator (positivity only, no smoothness penalty or
// division-continuity constraints) against which the full QP estimator is
// compared in the constraint-ablation bench.
#pragma once

#include "numerics/matrix.h"
#include "numerics/vector_ops.h"

namespace cellsync {

/// Result of an NNLS solve.
struct Nnls_result {
    Vector x;                    ///< non-negative solution
    double residual_norm = 0.0;  ///< ||A x - b||_2
    std::size_t iterations = 0;
    bool converged = false;
};

/// Solve min ||A x - b|| s.t. x >= 0 by the Lawson-Hanson active-set
/// algorithm. Throws std::invalid_argument on dimension mismatch and
/// std::runtime_error if the iteration budget (3 * cols) is exhausted.
Nnls_result solve_nnls(const Matrix& a, const Vector& b, double tol = 1e-10);

}  // namespace cellsync
