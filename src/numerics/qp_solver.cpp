#include "numerics/qp_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/telemetry.h"
#include "core/trace.h"
#include "numerics/linear_solve.h"

namespace cellsync {

namespace {

void validate(const Qp_problem& p) {
    const std::size_t n = p.hessian.rows();
    if (p.hessian.cols() != n) throw std::invalid_argument("solve_qp: Hessian must be square");
    if (p.gradient.size() != n) throw std::invalid_argument("solve_qp: gradient length mismatch");
    if (p.eq_matrix.rows() != p.eq_rhs.size()) {
        throw std::invalid_argument("solve_qp: equality rhs length mismatch");
    }
    if (p.eq_matrix.rows() > 0 && p.eq_matrix.cols() != n) {
        throw std::invalid_argument("solve_qp: equality matrix width mismatch");
    }
    if (p.ineq_matrix.rows() != p.ineq_rhs.size()) {
        throw std::invalid_argument("solve_qp: inequality rhs length mismatch");
    }
    if (p.ineq_matrix.rows() > 0 && p.ineq_matrix.cols() != n) {
        throw std::invalid_argument("solve_qp: inequality matrix width mismatch");
    }
}

double eq_violation(const Qp_problem& p, const Vector& x) {
    if (p.eq_matrix.rows() == 0) return 0.0;
    const Vector r = p.eq_matrix * x - p.eq_rhs;
    return norm_inf(r);
}

double ineq_violation(const Qp_problem& p, const Vector& x) {
    double worst = 0.0;
    for (std::size_t i = 0; i < p.ineq_matrix.rows(); ++i) {
        const double slack = dot(p.ineq_matrix.row(i), x) - p.ineq_rhs[i];
        worst = std::max(worst, -slack);
    }
    return worst;
}

bool is_feasible(const Qp_problem& p, const Vector& x, double tol) {
    return eq_violation(p, x) <= tol && ineq_violation(p, x) <= tol;
}

Vector find_feasible_start(const Qp_problem& p, double tol) {
    const std::size_t n = p.hessian.rows();
    const Vector zero(n, 0.0);
    if (is_feasible(p, zero, tol)) return zero;
    if (p.eq_matrix.rows() > 0) {
        const Vector x = qr_least_squares(p.eq_matrix, p.eq_rhs);
        if (is_feasible(p, x, tol)) return x;
    }
    throw std::runtime_error(
        "solve_qp: could not construct a feasible starting point; pass one explicitly");
}

// Assemble and solve the KKT system for the step p and multipliers, given
// the working set of inequality indices. Returns {p, multipliers-for-W}.
struct Kkt_step {
    Vector p;
    Vector eq_multipliers;
    Vector w_multipliers;
};

Kkt_step solve_kkt(const Qp_problem& prob, const Vector& x,
                   const std::vector<std::size_t>& working, double ridge) {
    const std::size_t n = prob.hessian.rows();
    const std::size_t me = prob.eq_matrix.rows();
    const std::size_t mw = working.size();
    const std::size_t dim = n + me + mw;

    Matrix kkt(dim, dim);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) kkt(i, j) = prob.hessian(i, j);
        kkt(i, i) += ridge;
    }
    for (std::size_t r = 0; r < me; ++r) {
        for (std::size_t j = 0; j < n; ++j) {
            kkt(n + r, j) = prob.eq_matrix(r, j);
            kkt(j, n + r) = prob.eq_matrix(r, j);
        }
    }
    for (std::size_t r = 0; r < mw; ++r) {
        for (std::size_t j = 0; j < n; ++j) {
            kkt(n + me + r, j) = prob.ineq_matrix(working[r], j);
            kkt(j, n + me + r) = prob.ineq_matrix(working[r], j);
        }
    }

    Vector rhs(dim, 0.0);
    const Vector hx = prob.hessian * x;
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -(hx[i] + prob.gradient[i]);
    // Constraint rows carry the current residuals so each step *restores*
    // exact feasibility on the working manifold instead of freezing in any
    // drift the relaxed ratio test allowed: A(x+p) = b, C_W(x+p) = d_W.
    for (std::size_t r = 0; r < me; ++r) {
        rhs[n + r] = prob.eq_rhs[r] - dot(prob.eq_matrix.row(r), x);
    }
    for (std::size_t r = 0; r < mw; ++r) {
        rhs[n + me + r] =
            prob.ineq_rhs[working[r]] - dot(prob.ineq_matrix.row(working[r]), x);
    }

    const Vector sol = ldlt_solve(kkt, rhs);
    Kkt_step step;
    step.p.assign(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
    step.eq_multipliers.assign(sol.begin() + static_cast<std::ptrdiff_t>(n),
                               sol.begin() + static_cast<std::ptrdiff_t>(n + me));
    step.w_multipliers.assign(sol.begin() + static_cast<std::ptrdiff_t>(n + me), sol.end());
    return step;
}

}  // namespace

Qp_result solve_qp(const Qp_problem& problem, const Qp_options& options,
                   const std::optional<Vector>& start,
                   const std::vector<std::size_t>& initial_working) {
    validate(problem);
    const std::size_t n = problem.hessian.rows();
    const std::size_t mi = problem.ineq_matrix.rows();

    Vector x;
    if (start.has_value()) {
        if (start->size() != n) throw std::invalid_argument("solve_qp: start length mismatch");
        if (!is_feasible(problem, *start, options.constraint_tol)) {
            throw std::invalid_argument("solve_qp: provided start is infeasible");
        }
        x = *start;
    } else {
        x = find_feasible_start(problem, options.constraint_tol);
    }

    // Ridge scale for singular-KKT recovery.
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += problem.hessian(i, i);
    const double ridge_unit = options.fallback_ridge * std::max(1.0, trace / static_cast<double>(n));

    std::vector<std::size_t> working;  // active inequality indices
    std::vector<char> in_working(mi, 0);
    for (std::size_t k : initial_working) {
        if (k >= mi) throw std::invalid_argument("solve_qp: initial working index out of range");
        if (in_working[k]) continue;  // duplicate hints are harmless
        in_working[k] = 1;
        working.push_back(k);
    }
    // Anti-cycling state: a constraint dropped at a stationary point that
    // immediately re-blocks with a zero-length step is "pinned" — kept in
    // the working set with its (numerically) negative multiplier tolerated
    // until a real step is taken. This breaks the degenerate drop/re-add
    // loops that dense positivity grids (many nearly dependent rows)
    // otherwise produce.
    std::vector<char> pinned(mi, 0);
    std::size_t last_dropped = mi;

    Qp_result result;
    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        result.iterations = iter + 1;

        Kkt_step step;
        bool solved = false;
        double ridge = 0.0;
        for (int attempt = 0; attempt < 3 && !solved; ++attempt) {
            try {
                step = solve_kkt(problem, x, working, ridge);
                solved = true;
            } catch (const std::runtime_error&) {
                // Singular KKT: first add a ridge, then as a last resort drop
                // the most recently added working constraint (degenerate set).
                if (attempt == 0) {
                    ridge = ridge_unit;
                } else if (!working.empty()) {
                    in_working[working.back()] = 0;
                    working.pop_back();
                    ridge = 0.0;
                }
            }
        }
        if (!solved) throw std::runtime_error("solve_qp: KKT system unsolvable");

        if (norm_inf(step.p) < options.step_tol) {
            // Stationary on the working set: check dual feasibility. The
            // KKT block solve returns y with Hx + g = -C_W' y, so the
            // Lagrange multipliers of the >= constraints are mu = -y.
            if (working.empty()) {
                result.converged = true;
                break;
            }
            std::size_t drop_pos = working.size();
            double most_negative = -options.multiplier_tol;
            for (std::size_t k = 0; k < working.size(); ++k) {
                if (pinned[working[k]]) continue;
                const double mu = -step.w_multipliers[k];
                if (mu < most_negative) {
                    most_negative = mu;
                    drop_pos = k;
                }
            }
            if (drop_pos == working.size()) {
                result.converged = true;
                break;
            }
            last_dropped = working[drop_pos];
            in_working[last_dropped] = 0;
            working.erase(working.begin() + static_cast<std::ptrdiff_t>(drop_pos));
            continue;
        }

        // Relaxed ratio test: the largest alpha in (0, 1] keeping every
        // inactive inequality within the feasibility tolerance. Allowing a
        // `constraint_tol` violation makes every step strictly positive,
        // which is what prevents cycling at degenerate vertices (e.g. a
        // dense positivity grid whose rows all have zero slack at x = 0
        // and infinitesimally negative directional derivatives).
        double alpha = 1.0;
        std::size_t blocking = mi;  // sentinel: none
        for (std::size_t i = 0; i < mi; ++i) {
            if (in_working[i]) continue;
            const double cp = dot(problem.ineq_matrix.row(i), step.p);
            if (cp >= -1e-14) continue;  // moving away from or along the boundary
            const double slack = dot(problem.ineq_matrix.row(i), x) - problem.ineq_rhs[i];
            const double a = (std::max(slack, 0.0) + options.constraint_tol) / (-cp);
            if (a < alpha) {
                alpha = a;
                blocking = i;
            }
        }

        axpy(alpha, step.p, x);
        if (alpha > 1e-10) {
            // Real progress: degeneracy bookkeeping resets.
            std::fill(pinned.begin(), pinned.end(), char{0});
            last_dropped = mi;
        }
        if (blocking != mi) {
            if (blocking == last_dropped && alpha <= 1e-10) pinned[blocking] = 1;
            working.push_back(blocking);
            in_working[blocking] = 1;
        }
    }

    if (!result.converged) {
        throw std::runtime_error("solve_qp: iteration limit exceeded (possible cycling)");
    }

    result.x = x;
    result.objective = 0.5 * dot(x, problem.hessian * x) + dot(problem.gradient, x);
    result.active_set = working;
    std::sort(result.active_set.begin(), result.active_set.end());
    return result;
}

namespace {

// Orthonormal basis of the null space of `a` (rows x n, rows < n) by
// modified Gram-Schmidt with reorthogonalization: orthonormalize the rows,
// then sweep the standard basis, keeping directions with significant
// residual. Small dense sizes only.
std::vector<Vector> null_space_basis(const Matrix& a) {
    const std::size_t n = a.cols();
    std::vector<Vector> range;  // orthonormalized rows of a
    for (std::size_t r = 0; r < a.rows(); ++r) {
        Vector v = a.row(r);
        for (int pass = 0; pass < 2; ++pass) {
            for (const Vector& q : range) axpy(-dot(q, v), q, v);
        }
        const double nv = norm2(v);
        if (nv > 1e-12 * std::max(1.0, norm_inf(a.row(r)))) {
            range.push_back(scaled(v, 1.0 / nv));
        }
    }
    std::vector<Vector> null_basis;
    for (std::size_t i = 0; i < n && null_basis.size() < n - range.size(); ++i) {
        Vector v(n, 0.0);
        v[i] = 1.0;
        for (int pass = 0; pass < 2; ++pass) {
            for (const Vector& q : range) axpy(-dot(q, v), q, v);
            for (const Vector& q : null_basis) axpy(-dot(q, v), q, v);
        }
        const double nv = norm2(v);
        if (nv > 1e-8) null_basis.push_back(scaled(v, 1.0 / nv));
    }
    return null_basis;
}

}  // namespace

Qp_constraint_prep::Qp_constraint_prep(std::size_t n, const Matrix& eq_matrix,
                                       const Vector& eq_rhs, const Matrix& ineq_matrix,
                                       const Vector& ineq_rhs)
    : n_(n) {
    const std::size_t me = eq_matrix.rows();
    const std::size_t mi = ineq_matrix.rows();
    if (me != eq_rhs.size() || (me > 0 && eq_matrix.cols() != n)) {
        throw std::invalid_argument("Qp_constraint_prep: equality block shape mismatch");
    }
    if (mi != ineq_rhs.size() || (mi > 0 && ineq_matrix.cols() != n)) {
        throw std::invalid_argument("Qp_constraint_prep: inequality block shape mismatch");
    }

    // Null-space reduction of the equality constraints: x = x0 + Z y.
    x_particular_.assign(n, 0.0);
    if (me > 0) {
        x_particular_ = qr_least_squares(eq_matrix, eq_rhs);
        if (norm_inf(eq_matrix * x_particular_ - eq_rhs) >
            1e-8 * std::max(1.0, norm_inf(eq_rhs))) {
            throw std::runtime_error("Qp_constraint_prep: equality constraints are inconsistent");
        }
        const std::vector<Vector> basis = null_space_basis(eq_matrix);
        z_basis_ = Matrix(n, basis.size());
        for (std::size_t c = 0; c < basis.size(); ++c) z_basis_.set_col(c, basis[c]);
    } else {
        z_basis_ = Matrix::identity(n);
    }

    // Reduced inequality block: Cr = C Z, dr = d - C x0.
    const std::size_t nz = z_basis_.cols();
    reduced_ineq_ = Matrix(mi, nz);
    reduced_rhs_.assign(mi, 0.0);
    for (std::size_t r = 0; r < mi; ++r) {
        const Vector row = ineq_matrix.row(r);
        reduced_ineq_.set_row(r, transposed_times(z_basis_, row));
        reduced_rhs_[r] = ineq_rhs[r] - dot(row, x_particular_);
    }
}

Qp_result solve_qp_dual_reduced(const Matrix& hessian, const Vector& gradient,
                                const Matrix& ineq_matrix, const Vector& ineq_rhs,
                                const Qp_options& options) {
    const std::size_t nz = hessian.rows();
    const std::size_t mi = ineq_matrix.rows();
    if (hessian.cols() != nz || gradient.size() != nz) {
        throw std::invalid_argument("solve_qp_dual_reduced: Hessian/gradient shape mismatch");
    }
    if (ineq_rhs.size() != mi || (mi > 0 && ineq_matrix.cols() != nz)) {
        throw std::invalid_argument("solve_qp_dual_reduced: inequality block shape mismatch");
    }
    const Matrix& cr = ineq_matrix;
    const Vector& dr = ineq_rhs;

    // The Goldfarb-Idnani core is the per-gene hot path; the span is one
    // atomic load when tracing is off, and the counters/histogram are
    // recorded at the single successful exit below.
    const telemetry::Trace_span solve_span("qp.active_set.solve", "qp");
    static telemetry::Counter& cold_solves = telemetry::counter("qp.active_set.solves");
    static telemetry::Histogram& iteration_histogram =
        telemetry::histogram("qp.active_set.iterations");

    // Scaled ridge guaranteeing strict convexity.
    Matrix hr = hessian;
    {
        double trace = 0.0;
        for (std::size_t i = 0; i < nz; ++i) trace += hr(i, i);
        const double ridge =
            std::max(options.fallback_ridge, 1e-12) * std::max(1.0, trace / static_cast<double>(nz));
        for (std::size_t i = 0; i < nz; ++i) hr(i, i) += ridge;
    }

    // --- Goldfarb-Idnani on the reduced problem. ---
    const Cholesky_factorization hl(hr);  // throws if H is not PD even with ridge
    auto h_solve = [&](const Vector& rhs) { return hl.solve(rhs); };

    Vector y = scaled(h_solve(gradient), -1.0);  // unconstrained optimum
    std::vector<std::size_t> active;
    Vector u;  // multipliers of active constraints
    std::size_t iterations = 0;
    const std::size_t max_outer = options.max_iterations + 10 * (mi + 1);

    for (std::size_t outer = 0; outer < max_outer; ++outer) {
        // Most violated inactive constraint.
        double worst = -options.constraint_tol;
        std::size_t j = mi;
        for (std::size_t r = 0; r < mi; ++r) {
            bool is_active = false;
            for (std::size_t k : active) {
                if (k == r) {
                    is_active = true;
                    break;
                }
            }
            if (is_active) continue;
            const double slack = dot(cr.row(r), y) - dr[r];
            if (slack < worst) {
                worst = slack;
                j = r;
            }
        }
        if (j == mi) break;  // primal feasible: done

        const Vector cj = cr.row(j);
        double uj = 0.0;

        // Inner loop: take (partial) steps toward constraint j's boundary,
        // shedding dual-blocking constraints along the way.
        for (std::size_t inner = 0; inner <= mi + 1; ++inner) {
            ++iterations;
            const Vector hic = h_solve(cj);

            Vector r_dir;  // dual step for active multipliers
            Vector zdir = hic;
            if (!active.empty()) {
                const std::size_t q = active.size();
                Matrix nact(nz, q);
                for (std::size_t k = 0; k < q; ++k) nact.set_col(k, cr.row(active[k]));
                // M = N' H^{-1} N, rhs = N' H^{-1} c.
                Matrix hin(nz, q);
                for (std::size_t k = 0; k < q; ++k) hin.set_col(k, h_solve(nact.col(k)));
                Matrix m(q, q);
                for (std::size_t a2 = 0; a2 < q; ++a2) {
                    for (std::size_t b2 = 0; b2 < q; ++b2) {
                        double s = 0.0;
                        for (std::size_t k = 0; k < nz; ++k) s += nact(k, a2) * hin(k, b2);
                        m(a2, b2) = s;
                    }
                }
                const Vector rhs = transposed_times(nact, hic);
                r_dir = ldlt_solve(m, rhs);
                zdir = hic - hin * r_dir;
            }

            const double ztc = dot(zdir, cj);
            // Dual blocking step t1.
            double t1 = std::numeric_limits<double>::infinity();
            std::size_t drop = active.size();
            for (std::size_t k = 0; k < active.size(); ++k) {
                if (!r_dir.empty() && r_dir[k] > options.multiplier_tol) {
                    const double cand = u[k] / r_dir[k];
                    if (cand < t1) {
                        t1 = cand;
                        drop = k;
                    }
                }
            }
            // Full primal step t2.
            const double slack = dot(cj, y) - dr[j];
            const double t2 = ztc > 1e-14 ? -slack / ztc : std::numeric_limits<double>::infinity();
            const double t = std::min(t1, t2);
            if (!std::isfinite(t)) {
                throw std::runtime_error("solve_qp_dual: constraints are infeasible");
            }

            if (std::isfinite(t2) || t == t1) {
                if (std::isfinite(t2) && ztc > 1e-14) axpy(t, zdir, y);
                for (std::size_t k = 0; k < u.size(); ++k) u[k] -= t * (r_dir.empty() ? 0.0 : r_dir[k]);
                uj += t;
            }
            if (t == t2 && std::isfinite(t2)) {
                active.push_back(j);
                u.push_back(uj);
                break;
            }
            // Dual step only: drop the blocking constraint and retry.
            active.erase(active.begin() + static_cast<std::ptrdiff_t>(drop));
            u.erase(u.begin() + static_cast<std::ptrdiff_t>(drop));
        }
    }

    Qp_result result;
    result.x = std::move(y);
    result.iterations = iterations == 0 ? 1 : iterations;
    result.active_set = std::move(active);
    std::sort(result.active_set.begin(), result.active_set.end());
    // The dual method terminates at primal feasibility; verify it rather
    // than trusting the loop bound.
    double violation = 0.0;
    for (std::size_t r = 0; r < mi; ++r) {
        violation = std::max(violation, dr[r] - dot(cr.row(r), result.x));
    }
    if (violation > 100.0 * options.constraint_tol) {
        throw std::runtime_error("solve_qp_dual: failed to reach primal feasibility");
    }
    result.converged = true;
    result.objective = 0.5 * dot(result.x, hessian * result.x) + dot(gradient, result.x);
    cold_solves.add();
    iteration_histogram.record(static_cast<double>(result.iterations));
    return result;
}

namespace {

void check_prepared_shapes(const char* who, const Matrix& hessian, const Vector& gradient,
                           const Qp_constraint_prep& prep) {
    const std::size_t n = prep.unknowns();
    if (hessian.rows() != n || hessian.cols() != n || gradient.size() != n) {
        throw std::invalid_argument(std::string(who) + ": Hessian/gradient shape mismatch");
    }
}

/// The point pinned by the equality constraints alone (empty null space).
Qp_result fully_determined_result(const Matrix& hessian, const Vector& gradient,
                                  const Qp_constraint_prep& prep) {
    Qp_result only;
    only.x = prep.x_particular();
    only.objective = 0.5 * dot(only.x, hessian * only.x) + dot(gradient, only.x);
    only.converged = true;
    only.iterations = 1;
    return only;
}

/// Reduced objective blocks: Hr = Z'HZ, gr = Z'(H x0 + g).
struct Reduced_objective {
    Matrix hr;
    Vector gr;
};

Reduced_objective reduce_objective(const Matrix& hessian, const Vector& gradient,
                                   const Qp_constraint_prep& prep) {
    const Matrix& z_basis = prep.z_basis();
    const std::size_t n = prep.unknowns();
    const std::size_t nz = z_basis.cols();
    Reduced_objective out;
    out.hr = Matrix(nz, nz);
    const Matrix hz = hessian * z_basis;
    for (std::size_t i = 0; i < nz; ++i) {
        for (std::size_t j = 0; j < nz; ++j) {
            double s = 0.0;
            for (std::size_t k = 0; k < n; ++k) s += z_basis(k, i) * hz(k, j);
            out.hr(i, j) = s;
        }
    }
    out.gr = transposed_times(z_basis, hessian * prep.x_particular() + gradient);
    return out;
}

}  // namespace

Qp_result solve_qp_dual_prepared(const Matrix& hessian, const Vector& gradient,
                                 const Qp_constraint_prep& prep, const Qp_options& options) {
    check_prepared_shapes("solve_qp_dual_prepared", hessian, gradient, prep);
    if (prep.fully_determined()) return fully_determined_result(hessian, gradient, prep);

    // Reduced problem: min 0.5 y'Hr y + gr'y  s.t.  Cr y >= dr.
    const Reduced_objective reduced_obj = reduce_objective(hessian, gradient, prep);
    Qp_result reduced = solve_qp_dual_reduced(reduced_obj.hr, reduced_obj.gr,
                                              prep.reduced_inequality(),
                                              prep.reduced_ineq_rhs(), options);
    Qp_result result;
    result.x = prep.z_basis() * reduced.x + prep.x_particular();
    result.objective = 0.5 * dot(result.x, hessian * result.x) + dot(gradient, result.x);
    result.iterations = reduced.iterations;
    result.active_set = std::move(reduced.active_set);
    result.converged = reduced.converged;
    return result;
}

std::optional<Qp_result> try_solve_qp_reduced_warm(const Matrix& hessian,
                                                   const Vector& gradient,
                                                   const Matrix& ineq_matrix,
                                                   const Vector& ineq_rhs,
                                                   const std::vector<std::size_t>& active_hint,
                                                   const Qp_options& options) {
    const std::size_t nz = hessian.rows();
    const std::size_t mi = ineq_matrix.rows();
    if (hessian.cols() != nz || gradient.size() != nz) {
        throw std::invalid_argument("try_solve_qp_reduced_warm: Hessian/gradient shape mismatch");
    }
    if (ineq_rhs.size() != mi || (mi > 0 && ineq_matrix.cols() != nz)) {
        throw std::invalid_argument("try_solve_qp_reduced_warm: inequality block shape mismatch");
    }
    for (std::size_t k : active_hint) {
        if (k >= mi) {
            throw std::invalid_argument("try_solve_qp_reduced_warm: hint index out of range");
        }
    }
    // An empty hint is just a cold solve; more active rows than reduced
    // dimensions cannot be an independent active set.
    if (active_hint.empty() || active_hint.size() > nz) return std::nullopt;
    const Matrix& cr = ineq_matrix;
    const Vector& dr = ineq_rhs;

    // Warm-start economics: attempts, accepts (hint led to the optimum),
    // and fallbacks (caller pays the cold dual solve) plus how many
    // repair steps an accepted hint needed.
    static telemetry::Counter& warm_attempts = telemetry::counter("qp.warm.attempts");
    static telemetry::Counter& warm_accepts = telemetry::counter("qp.warm.accepts");
    static telemetry::Counter& warm_fallbacks = telemetry::counter("qp.warm.fallbacks");
    static telemetry::Histogram& repair_steps = telemetry::histogram("qp.warm.repair_steps");
    warm_attempts.add();
    const telemetry::Trace_span warm_span("qp.warm.solve", "qp");

    // Same strict-convexity ridge as the cold dual iteration, so warm and
    // cold paths agree on what "optimal" means.
    Matrix hr = hessian;
    {
        double trace = 0.0;
        for (std::size_t i = 0; i < nz; ++i) trace += hr(i, i);
        const double ridge = std::max(options.fallback_ridge, 1e-12) *
                             std::max(1.0, trace / static_cast<double>(nz));
        for (std::size_t i = 0; i < nz; ++i) hr(i, i) += ridge;
    }

    // Bounded active-set repair from the hint: each step solves the KKT
    // system with the working rows held at their bounds,
    //   [ Hr  Cs' ] [ y ]   [ -gr ]
    //   [ Cs   0  ] [ v ] = [ d_S ],  multipliers mu = -v,
    // then drops the most dual-infeasible row or adds the most violated
    // one. A nearby problem's active set differs by a row or two, so a
    // few cheap direct solves usually land on the optimum; the small
    // budget keeps a stale hint (or a degenerate drop/re-add cycle)
    // cheap before the cold dual fallback. The accepted point is optimal
    // by construction of the exit condition: no negative multiplier, no
    // violated inequality.
    constexpr std::size_t max_repair_steps = 4;
    std::vector<std::size_t> working = active_hint;
    for (std::size_t step = 0; step < max_repair_steps; ++step) {
        const std::size_t s = working.size();
        const std::size_t dim = nz + s;
        Matrix kkt(dim, dim);
        Vector rhs(dim, 0.0);
        for (std::size_t i = 0; i < nz; ++i) {
            for (std::size_t j = 0; j < nz; ++j) kkt(i, j) = hr(i, j);
            rhs[i] = -gradient[i];
        }
        for (std::size_t k = 0; k < s; ++k) {
            const std::size_t row = working[k];
            for (std::size_t j = 0; j < nz; ++j) {
                kkt(nz + k, j) = cr(row, j);
                kkt(j, nz + k) = cr(row, j);
            }
            rhs[nz + k] = dr[row];
        }

        Vector sol;
        try {
            sol = ldlt_solve(kkt, rhs);
        } catch (const std::runtime_error&) {
            warm_fallbacks.add();
            return std::nullopt;  // dependent working rows: cold path sorts it out
        }
        Vector y(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(nz));

        // Drop phase: most negative multiplier leaves the working set.
        std::size_t drop = s;
        double most_negative = -options.multiplier_tol;
        for (std::size_t k = 0; k < s; ++k) {
            const double mu = -sol[nz + k];
            if (mu < most_negative) {
                most_negative = mu;
                drop = k;
            }
        }
        if (drop != s) {
            working.erase(working.begin() + static_cast<std::ptrdiff_t>(drop));
            continue;
        }

        // Add phase: most violated inactive inequality joins, under the
        // same tolerance the cold dual iteration uses to pick rows.
        std::vector<char> in_working(mi, 0);
        for (std::size_t k : working) in_working[k] = 1;
        std::size_t add = mi;
        double worst = -options.constraint_tol;
        for (std::size_t r = 0; r < mi; ++r) {
            if (in_working[r]) continue;
            const double slack = dot(cr.row(r), y) - dr[r];
            if (slack < worst) {
                worst = slack;
                add = r;
            }
        }
        if (add != mi) {
            if (working.size() == nz) {
                warm_fallbacks.add();
                return std::nullopt;  // cannot grow further
            }
            working.push_back(add);
            continue;
        }

        Qp_result result;
        result.x = std::move(y);
        result.objective =
            0.5 * dot(result.x, hessian * result.x) + dot(gradient, result.x);
        result.iterations = step + 1;
        result.active_set = std::move(working);
        std::sort(result.active_set.begin(), result.active_set.end());
        result.converged = true;
        warm_accepts.add();
        repair_steps.record(static_cast<double>(result.iterations));
        return result;
    }
    warm_fallbacks.add();
    return std::nullopt;  // repair budget exhausted: the hint was not nearby
}

std::optional<Qp_result> try_solve_qp_prepared_warm(const Matrix& hessian,
                                                    const Vector& gradient,
                                                    const Qp_constraint_prep& prep,
                                                    const std::vector<std::size_t>& active_hint,
                                                    const Qp_options& options) {
    check_prepared_shapes("try_solve_qp_prepared_warm", hessian, gradient, prep);
    if (prep.fully_determined()) return fully_determined_result(hessian, gradient, prep);

    const Reduced_objective reduced_obj = reduce_objective(hessian, gradient, prep);
    std::optional<Qp_result> reduced =
        try_solve_qp_reduced_warm(reduced_obj.hr, reduced_obj.gr, prep.reduced_inequality(),
                                  prep.reduced_ineq_rhs(), active_hint, options);
    if (!reduced.has_value()) return std::nullopt;
    Qp_result result = std::move(*reduced);
    result.x = prep.z_basis() * result.x + prep.x_particular();
    result.objective = 0.5 * dot(result.x, hessian * result.x) + dot(gradient, result.x);
    return result;
}

Qp_result solve_qp_dual(const Qp_problem& problem, const Qp_options& options) {
    validate(problem);
    const Qp_constraint_prep prep(problem.hessian.rows(), problem.eq_matrix, problem.eq_rhs,
                                  problem.ineq_matrix, problem.ineq_rhs);
    return solve_qp_dual_prepared(problem.hessian, problem.gradient, prep, options);
}

double kkt_violation(const Qp_problem& problem, const Qp_result& result) {
    validate(problem);
    const Vector& x = result.x;
    const std::size_t n = problem.hessian.rows();
    const std::size_t me = problem.eq_matrix.rows();
    const std::size_t mw = result.active_set.size();

    double worst = std::max(eq_violation(problem, x), ineq_violation(problem, x));

    // Stationarity: Hx + g = A' lambda + C_W' mu with mu >= 0. Recover the
    // multipliers by least squares against the active constraint gradients.
    Vector resid = problem.hessian * x + problem.gradient;
    if (me + mw == 0) return std::max(worst, norm_inf(resid));

    Matrix jt(n, me + mw);  // columns are constraint gradients
    for (std::size_t r = 0; r < me; ++r) {
        for (std::size_t j = 0; j < n; ++j) jt(j, r) = problem.eq_matrix(r, j);
    }
    for (std::size_t k = 0; k < mw; ++k) {
        for (std::size_t j = 0; j < n; ++j) {
            jt(j, me + k) = problem.ineq_matrix(result.active_set[k], j);
        }
    }
    const Vector multipliers = qr_least_squares(jt, resid);
    const Vector stat = resid - jt * multipliers;
    worst = std::max(worst, norm_inf(stat));
    for (std::size_t k = 0; k < mw; ++k) {
        worst = std::max(worst, -multipliers[me + k]);  // dual feasibility
    }
    // Complementary slackness on the reported active set.
    for (std::size_t k = 0; k < mw; ++k) {
        const std::size_t i = result.active_set[k];
        const double slack = dot(problem.ineq_matrix.row(i), x) - problem.ineq_rhs[i];
        worst = std::max(worst, std::abs(slack * multipliers[me + k]));
    }
    return worst;
}

}  // namespace cellsync
