// Banded layouts for the structurally sparse design matrices.
//
// The deconvolution design matrices are structurally sparse in a very
// specific way: each *row* has one contiguous run of nonzero entries. A
// B-spline design row touches at most degree+1 basis functions, and a
// kernel row K(m, i) = integral Q(phi, t_m) psi_i(phi) dphi is nonzero
// only for the basis functions whose support overlaps the population's
// phase support at t_m. Two storage layouts exploit that:
//
//   * Banded_matrix — the dense matrix plus one half-open [begin, end)
//     column span per row; kernels skip the zero blocks but the dense
//     storage (and its memory traffic) stays.
//   * Packed_banded_matrix — only the in-span values, concatenated
//     contiguously with per-row offsets; the dense backing is dropped,
//     so very sparse designs stop paying dense footprint and bandwidth.
//
// Design_matrix is the dispatch seam the estimator consumes: it holds
// whichever layout a data-driven occupancy threshold picked (see
// packed_occupancy_threshold, justified by the bench/perf_gram occupancy
// sweep in BENCH_gram.json) and routes every product kernel to it.
//
// Bit-identity contract (PR 6, extended to the packed layout): spans are
// detected from the stored values (or supplied by a caller that
// guarantees exact zeros outside them), so every skipped or dropped term
// is an exact +/-0.0 and an exact IEEE no-op (x + (+/-0.0 product) == x
// for every partial sum these kernels can produce — partial sums are
// never -0.0 because they start at +0.0 and +0.0 + -0.0 == +0.0).
// Combined with the matching accumulation order (increasing row index
// per output element, exactly as the dense kernels in
// numerics/matrix.cpp) the banded AND packed results are bit-identical
// to the dense reference for finite inputs. Non-finite entries are
// nonzero, land inside the band, are packed, and propagate (the shared
// policy documented in matrix.h). The actual inner loops live in
// numerics/simd_kernels.inc and run through the runtime ISA dispatch of
// numerics/simd_dispatch.h, whose default tiers all honor this contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "numerics/matrix.h"
#include "numerics/vector_ops.h"

namespace cellsync {

/// Half-open column span [begin, end) of a row's nonzero run. An all-zero
/// row has begin == end == 0.
struct Row_span {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t width() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/// Occupancy at or below which Design_matrix drops the dense backing and
/// stores the matrix packed. Data-driven: the bench/perf_gram occupancy
/// sweep (sweep_* keys of BENCH_gram.json, asserted in CI) shows the
/// packed kernels beating the span-banded-over-dense ones up to ~0.2-0.3
/// occupancy on gram-shaped work, converging above that as the span walk
/// touches most of the dense storage anyway; 0.25 sits inside the packed
/// win region with margin. Real B-spline designs land near 4/n_basis
/// (~0.17 for the default 24-function basis), comfortably packed.
inline constexpr double packed_occupancy_threshold = 0.25;

/// A dense row-major matrix annotated with the per-row nonzero spans.
///
/// The dense storage is kept in full (problem sizes are tens by tens), so
/// the view costs one span per row and never loses information: any
/// consumer that wants the dense matrix reads dense().
class Banded_matrix {
  public:
    Banded_matrix() = default;

    /// Wrap a dense matrix, detecting each row's nonzero span by value
    /// scan (first to one-past-last entry with a nonzero bit pattern other
    /// than +/-0.0; NaN/Inf count as nonzero).
    explicit Banded_matrix(Matrix dense);

    /// Wrap a dense matrix with caller-supplied spans, skipping the value
    /// scan. Contract: every entry outside its row's span is exactly
    /// +/-0.0 (spans may be wider than the minimal nonzero run — in-span
    /// zeros are harmless). Throws std::invalid_argument on a span count
    /// mismatch or an out-of-range span. This is the constructor
    /// Basis::design_matrix_banded uses: the spans fall out of the basis
    /// supports, so the rows are never re-scanned.
    Banded_matrix(Matrix dense, std::vector<Row_span> spans);

    // The cached stats are std::atomics (lazy, see band_occupancy), which
    // rules out the implicit copy/move special members.
    Banded_matrix(const Banded_matrix& other);
    Banded_matrix(Banded_matrix&& other) noexcept;
    Banded_matrix& operator=(const Banded_matrix& other);
    Banded_matrix& operator=(Banded_matrix&& other) noexcept;
    ~Banded_matrix() = default;

    std::size_t rows() const { return dense_.rows(); }
    std::size_t cols() const { return dense_.cols(); }
    bool empty() const { return dense_.empty(); }

    const Matrix& dense() const { return dense_; }
    const std::vector<Row_span>& spans() const { return spans_; }
    Row_span row_span(std::size_t i) const { return spans_[i]; }

    /// Fraction of stored entries inside the spans (1.0 = fully dense,
    /// 0.0 = all-zero). This is the number a banded speedup is explained
    /// by: the product kernels do occupancy * (dense work). Computed
    /// lazily from the spans on first call and cached — construction
    /// (hot on the streaming append path, where the caller already knows
    /// the spans) never pays a stats pass. Thread-safe: concurrent first
    /// calls race benignly to store the same values through atomics.
    double band_occupancy() const;

    /// Widest row span; lazy and cached like band_occupancy().
    std::size_t max_bandwidth() const;

  private:
    void ensure_stats() const;

    Matrix dense_;
    std::vector<Row_span> spans_;
    mutable std::atomic<bool> stats_ready_{false};
    mutable std::atomic<double> occupancy_{1.0};
    mutable std::atomic<std::size_t> max_bandwidth_{0};
};

/// Packed banded storage: the in-span values of every row concatenated
/// into one contiguous array, with per-row offsets and spans. The dense
/// backing is gone — footprint and kernel memory traffic are
/// occupancy * dense, which is what makes this layout win on very sparse
/// designs (see packed_occupancy_threshold). Packing drops only entries
/// outside the spans, i.e. exact +/-0.0 structural zeros, so every
/// kernel below is bit-identical to its dense / dense-banded
/// counterpart.
class Packed_banded_matrix {
  public:
    Packed_banded_matrix() = default;

    /// Pack a dense matrix, detecting spans by value scan (same rule as
    /// Banded_matrix).
    explicit Packed_banded_matrix(const Matrix& dense);

    /// Pack a dense matrix with caller-supplied spans (same contract as
    /// the span-supplied Banded_matrix constructor).
    Packed_banded_matrix(const Matrix& dense, std::vector<Row_span> spans);

    /// Pack an already-annotated banded matrix.
    explicit Packed_banded_matrix(const Banded_matrix& banded);

    /// Adopt directly emitted storage: values holds each row's in-span
    /// entries back to back, in row order (sum of span widths values
    /// total). Throws std::invalid_argument on inconsistent sizes or an
    /// out-of-range span. This is how Basis::design_matrix_packed emits
    /// the design without ever materializing the dense matrix.
    Packed_banded_matrix(std::size_t cols, std::vector<Row_span> spans,
                         std::vector<double> values);

    std::size_t rows() const { return spans_.size(); }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows() == 0 || cols_ == 0; }

    const std::vector<Row_span>& spans() const { return spans_; }
    Row_span row_span(std::size_t i) const { return spans_[i]; }

    /// Pointer to row i's packed values (row_span(i).width() doubles);
    /// valid while the matrix lives. Index k holds column
    /// row_span(i).begin + k.
    const double* row_values(std::size_t i) const { return values_.data() + offsets_[i]; }

    /// Packed storage and per-row offsets (offsets()[i] is row i's start
    /// in values(); offsets().back() == values().size()).
    const std::vector<double>& values() const { return values_; }
    const std::vector<std::size_t>& offsets() const { return offsets_; }

    /// values().size() / (rows * cols); 1.0 for empty (matches the
    /// Banded_matrix convention).
    double band_occupancy() const;

    /// Widest row span.
    std::size_t max_bandwidth() const { return max_bandwidth_; }

    /// Reconstruct the dense matrix (out-of-span entries are +0.0).
    /// Interop/diagnostics only — the point of this layout is not to
    /// carry the dense storage.
    Matrix to_dense() const;

  private:
    void init_offsets_and_check(const char* what);

    std::size_t cols_ = 0;
    std::vector<Row_span> spans_;
    std::vector<std::size_t> offsets_;  // rows + 1 entries once built
    std::vector<double> values_;
    std::size_t max_bandwidth_ = 0;
};

/// Which storage a Design_matrix ended up with.
enum class Design_layout { banded, packed };

/// The per-matrix layout decision plus the common kernel seam. Built
/// from a dense (or pre-annotated) design; occupancy at or below the
/// threshold drops the dense backing and goes packed, anything denser
/// stays a dense-backed Banded_matrix (which itself falls back to
/// j-blocked dense-shape kernels above ~0.5 occupancy). Consumers call
/// the free kernels below and never branch on the layout; results are
/// bit-identical either way.
class Design_matrix {
  public:
    Design_matrix() = default;

    /// Decide the layout for a dense design by occupancy.
    explicit Design_matrix(const Matrix& dense,
                           double packed_threshold = packed_occupancy_threshold);

    /// Decide the layout for an already-annotated banded design (moves
    /// it in when it stays banded).
    explicit Design_matrix(Banded_matrix banded,
                           double packed_threshold = packed_occupancy_threshold);

    /// Adopt a packed design as-is (the caller already decided).
    explicit Design_matrix(Packed_banded_matrix packed);

    Design_layout layout() const { return layout_; }
    bool is_packed() const { return layout_ == Design_layout::packed; }

    std::size_t rows() const;
    std::size_t cols() const;
    bool empty() const;
    Row_span row_span(std::size_t i) const;
    double band_occupancy() const;
    std::size_t max_bandwidth() const;

    /// The held layout; throws std::logic_error when asked for the
    /// other one.
    const Banded_matrix& banded() const;
    const Packed_banded_matrix& packed() const;

  private:
    void adopt(Banded_matrix banded, double packed_threshold);
    void note_layout_choice() const;

    Design_layout layout_ = Design_layout::banded;
    Banded_matrix banded_;
    Packed_banded_matrix packed_;
};

// ---------------------------------------------------------------------------
// Product kernels. Every overload set spans the three layouts
// (Banded_matrix, Packed_banded_matrix, Design_matrix) with identical
// semantics and bit-identical results; the Design_matrix overloads are
// the dispatch seam the estimator uses.
// ---------------------------------------------------------------------------

/// a * x skipping out-of-span columns; bit-identical to the dense product.
Vector operator*(const Banded_matrix& a, const Vector& x);
Vector operator*(const Packed_banded_matrix& a, const Vector& x);
Vector operator*(const Design_matrix& a, const Vector& x);

/// a^T * x skipping out-of-span columns; bit-identical to
/// transposed_times(a.dense(), x).
Vector transposed_times(const Banded_matrix& a, const Vector& x);
Vector transposed_times(const Packed_banded_matrix& a, const Vector& x);
Vector transposed_times(const Design_matrix& a, const Vector& x);

/// a^T * a over the spans; bit-identical to gram(a.dense()).
Matrix gram(const Banded_matrix& a);
Matrix gram(const Packed_banded_matrix& a);
Matrix gram(const Design_matrix& a);

/// a^T diag(w) a over the spans; bit-identical to
/// weighted_gram(a.dense(), w).
Matrix weighted_gram(const Banded_matrix& a, const Vector& w);
Matrix weighted_gram(const Packed_banded_matrix& a, const Vector& w);
Matrix weighted_gram(const Design_matrix& a, const Vector& w);

/// Row-subset Gram: a(rows, :)^T diag(w) a(rows, :) with w[r] weighting
/// row rows[r] — the cross-validation fold kernel, bit-identical to
/// copying the rows out and calling weighted_gram on the submatrix, with
/// neither the copy nor the out-of-span work. Throws std::invalid_argument
/// on a length mismatch or an out-of-range row index.
Matrix weighted_gram_rows(const Banded_matrix& a, const std::vector<std::size_t>& rows,
                          const Vector& w);
Matrix weighted_gram_rows(const Packed_banded_matrix& a,
                          const std::vector<std::size_t>& rows, const Vector& w);
Matrix weighted_gram_rows(const Design_matrix& a, const std::vector<std::size_t>& rows,
                          const Vector& w);

/// Row-subset right-hand side: a(rows, :)^T x with x[r] paired with row
/// rows[r]; bit-identical to the copy-out-and-multiply reference.
Vector transposed_times_rows(const Banded_matrix& a, const std::vector<std::size_t>& rows,
                             const Vector& x);
Vector transposed_times_rows(const Packed_banded_matrix& a,
                             const std::vector<std::size_t>& rows, const Vector& x);
Vector transposed_times_rows(const Design_matrix& a, const std::vector<std::size_t>& rows,
                             const Vector& x);

/// Fused weighted row-subset right-hand side: a(rows, :)^T (w . x),
/// forming each product w[r] * x[r] on the fly — bit-identical to
/// transposed_times_rows(a, rows, hadamard(w, x)) without materializing
/// the elementwise product. This is the K'W G gather of the per-gene
/// normal equations.
Vector weighted_transposed_times_rows(const Banded_matrix& a,
                                      const std::vector<std::size_t>& rows, const Vector& w,
                                      const Vector& x);
Vector weighted_transposed_times_rows(const Packed_banded_matrix& a,
                                      const std::vector<std::size_t>& rows, const Vector& w,
                                      const Vector& x);
Vector weighted_transposed_times_rows(const Design_matrix& a,
                                      const std::vector<std::size_t>& rows, const Vector& w,
                                      const Vector& x);

/// a^T * x accumulating only the rows of `a` inside [span.begin,
/// span.end), for callers that know x is structurally zero outside the
/// span (the streaming rank-one update projecting a banded kernel row
/// through the dense equality null-space basis). Bit-identical to the full
/// transposed_times when the clipped x entries are exact zeros. Throws
/// std::invalid_argument on mismatch or a span exceeding a.rows().
Vector transposed_times_span(const Matrix& a, const Vector& x, Row_span span);

/// <a.row(i), x> over row i's span, without materializing the row copy;
/// bit-identical to dot(a.dense().row(i), x) when the skipped terms are
/// exact zeros. Throws std::invalid_argument on mismatch.
double row_dot(const Banded_matrix& a, std::size_t i, const Vector& x);
double row_dot(const Packed_banded_matrix& a, std::size_t i, const Vector& x);
double row_dot(const Design_matrix& a, std::size_t i, const Vector& x);

}  // namespace cellsync
