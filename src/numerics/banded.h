// Banded (per-row span) view of a dense matrix.
//
// The deconvolution design matrices are structurally sparse in a very
// specific way: each *row* has one contiguous run of nonzero entries. A
// B-spline design row touches at most degree+1 basis functions, and a
// kernel row K(m, i) = integral Q(phi, t_m) psi_i(phi) dphi is nonzero
// only for the basis functions whose support overlaps the population's
// phase support at t_m. Banded_matrix stores the dense matrix plus one
// half-open [begin, end) column span per row and gives the product
// kernels (Gram, right-hand side, mat-vec) a license to skip the zero
// blocks entirely.
//
// Bit-identity contract: the spans are detected from the stored values,
// so every entry outside a span is exactly +/-0.0 and every skipped term
// is an exact IEEE no-op (x + (+/-0.0 product) == x for every partial sum
// these kernels can produce — partial sums are never -0.0 because they
// start at +0.0 and +0.0 + -0.0 == +0.0). Combined with the matching
// accumulation order (increasing row index per output element, exactly as
// the dense kernels in numerics/matrix.cpp) the banded results are
// bit-identical to the dense reference for finite inputs. Non-finite
// entries are nonzero, land inside the band, and propagate (the shared
// policy documented in matrix.h).
#ifndef CELLSYNC_NUMERICS_BANDED_H
#define CELLSYNC_NUMERICS_BANDED_H

#include <cstddef>
#include <vector>

#include "numerics/matrix.h"
#include "numerics/vector_ops.h"

namespace cellsync {

/// Half-open column span [begin, end) of a row's nonzero run. An all-zero
/// row has begin == end == 0.
struct Row_span {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t width() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/// A dense row-major matrix annotated with the per-row nonzero spans.
///
/// The dense storage is kept in full (problem sizes are tens by tens), so
/// the view costs one span per row and never loses information: any
/// consumer that wants the dense matrix reads dense().
class Banded_matrix {
  public:
    Banded_matrix() = default;

    /// Wrap a dense matrix, detecting each row's nonzero span by value
    /// scan (first to one-past-last entry with a nonzero bit pattern other
    /// than +/-0.0; NaN/Inf count as nonzero).
    explicit Banded_matrix(Matrix dense);

    std::size_t rows() const { return dense_.rows(); }
    std::size_t cols() const { return dense_.cols(); }
    bool empty() const { return dense_.empty(); }

    const Matrix& dense() const { return dense_; }
    const std::vector<Row_span>& spans() const { return spans_; }
    Row_span row_span(std::size_t i) const { return spans_[i]; }

    /// Fraction of stored entries inside the spans (1.0 = fully dense,
    /// 0.0 = all-zero). This is the number a banded speedup is explained
    /// by: the product kernels do occupancy * (dense work). Computed once
    /// at construction (the product kernels branch on it per call).
    double band_occupancy() const { return occupancy_; }

    /// Widest row span.
    std::size_t max_bandwidth() const { return max_bandwidth_; }

  private:
    Matrix dense_;
    std::vector<Row_span> spans_;
    double occupancy_ = 1.0;
    std::size_t max_bandwidth_ = 0;
};

/// a * x skipping out-of-span columns; bit-identical to the dense product.
Vector operator*(const Banded_matrix& a, const Vector& x);

/// a^T * x skipping out-of-span columns; bit-identical to
/// transposed_times(a.dense(), x).
Vector transposed_times(const Banded_matrix& a, const Vector& x);

/// a^T * a over the spans; bit-identical to gram(a.dense()).
Matrix gram(const Banded_matrix& a);

/// a^T diag(w) a over the spans; bit-identical to
/// weighted_gram(a.dense(), w).
Matrix weighted_gram(const Banded_matrix& a, const Vector& w);

/// Row-subset Gram: a(rows, :)^T diag(w) a(rows, :) with w[r] weighting
/// row rows[r] — the cross-validation fold kernel, bit-identical to
/// copying the rows out and calling weighted_gram on the submatrix, with
/// neither the copy nor the out-of-span work. Throws std::invalid_argument
/// on a length mismatch or an out-of-range row index.
Matrix weighted_gram_rows(const Banded_matrix& a, const std::vector<std::size_t>& rows,
                          const Vector& w);

/// Row-subset right-hand side: a(rows, :)^T x with x[r] paired with row
/// rows[r]; bit-identical to the copy-out-and-multiply reference.
Vector transposed_times_rows(const Banded_matrix& a, const std::vector<std::size_t>& rows,
                             const Vector& x);

/// Fused weighted row-subset right-hand side: a(rows, :)^T (w . x),
/// forming each product w[r] * x[r] on the fly — bit-identical to
/// transposed_times_rows(a, rows, hadamard(w, x)) without materializing
/// the elementwise product. This is the K'W G gather of the per-gene
/// normal equations.
Vector weighted_transposed_times_rows(const Banded_matrix& a,
                                      const std::vector<std::size_t>& rows, const Vector& w,
                                      const Vector& x);

/// a^T * x accumulating only the rows of `a` inside [span.begin,
/// span.end), for callers that know x is structurally zero outside the
/// span (the streaming rank-one update projecting a banded kernel row
/// through the dense equality null-space basis). Bit-identical to the full
/// transposed_times when the clipped x entries are exact zeros. Throws
/// std::invalid_argument on mismatch or a span exceeding a.rows().
Vector transposed_times_span(const Matrix& a, const Vector& x, Row_span span);

/// <a.row(i), x> over row i's span, without materializing the row copy;
/// bit-identical to dot(a.dense().row(i), x) when the skipped terms are
/// exact zeros. Throws std::invalid_argument on mismatch.
double row_dot(const Banded_matrix& a, std::size_t i, const Vector& x);

}  // namespace cellsync

#endif  // CELLSYNC_NUMERICS_BANDED_H
