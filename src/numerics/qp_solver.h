// Dense convex quadratic programming by the primal active-set method.
//
// The deconvolution estimator (paper Eq 5 plus the positivity,
// RNA-conservation, and transcription-rate-continuity constraints) is the
// quadratic program
//
//     minimize    0.5 x' H x + g' x
//     subject to  A_eq x  = b_eq
//                 C_in x >= d_in
//
// with H symmetric positive (semi-)definite. Problem sizes are tiny
// (tens of unknowns, tens of constraints), so a textbook dense active-set
// iteration with explicit KKT solves is both simple and fast.
#pragma once

#include <optional>

#include "numerics/matrix.h"
#include "numerics/vector_ops.h"

namespace cellsync {

/// Specification of a convex QP. Empty equality/inequality blocks are
/// allowed (pass 0-row matrices and empty vectors).
struct Qp_problem {
    Matrix hessian;       ///< H, n x n, symmetric PSD
    Vector gradient;      ///< g, length n
    Matrix eq_matrix;     ///< A_eq, m_e x n (may be 0 x n)
    Vector eq_rhs;        ///< b_eq, length m_e
    Matrix ineq_matrix;   ///< C_in, m_i x n (may be 0 x n)
    Vector ineq_rhs;      ///< d_in, length m_i
};

/// Result of a QP solve.
struct Qp_result {
    Vector x;                       ///< optimizer
    double objective = 0.0;         ///< 0.5 x'Hx + g'x at the optimizer
    std::size_t iterations = 0;     ///< active-set iterations used
    std::vector<std::size_t> active_set;  ///< indices of binding inequalities
    bool converged = false;
};

/// Options controlling the active-set iteration.
struct Qp_options {
    std::size_t max_iterations = 1000;
    /// Feasibility tolerance. Also the per-step violation allowance of the
    /// relaxed ratio test (iterates may sit up to ~this far outside an
    /// inequality; tighten it if exact feasibility matters more than
    /// robustness at degenerate vertices).
    double constraint_tol = 1e-9;
    double multiplier_tol = 1e-9;   ///< dual feasibility tolerance
    double step_tol = 1e-12;        ///< ||p|| below which a step is "zero"
    /// Ridge added to H on a singular KKT solve (scaled by trace(H)/n);
    /// keeps degenerate problems solvable without caller involvement.
    double fallback_ridge = 1e-10;
};

/// Solve the QP by the primal active-set method.
///
/// `start` must be feasible if provided. If omitted, the solver tries, in
/// order: the zero vector; the minimum-norm solution of the equality
/// system. `initial_working` warm-starts the working set (inequality row
/// indices, typically the active set of a nearby problem's solution
/// whose x is passed as `start`); rows that do not belong are shed by
/// the normal multiplier test, so a stale hint costs iterations, not
/// correctness. Throws std::invalid_argument for malformed shapes or
/// out-of-range working indices and std::runtime_error if no feasible
/// start can be constructed or the iteration limit is exceeded.
Qp_result solve_qp(const Qp_problem& problem, const Qp_options& options = {},
                   const std::optional<Vector>& start = std::nullopt,
                   const std::vector<std::size_t>& initial_working = {});

/// Precomputed constraint geometry of a QP family.
///
/// Deconvolution solves thousands of QPs that share one constraint set
/// (A_eq, b_eq, C_in, d_in) while the Hessian and gradient vary — across
/// genes, CV folds, bootstrap replicates, and lambda grid points. The
/// equality null-space reduction (particular solution + orthonormal basis
/// Z of null(A_eq)) and the reduction C Z of every inequality row depend
/// only on the constraints, so this object computes them exactly once and
/// is shared immutably across all those solves (and across threads).
class Qp_constraint_prep {
  public:
    /// `n` is the unknown count (blocks may have zero rows). Throws
    /// std::invalid_argument on shape mismatch and std::runtime_error if
    /// the equality system is inconsistent.
    Qp_constraint_prep(std::size_t n, const Matrix& eq_matrix, const Vector& eq_rhs,
                       const Matrix& ineq_matrix, const Vector& ineq_rhs);

    std::size_t unknowns() const { return n_; }
    std::size_t reduced_dim() const { return z_basis_.cols(); }
    /// True when the equalities pin x completely (empty null space).
    bool fully_determined() const { return z_basis_.cols() == 0; }

    const Matrix& z_basis() const { return z_basis_; }              ///< n x nz
    const Vector& x_particular() const { return x_particular_; }    ///< length n
    const Matrix& reduced_inequality() const { return reduced_ineq_; }  ///< C Z
    const Vector& reduced_ineq_rhs() const { return reduced_rhs_; }     ///< d - C x0

  private:
    std::size_t n_ = 0;
    Matrix z_basis_;
    Vector x_particular_;
    Matrix reduced_ineq_;
    Vector reduced_rhs_;
};

/// Goldfarb-Idnani dual iteration on a reduced, inequality-only QP:
/// min 0.5 y'H y + g'y  s.t.  C y >= d, with H made strictly convex by a
/// scaled internal ridge. This is the core shared by solve_qp_dual and the
/// prepared solve path. Throws std::runtime_error on infeasibility or a
/// non-PD Hessian.
Qp_result solve_qp_dual_reduced(const Matrix& hessian, const Vector& gradient,
                                const Matrix& ineq_matrix, const Vector& ineq_rhs,
                                const Qp_options& options = {});

/// Goldfarb-Idnani solve of the full QP reusing a shared constraint
/// preparation; numerically identical to solve_qp_dual on the same
/// problem, minus the per-solve constraint reduction work.
Qp_result solve_qp_dual_prepared(const Matrix& hessian, const Vector& gradient,
                                 const Qp_constraint_prep& prep,
                                 const Qp_options& options = {});

/// Warm-started solve of a reduced, inequality-only QP from a hinted
/// active set (e.g. the binding rows of the previous solve in a sequence
/// of nearby problems, such as a gene stream gaining one timepoint at a
/// time), under the same strict-convexity ridge as
/// solve_qp_dual_reduced, so warm and cold paths agree on what
/// "optimal" means. Runs a bounded active-set repair: solve the KKT
/// system with the working rows pinned at their bounds, drop the most
/// dual-infeasible row or add the most violated one, for at most a
/// handful of direct solves (an unchanged active set is accepted after
/// the first). The accepted point is optimal by construction of the
/// exit condition: no negative multiplier, no violated inequality.
/// Returns std::nullopt when the hint is empty or the attempt does not
/// converge cleanly (dependent rows, repair budget exceeded); callers
/// fall back to the cold solve_qp_dual_reduced path. Throws
/// std::invalid_argument on shape mismatch or out-of-range hint
/// indices.
std::optional<Qp_result> try_solve_qp_reduced_warm(const Matrix& hessian,
                                                   const Vector& gradient,
                                                   const Matrix& ineq_matrix,
                                                   const Vector& ineq_rhs,
                                                   const std::vector<std::size_t>& active_hint,
                                                   const Qp_options& options = {});

/// try_solve_qp_reduced_warm through a shared constraint preparation:
/// reduces the objective onto prep's equality null space, warm-solves,
/// and maps the verified optimum back to full space. Same return
/// contract as the reduced form.
std::optional<Qp_result> try_solve_qp_prepared_warm(const Matrix& hessian,
                                                    const Vector& gradient,
                                                    const Qp_constraint_prep& prep,
                                                    const std::vector<std::size_t>& active_hint,
                                                    const Qp_options& options = {});

/// Solve the QP by the Goldfarb-Idnani dual active-set method.
///
/// Requires a strictly convex Hessian (positive definite after the
/// solver's internal ridge). Equality constraints are eliminated through a
/// null-space reduction, then inequalities are added one violated
/// constraint at a time starting from the unconstrained optimum. This
/// method needs no feasible starting point, terminates finitely, and is
/// far more robust than the primal iteration on degenerate constraint
/// sets (e.g. dense positivity grids) — it is what the deconvolution
/// estimator uses. Throws std::invalid_argument on malformed shapes and
/// std::runtime_error on infeasible constraints or a singular Hessian.
Qp_result solve_qp_dual(const Qp_problem& problem, const Qp_options& options = {});

/// Verify the KKT conditions at x for the given problem; returns the
/// maximum violation (stationarity, primal and dual feasibility,
/// complementary slackness). Used by tests and diagnostics.
double kkt_violation(const Qp_problem& problem, const Qp_result& result);

}  // namespace cellsync
