// Dense row-major matrix type used by every numerical routine in cellsync.
//
// The library deliberately owns its (small, dense) linear algebra rather
// than depending on an external package: problem sizes in the
// deconvolution pipeline are tiny (tens of basis functions, tens of
// measurements), so clarity and exact control over conditioning beats BLAS
// throughput.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "numerics/vector_ops.h"

namespace cellsync {

/// Dense row-major matrix of double.
///
/// Invariant: data_.size() == rows_ * cols_ at all times. A 0x0 matrix is
/// a valid empty state. Element access is bounds-checked in at() and
/// unchecked (assert-level contract) in operator().
class Matrix {
  public:
    /// Empty 0x0 matrix.
    Matrix() = default;

    /// rows x cols matrix, all entries `fill` (default 0).
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Build from nested initializer list; all rows must have equal length.
    /// Throws std::invalid_argument on ragged input.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    /// Unchecked element access (row i, column j).
    double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
    double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

    /// Bounds-checked element access; throws std::out_of_range.
    double& at(std::size_t i, std::size_t j);
    double at(std::size_t i, std::size_t j) const;

    /// Copy of row i as a vector. Throws std::out_of_range.
    Vector row(std::size_t i) const;

    /// Copy of column j as a vector. Throws std::out_of_range.
    Vector col(std::size_t j) const;

    /// Overwrite row i with v (v.size() must equal cols()).
    void set_row(std::size_t i, const Vector& v);

    /// Overwrite column j with v (v.size() must equal rows()).
    void set_col(std::size_t j, const Vector& v);

    /// Transposed copy.
    Matrix transposed() const;

    /// n x n identity.
    static Matrix identity(std::size_t n);

    /// n x n diagonal matrix from d.
    static Matrix diagonal(const Vector& d);

    /// Matrix whose rows are the given vectors (all equal length).
    static Matrix from_rows(const std::vector<Vector>& rows);

    /// Raw storage (row-major), useful for tests and serialization.
    const std::vector<double>& data() const { return data_; }

    /// True if every entry is finite.
    bool all_finite() const;

    /// Max absolute entry (0 for empty).
    double norm_inf() const;

    /// Human-readable rendering for diagnostics; not a serialization format.
    std::string to_string(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Matrix sum; throws std::invalid_argument on shape mismatch.
Matrix operator+(const Matrix& a, const Matrix& b);

/// Matrix difference; throws std::invalid_argument on shape mismatch.
Matrix operator-(const Matrix& a, const Matrix& b);

/// Scalar multiple.
Matrix operator*(double alpha, const Matrix& a);

/// Matrix product; throws std::invalid_argument on inner-dimension mismatch.
Matrix operator*(const Matrix& a, const Matrix& b);

// ---------------------------------------------------------------------------
// Dense product kernels.
//
// Non-finite policy (shared by operator*, transposed_times, gram and
// weighted_gram, dense and chunked alike): no operand value is ever
// inspected to skip work, so NaN and Inf propagate through every product
// exactly as IEEE arithmetic dictates. Zero entries are exploited only
// *structurally*, through numerics/banded.h, whose per-row spans are
// detected from the stored values — a non-finite entry is "nonzero" and
// therefore always lands inside the band and propagates there too.
//
// Accumulation order: every output element accumulates its terms in
// increasing row index (for reductions over rows) or increasing column
// index (for row-vector reductions). The CELLSYNC_SIMD chunked kernels
// (see numerics/simd.h) vectorize across independent output elements only
// and keep that per-element order, so chunked and reference results are
// bit-identical.
// ---------------------------------------------------------------------------

/// Matrix-vector product; throws std::invalid_argument on mismatch.
Vector operator*(const Matrix& a, const Vector& x);

/// a^T * x without forming the transpose.
Vector transposed_times(const Matrix& a, const Vector& x);

/// a^T * a (Gram matrix), exploiting symmetry of the result.
Matrix gram(const Matrix& a);

/// a^T * diag(w) * a with non-negative weights w (size = a.rows()).
Matrix weighted_gram(const Matrix& a, const Vector& w);

// Reference kernels: the plain scalar loops, always compiled regardless of
// CELLSYNC_SIMD. They are the bit-level ground truth the chunked and
// banded kernels are property-tested against, and the baseline the
// perf_gram / perf_deconvolve benches time the fast paths over.
Vector matvec_reference(const Matrix& a, const Vector& x);
Vector transposed_times_reference(const Matrix& a, const Vector& x);
Matrix gram_reference(const Matrix& a);
Matrix weighted_gram_reference(const Matrix& a, const Vector& w);

}  // namespace cellsync
