// Nelder-Mead derivative-free simplex minimization.
//
// Used by the parameter-estimation application (paper Sec 5, "ongoing
// work"): fitting ODE model parameters to population or deconvolved
// expression data, where the objective involves an ODE solve and has no
// cheap gradient.
#pragma once

#include <functional>

#include "numerics/vector_ops.h"

namespace cellsync {

/// Objective to minimize.
using Objective = std::function<double(const Vector&)>;

/// Options for the simplex iteration.
struct Nelder_mead_options {
    std::size_t max_evaluations = 20000;
    double f_tolerance = 1e-10;   ///< spread of simplex values at convergence
    double x_tolerance = 1e-10;   ///< simplex diameter at convergence
    double initial_scale = 0.1;   ///< relative size of the initial simplex
    std::size_t restarts = 1;     ///< re-initialize around the best point
};

/// Result of a minimization.
struct Nelder_mead_result {
    Vector x;              ///< best point found
    double value = 0.0;    ///< objective at x
    std::size_t evaluations = 0;
    bool converged = false;
};

/// Minimize `f` starting from `x0`. Non-finite objective values are treated
/// as +inf (rejected moves), so hard constraint violations can be signalled
/// by returning NaN/inf from the objective. Throws std::invalid_argument on
/// an empty start point.
Nelder_mead_result nelder_mead(const Objective& f, const Vector& x0,
                               const Nelder_mead_options& options = {});

}  // namespace cellsync
