#include "numerics/kkt_factorization.h"

#include <stdexcept>

namespace cellsync {

Kkt_factorization::Kkt_factorization(Matrix h_base, Matrix h_lambda, Matrix eq)
    : h_base_(std::move(h_base)), h_lambda_(std::move(h_lambda)), eq_(std::move(eq)) {
    const std::size_t n = h_base_.rows();
    if (h_base_.cols() != n) {
        throw std::invalid_argument("Kkt_factorization: base Hessian must be square");
    }
    if (!h_lambda_.empty() && (h_lambda_.rows() != n || h_lambda_.cols() != n)) {
        throw std::invalid_argument("Kkt_factorization: lambda block shape mismatch");
    }
    if (eq_.rows() > 0 && eq_.cols() != n) {
        throw std::invalid_argument("Kkt_factorization: equality block width mismatch");
    }
    assembled_ = Matrix(n + eq_.rows(), n + eq_.rows());
}

void Kkt_factorization::factorize(double lambda, double ridge) {
    if (lambda < 0.0) throw std::invalid_argument("Kkt_factorization: lambda must be >= 0");
    if (is_factorized() && lambda == lambda_ && ridge == ridge_) return;  // cache hit

    const std::size_t n = h_base_.rows();
    const std::size_t me = eq_.rows();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double h = h_base_(i, j);
            if (!h_lambda_.empty()) h += lambda * h_lambda_(i, j);
            assembled_(i, j) = h;
        }
        assembled_(i, i) += ridge;
    }
    for (std::size_t r = 0; r < me; ++r) {
        for (std::size_t j = 0; j < n; ++j) {
            assembled_(n + r, j) = eq_(r, j);
            assembled_(j, n + r) = eq_(r, j);
        }
        for (std::size_t c = 0; c < me; ++c) assembled_(n + r, n + c) = 0.0;
    }

    chol_.reset();
    ldlt_.reset();
    if (me == 0) {
        try {
            chol_.emplace(assembled_);
        } catch (const std::runtime_error&) {
            // Semi-definite corner: fall through to the pivoted solver.
        }
    }
    if (!chol_.has_value()) ldlt_.emplace(assembled_);
    lambda_ = lambda;
    ridge_ = ridge;
    ++factorization_count_;
}

Vector Kkt_factorization::solve_kkt(const Vector& rhs) const {
    if (!is_factorized()) {
        throw std::logic_error("Kkt_factorization: factorize() before solve");
    }
    if (rhs.size() != unknowns() + equalities()) {
        throw std::invalid_argument("Kkt_factorization: rhs length mismatch");
    }
    return chol_.has_value() ? chol_->solve(rhs) : ldlt_->solve(rhs);
}

Vector Kkt_factorization::solve(const Vector& gradient, const Vector& eq_rhs) const {
    const std::size_t n = unknowns();
    const std::size_t me = equalities();
    if (gradient.size() != n) {
        throw std::invalid_argument("Kkt_factorization: gradient length mismatch");
    }
    if (eq_rhs.size() != me) {
        throw std::invalid_argument("Kkt_factorization: equality rhs length mismatch");
    }
    Vector rhs(n + me);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -gradient[i];
    for (std::size_t r = 0; r < me; ++r) rhs[n + r] = eq_rhs[r];
    Vector z = solve_kkt(rhs);
    z.resize(n);
    return z;
}

}  // namespace cellsync
