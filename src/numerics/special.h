// Special functions used by the cell-cycle model: Gaussian pdf/cdf and
// truncated-normal moments. The SW->ST transition phase distribution
// p(phi) = N(phi; mu_sst, sigma_sst^2) (paper Sec 2.1) flows through all
// constraint integrals, so these are kept exact and branch-free.
#pragma once

namespace cellsync {

/// Standard normal probability density.
double gaussian_pdf(double x);

/// Normal density with mean mu, standard deviation sigma > 0.
/// Throws std::invalid_argument if sigma <= 0.
double gaussian_pdf(double x, double mu, double sigma);

/// Standard normal cumulative distribution (via std::erfc, full precision).
double gaussian_cdf(double x);

/// Normal CDF with mean mu, standard deviation sigma > 0.
double gaussian_cdf(double x, double mu, double sigma);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Newton step; |error| < 1e-13 over (0,1)). Throws for p outside (0,1).
double gaussian_quantile(double p);

/// Mean of a Normal(mu, sigma) truncated to [lo, hi].
/// Throws std::invalid_argument if lo >= hi or sigma <= 0.
double truncated_normal_mean(double mu, double sigma, double lo, double hi);

}  // namespace cellsync
