#include "numerics/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cellsync {

namespace {

double guarded(const Objective& f, const Vector& x, std::size_t& evals) {
    ++evals;
    const double v = f(x);
    return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
}

}  // namespace

Nelder_mead_result nelder_mead(const Objective& f, const Vector& x0,
                               const Nelder_mead_options& options) {
    if (x0.empty()) throw std::invalid_argument("nelder_mead: empty start point");
    const std::size_t n = x0.size();

    Nelder_mead_result result;
    result.x = x0;
    std::size_t evals = 0;
    result.value = guarded(f, x0, evals);

    Vector best = x0;
    double best_value = result.value;

    for (std::size_t restart = 0; restart <= options.restarts; ++restart) {
        // Initial simplex: best point plus one perturbed vertex per axis.
        std::vector<Vector> simplex(n + 1, best);
        Vector values(n + 1);
        values[0] = best_value;
        for (std::size_t i = 0; i < n; ++i) {
            const double step =
                options.initial_scale * std::max(std::abs(best[i]), 0.1) *
                (restart % 2 == 0 ? 1.0 : -1.0);
            simplex[i + 1][i] += step;
            values[i + 1] = guarded(f, simplex[i + 1], evals);
        }

        std::vector<std::size_t> order(n + 1);
        while (evals < options.max_evaluations) {
            std::iota(order.begin(), order.end(), std::size_t{0});
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
            const std::size_t lo = order.front();
            const std::size_t hi = order.back();
            const std::size_t second_hi = order[n - 1];

            // Convergence: value spread and simplex diameter both small.
            const double spread = values[hi] - values[lo];
            double diameter = 0.0;
            for (std::size_t i = 0; i <= n; ++i) {
                diameter = std::max(diameter, norm_inf(simplex[i] - simplex[lo]));
            }
            if (spread < options.f_tolerance && diameter < options.x_tolerance) {
                result.converged = true;
                break;
            }

            // Centroid of all vertices except the worst.
            Vector centroid(n, 0.0);
            for (std::size_t i = 0; i <= n; ++i) {
                if (i == hi) continue;
                axpy(1.0, simplex[i], centroid);
            }
            centroid = scaled(centroid, 1.0 / static_cast<double>(n));

            auto blend = [&](double coeff) {
                Vector x(n);
                for (std::size_t j = 0; j < n; ++j) {
                    x[j] = centroid[j] + coeff * (simplex[hi][j] - centroid[j]);
                }
                return x;
            };

            const Vector reflected = blend(-1.0);
            const double fr = guarded(f, reflected, evals);
            if (fr < values[lo]) {
                const Vector expanded = blend(-2.0);
                const double fe = guarded(f, expanded, evals);
                if (fe < fr) {
                    simplex[hi] = expanded;
                    values[hi] = fe;
                } else {
                    simplex[hi] = reflected;
                    values[hi] = fr;
                }
            } else if (fr < values[second_hi]) {
                simplex[hi] = reflected;
                values[hi] = fr;
            } else {
                const Vector contracted = blend(fr < values[hi] ? -0.5 : 0.5);
                const double fc = guarded(f, contracted, evals);
                if (fc < std::min(fr, values[hi])) {
                    simplex[hi] = contracted;
                    values[hi] = fc;
                } else {
                    // Shrink towards the best vertex.
                    for (std::size_t i = 0; i <= n; ++i) {
                        if (i == lo) continue;
                        for (std::size_t j = 0; j < n; ++j) {
                            simplex[i][j] = simplex[lo][j] + 0.5 * (simplex[i][j] - simplex[lo][j]);
                        }
                        values[i] = guarded(f, simplex[i], evals);
                    }
                }
            }
        }

        // Track the best vertex across restarts.
        for (std::size_t i = 0; i <= n; ++i) {
            if (values[i] < best_value) {
                best_value = values[i];
                best = simplex[i];
            }
        }
        if (evals >= options.max_evaluations) break;
    }

    result.x = best;
    result.value = best_value;
    result.evaluations = evals;
    return result;
}

}  // namespace cellsync
