// FNV-1a 64-bit hashing — the repo's one non-cryptographic hash.
//
// Three subsystems rely on the same function: kernel cache entry stems
// (key -> hex file name), experiment gene-shard assignment (label -> shard
// index), and the binary kernel format's trailing checksum. One shared
// definition keeps them from drifting: the cache stems and the shard
// assignment are persisted / cross-process contracts, so the constants
// below must never change for v1 artifacts.
#pragma once

#include <cstdint>
#include <string_view>

namespace cellsync {

/// FNV-1a 64-bit hash of a byte sequence.
inline std::uint64_t fnv1a64(std::string_view bytes) {
    std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ull;  // FNV prime
    }
    return hash;
}

}  // namespace cellsync
