#include "numerics/vector_ops.h"

#include <cmath>
#include <stdexcept>

namespace cellsync {

namespace {

void require_same_size(const Vector& a, const Vector& b, const char* what) {
    if (a.size() != b.size()) {
        throw std::invalid_argument(std::string(what) + ": size mismatch (" +
                                    std::to_string(a.size()) + " vs " +
                                    std::to_string(b.size()) + ")");
    }
}

}  // namespace

double dot(const Vector& a, const Vector& b) {
    require_same_size(a, b, "dot");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
    double m = 0.0;
    for (double v : a) m = std::max(m, std::abs(v));
    return m;
}

double sum(const Vector& a) {
    double s = 0.0;
    for (double v : a) s += v;
    return s;
}

void axpy(double alpha, const Vector& x, Vector& y) {
    require_same_size(x, y, "axpy");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector scaled(const Vector& a, double alpha) {
    Vector r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r[i] = alpha * a[i];
    return r;
}

Vector operator+(const Vector& a, const Vector& b) {
    require_same_size(a, b, "operator+");
    Vector r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
    return r;
}

Vector operator-(const Vector& a, const Vector& b) {
    require_same_size(a, b, "operator-");
    Vector r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
    return r;
}

Vector operator*(double alpha, const Vector& a) { return scaled(a, alpha); }

Vector hadamard(const Vector& a, const Vector& b) {
    require_same_size(a, b, "hadamard");
    Vector r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] * b[i];
    return r;
}

Vector linspace(double lo, double hi, std::size_t n) {
    if (n < 2) throw std::invalid_argument("linspace: need at least 2 points");
    Vector r(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) r[i] = lo + step * static_cast<double>(i);
    r.back() = hi;  // avoid accumulated rounding at the endpoint
    return r;
}

bool all_finite(const Vector& a) {
    for (double v : a) {
        if (!std::isfinite(v)) return false;
    }
    return true;
}

}  // namespace cellsync
