// Runtime ISA dispatch for the hot product kernels.
//
// The fleet baseline forbids global -march flags, so the library binary
// must boot on any x86-64 (or non-x86) host. The hot kernels are instead
// compiled several times: once at the baseline ISA (always), and — on
// x86-64 builds whose compiler accepts the flags — again as AVX2 and
// AVX2+FMA translation units via per-file -mavx2 / -mavx2 -mfma options
// (see the CELLSYNC_DISPATCH_ISA block in CMakeLists.txt). One of the
// resulting kernel tables is selected exactly once, at first use, from
// __builtin_cpu_supports, and every entry point in numerics/matrix.cpp
// and numerics/banded.cpp calls through it.
//
// Bit-identity policy. The default tiers (scalar, avx2, fma) are
// bit-identical to the scalar reference kernels: the kernel source
// vectorizes across independent *outputs* only, never reassociating any
// single output's reduction, and the ISA translation units are pinned to
// -ffp-contract=off so the compiler cannot contract a rounded multiply
// + add into a fused multiply-add (an FMA skips the intermediate
// rounding and changes result bits). The `fma_contract` tier is the
// explicit opt-out of that default: the same kernels compiled with
// contraction enabled, never auto-selected, reachable only through
// CELLSYNC_DISPATCH=fma-contract, and documented as trading bit-identity
// for fused arithmetic.
//
// Env override (testing and opt-outs):
//   CELLSYNC_DISPATCH=scalar|avx2|fma|fma-contract
// A tier the CPU cannot execute is clamped down to the best supported
// one with a warning on stderr; an unknown value is ignored the same
// way. With CELLSYNC_SIMD=OFF only the scalar table exists and the
// override is accepted but always resolves to scalar.
#pragma once

#include <cstddef>

namespace cellsync::simd {

/// Kernel tiers in ascending ISA order. Values are stable (they are
/// exported as the `simd.dispatch_tier` telemetry gauge).
enum class Tier {
    scalar = 0,        ///< baseline build, no ISA flags
    avx2 = 1,          ///< -mavx2, contraction off (bit-identical)
    fma = 2,           ///< -mavx2 -mfma, contraction off (bit-identical)
    fma_contract = 3,  ///< -mavx2 -mfma, contraction on (NOT bit-identical)
};

/// One complete set of hot-kernel entry points, all compiled at a single
/// ISA tier. The dense kernels mirror the chunked shapes of
/// numerics/matrix.cpp; the span kernels operate on one contiguous
/// nonzero run and serve both the dense-backed Banded_matrix and the
/// Packed_banded_matrix layouts (the run is contiguous in memory either
/// way). Every kernel keeps the per-output accumulation order of the
/// scalar reference.
struct Kernel_table {
    Tier tier;

    /// y[i] = sum_j a(i, j) x[j]; a is rows x cols row-major, y is
    /// caller-allocated (overwritten).
    void (*matvec)(const double* a, std::size_t rows, std::size_t cols, const double* x,
                   double* y);

    /// y[j] += sum_i a(i, j) x[i]; y caller-zeroed.
    void (*transposed_times)(const double* a, std::size_t rows, std::size_t cols,
                             const double* x, double* y);

    /// Upper-triangle row i of the Gram accumulation: gi[j] =
    /// sum_k t[k] a(k, j) for j in [i, n), with the left-factor column t
    /// hoisted by the caller. a is m x n row-major.
    void (*gram_row_blocked)(double* gi, const double* a, const double* t, std::size_t m,
                             std::size_t n, std::size_t i);

    /// Upper triangle of a(rows, :)' diag(w) a(rows, :) in j-blocked
    /// form over an indirect row subset; w == nullptr for the
    /// unweighted Gram. g is n x n, cleared by the caller.
    void (*gram_rows_blocked)(double* g, const double* a, const std::size_t* rows,
                              std::size_t m, std::size_t n, const double* w);

    /// sum_j rv[j] * x[j] over one contiguous run of `width` values.
    double (*span_dot)(const double* rv, const double* x, std::size_t width);

    /// y[j] += rv[j] * alpha over one contiguous run.
    void (*span_axpy)(double* y, const double* rv, std::size_t width, double alpha);

    /// Rank-one update of the Gram upper triangle from one row whose
    /// nonzero run starts at column `begin`: g(begin+i, begin+j) +=
    /// rv[i] * rv[j] for 0 <= i <= j < width. g is n x n row-major.
    void (*span_rank_one)(double* g, std::size_t n, const double* rv, std::size_t begin,
                          std::size_t width);

    /// Weighted rank-one update: g(begin+i, begin+j) +=
    /// (weight * rv[i]) * rv[j] — the ((w * a) * a) association of the
    /// reference weighted Gram.
    void (*span_rank_one_weighted)(double* g, std::size_t n, const double* rv,
                                   std::size_t begin, std::size_t width, double weight);
};

/// The active kernel table. Resolved exactly once at first use (CPU
/// detection + CELLSYNC_DISPATCH override); subsequent calls are a load.
const Kernel_table& kernels();

/// Tier of the active table.
Tier active_tier();

/// "cpu" when the tier came from __builtin_cpu_supports, "env" when
/// CELLSYNC_DISPATCH forced it, "build" when the build has no ISA
/// tables (CELLSYNC_SIMD=OFF or a non-x86 target), "test" after
/// set_tier_for_testing.
const char* active_tier_origin();

/// Best tier this build + CPU can execute (never fma_contract — the
/// opt-out is only ever reached explicitly).
Tier max_supported_tier();

/// Human-readable tier name ("scalar", "avx2", "fma", "fma-contract").
const char* tier_name(Tier tier);

/// True for the tiers covered by the bit-identity contract (everything
/// except fma_contract).
bool tier_bit_identical(Tier tier);

/// Force a tier in-process (tests iterate every supported tier without
/// re-exec). Returns false — leaving the active table unchanged — when
/// this build/CPU cannot execute the tier. Not for production use: the
/// switch is atomic but kernels already inlined into running calls
/// finish on the old table.
bool set_tier_for_testing(Tier tier);

}  // namespace cellsync::simd
