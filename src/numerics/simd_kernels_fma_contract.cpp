// AVX2+FMA kernel table with contraction enabled: per-file
// "-mavx2;-mfma;-ffp-contract=fast". This is the explicit opt-out of
// the bit-identity default — fused multiply-adds skip the intermediate
// rounding of each product, so results differ from the scalar reference
// in the last bits (they are, if anything, slightly more accurate). It
// is never auto-selected; only CELLSYNC_DISPATCH=fma-contract reaches
// it, and telemetry/bench output always names the tier so a result is
// attributable.
#include <cstddef>
#include <vector>

#include "numerics/simd.h"
#include "numerics/simd_dispatch.h"

#if defined(CELLSYNC_DISPATCH_ISA) && defined(__AVX2__) && defined(__FMA__)
#define CELLSYNC_KERNEL_TIER_NS k_fma_contract
#define CELLSYNC_KERNEL_TIER Tier::fma_contract
#include "numerics/simd_kernels.inc"
#endif
