// AVX2 kernel table. Compiled with per-file "-mavx2;-ffp-contract=off"
// (CMakeLists.txt CELLSYNC_DISPATCH_ISA block); the base build stays at
// the fleet-safe baseline and this table is only entered after
// __builtin_cpu_supports("avx2") says the host can execute it.
// Contraction is pinned off so the results stay bit-identical to the
// scalar reference (see numerics/simd_dispatch.h).
#include <cstddef>
#include <vector>

#include "numerics/simd.h"
#include "numerics/simd_dispatch.h"

#if defined(CELLSYNC_DISPATCH_ISA) && defined(__AVX2__)
#define CELLSYNC_KERNEL_TIER_NS k_avx2
#define CELLSYNC_KERNEL_TIER Tier::avx2
#include "numerics/simd_kernels.inc"
#endif
