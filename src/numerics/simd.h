// Compile-time SIMD policy for the dense numeric kernels.
//
// The hot dense kernels in numerics/matrix.cpp exist in two forms:
//
//   * a *reference* form — the straight scalar loops the library shipped
//     with, kept permanently as the bit-level ground truth; and
//   * a *chunked* form — the same arithmetic restructured so the innermost
//     loop runs over independent output elements in fixed-width chunks of
//     CELLSYNC_SIMD_CHUNK doubles (explicit 4-lane unrolls the
//     autovectorizer maps onto AVX2/NEON registers, and that still pay off
//     as four independent FMA chains on plain SSE2).
//
// The chunked kernels vectorize only across *outputs*; the accumulation
// order of the terms feeding any single output element is never changed.
// Together with the structural-zero policy of numerics/banded.h this makes
// the chunked, reference, and banded paths produce bit-identical results
// for finite inputs — asserted by tests/banded_matrix_test.cpp and the CI
// leg that rebuilds everything with CELLSYNC_SIMD=0.
//
// CELLSYNC_SIMD is normally set by the CMake option of the same name
// (default ON). Building with -DCELLSYNC_SIMD=OFF compiles the dispatching
// entry points down to the reference loops.
#pragma once

#include <cstddef>

#ifndef CELLSYNC_SIMD
#define CELLSYNC_SIMD 1
#endif

namespace cellsync {

/// Width of the explicit partial-sum chunks in the chunked kernels, in
/// doubles. Four doubles = one AVX2 register (two SSE2/NEON registers).
inline constexpr std::size_t simd_chunk_doubles = 4;

/// True when the library was built with the chunked kernels enabled
/// (CELLSYNC_SIMD=1, the default). Recorded into bench JSON so a perf
/// number is always attributable to the kernel set that produced it.
inline constexpr bool simd_kernels_enabled = CELLSYNC_SIMD != 0;

}  // namespace cellsync
