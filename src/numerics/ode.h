// Initial-value ODE integrators: classic fixed-step RK4 and adaptive
// Dormand-Prince RK5(4). These integrate the single-cell gene-regulation
// models (e.g. the Lotka-Volterra oscillator of paper Eqs 20-21) whose
// solutions supply the 'true' synchronized expression profiles for the
// validation experiments.
#pragma once

#include <functional>

#include "numerics/vector_ops.h"

namespace cellsync {

/// Right-hand side y' = f(t, y).
using Ode_rhs = std::function<Vector(double t, const Vector& y)>;

/// A sampled trajectory: times[i] pairs with states[i].
struct Ode_solution {
    Vector times;
    std::vector<Vector> states;

    /// Linear interpolation of component `comp` at time t (clamped to the
    /// solution's time span). Throws std::out_of_range for a bad component.
    double interpolate(double t, std::size_t comp) const;

    /// Extract one component as a series aligned with times.
    Vector component(std::size_t comp) const;
};

/// Options for the adaptive integrator.
struct Ode_options {
    double rel_tol = 1e-8;
    double abs_tol = 1e-10;
    double initial_step = 1e-2;
    double min_step = 1e-12;
    double max_step = 0.0;  // 0 means (t1 - t0)
    std::size_t max_steps = 2'000'000;
};

/// Fixed-step classic Runge-Kutta 4. Records every step (n_steps + 1
/// samples, endpoints included). Throws std::invalid_argument for a
/// non-positive step count or t1 <= t0.
Ode_solution rk4_solve(const Ode_rhs& rhs, const Vector& y0, double t0, double t1,
                       std::size_t n_steps);

/// Adaptive Dormand-Prince RK5(4) with PI step-size control. Records every
/// accepted step. Throws std::runtime_error if the step size underflows or
/// the step budget is exhausted (stiff or non-finite dynamics).
Ode_solution rk45_solve(const Ode_rhs& rhs, const Vector& y0, double t0, double t1,
                        const Ode_options& options = {});

}  // namespace cellsync
