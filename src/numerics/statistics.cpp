#include "numerics/statistics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cellsync {

double mean(const Vector& v) {
    if (v.empty()) throw std::invalid_argument("mean: empty input");
    return sum(v) / static_cast<double>(v.size());
}

double variance(const Vector& v) {
    if (v.size() < 2) throw std::invalid_argument("variance: need at least 2 samples");
    const double m = mean(v);
    double s = 0.0;
    for (double x : v) s += (x - m) * (x - m);
    return s / static_cast<double>(v.size() - 1);
}

double stddev(const Vector& v) { return std::sqrt(variance(v)); }

double coefficient_of_variation(const Vector& v) {
    const double m = mean(v);
    if (m == 0.0) throw std::invalid_argument("coefficient_of_variation: zero mean");
    return stddev(v) / std::abs(m);
}

double quantile(Vector v, double q) {
    if (v.empty()) throw std::invalid_argument("quantile: empty input");
    if (!(q >= 0.0 && q <= 1.0)) throw std::invalid_argument("quantile: q outside [0,1]");
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(Vector v) { return quantile(std::move(v), 0.5); }

double pearson_correlation(const Vector& a, const Vector& b) {
    if (a.size() != b.size()) throw std::invalid_argument("pearson_correlation: size mismatch");
    if (a.size() < 2) throw std::invalid_argument("pearson_correlation: need at least 2 samples");
    const double ma = mean(a);
    const double mb = mean(b);
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa == 0.0 || sbb == 0.0) {
        throw std::invalid_argument("pearson_correlation: zero-variance input");
    }
    return sab / std::sqrt(saa * sbb);
}

double rmse(const Vector& a, const Vector& b) {
    if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
    if (a.empty()) throw std::invalid_argument("rmse: empty input");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(s / static_cast<double>(a.size()));
}

double nrmse(const Vector& estimate, const Vector& ref) {
    const auto [mn, mx] = std::minmax_element(ref.begin(), ref.end());
    if (ref.empty() || *mx == *mn) throw std::invalid_argument("nrmse: constant reference");
    return rmse(estimate, ref) / (*mx - *mn);
}

double mae(const Vector& a, const Vector& b) {
    if (a.size() != b.size()) throw std::invalid_argument("mae: size mismatch");
    if (a.empty()) throw std::invalid_argument("mae: empty input");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
    return s / static_cast<double>(a.size());
}

double max_abs_error(const Vector& a, const Vector& b) {
    if (a.size() != b.size()) throw std::invalid_argument("max_abs_error: size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

std::vector<std::size_t> histogram(const Vector& v, double lo, double hi, std::size_t bins) {
    if (bins == 0) throw std::invalid_argument("histogram: bins must be positive");
    if (!(lo < hi)) throw std::invalid_argument("histogram: need lo < hi");
    std::vector<std::size_t> counts(bins, 0);
    const double w = (hi - lo) / static_cast<double>(bins);
    for (double x : v) {
        if (x < lo || x >= hi) continue;
        auto b = static_cast<std::size_t>((x - lo) / w);
        if (b >= bins) b = bins - 1;  // guard right-edge rounding
        ++counts[b];
    }
    return counts;
}

}  // namespace cellsync
