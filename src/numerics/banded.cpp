#include "numerics/banded.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/telemetry.h"
#include "numerics/simd_dispatch.h"

namespace cellsync {

namespace {

void require(bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("Banded_matrix: ") + what);
}

std::vector<Row_span> detect_spans(const Matrix& dense) {
    std::vector<Row_span> spans(dense.rows());
    const std::size_t cols = dense.cols();
    for (std::size_t i = 0; i < dense.rows(); ++i) {
        std::size_t begin = 0;
        while (begin < cols && dense(i, begin) == 0.0) ++begin;
        if (begin == cols) {
            spans[i] = {0, 0};  // all-zero row
            continue;
        }
        std::size_t end = cols;
        while (end > begin && dense(i, end - 1) == 0.0) --end;
        spans[i] = {begin, end};
    }
    return spans;
}

void check_spans(const std::vector<Row_span>& spans, std::size_t rows, std::size_t cols) {
    require(spans.size() == rows, "span count differs from row count");
    for (const Row_span& s : spans) {
        require(s.begin <= s.end && s.end <= cols, "row span out of range");
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// Banded_matrix
// ---------------------------------------------------------------------------

Banded_matrix::Banded_matrix(Matrix dense) : dense_(std::move(dense)) {
    spans_ = detect_spans(dense_);
}

Banded_matrix::Banded_matrix(Matrix dense, std::vector<Row_span> spans)
    : dense_(std::move(dense)), spans_(std::move(spans)) {
    check_spans(spans_, dense_.rows(), dense_.cols());
}

Banded_matrix::Banded_matrix(const Banded_matrix& other)
    : dense_(other.dense_), spans_(other.spans_) {
    if (other.stats_ready_.load(std::memory_order_acquire)) {
        occupancy_.store(other.occupancy_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        max_bandwidth_.store(other.max_bandwidth_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        stats_ready_.store(true, std::memory_order_release);
    }
}

Banded_matrix::Banded_matrix(Banded_matrix&& other) noexcept
    : dense_(std::move(other.dense_)), spans_(std::move(other.spans_)) {
    if (other.stats_ready_.load(std::memory_order_acquire)) {
        occupancy_.store(other.occupancy_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        max_bandwidth_.store(other.max_bandwidth_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        stats_ready_.store(true, std::memory_order_release);
    }
}

Banded_matrix& Banded_matrix::operator=(const Banded_matrix& other) {
    if (this == &other) return *this;
    Banded_matrix copy(other);
    *this = std::move(copy);
    return *this;
}

Banded_matrix& Banded_matrix::operator=(Banded_matrix&& other) noexcept {
    if (this == &other) return *this;
    dense_ = std::move(other.dense_);
    spans_ = std::move(other.spans_);
    if (other.stats_ready_.load(std::memory_order_acquire)) {
        occupancy_.store(other.occupancy_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        max_bandwidth_.store(other.max_bandwidth_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        stats_ready_.store(true, std::memory_order_release);
    } else {
        stats_ready_.store(false, std::memory_order_release);
    }
    return *this;
}

void Banded_matrix::ensure_stats() const {
    if (stats_ready_.load(std::memory_order_acquire)) return;
    // Benign race: concurrent first callers all derive the same numbers
    // from the immutable spans and store identical values.
    std::size_t inside = 0;
    std::size_t widest = 0;
    for (const Row_span& s : spans_) {
        inside += s.width();
        widest = std::max(widest, s.width());
    }
    const std::size_t total = dense_.rows() * dense_.cols();
    occupancy_.store(
        total == 0 ? 1.0 : static_cast<double>(inside) / static_cast<double>(total),
        std::memory_order_relaxed);
    max_bandwidth_.store(widest, std::memory_order_relaxed);
    stats_ready_.store(true, std::memory_order_release);
}

double Banded_matrix::band_occupancy() const {
    ensure_stats();
    return occupancy_.load(std::memory_order_relaxed);
}

std::size_t Banded_matrix::max_bandwidth() const {
    ensure_stats();
    return max_bandwidth_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Packed_banded_matrix
// ---------------------------------------------------------------------------

void Packed_banded_matrix::init_offsets_and_check(const char* what) {
    offsets_.resize(spans_.size() + 1);
    std::size_t total = 0;
    max_bandwidth_ = 0;
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        const Row_span s = spans_[i];
        require(s.begin <= s.end && s.end <= cols_, what);
        offsets_[i] = total;
        total += s.width();
        max_bandwidth_ = std::max(max_bandwidth_, s.width());
    }
    offsets_[spans_.size()] = total;
}

Packed_banded_matrix::Packed_banded_matrix(const Matrix& dense)
    : Packed_banded_matrix(dense, detect_spans(dense)) {}

Packed_banded_matrix::Packed_banded_matrix(const Matrix& dense, std::vector<Row_span> spans)
    : cols_(dense.cols()), spans_(std::move(spans)) {
    require(spans_.size() == dense.rows(), "span count differs from row count");
    init_offsets_and_check("row span out of range");
    values_.resize(offsets_.back());
    const double* dd = dense.data().data();
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        const Row_span s = spans_[i];
        const double* src = dd + i * cols_ + s.begin;
        std::copy(src, src + s.width(), values_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]));
    }
}

Packed_banded_matrix::Packed_banded_matrix(const Banded_matrix& banded)
    : Packed_banded_matrix(banded.dense(), banded.spans()) {}

Packed_banded_matrix::Packed_banded_matrix(std::size_t cols, std::vector<Row_span> spans,
                                           std::vector<double> values)
    : cols_(cols), spans_(std::move(spans)), values_(std::move(values)) {
    init_offsets_and_check("row span out of range");
    require(values_.size() == offsets_.back(),
            "packed value count differs from total span width");
}

double Packed_banded_matrix::band_occupancy() const {
    const std::size_t total = rows() * cols_;
    if (total == 0) return 1.0;
    return static_cast<double>(values_.size()) / static_cast<double>(total);
}

Matrix Packed_banded_matrix::to_dense() const {
    Matrix dense(rows(), cols_);
    for (std::size_t i = 0; i < rows(); ++i) {
        const Row_span s = spans_[i];
        const double* rv = row_values(i);
        for (std::size_t k = 0; k < s.width(); ++k) dense(i, s.begin + k) = rv[k];
    }
    return dense;
}

// ---------------------------------------------------------------------------
// Design_matrix
// ---------------------------------------------------------------------------

namespace {

/// Running layout-decision counts, surfaced as telemetry gauges so
/// --metrics-json shows how many designs went packed this process.
std::atomic<std::int64_t> packed_design_count{0};
std::atomic<std::int64_t> banded_design_count{0};

}  // namespace

void Design_matrix::note_layout_choice() const {
    if (empty()) return;
    static telemetry::Gauge& packed_gauge = telemetry::gauge("design.packed_matrices");
    static telemetry::Gauge& banded_gauge = telemetry::gauge("design.banded_matrices");
    if (is_packed()) {
        packed_gauge.set(static_cast<double>(
            packed_design_count.fetch_add(1, std::memory_order_relaxed) + 1));
    } else {
        banded_gauge.set(static_cast<double>(
            banded_design_count.fetch_add(1, std::memory_order_relaxed) + 1));
    }
}

void Design_matrix::adopt(Banded_matrix banded, double packed_threshold) {
    if (!banded.empty() && banded.band_occupancy() <= packed_threshold) {
        layout_ = Design_layout::packed;
        packed_ = Packed_banded_matrix(banded);
        banded_ = Banded_matrix();
    } else {
        layout_ = Design_layout::banded;
        banded_ = std::move(banded);
    }
    note_layout_choice();
}

Design_matrix::Design_matrix(const Matrix& dense, double packed_threshold) {
    adopt(Banded_matrix(dense), packed_threshold);
}

Design_matrix::Design_matrix(Banded_matrix banded, double packed_threshold) {
    adopt(std::move(banded), packed_threshold);
}

Design_matrix::Design_matrix(Packed_banded_matrix packed)
    : layout_(Design_layout::packed), packed_(std::move(packed)) {
    note_layout_choice();
}

std::size_t Design_matrix::rows() const { return is_packed() ? packed_.rows() : banded_.rows(); }

std::size_t Design_matrix::cols() const { return is_packed() ? packed_.cols() : banded_.cols(); }

bool Design_matrix::empty() const { return is_packed() ? packed_.empty() : banded_.empty(); }

Row_span Design_matrix::row_span(std::size_t i) const {
    return is_packed() ? packed_.row_span(i) : banded_.row_span(i);
}

double Design_matrix::band_occupancy() const {
    return is_packed() ? packed_.band_occupancy() : banded_.band_occupancy();
}

std::size_t Design_matrix::max_bandwidth() const {
    return is_packed() ? packed_.max_bandwidth() : banded_.max_bandwidth();
}

const Banded_matrix& Design_matrix::banded() const {
    if (is_packed()) throw std::logic_error("Design_matrix: packed layout has no banded view");
    return banded_;
}

const Packed_banded_matrix& Design_matrix::packed() const {
    if (!is_packed()) throw std::logic_error("Design_matrix: banded layout has no packed view");
    return packed_;
}

// ---------------------------------------------------------------------------
// Banded_matrix kernels. The inner loops are the span kernels of the
// active ISA dispatch table (numerics/simd_dispatch.h); a dense-backed
// row's in-span run ad + i * cols + begin is contiguous, exactly like a
// packed row, so both layouts share them.
// ---------------------------------------------------------------------------

Vector operator*(const Banded_matrix& a, const Vector& x) {
    require(a.cols() == x.size(), "matrix-vector dimension mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t cols = a.cols();
    const double* ad = a.dense().data().data();
    const double* xd = x.data();
    Vector y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const Row_span span = a.row_span(i);
        y[i] = kt.span_dot(ad + i * cols + span.begin, xd + span.begin, span.width());
    }
    return y;
}

Vector transposed_times(const Banded_matrix& a, const Vector& x) {
    require(a.rows() == x.size(), "transposed_times dimension mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t cols = a.cols();
    const double* ad = a.dense().data().data();
    Vector y(cols, 0.0);
    double* yd = y.data();
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const Row_span span = a.row_span(i);
        kt.span_axpy(yd + span.begin, ad + i * cols + span.begin, span.width(), x[i]);
    }
    return y;
}

namespace {

void mirror_upper(Matrix& g) {
    for (std::size_t i = 1; i < g.rows(); ++i) {
        for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
    }
}

// Dense-ish designs (occupancy above this) gain too little from the span
// walk to pay for its per-row store traffic; they run the same j-blocked
// shape as the dense dispatch kernels, indexing the rows indirectly. Both
// paths are bit-identical (same per-output accumulation order; the span
// walk only drops exact +/-0 terms), so the switch is purely a
// performance heuristic. Distinct from packed_occupancy_threshold, which
// decides the *storage* layout — this one only picks between two kernel
// shapes over the same dense-backed storage.
constexpr double dense_occupancy_threshold = 0.5;

}  // namespace

Matrix gram(const Banded_matrix& a) {
    if (a.band_occupancy() > dense_occupancy_threshold) return gram(a.dense());
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    const double* ad = a.dense().data().data();
    double* gd = &g(0, 0);
    for (std::size_t k = 0; k < a.rows(); ++k) {
        const Row_span span = a.row_span(k);
        kt.span_rank_one(gd, n, ad + k * n + span.begin, span.begin, span.width());
    }
    mirror_upper(g);
    return g;
}

Matrix weighted_gram(const Banded_matrix& a, const Vector& w) {
    require(a.rows() == w.size(), "weighted_gram weight length mismatch");
    if (a.band_occupancy() > dense_occupancy_threshold) return weighted_gram(a.dense(), w);
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    const double* ad = a.dense().data().data();
    double* gd = &g(0, 0);
    for (std::size_t k = 0; k < a.rows(); ++k) {
        const Row_span span = a.row_span(k);
        kt.span_rank_one_weighted(gd, n, ad + k * n + span.begin, span.begin, span.width(),
                                  w[k]);
    }
    mirror_upper(g);
    return g;
}

Matrix weighted_gram_rows(const Banded_matrix& a, const std::vector<std::size_t>& rows,
                          const Vector& w) {
    require(rows.size() == w.size(), "weighted_gram_rows weight length mismatch");
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    for (std::size_t k : rows) {
        require(k < a.rows(), "weighted_gram_rows row index out of range");
    }
    const simd::Kernel_table& kt = simd::kernels();
    double* gd = &g(0, 0);
    if (a.band_occupancy() > dense_occupancy_threshold) {
        kt.gram_rows_blocked(gd, a.dense().data().data(), rows.data(), rows.size(), n,
                             w.data());
    } else {
        const double* ad = a.dense().data().data();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            const std::size_t k = rows[r];
            const Row_span span = a.row_span(k);
            kt.span_rank_one_weighted(gd, n, ad + k * n + span.begin, span.begin,
                                      span.width(), w[r]);
        }
    }
    mirror_upper(g);
    return g;
}

Vector transposed_times_rows(const Banded_matrix& a, const std::vector<std::size_t>& rows,
                             const Vector& x) {
    require(rows.size() == x.size(), "transposed_times_rows length mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t cols = a.cols();
    const double* ad = a.dense().data().data();
    Vector y(cols, 0.0);
    double* yd = y.data();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const std::size_t k = rows[r];
        require(k < a.rows(), "transposed_times_rows row index out of range");
        const Row_span span = a.row_span(k);
        kt.span_axpy(yd + span.begin, ad + k * cols + span.begin, span.width(), x[r]);
    }
    return y;
}

Vector weighted_transposed_times_rows(const Banded_matrix& a,
                                      const std::vector<std::size_t>& rows, const Vector& w,
                                      const Vector& x) {
    require(rows.size() == w.size() && rows.size() == x.size(),
            "weighted_transposed_times_rows length mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t cols = a.cols();
    const double* ad = a.dense().data().data();
    Vector y(cols, 0.0);
    double* yd = y.data();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const std::size_t k = rows[r];
        require(k < a.rows(), "weighted_transposed_times_rows row index out of range");
        const Row_span span = a.row_span(k);
        kt.span_axpy(yd + span.begin, ad + k * cols + span.begin, span.width(),
                     w[r] * x[r]);
    }
    return y;
}

Vector transposed_times_span(const Matrix& a, const Vector& x, Row_span span) {
    require(a.rows() == x.size(), "transposed_times_span dimension mismatch");
    require(span.begin <= span.end && span.end <= a.rows(),
            "transposed_times_span bad span");
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t cols = a.cols();
    const double* ad = a.data().data();
    Vector y(cols, 0.0);
    double* yd = y.data();
    for (std::size_t i = span.begin; i < span.end; ++i) {
        kt.span_axpy(yd, ad + i * cols, cols, x[i]);
    }
    return y;
}

double row_dot(const Banded_matrix& a, std::size_t i, const Vector& x) {
    require(i < a.rows(), "row_dot row index out of range");
    require(a.cols() == x.size(), "row_dot dimension mismatch");
    const Row_span span = a.row_span(i);
    const double* ri = a.dense().data().data() + i * a.cols() + span.begin;
    return simd::kernels().span_dot(ri, x.data() + span.begin, span.width());
}

// ---------------------------------------------------------------------------
// Packed_banded_matrix kernels: same accumulation order, contiguous
// packed rows instead of dense-backed ones. No dense-shape fallback —
// the layout only exists below the packed threshold, and the span walk
// is correct (just not optimal) at any occupancy.
// ---------------------------------------------------------------------------

Vector operator*(const Packed_banded_matrix& a, const Vector& x) {
    require(a.cols() == x.size(), "matrix-vector dimension mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    const double* xd = x.data();
    Vector y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const Row_span span = a.row_span(i);
        y[i] = kt.span_dot(a.row_values(i), xd + span.begin, span.width());
    }
    return y;
}

Vector transposed_times(const Packed_banded_matrix& a, const Vector& x) {
    require(a.rows() == x.size(), "transposed_times dimension mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    Vector y(a.cols(), 0.0);
    double* yd = y.data();
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const Row_span span = a.row_span(i);
        kt.span_axpy(yd + span.begin, a.row_values(i), span.width(), x[i]);
    }
    return y;
}

Matrix gram(const Packed_banded_matrix& a) {
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    double* gd = &g(0, 0);
    for (std::size_t k = 0; k < a.rows(); ++k) {
        const Row_span span = a.row_span(k);
        kt.span_rank_one(gd, n, a.row_values(k), span.begin, span.width());
    }
    mirror_upper(g);
    return g;
}

Matrix weighted_gram(const Packed_banded_matrix& a, const Vector& w) {
    require(a.rows() == w.size(), "weighted_gram weight length mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    double* gd = &g(0, 0);
    for (std::size_t k = 0; k < a.rows(); ++k) {
        const Row_span span = a.row_span(k);
        kt.span_rank_one_weighted(gd, n, a.row_values(k), span.begin, span.width(), w[k]);
    }
    mirror_upper(g);
    return g;
}

Matrix weighted_gram_rows(const Packed_banded_matrix& a,
                          const std::vector<std::size_t>& rows, const Vector& w) {
    require(rows.size() == w.size(), "weighted_gram_rows weight length mismatch");
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    for (std::size_t k : rows) {
        require(k < a.rows(), "weighted_gram_rows row index out of range");
    }
    const simd::Kernel_table& kt = simd::kernels();
    double* gd = &g(0, 0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const std::size_t k = rows[r];
        const Row_span span = a.row_span(k);
        kt.span_rank_one_weighted(gd, n, a.row_values(k), span.begin, span.width(), w[r]);
    }
    mirror_upper(g);
    return g;
}

Vector transposed_times_rows(const Packed_banded_matrix& a,
                             const std::vector<std::size_t>& rows, const Vector& x) {
    require(rows.size() == x.size(), "transposed_times_rows length mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    Vector y(a.cols(), 0.0);
    double* yd = y.data();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const std::size_t k = rows[r];
        require(k < a.rows(), "transposed_times_rows row index out of range");
        const Row_span span = a.row_span(k);
        kt.span_axpy(yd + span.begin, a.row_values(k), span.width(), x[r]);
    }
    return y;
}

Vector weighted_transposed_times_rows(const Packed_banded_matrix& a,
                                      const std::vector<std::size_t>& rows, const Vector& w,
                                      const Vector& x) {
    require(rows.size() == w.size() && rows.size() == x.size(),
            "weighted_transposed_times_rows length mismatch");
    const simd::Kernel_table& kt = simd::kernels();
    Vector y(a.cols(), 0.0);
    double* yd = y.data();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const std::size_t k = rows[r];
        require(k < a.rows(), "weighted_transposed_times_rows row index out of range");
        const Row_span span = a.row_span(k);
        kt.span_axpy(yd + span.begin, a.row_values(k), span.width(), w[r] * x[r]);
    }
    return y;
}

double row_dot(const Packed_banded_matrix& a, std::size_t i, const Vector& x) {
    require(i < a.rows(), "row_dot row index out of range");
    require(a.cols() == x.size(), "row_dot dimension mismatch");
    const Row_span span = a.row_span(i);
    return simd::kernels().span_dot(a.row_values(i), x.data() + span.begin, span.width());
}

// ---------------------------------------------------------------------------
// Design_matrix kernels: the dispatch seam. One branch per call, then
// straight into the layout's kernel set.
// ---------------------------------------------------------------------------

Vector operator*(const Design_matrix& a, const Vector& x) {
    return a.is_packed() ? a.packed() * x : a.banded() * x;
}

Vector transposed_times(const Design_matrix& a, const Vector& x) {
    return a.is_packed() ? transposed_times(a.packed(), x) : transposed_times(a.banded(), x);
}

Matrix gram(const Design_matrix& a) {
    return a.is_packed() ? gram(a.packed()) : gram(a.banded());
}

Matrix weighted_gram(const Design_matrix& a, const Vector& w) {
    return a.is_packed() ? weighted_gram(a.packed(), w) : weighted_gram(a.banded(), w);
}

Matrix weighted_gram_rows(const Design_matrix& a, const std::vector<std::size_t>& rows,
                          const Vector& w) {
    return a.is_packed() ? weighted_gram_rows(a.packed(), rows, w)
                         : weighted_gram_rows(a.banded(), rows, w);
}

Vector transposed_times_rows(const Design_matrix& a, const std::vector<std::size_t>& rows,
                             const Vector& x) {
    return a.is_packed() ? transposed_times_rows(a.packed(), rows, x)
                         : transposed_times_rows(a.banded(), rows, x);
}

Vector weighted_transposed_times_rows(const Design_matrix& a,
                                      const std::vector<std::size_t>& rows, const Vector& w,
                                      const Vector& x) {
    return a.is_packed() ? weighted_transposed_times_rows(a.packed(), rows, w, x)
                         : weighted_transposed_times_rows(a.banded(), rows, w, x);
}

double row_dot(const Design_matrix& a, std::size_t i, const Vector& x) {
    return a.is_packed() ? row_dot(a.packed(), i, x) : row_dot(a.banded(), i, x);
}

}  // namespace cellsync
