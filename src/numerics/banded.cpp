#include "numerics/banded.h"

#include <algorithm>
#include <stdexcept>

#include "numerics/simd.h"

namespace cellsync {

namespace {

void require(bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("Banded_matrix: ") + what);
}

}  // namespace

Banded_matrix::Banded_matrix(Matrix dense) : dense_(std::move(dense)) {
    spans_.resize(dense_.rows());
    const std::size_t cols = dense_.cols();
    std::size_t inside = 0;
    for (std::size_t i = 0; i < dense_.rows(); ++i) {
        std::size_t begin = 0;
        while (begin < cols && dense_(i, begin) == 0.0) ++begin;
        if (begin == cols) {
            spans_[i] = {0, 0};  // all-zero row
            continue;
        }
        std::size_t end = cols;
        while (end > begin && dense_(i, end - 1) == 0.0) --end;
        spans_[i] = {begin, end};
        inside += end - begin;
        max_bandwidth_ = std::max(max_bandwidth_, end - begin);
    }
    const std::size_t total = dense_.rows() * cols;
    occupancy_ =
        total == 0 ? 1.0 : static_cast<double>(inside) / static_cast<double>(total);
}

Vector operator*(const Banded_matrix& a, const Vector& x) {
    require(a.cols() == x.size(), "matrix-vector dimension mismatch");
    const std::size_t cols = a.cols();
    const double* ad = a.dense().data().data();
    Vector y(a.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const Row_span span = a.row_span(i);
        const double* ri = ad + i * cols;
        double s = 0.0;
        for (std::size_t j = span.begin; j < span.end; ++j) s += ri[j] * x[j];
        y[i] = s;
    }
    return y;
}

Vector transposed_times(const Banded_matrix& a, const Vector& x) {
    require(a.rows() == x.size(), "transposed_times dimension mismatch");
    const std::size_t cols = a.cols();
    const double* ad = a.dense().data().data();
    Vector y(cols, 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const double xi = x[i];
        const Row_span span = a.row_span(i);
        const double* ri = ad + i * cols;
        for (std::size_t j = span.begin; j < span.end; ++j) y[j] += ri[j] * xi;
    }
    return y;
}

namespace {

// One row's rank-one contribution to the upper triangle of the Gram
// accumulator: g(i, j) += (weight * row[i]) * row[j] for span-resident
// i <= j. Same association and increasing-row order as the dense kernels,
// so the assembled Gram is bit-identical to the dense result.
void gram_rank_one_span(double* g, std::size_t n, const double* row, Row_span span,
                        double weight) {
    for (std::size_t i = span.begin; i < span.end; ++i) {
        const double t = weight * row[i];
        double* gi = g + i * n;
        for (std::size_t j = i; j < span.end; ++j) gi[j] += t * row[j];
    }
}

void gram_rank_one_span_unweighted(double* g, std::size_t n, const double* row,
                                   Row_span span) {
    for (std::size_t i = span.begin; i < span.end; ++i) {
        const double t = row[i];
        double* gi = g + i * n;
        for (std::size_t j = i; j < span.end; ++j) gi[j] += t * row[j];
    }
}

void mirror_upper(Matrix& g) {
    for (std::size_t i = 1; i < g.rows(); ++i) {
        for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
    }
}

// Dense-ish designs (occupancy above this) gain too little from the span
// walk to pay for its per-row store traffic; they run the same j-blocked
// shape as the dense dispatch kernels, indexing the rows indirectly. Both
// paths are bit-identical (same per-output accumulation order; the span
// walk only drops exact +/-0 terms), so the switch is purely a
// performance heuristic.
constexpr double dense_occupancy_threshold = 0.5;

// Upper triangle of a(rows, :)' diag(w) a(rows, :) in j-blocked form: the
// left-factor column t[r] = w[r] * a(rows[r], i) is hoisted once per i,
// then simd_chunk_doubles output columns accumulate side by side, each
// over r in increasing order (the reference order on the gathered
// submatrix). Pass w == nullptr for the unweighted Gram.
void gram_rows_blocked(double* gd, const Matrix& dense, const std::size_t* rows,
                       std::size_t m, const double* w) {
    const std::size_t n = dense.cols();
    const double* ad = dense.data().data();
    Vector t(m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t r = 0; r < m; ++r) {
            const double v = ad[rows[r] * n + i];
            t[r] = w ? w[r] * v : v;
        }
        double* gi = gd + i * n;
        std::size_t j = i;
        for (; j + simd_chunk_doubles <= n; j += simd_chunk_doubles) {
            double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
            for (std::size_t r = 0; r < m; ++r) {
                const double tr = t[r];
                const double* rk = ad + rows[r] * n + j;
                s0 += tr * rk[0];
                s1 += tr * rk[1];
                s2 += tr * rk[2];
                s3 += tr * rk[3];
            }
            gi[j + 0] = s0;
            gi[j + 1] = s1;
            gi[j + 2] = s2;
            gi[j + 3] = s3;
        }
        for (; j < n; ++j) {
            double s = 0.0;
            for (std::size_t r = 0; r < m; ++r) s += t[r] * ad[rows[r] * n + j];
            gi[j] = s;
        }
    }
}

}  // namespace

Matrix gram(const Banded_matrix& a) {
    if (a.band_occupancy() > dense_occupancy_threshold) return gram(a.dense());
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    const double* ad = a.dense().data().data();
    double* gd = &g(0, 0);
    for (std::size_t k = 0; k < a.rows(); ++k) {
        gram_rank_one_span_unweighted(gd, n, ad + k * n, a.row_span(k));
    }
    mirror_upper(g);
    return g;
}

Matrix weighted_gram(const Banded_matrix& a, const Vector& w) {
    require(a.rows() == w.size(), "weighted_gram weight length mismatch");
    if (a.band_occupancy() > dense_occupancy_threshold) return weighted_gram(a.dense(), w);
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    const double* ad = a.dense().data().data();
    double* gd = &g(0, 0);
    for (std::size_t k = 0; k < a.rows(); ++k) {
        gram_rank_one_span(gd, n, ad + k * n, a.row_span(k), w[k]);
    }
    mirror_upper(g);
    return g;
}

Matrix weighted_gram_rows(const Banded_matrix& a, const std::vector<std::size_t>& rows,
                          const Vector& w) {
    require(rows.size() == w.size(), "weighted_gram_rows weight length mismatch");
    const std::size_t n = a.cols();
    Matrix g(n, n);
    if (n == 0) return g;
    for (std::size_t k : rows) {
        require(k < a.rows(), "weighted_gram_rows row index out of range");
    }
    double* gd = &g(0, 0);
    if (a.band_occupancy() > dense_occupancy_threshold) {
        gram_rows_blocked(gd, a.dense(), rows.data(), rows.size(), w.data());
    } else {
        const double* ad = a.dense().data().data();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            const std::size_t k = rows[r];
            gram_rank_one_span(gd, n, ad + k * n, a.row_span(k), w[r]);
        }
    }
    mirror_upper(g);
    return g;
}

Vector transposed_times_rows(const Banded_matrix& a, const std::vector<std::size_t>& rows,
                             const Vector& x) {
    require(rows.size() == x.size(), "transposed_times_rows length mismatch");
    const std::size_t cols = a.cols();
    const double* ad = a.dense().data().data();
    Vector y(cols, 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const std::size_t k = rows[r];
        require(k < a.rows(), "transposed_times_rows row index out of range");
        const double xr = x[r];
        const Row_span span = a.row_span(k);
        const double* rk = ad + k * cols;
        for (std::size_t j = span.begin; j < span.end; ++j) y[j] += rk[j] * xr;
    }
    return y;
}

Vector weighted_transposed_times_rows(const Banded_matrix& a,
                                      const std::vector<std::size_t>& rows, const Vector& w,
                                      const Vector& x) {
    require(rows.size() == w.size() && rows.size() == x.size(),
            "weighted_transposed_times_rows length mismatch");
    const std::size_t cols = a.cols();
    const double* ad = a.dense().data().data();
    Vector y(cols, 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const std::size_t k = rows[r];
        require(k < a.rows(), "weighted_transposed_times_rows row index out of range");
        const double xr = w[r] * x[r];
        const Row_span span = a.row_span(k);
        const double* rk = ad + k * cols;
        for (std::size_t j = span.begin; j < span.end; ++j) y[j] += rk[j] * xr;
    }
    return y;
}

Vector transposed_times_span(const Matrix& a, const Vector& x, Row_span span) {
    require(a.rows() == x.size(), "transposed_times_span dimension mismatch");
    require(span.begin <= span.end && span.end <= a.rows(),
            "transposed_times_span bad span");
    const std::size_t cols = a.cols();
    const double* ad = a.data().data();
    Vector y(cols, 0.0);
    for (std::size_t i = span.begin; i < span.end; ++i) {
        const double xi = x[i];
        const double* ri = ad + i * cols;
        for (std::size_t j = 0; j < cols; ++j) y[j] += ri[j] * xi;
    }
    return y;
}

double row_dot(const Banded_matrix& a, std::size_t i, const Vector& x) {
    require(i < a.rows(), "row_dot row index out of range");
    require(a.cols() == x.size(), "row_dot dimension mismatch");
    const Row_span span = a.row_span(i);
    const double* ri = a.dense().data().data() + i * a.cols();
    double s = 0.0;
    for (std::size_t j = span.begin; j < span.end; ++j) s += ri[j] * x[j];
    return s;
}

}  // namespace cellsync
