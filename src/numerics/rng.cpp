#include "numerics/rng.h"

#include <algorithm>
#include <stdexcept>

namespace cellsync {

double Rng::uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
    if (lo == hi) return lo;
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

double Rng::normal(double mu, double sigma) {
    if (sigma < 0.0) throw std::invalid_argument("Rng::normal: sigma must be non-negative");
    if (sigma == 0.0) return mu;
    return std::normal_distribution<double>(mu, sigma)(engine_);
}

double Rng::truncated_normal(double mu, double sigma, double lo, double hi) {
    if (!(lo <= hi)) throw std::invalid_argument("Rng::truncated_normal: empty interval");
    if (sigma < 0.0) throw std::invalid_argument("Rng::truncated_normal: sigma must be non-negative");
    if (sigma == 0.0) return std::clamp(mu, lo, hi);
    for (int attempt = 0; attempt < 10000; ++attempt) {
        const double x = normal(mu, sigma);
        if (x >= lo && x <= hi) return x;
    }
    return std::clamp(mu, lo, hi);
}

double Rng::lognormal(double mu_log, double sigma_log) {
    if (sigma_log < 0.0) throw std::invalid_argument("Rng::lognormal: sigma must be non-negative");
    return std::lognormal_distribution<double>(mu_log, sigma_log)(engine_);
}

std::size_t Rng::index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n must be positive");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

Vector Rng::normal_vector(std::size_t n) {
    Vector v(n);
    for (double& x : v) x = normal();
    return v;
}

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream) {
    // splitmix64 finalizer over the combined words; cheap, and distinct
    // (base, stream) pairs land in well-separated states.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace cellsync
