#include "numerics/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "numerics/linear_solve.h"

namespace cellsync {

namespace {

// Least-squares solve restricted to the passive column set.
Vector restricted_ls(const Matrix& a, const Vector& b, const std::vector<char>& passive) {
    std::vector<std::size_t> cols;
    for (std::size_t j = 0; j < passive.size(); ++j) {
        if (passive[j]) cols.push_back(j);
    }
    Matrix ap(a.rows(), cols.size());
    for (std::size_t k = 0; k < cols.size(); ++k) ap.set_col(k, a.col(cols[k]));
    const Vector zp = qr_least_squares(ap, b);
    Vector z(a.cols(), 0.0);
    for (std::size_t k = 0; k < cols.size(); ++k) z[cols[k]] = zp[k];
    return z;
}

}  // namespace

Nnls_result solve_nnls(const Matrix& a, const Vector& b, double tol) {
    if (a.rows() != b.size()) throw std::invalid_argument("solve_nnls: rhs length mismatch");
    const std::size_t n = a.cols();

    Nnls_result result;
    result.x.assign(n, 0.0);
    std::vector<char> passive(n, 0);

    const std::size_t max_iter = 3 * n + 10;
    for (std::size_t iter = 0; iter < max_iter; ++iter) {
        result.iterations = iter + 1;

        // Gradient of 0.5||Ax-b||^2 is A'(Ax - b); w = -gradient.
        const Vector r = b - a * result.x;
        const Vector w = transposed_times(a, r);

        // Select the most promising inactive column.
        std::size_t best = n;
        double best_w = tol;
        for (std::size_t j = 0; j < n; ++j) {
            if (!passive[j] && w[j] > best_w) {
                best_w = w[j];
                best = j;
            }
        }
        if (best == n) {
            result.converged = true;
            break;
        }
        passive[best] = 1;

        // Inner loop: retreat until the passive-set LS solution is positive.
        for (std::size_t inner = 0; inner < max_iter; ++inner) {
            const Vector z = restricted_ls(a, b, passive);
            double alpha = std::numeric_limits<double>::infinity();
            bool all_positive = true;
            for (std::size_t j = 0; j < n; ++j) {
                if (passive[j] && z[j] <= tol) {
                    all_positive = false;
                    const double denom = result.x[j] - z[j];
                    if (denom > 0.0) alpha = std::min(alpha, result.x[j] / denom);
                }
            }
            if (all_positive) {
                result.x = z;
                break;
            }
            if (!std::isfinite(alpha)) alpha = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
                if (passive[j]) {
                    result.x[j] += alpha * (z[j] - result.x[j]);
                    if (result.x[j] <= tol) {
                        result.x[j] = 0.0;
                        passive[j] = 0;
                    }
                }
            }
        }
    }

    if (!result.converged) {
        throw std::runtime_error("solve_nnls: iteration budget exhausted");
    }
    result.residual_norm = norm2(b - a * result.x);
    return result;
}

}  // namespace cellsync
