// Seeded random number generation for the population simulator and noise
// models. Every stochastic component in cellsync takes an explicit `Rng&`
// (never a global generator) so that simulations, tests, and benches are
// reproducible bit-for-bit given a seed.
#pragma once

#include <cstdint>
#include <random>

#include "numerics/vector_ops.h"

namespace cellsync {

/// Deterministic pseudo-random source (Mersenne twister, 64-bit) with the
/// named draws the biology layer needs.
class Rng {
  public:
    /// Construct with an explicit seed; the same seed always reproduces the
    /// same stream.
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /// Uniform draw on [0, 1).
    double uniform();

    /// Uniform draw on [lo, hi). Throws std::invalid_argument if lo > hi.
    double uniform(double lo, double hi);

    /// Standard normal draw.
    double normal();

    /// Normal draw with mean mu and standard deviation sigma >= 0.
    double normal(double mu, double sigma);

    /// Normal draw rejected-and-resampled until it lies inside [lo, hi].
    /// Throws std::invalid_argument if [lo, hi] is empty or sigma < 0; falls
    /// back to clamping after 10000 rejections (pathological windows).
    double truncated_normal(double mu, double sigma, double lo, double hi);

    /// Log-normal draw: exp(Normal(mu_log, sigma_log)).
    double lognormal(double mu_log, double sigma_log);

    /// Integer draw uniform on [0, n) ; throws if n == 0.
    std::size_t index(std::size_t n);

    /// Vector of n standard-normal draws.
    Vector normal_vector(std::size_t n);

    /// Access the underlying engine (for std::shuffle interop).
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/// Deterministically derive an independent stream seed from a base seed
/// and a stream index (splitmix64 over the combined words). Parallel code
/// seeds each task with mix_seed(base, task_index) so results never depend
/// on thread count or scheduling order.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace cellsync
