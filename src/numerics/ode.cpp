#include "numerics/ode.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cellsync {

double Ode_solution::interpolate(double t, std::size_t comp) const {
    if (times.empty()) throw std::out_of_range("Ode_solution: empty solution");
    if (comp >= states.front().size()) throw std::out_of_range("Ode_solution: bad component");
    if (t <= times.front()) return states.front()[comp];
    if (t >= times.back()) return states.back()[comp];
    const auto it = std::upper_bound(times.begin(), times.end(), t);
    const std::size_t i = static_cast<std::size_t>(it - times.begin()) - 1;
    const double u = (t - times[i]) / (times[i + 1] - times[i]);
    return states[i][comp] * (1.0 - u) + states[i + 1][comp] * u;
}

Vector Ode_solution::component(std::size_t comp) const {
    Vector v(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        if (comp >= states[i].size()) throw std::out_of_range("Ode_solution: bad component");
        v[i] = states[i][comp];
    }
    return v;
}

Ode_solution rk4_solve(const Ode_rhs& rhs, const Vector& y0, double t0, double t1,
                       std::size_t n_steps) {
    if (n_steps == 0) throw std::invalid_argument("rk4_solve: n_steps must be positive");
    if (!(t1 > t0)) throw std::invalid_argument("rk4_solve: need t1 > t0");
    const double h = (t1 - t0) / static_cast<double>(n_steps);

    Ode_solution sol;
    sol.times.reserve(n_steps + 1);
    sol.states.reserve(n_steps + 1);
    sol.times.push_back(t0);
    sol.states.push_back(y0);

    Vector y = y0;
    for (std::size_t s = 0; s < n_steps; ++s) {
        const double t = t0 + h * static_cast<double>(s);
        const Vector k1 = rhs(t, y);
        const Vector k2 = rhs(t + 0.5 * h, y + (0.5 * h) * k1);
        const Vector k3 = rhs(t + 0.5 * h, y + (0.5 * h) * k2);
        const Vector k4 = rhs(t + h, y + h * k3);
        for (std::size_t i = 0; i < y.size(); ++i) {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        sol.times.push_back(t + h);
        sol.states.push_back(y);
    }
    sol.times.back() = t1;
    return sol;
}

namespace {

// Dormand-Prince RK5(4) Butcher tableau.
constexpr double c2 = 1.0 / 5.0, c3 = 3.0 / 10.0, c4 = 4.0 / 5.0, c5 = 8.0 / 9.0;
constexpr double a21 = 1.0 / 5.0;
constexpr double a31 = 3.0 / 40.0, a32 = 9.0 / 40.0;
constexpr double a41 = 44.0 / 45.0, a42 = -56.0 / 15.0, a43 = 32.0 / 9.0;
constexpr double a51 = 19372.0 / 6561.0, a52 = -25360.0 / 2187.0, a53 = 64448.0 / 6561.0,
                 a54 = -212.0 / 729.0;
constexpr double a61 = 9017.0 / 3168.0, a62 = -355.0 / 33.0, a63 = 46732.0 / 5247.0,
                 a64 = 49.0 / 176.0, a65 = -5103.0 / 18656.0;
constexpr double b1 = 35.0 / 384.0, b3 = 500.0 / 1113.0, b4 = 125.0 / 192.0,
                 b5 = -2187.0 / 6784.0, b6 = 11.0 / 84.0;
// 4th-order embedded weights.
constexpr double e1 = 5179.0 / 57600.0, e3 = 7571.0 / 16695.0, e4 = 393.0 / 640.0,
                 e5 = -92097.0 / 339200.0, e6 = 187.0 / 2100.0, e7 = 1.0 / 40.0;

}  // namespace

Ode_solution rk45_solve(const Ode_rhs& rhs, const Vector& y0, double t0, double t1,
                        const Ode_options& options) {
    if (!(t1 > t0)) throw std::invalid_argument("rk45_solve: need t1 > t0");
    const std::size_t n = y0.size();
    const double max_step = options.max_step > 0.0 ? options.max_step : (t1 - t0);

    Ode_solution sol;
    sol.times.push_back(t0);
    sol.states.push_back(y0);

    double t = t0;
    Vector y = y0;
    double h = std::min(options.initial_step, max_step);
    Vector k1 = rhs(t, y);  // FSAL: reused across accepted steps

    for (std::size_t step = 0; step < options.max_steps; ++step) {
        if (t >= t1) return sol;
        h = std::min(h, t1 - t);
        if (h < options.min_step) {
            throw std::runtime_error("rk45_solve: step size underflow (stiff system?)");
        }

        const Vector k2 = rhs(t + c2 * h, y + (h * a21) * k1);
        Vector tmp(n);
        for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * (a31 * k1[i] + a32 * k2[i]);
        const Vector k3 = rhs(t + c3 * h, tmp);
        for (std::size_t i = 0; i < n; ++i)
            tmp[i] = y[i] + h * (a41 * k1[i] + a42 * k2[i] + a43 * k3[i]);
        const Vector k4 = rhs(t + c4 * h, tmp);
        for (std::size_t i = 0; i < n; ++i)
            tmp[i] = y[i] + h * (a51 * k1[i] + a52 * k2[i] + a53 * k3[i] + a54 * k4[i]);
        const Vector k5 = rhs(t + c5 * h, tmp);
        for (std::size_t i = 0; i < n; ++i)
            tmp[i] = y[i] + h * (a61 * k1[i] + a62 * k2[i] + a63 * k3[i] + a64 * k4[i] +
                                 a65 * k5[i]);
        const Vector k6 = rhs(t + h, tmp);

        Vector y5(n);
        for (std::size_t i = 0; i < n; ++i) {
            y5[i] = y[i] + h * (b1 * k1[i] + b3 * k3[i] + b4 * k4[i] + b5 * k5[i] + b6 * k6[i]);
        }
        const Vector k7 = rhs(t + h, y5);

        // Scaled error estimate between 5th- and 4th-order solutions.
        double err = 0.0;
        bool finite = true;
        for (std::size_t i = 0; i < n; ++i) {
            const double y4i = y[i] + h * (e1 * k1[i] + e3 * k3[i] + e4 * k4[i] + e5 * k5[i] +
                                           e6 * k6[i] + e7 * k7[i]);
            const double sc = options.abs_tol +
                              options.rel_tol * std::max(std::abs(y[i]), std::abs(y5[i]));
            const double d = (y5[i] - y4i) / sc;
            err += d * d;
            finite = finite && std::isfinite(y5[i]);
        }
        err = std::sqrt(err / static_cast<double>(n));

        if (finite && err <= 1.0) {
            t += h;
            y = y5;
            k1 = k7;  // first-same-as-last
            sol.times.push_back(t);
            sol.states.push_back(y);
        }
        const double safety = 0.9;
        const double factor = finite && err > 0.0
                                  ? std::clamp(safety * std::pow(err, -0.2), 0.2, 5.0)
                                  : (finite ? 5.0 : 0.2);
        h = std::min(h * factor, max_step);
    }
    throw std::runtime_error("rk45_solve: step budget exhausted before reaching t1");
}

}  // namespace cellsync
