#include "numerics/qp_backend.h"

#include <stdexcept>

#include "core/telemetry.h"
#include "core/trace.h"
#include "numerics/linear_solve.h"
#include "numerics/nnls.h"

namespace cellsync {

const char* to_string(Qp_backend backend) {
    switch (backend) {
        case Qp_backend::automatic: return "automatic";
        case Qp_backend::active_set: return "active_set";
        case Qp_backend::nnls: return "nnls";
    }
    return "unknown";
}

Qp_backend qp_backend_from_string(const std::string& name) {
    if (name == "automatic" || name == "auto") return Qp_backend::automatic;
    if (name == "active_set" || name == "active-set") return Qp_backend::active_set;
    if (name == "nnls") return Qp_backend::nnls;
    throw std::invalid_argument("qp_backend_from_string: unknown backend '" + name + "'");
}

bool Active_set_qp_solver::supports(const Qp_problem&) const { return true; }

Qp_result Active_set_qp_solver::solve(const Qp_problem& problem,
                                      const Qp_options& options) const {
    return solve_qp_dual(problem, options);
}

bool Nnls_qp_solver::supports(const Qp_problem& problem) const {
    const std::size_t n = problem.hessian.rows();
    if (problem.hessian.cols() != n || problem.gradient.size() != n) return false;
    if (problem.eq_matrix.rows() != 0) return false;
    if (problem.ineq_matrix.rows() != n || problem.ineq_matrix.cols() != n) return false;
    if (problem.ineq_rhs.size() != n) return false;
    for (std::size_t i = 0; i < n; ++i) {
        if (problem.ineq_rhs[i] != 0.0) return false;
        for (std::size_t j = 0; j < n; ++j) {
            if (problem.ineq_matrix(i, j) != (i == j ? 1.0 : 0.0)) return false;
        }
    }
    return true;
}

Qp_result Nnls_qp_solver::solve(const Qp_problem& problem, const Qp_options& options) const {
    if (!supports(problem)) {
        throw std::invalid_argument(
            "Nnls_qp_solver: problem is not positivity-only (needs no equalities and an "
            "identity inequality block with zero rhs)");
    }
    const telemetry::Trace_span solve_span("qp.nnls.solve", "qp");
    const std::size_t n = problem.hessian.rows();

    // H = L L^T turns 0.5 x'Hx + g'x into 0.5||L^T x - b||^2 + const with
    // L b = -g, so the QP is exactly NNLS in the variable x. The NNLS
    // termination test is dual feasibility, so it honors multiplier_tol.
    const Cholesky_factorization chol(problem.hessian);
    const Vector b = chol.forward(scaled(problem.gradient, -1.0));
    const Nnls_result nnls =
        solve_nnls(chol.lower().transposed(), b, options.multiplier_tol);

    Qp_result result;
    result.x = nnls.x;
    result.objective =
        0.5 * dot(result.x, problem.hessian * result.x) + dot(problem.gradient, result.x);
    result.iterations = nnls.iterations;
    result.converged = nnls.converged;
    for (std::size_t i = 0; i < n; ++i) {
        // Binding positivity rows: Lawson-Hanson keeps coordinates outside
        // the passive set at an exact zero.
        if (result.x[i] <= options.constraint_tol) result.active_set.push_back(i);
    }
    static telemetry::Counter& solves = telemetry::counter("qp.nnls.solves");
    static telemetry::Histogram& iteration_histogram =
        telemetry::histogram("qp.nnls.iterations");
    solves.add();
    iteration_histogram.record(static_cast<double>(result.iterations));
    return result;
}

namespace {

class Dispatching_qp_solver final : public Qp_solver {
  public:
    std::string name() const override { return "automatic"; }
    bool supports(const Qp_problem&) const override { return true; }
    Qp_result solve(const Qp_problem& problem, const Qp_options& options) const override {
        if (nnls_.supports(problem)) return nnls_.solve(problem, options);
        return active_set_.solve(problem, options);
    }

  private:
    Active_set_qp_solver active_set_;
    Nnls_qp_solver nnls_;
};

}  // namespace

std::unique_ptr<Qp_solver> make_qp_solver(Qp_backend backend) {
    switch (backend) {
        case Qp_backend::automatic: return std::make_unique<Dispatching_qp_solver>();
        case Qp_backend::active_set: return std::make_unique<Active_set_qp_solver>();
        case Qp_backend::nnls: return std::make_unique<Nnls_qp_solver>();
    }
    throw std::invalid_argument("make_qp_solver: unknown backend");
}

}  // namespace cellsync
