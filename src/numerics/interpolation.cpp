#include "numerics/interpolation.h"

#include <algorithm>
#include <stdexcept>

namespace cellsync {

Linear_interpolant::Linear_interpolant(Vector x, Vector y)
    : x_(std::move(x)), y_(std::move(y)) {
    if (x_.size() != y_.size()) {
        throw std::invalid_argument("Linear_interpolant: size mismatch");
    }
    if (x_.size() < 2) {
        throw std::invalid_argument("Linear_interpolant: need at least 2 points");
    }
    for (std::size_t i = 0; i + 1 < x_.size(); ++i) {
        if (!(x_[i] < x_[i + 1])) {
            throw std::invalid_argument("Linear_interpolant: grid must be strictly ascending");
        }
    }
}

std::size_t Linear_interpolant::segment(double q) const {
    // Index i such that x_[i] <= q < x_[i+1], clamped to valid segments.
    const auto it = std::upper_bound(x_.begin(), x_.end(), q);
    if (it == x_.begin()) return 0;
    const std::size_t i = static_cast<std::size_t>(it - x_.begin()) - 1;
    return std::min(i, x_.size() - 2);
}

double Linear_interpolant::operator()(double q) const {
    if (q <= x_.front()) return y_.front();
    if (q >= x_.back()) return y_.back();
    const std::size_t i = segment(q);
    const double t = (q - x_[i]) / (x_[i + 1] - x_[i]);
    return y_[i] * (1.0 - t) + y_[i + 1] * t;
}

double Linear_interpolant::derivative(double q) const {
    if (q < x_.front() || q > x_.back()) return 0.0;  // constant extrapolation
    const std::size_t i = segment(q);
    return (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
}

}  // namespace cellsync
