// External reference data for validation figures.
//
// Paper Figure 4 compares the simulated cell-type distribution against the
// experimental fractions of Judd et al. 2003 (fluorescence microscopy of a
// synchronized Caulobacter culture). The original counts are not
// redistributable, so this module generates a stand-in reference from an
// INDEPENDENT deterministic cohort model — quantile-enumerated initial
// phases and cycle times progressing without stochastic simulation — plus
// a small deterministic "experimental scatter" term. Because the reference
// is produced by a structurally different model than the agent-based
// simulator being validated, the Figure-4 comparison remains a genuine
// consistency check. See DESIGN.md's substitution table.
#pragma once

#include "biology/cell_cycle.h"
#include "biology/cell_types.h"
#include "numerics/matrix.h"

namespace cellsync {

/// Reference cell-type fractions at the requested times (minutes).
/// fractions(m, k): fraction of type k (Cell_type underlying index) at
/// times[m]; rows sum to 1.
struct Reference_census {
    Vector times;
    Matrix fractions;
};

/// Deterministic cohort-model reference (Judd-style). `scatter` adds a
/// bounded deterministic perturbation mimicking experimental counting
/// noise (0 disables). Throws std::invalid_argument on an empty or
/// descending time grid.
Reference_census judd_reference_census(const Vector& times,
                                       const Cell_cycle_config& config = {},
                                       const Cell_type_thresholds& thresholds = thresholds_mid(),
                                       double scatter = 0.015);

}  // namespace cellsync
