#include "io/series_writer.h"

#include <sstream>

#include "io/csv.h"

namespace cellsync {

Series_writer::Series_writer(std::string axis_name, Vector axis_values) {
    table_.add_column(std::move(axis_name), std::move(axis_values));
}

Series_writer& Series_writer::add(const std::string& name, const Vector& values) {
    table_.add_column(name, values);
    return *this;
}

void Series_writer::write(const std::string& path) const { write_csv_file(path, table_); }

std::string Series_writer::to_csv_string() const {
    std::ostringstream out;
    write_csv(out, table_);
    return out.str();
}

}  // namespace cellsync
