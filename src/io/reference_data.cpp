#include "io/reference_data.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "numerics/special.h"

namespace cellsync {

Reference_census judd_reference_census(const Vector& times, const Cell_cycle_config& config,
                                       const Cell_type_thresholds& thresholds, double scatter) {
    config.validate();
    thresholds.validate();
    if (times.empty()) throw std::invalid_argument("judd_reference_census: empty time grid");
    for (std::size_t i = 0; i + 1 < times.size(); ++i) {
        if (!(times[i] < times[i + 1])) {
            throw std::invalid_argument("judd_reference_census: times must be ascending");
        }
    }
    if (scatter < 0.0) throw std::invalid_argument("judd_reference_census: negative scatter");

    // Deterministic cohort enumeration: a grid of (initial phase u, cycle
    // time v) pairs at Gaussian/uniform quantiles. Every cohort progresses
    // deterministically; a cohort that divides contributes its SW and ST
    // daughters (daughters inherit the cohort's cycle time — a deliberate
    // structural difference from the stochastic simulator).
    constexpr std::size_t n_phase = 41;
    constexpr std::size_t n_cycle = 21;
    const double mu_sst = config.mu_sst;

    Reference_census ref;
    ref.times = times;
    ref.fractions = Matrix(times.size(), cell_type_count);

    for (std::size_t m = 0; m < times.size(); ++m) {
        const double t = times[m];
        std::array<double, cell_type_count> mass{};

        for (std::size_t iu = 0; iu < n_phase; ++iu) {
            // Initial phase uniform on [0, mu_sst] (synchronized SW isolate).
            const double u = (static_cast<double>(iu) + 0.5) / n_phase;
            const double phi0 = u * mu_sst;
            for (std::size_t iv = 0; iv < n_cycle; ++iv) {
                const double qv = (static_cast<double>(iv) + 0.5) / n_cycle;
                const double cycle =
                    config.mean_cycle_minutes + config.sigma_cycle() * gaussian_quantile(qv);
                const double weight = 1.0 / (n_phase * n_cycle);

                double phi = phi0 + t / cycle;
                if (phi < 1.0) {
                    const Cell_type type = classify_cell(phi, mu_sst, thresholds);
                    mass[static_cast<std::size_t>(type)] += weight;
                } else {
                    // One division: SW daughter restarts at 0, ST daughter
                    // restarts at mu_sst, both progressing with the mother's
                    // cycle time. (Second divisions are outside the 150-min
                    // window this reference is used for.)
                    const double since_division = (phi - 1.0) * cycle;
                    const double phi_sw = since_division / cycle;
                    const double phi_st = mu_sst + since_division / cycle;
                    mass[static_cast<std::size_t>(
                        classify_cell(std::min(phi_sw, 1.0), mu_sst, thresholds))] +=
                        0.5 * weight;
                    mass[static_cast<std::size_t>(
                        classify_cell(std::min(phi_st, 1.0), mu_sst, thresholds))] +=
                        0.5 * weight;
                }
            }
        }

        // Deterministic "experimental scatter": small phase-shifted
        // sinusoids per class, renormalized.
        double total = 0.0;
        for (std::size_t k = 0; k < cell_type_count; ++k) {
            const double wiggle =
                scatter * std::sin(0.13 * t + 1.7 * static_cast<double>(k) + 0.5);
            mass[k] = std::max(0.0, mass[k] + wiggle * mass[k] * 4.0);
            total += mass[k];
        }
        for (std::size_t k = 0; k < cell_type_count; ++k) {
            ref.fractions(m, k) = mass[k] / total;
        }
    }
    return ref;
}

}  // namespace cellsync
