// Minimal column-oriented numeric table, the interchange type between the
// CSV layer and the analysis layers.
#pragma once

#include <string>
#include <vector>

#include "numerics/vector_ops.h"

namespace cellsync {

/// Named numeric columns of equal length.
class Table {
  public:
    Table() = default;

    /// Append a column; its length must match existing columns.
    /// Throws std::invalid_argument on mismatch or duplicate name.
    void add_column(std::string name, Vector values);

    std::size_t column_count() const { return names_.size(); }
    std::size_t row_count() const { return columns_.empty() ? 0 : columns_.front().size(); }

    const std::vector<std::string>& names() const { return names_; }

    /// Column by index. Throws std::out_of_range.
    const Vector& column(std::size_t i) const;

    /// Column by name. Throws std::invalid_argument if absent.
    const Vector& column(const std::string& name) const;

    /// True if a column with this name exists.
    bool has_column(const std::string& name) const;

  private:
    std::vector<std::string> names_;
    std::vector<Vector> columns_;
};

}  // namespace cellsync
