#include "io/csv.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cellsync {

namespace {

std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

}  // namespace

std::vector<std::string> csv_split_fields(const std::string& line) {
    std::vector<std::string> fields;
    std::string field;
    std::istringstream ss(line);
    while (std::getline(ss, field, ',')) fields.push_back(trim(field));
    if (!line.empty() && line.back() == ',') fields.push_back("");
    return fields;
}

namespace {

/// How a strict double parse can fail; `ok` means a finite value landed.
enum class Number_error { ok, out_of_range, malformed, non_finite };

Number_error parse_double_core(const std::string& field, double& value) {
    value = 0.0;
    const char* first = field.data();
    const char* last = field.data() + field.size();
    // std::from_chars, unlike strtod, rejects an explicit '+' sign; accept
    // it here (only when it actually prefixes a mantissa or an inf/nan
    // spelling, so "+" and "+-1" still fail below while "+inf" reaches the
    // dedicated non-finite rejection).
    if (first != last && *first == '+' && first + 1 != last &&
        (std::isdigit(static_cast<unsigned char>(first[1])) || first[1] == '.' ||
         first[1] == 'i' || first[1] == 'I' || first[1] == 'n' || first[1] == 'N')) {
        ++first;
    }
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range) return Number_error::out_of_range;
    if (ec != std::errc() || ptr != last) return Number_error::malformed;
    // from_chars happily parses "inf"/"nan" spellings; measurements must be
    // finite, so reject them with a message naming the policy.
    if (!std::isfinite(value)) return Number_error::non_finite;
    return Number_error::ok;
}

}  // namespace

double csv_parse_field(const std::string& field, std::size_t line_number) {
    double value = 0.0;
    switch (parse_double_core(field, value)) {
        case Number_error::ok:
            return value;
        case Number_error::out_of_range:
            throw std::runtime_error("CSV line " + std::to_string(line_number) +
                                     ": field '" + field + "' is out of double range");
        case Number_error::non_finite:
            throw std::runtime_error("CSV line " + std::to_string(line_number) +
                                     ": non-finite field '" + field +
                                     "' (inf/nan are not valid values)");
        case Number_error::malformed:
            break;
    }
    throw std::runtime_error("CSV line " + std::to_string(line_number) +
                             ": non-numeric field '" + field + "'");
}

double parse_strict_double(const std::string& text) {
    double value = 0.0;
    switch (parse_double_core(text, value)) {
        case Number_error::ok:
            return value;
        case Number_error::out_of_range:
            throw std::runtime_error("value '" + text + "' is out of double range");
        case Number_error::non_finite:
            throw std::runtime_error("non-finite value '" + text +
                                     "' (inf/nan are not valid here)");
        case Number_error::malformed:
            break;
    }
    throw std::runtime_error("non-numeric value '" + text +
                             "' (whole value must parse; no trailing text)");
}

std::uint64_t parse_strict_uint64(const std::string& text) {
    std::uint64_t value = 0;
    const char* first = text.data();
    const char* last = text.data() + text.size();
    // No '+' allowance here: flag values and manifest counters are plain
    // decimal; from_chars already rejects signs, whitespace, and hex.
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range) {
        throw std::runtime_error("value '" + text + "' is out of unsigned 64-bit range");
    }
    if (ec != std::errc() || ptr != last || first == last) {
        throw std::runtime_error("non-numeric value '" + text +
                                 "' (expected an unsigned integer)");
    }
    return value;
}

Table read_csv(std::istream& in) {
    std::string line;
    std::size_t line_number = 0;

    // Header.
    std::vector<std::string> header;
    while (std::getline(in, line)) {
        ++line_number;
        const std::string t = trim(line);
        if (t.empty() || t.front() == '#') continue;
        header = csv_split_fields(t);
        break;
    }
    if (header.empty()) throw std::runtime_error("CSV: empty or missing header");
    for (const std::string& name : header) {
        if (name.empty()) throw std::runtime_error("CSV: empty column name in header");
    }

    std::vector<Vector> columns(header.size());
    while (std::getline(in, line)) {
        ++line_number;
        const std::string t = trim(line);
        if (t.empty() || t.front() == '#') continue;
        const std::vector<std::string> fields = csv_split_fields(t);
        if (fields.size() != header.size()) {
            throw std::runtime_error("CSV line " + std::to_string(line_number) + ": expected " +
                                     std::to_string(header.size()) + " fields, got " +
                                     std::to_string(fields.size()));
        }
        for (std::size_t c = 0; c < fields.size(); ++c) {
            columns[c].push_back(csv_parse_field(fields[c], line_number));
        }
    }

    Table table;
    for (std::size_t c = 0; c < header.size(); ++c) {
        table.add_column(header[c], std::move(columns[c]));
    }
    return table;
}

Table read_csv_string(const std::string& text) {
    std::istringstream in(text);
    return read_csv(in);
}

Table read_csv_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("CSV: cannot open '" + path + "'");
    return read_csv(in);
}

void write_csv(std::ostream& out, const Table& table) {
    for (std::size_t c = 0; c < table.column_count(); ++c) {
        out << (c ? "," : "") << table.names()[c];
    }
    out << '\n';
    out << std::setprecision(17);
    for (std::size_t r = 0; r < table.row_count(); ++r) {
        for (std::size_t c = 0; c < table.column_count(); ++c) {
            out << (c ? "," : "") << table.column(c)[r];
        }
        out << '\n';
    }
}

void write_csv_file(const std::string& path, const Table& table) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("CSV: cannot open '" + path + "' for writing");
    write_csv(out, table);
    // A full disk fails the buffered writes only at flush time; without
    // this check a truncated table would be reported as success.
    out.flush();
    if (!out) {
        throw std::runtime_error("CSV: write failed for '" + path + "' (disk full?)");
    }
}

}  // namespace cellsync
