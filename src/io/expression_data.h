// Embedded expression datasets and conversion helpers.
//
// The paper's Figure 5 uses the Caulobacter ftsZ microarray time course of
// McGrath et al. 2007. That raw dataset is not redistributable, so this
// module ships a synthetic stand-in generated offline with this library's
// own forward model (ftsZ-like single-cell profile -> kernel -> 8%
// relative noise, seeds recorded below) and stored as literal CSV text.
// The deconvolution code path — parse, weight, invert, diagnose — is
// identical to what real microarray data would exercise; see DESIGN.md's
// substitution table.
#pragma once

#include "io/measurement.h"
#include "io/table.h"

namespace cellsync {

/// Convert a table with `time`, `value`, and optional `sigma` columns into
/// a measurement series (unit sigmas if the column is absent).
/// Throws std::invalid_argument if required columns are missing.
Measurement_series series_from_table(const Table& table, std::string label);

/// Convert a series to a 3-column table (time,value,sigma).
Table table_from_series(const Measurement_series& series);

/// Convert a wide panel table — a `time` column plus one column per gene,
/// each optionally paired with a `<gene>_sigma` column — into one
/// measurement series per gene (unit sigmas where no sigma column is
/// given), in table column order. This is the multi-gene input format of
/// the experiment runner CLI. Throws std::invalid_argument if `time` is
/// missing, no gene column remains, or a `_sigma` column has no matching
/// gene.
std::vector<Measurement_series> panel_from_table(const Table& table);

/// The embedded synthetic ftsZ population time course (11 samples,
/// 15-minute spacing over 0-150 min, mimicking the McGrath et al.
/// sampling). Parsed from embedded CSV through the real parser.
Measurement_series ftsz_population_dataset();

/// The single-cell profile parameters used to generate the embedded ftsZ
/// dataset (onset just after the SW->ST transition, peak at phi = 0.4):
/// the "truth" available to tests and EXPERIMENTS.md because the dataset
/// is synthetic.
struct Ftsz_generation_info {
    double onset = 0.16;
    double peak_phi = 0.40;
    double peak_level = 10.0;
    double final_level = 0.0;
    double background = 2.0;        ///< additive microarray background term
    double noise_level = 0.08;      ///< relative Gaussian
    unsigned long long kernel_seed = 424242;
    unsigned long long noise_seed = 99;
};

/// Generation provenance of the embedded dataset.
Ftsz_generation_info ftsz_generation_info();

}  // namespace cellsync
