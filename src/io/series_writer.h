// Figure-series export: collect named series over a shared abscissa and
// write them as one CSV, the format the benches use to dump reproduced
// figures for external plotting.
#pragma once

#include <string>

#include "io/table.h"

namespace cellsync {

/// Accumulates columns against a fixed abscissa and writes CSV.
class Series_writer {
  public:
    /// The abscissa column (e.g. "minutes" or "phi").
    Series_writer(std::string axis_name, Vector axis_values);

    /// Add a series; length must match the abscissa.
    /// Throws std::invalid_argument on mismatch or duplicate name.
    Series_writer& add(const std::string& name, const Vector& values);

    /// The accumulated table.
    const Table& table() const { return table_; }

    /// Write to a file (creates/truncates). Throws std::runtime_error on
    /// failure.
    void write(const std::string& path) const;

    /// Render as CSV text (for stdout-oriented benches).
    std::string to_csv_string() const;

  private:
    Table table_;
};

}  // namespace cellsync
