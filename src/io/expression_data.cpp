#include "io/expression_data.h"

#include <stdexcept>

#include "io/csv.h"

namespace cellsync {

Measurement_series series_from_table(const Table& table, std::string label) {
    if (!table.has_column("time") || !table.has_column("value")) {
        throw std::invalid_argument("series_from_table: need 'time' and 'value' columns");
    }
    Measurement_series s;
    s.label = std::move(label);
    s.times = table.column("time");
    s.values = table.column("value");
    s.sigmas = table.has_column("sigma") ? table.column("sigma") : Vector(s.times.size(), 1.0);
    s.validate();
    return s;
}

Table table_from_series(const Measurement_series& series) {
    series.validate();
    Table t;
    t.add_column("time", series.times);
    t.add_column("value", series.values);
    t.add_column("sigma", series.sigmas);
    return t;
}

namespace {

// Generated offline with tools/generate_ftsz_dataset (this repository):
// ftsz_like_profile(0.16, 0.40, 10.0, 0.0) -> build_kernel(Caulobacter
// defaults, smooth volume model, 50k cells, 200 bins, seed 424242, times
// 0..150 at 15-min spacing) -> +2.0 additive microarray background ->
// 8% relative Gaussian noise (seed 99). Values regenerate bit-identically
// from those seeds.
constexpr const char* ftsz_csv = R"(time,value,sigma
0,2.0564381669467302,0.1601671378197721
15,2.6363067886501086,0.22648932353219528
30,6.8010720144668655,0.55927178014056522
45,10.220095630861548,0.87114758858219032
60,10.652883182008853,0.89236318587804353
75,10.261860956327629,0.76151715306764123
90,7.0819717698244515,0.58233010674398211
105,6.0772798768321286,0.40727498351074665
120,3.6163314591086624,0.28615456707905557
135,3.144824749707666,0.2661909940758192
150,4.4399211544565267,0.36350733045891481
)";

}  // namespace

Measurement_series ftsz_population_dataset() {
    return series_from_table(read_csv_string(ftsz_csv), "ftsZ (synthetic, McGrath-like)");
}

Ftsz_generation_info ftsz_generation_info() { return {}; }

}  // namespace cellsync
