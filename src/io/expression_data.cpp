#include "io/expression_data.h"

#include <stdexcept>

#include "io/csv.h"

namespace cellsync {

Measurement_series series_from_table(const Table& table, std::string label) {
    if (!table.has_column("time") || !table.has_column("value")) {
        throw std::invalid_argument("series_from_table: need 'time' and 'value' columns");
    }
    Measurement_series s;
    s.label = std::move(label);
    s.times = table.column("time");
    s.values = table.column("value");
    s.sigmas = table.has_column("sigma") ? table.column("sigma") : Vector(s.times.size(), 1.0);
    s.validate();
    return s;
}

Table table_from_series(const Measurement_series& series) {
    series.validate();
    Table t;
    t.add_column("time", series.times);
    t.add_column("value", series.values);
    t.add_column("sigma", series.sigmas);
    return t;
}

std::vector<Measurement_series> panel_from_table(const Table& table) {
    if (!table.has_column("time")) {
        throw std::invalid_argument("panel_from_table: need a 'time' column");
    }
    const Vector& times = table.column("time");
    const std::string sigma_suffix = "_sigma";

    auto is_sigma_name = [&](const std::string& name) {
        return name.size() > sigma_suffix.size() && name.ends_with(sigma_suffix);
    };

    std::vector<Measurement_series> panel;
    for (const std::string& name : table.names()) {
        if (name == "time" || is_sigma_name(name)) continue;
        Measurement_series s;
        s.label = name;
        s.times = times;
        s.values = table.column(name);
        const std::string sigma_name = name + sigma_suffix;
        s.sigmas = table.has_column(sigma_name) ? table.column(sigma_name)
                                                : Vector(times.size(), 1.0);
        s.validate();
        panel.push_back(std::move(s));
    }
    if (panel.empty()) {
        throw std::invalid_argument("panel_from_table: no gene columns besides 'time'");
    }
    // Every sigma column must belong to a gene; a stray one is almost
    // certainly a typo that would otherwise silently drop the data. The
    // base must be an actual gene column — 'time' or another sigma column
    // cannot own a sigma.
    for (const std::string& name : table.names()) {
        if (!is_sigma_name(name)) continue;
        const std::string gene = name.substr(0, name.size() - sigma_suffix.size());
        if (!table.has_column(gene) || gene == "time" || is_sigma_name(gene)) {
            throw std::invalid_argument("panel_from_table: sigma column '" + name +
                                        "' has no matching gene column '" + gene + "'");
        }
    }
    return panel;
}

namespace {

// Generated offline with tools/generate_ftsz_dataset (this repository):
// ftsz_like_profile(0.16, 0.40, 10.0, 0.0) -> build_kernel(Caulobacter
// defaults, smooth volume model, 50k cells, 200 bins, seed 424242, times
// 0..150 at 15-min spacing) -> +2.0 additive microarray background ->
// 8% relative Gaussian noise (seed 99). Values regenerate bit-identically
// from those seeds.
constexpr const char* ftsz_csv = R"(time,value,sigma
0,2.0564381669467302,0.1601671378197721
15,2.6363067886501086,0.22648932353219528
30,6.8010720144668655,0.55927178014056522
45,10.220095630861548,0.87114758858219032
60,10.652883182008853,0.89236318587804353
75,10.261860956327629,0.76151715306764123
90,7.0819717698244515,0.58233010674398211
105,6.0772798768321286,0.40727498351074665
120,3.6163314591086624,0.28615456707905557
135,3.144824749707666,0.2661909940758192
150,4.4399211544565267,0.36350733045891481
)";

}  // namespace

Measurement_series ftsz_population_dataset() {
    return series_from_table(read_csv_string(ftsz_csv), "ftsZ (synthetic, McGrath-like)");
}

Ftsz_generation_info ftsz_generation_info() { return {}; }

}  // namespace cellsync
