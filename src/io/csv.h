// CSV reading and writing for numeric tables.
//
// Format: first row is the header (column names), subsequent rows are
// numeric values. Separator is ','; leading/trailing whitespace around
// fields is ignored; blank lines and lines starting with '#' are skipped.
// This covers the expression-data files the method consumes (the
// "wire data parsing manually" part of the reproduction).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/table.h"

namespace cellsync {

/// Parse CSV text from a stream. Throws std::runtime_error with the line
/// number on ragged rows, non-numeric fields, or an empty header.
Table read_csv(std::istream& in);

/// Parse CSV text from a string.
Table read_csv_string(const std::string& text);

/// Read a CSV file. Throws std::runtime_error if the file cannot be
/// opened, plus the parse errors above.
Table read_csv_file(const std::string& path);

/// Split one CSV line into trimmed fields (',' separator; a trailing ','
/// yields a final empty field) — the exact field semantics of read_csv,
/// shared with the incremental record reader (io/stream_records.h).
std::vector<std::string> csv_split_fields(const std::string& line);

/// Parse one numeric CSV field under read_csv's rules: optional leading
/// '+', finite values only. Throws std::runtime_error naming
/// `line_number` on malformed or non-finite input.
double csv_parse_field(const std::string& field, std::size_t line_number);

/// The repo-wide number-parsing policy (std::from_chars, whole-string,
/// optional leading '+', finite only), outside a CSV context: the same
/// rules as csv_parse_field but with errors that name the offending
/// text instead of a line number. This — not std::stod/strtod/atof,
/// which silently accept garbage suffixes ("1.5junk" parses as 1.5),
/// locale-dependent separators, and inf/nan — is how every number
/// enters the system; tools/cellsync_lint enforces it mechanically.
/// Throws std::runtime_error on violation.
double parse_strict_double(const std::string& text);

/// Unsigned-integer counterpart of parse_strict_double: whole-string
/// decimal digits only (no sign, no whitespace, no 0x), so "-1" fails
/// instead of wrapping to 2^64-1 the way std::stoull parses it. Throws
/// std::runtime_error naming the offending text.
std::uint64_t parse_strict_uint64(const std::string& text);

/// Write a table as CSV (header + rows, '\n' line endings, max precision).
void write_csv(std::ostream& out, const Table& table);

/// Write a table to a file. Throws std::runtime_error on open failure
/// and — after flushing — on any write failure, so a full disk surfaces
/// as an error instead of a silently truncated file.
void write_csv_file(const std::string& path, const Table& table);

}  // namespace cellsync
