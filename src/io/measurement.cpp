#include "io/measurement.h"

#include <cmath>
#include <stdexcept>

namespace cellsync {

void Measurement_series::validate() const {
    if (times.size() != values.size() || times.size() != sigmas.size()) {
        throw std::invalid_argument("Measurement_series: length mismatch");
    }
    if (times.size() < 2) {
        throw std::invalid_argument("Measurement_series: need at least 2 measurements");
    }
    for (std::size_t i = 0; i + 1 < times.size(); ++i) {
        if (!(times[i] < times[i + 1])) {
            throw std::invalid_argument("Measurement_series: times must be strictly ascending");
        }
    }
    for (std::size_t i = 0; i < times.size(); ++i) {
        if (!(sigmas[i] > 0.0)) {
            throw std::invalid_argument("Measurement_series: sigmas must be positive");
        }
        if (!std::isfinite(values[i]) || !std::isfinite(times[i])) {
            throw std::invalid_argument("Measurement_series: non-finite entry");
        }
    }
}

Vector Measurement_series::weights() const {
    Vector w(sigmas.size());
    for (std::size_t i = 0; i < sigmas.size(); ++i) w[i] = 1.0 / (sigmas[i] * sigmas[i]);
    return w;
}

Measurement_series Measurement_series::with_unit_sigma(std::string label, Vector times,
                                                       Vector values) {
    Measurement_series s;
    s.label = std::move(label);
    s.times = std::move(times);
    s.values = std::move(values);
    s.sigmas.assign(s.times.size(), 1.0);
    s.validate();
    return s;
}

}  // namespace cellsync
