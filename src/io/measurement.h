// Population-level measurement containers.
//
// A measurement series is the experimental input of the method: values
// G(t_m) of a population expression assay at a small number of times, with
// per-measurement standard deviations sigma_m used to weight the data
// misfit in the estimation criterion (paper Eq 5).
#pragma once

#include <string>

#include "numerics/vector_ops.h"

namespace cellsync {

/// Time series of population measurements {(t_m, G_m, sigma_m)}.
struct Measurement_series {
    std::string label;  ///< e.g. gene name
    Vector times;       ///< minutes, strictly ascending
    Vector values;      ///< measured population expression G(t_m)
    Vector sigmas;      ///< per-measurement standard deviation (all > 0)

    /// Number of measurements Nm.
    std::size_t size() const { return times.size(); }

    /// Validate invariants: equal lengths, >= 2 points, ascending times,
    /// positive sigmas, finite values. Throws std::invalid_argument.
    void validate() const;

    /// Weights for the least-squares criterion: w_m = 1 / sigma_m^2.
    Vector weights() const;

    /// Convenience constructor with uniform unit sigma.
    static Measurement_series with_unit_sigma(std::string label, Vector times, Vector values);
};

}  // namespace cellsync
