#include "io/kernel_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "io/csv.h"

namespace cellsync {

void write_kernel(std::ostream& out, const Kernel_grid& kernel) {
    Table table;
    table.add_column("phi", kernel.phi_centers());
    for (std::size_t m = 0; m < kernel.time_count(); ++m) {
        std::ostringstream name;
        // Full precision: the loaded grid must reproduce the times
        // bit-exactly (the kernel cache round trip depends on it).
        name << "t" << std::setprecision(17) << kernel.times()[m];
        Vector column(kernel.bin_count());
        for (std::size_t b = 0; b < kernel.bin_count(); ++b) column[b] = kernel.q()(m, b);
        table.add_column(name.str(), column);
    }
    write_csv(out, table);
}

void write_kernel_file(const std::string& path, const Kernel_grid& kernel) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_kernel_file: cannot open '" + path + "'");
    write_kernel(out, kernel);
}

Kernel_grid read_kernel(std::istream& in) {
    const Table table = read_csv(in);
    if (!table.has_column("phi")) {
        throw std::runtime_error("read_kernel: missing 'phi' column");
    }
    if (table.column_count() < 2) {
        throw std::runtime_error("read_kernel: no time-slice columns");
    }

    const Vector& phi = table.column("phi");
    Vector times;
    Matrix q(table.column_count() - 1, phi.size());
    std::size_t row = 0;
    for (std::size_t c = 0; c < table.column_count(); ++c) {
        const std::string& name = table.names()[c];
        if (name == "phi") continue;
        if (name.size() < 2 || name.front() != 't') {
            throw std::runtime_error("read_kernel: bad time column name '" + name + "'");
        }
        try {
            times.push_back(std::stod(name.substr(1)));
        } catch (const std::exception&) {
            throw std::runtime_error("read_kernel: unparseable time in column '" + name + "'");
        }
        q.set_row(row++, table.column(c));
    }
    return Kernel_grid(std::move(times), phi, std::move(q));
}

Kernel_grid read_kernel_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_kernel_file: cannot open '" + path + "'");
    return read_kernel(in);
}

}  // namespace cellsync
