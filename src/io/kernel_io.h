// Kernel serialization: save/load the discretized Q(phi, t) grid as CSV.
//
// Kernel construction is the expensive pipeline stage (a Monte-Carlo
// population simulation); persisting the grid lets a lab simulate once per
// organism/protocol and reuse the kernel across gene panels and sessions.
// The format is a plain CSV: first column `phi`, one further column per
// time slice named `t<minutes>`; all Kernel_grid invariants are
// re-validated on load.
#ifndef CELLSYNC_IO_KERNEL_IO_H
#define CELLSYNC_IO_KERNEL_IO_H

#include <iosfwd>
#include <string>

#include "population/kernel_builder.h"

namespace cellsync {

/// Write the kernel grid as CSV.
void write_kernel(std::ostream& out, const Kernel_grid& kernel);

/// Write to a file; throws std::runtime_error on open failure.
void write_kernel_file(const std::string& path, const Kernel_grid& kernel);

/// Parse a kernel grid from CSV. Throws std::runtime_error on malformed
/// input and std::invalid_argument if the parsed grid violates the
/// Kernel_grid invariants (row normalization, ascending grids).
Kernel_grid read_kernel(std::istream& in);

/// Read from a file; throws std::runtime_error on open failure.
Kernel_grid read_kernel_file(const std::string& path);

}  // namespace cellsync

#endif  // CELLSYNC_IO_KERNEL_IO_H
