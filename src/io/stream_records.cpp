#include "io/stream_records.h"

#include <cmath>
#include <istream>
#include <stdexcept>

#include "io/csv.h"

namespace cellsync {

namespace {

std::string trim_line(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

}  // namespace

Record_stream::Record_stream(std::istream& in) : in_(in) {
    std::string line;
    std::vector<std::string> header;
    while (std::getline(in_, line)) {
        ++line_number_;
        const std::string t = trim_line(line);
        if (t.empty() || t.front() == '#') continue;
        header = csv_split_fields(t);
        break;
    }
    if (header.empty()) {
        throw std::runtime_error("record stream: empty or missing header");
    }
    bool has_time = false, has_gene = false, has_value = false;
    // A repeated column is ambiguous (which copy holds the data?); the old
    // last-one-wins behavior silently read the wrong field, so reject.
    const auto reject_duplicate = [&](bool seen, const std::string& name) {
        if (seen) {
            throw std::runtime_error("record stream line " + std::to_string(line_number_) +
                                     ": duplicate column '" + name + "'");
        }
    };
    for (std::size_t c = 0; c < header.size(); ++c) {
        const std::string& name = header[c];
        if (name == "time") {
            reject_duplicate(has_time, name);
            time_col_ = c;
            has_time = true;
        } else if (name == "gene") {
            reject_duplicate(has_gene, name);
            gene_col_ = c;
            has_gene = true;
        } else if (name == "value") {
            reject_duplicate(has_value, name);
            value_col_ = c;
            has_value = true;
        } else if (name == "sigma") {
            reject_duplicate(has_sigma_, name);
            sigma_col_ = c;
            has_sigma_ = true;
        } else {
            throw std::runtime_error("record stream line " + std::to_string(line_number_) +
                                     ": unexpected column '" + name +
                                     "' (want time, gene, value[, sigma])");
        }
    }
    if (!has_time || !has_gene || !has_value) {
        throw std::runtime_error(
            "record stream: header needs time, gene, and value columns");
    }
    column_count_ = header.size();
}

std::optional<Expression_record> Record_stream::parse_next() {
    std::string line;
    while (std::getline(in_, line)) {
        ++line_number_;
        const std::string t = trim_line(line);
        if (t.empty() || t.front() == '#') continue;

        const std::vector<std::string> fields = csv_split_fields(t);
        if (fields.size() != column_count_) {
            throw std::runtime_error("record stream line " + std::to_string(line_number_) +
                                     ": expected " + std::to_string(column_count_) +
                                     " fields, got " + std::to_string(fields.size()));
        }
        Expression_record record;
        record.time = csv_parse_field(fields[time_col_], line_number_);
        record.gene = fields[gene_col_];
        record.value = csv_parse_field(fields[value_col_], line_number_);
        if (has_sigma_) record.sigma = csv_parse_field(fields[sigma_col_], line_number_);
        if (record.gene.empty()) {
            throw std::runtime_error("record stream line " + std::to_string(line_number_) +
                                     ": empty gene name");
        }
        if (!(record.sigma > 0.0) || !std::isfinite(record.sigma)) {
            throw std::runtime_error("record stream line " + std::to_string(line_number_) +
                                     ": sigma must be positive and finite");
        }
        if (any_record_ && record.time < last_time_) {
            throw std::runtime_error("record stream line " + std::to_string(line_number_) +
                                     ": time went backwards (append-only logs are "
                                     "time-ordered)");
        }
        last_time_ = record.time;
        any_record_ = true;
        ++record_count_;
        return record;
    }
    return std::nullopt;
}

std::optional<Expression_record> Record_stream::next() {
    if (lookahead_.has_value()) {
        std::optional<Expression_record> out = std::move(lookahead_);
        lookahead_.reset();
        return out;
    }
    return parse_next();
}

std::vector<Expression_record> Record_stream::next_timepoint() {
    std::vector<Expression_record> batch;
    std::optional<Expression_record> record = next();
    if (!record.has_value()) return batch;
    const double time = record->time;
    batch.push_back(std::move(*record));
    for (;;) {
        record = parse_next();
        if (!record.has_value()) break;
        if (record->time != time) {
            lookahead_ = std::move(record);
            break;
        }
        batch.push_back(std::move(*record));
    }
    return batch;
}

}  // namespace cellsync
