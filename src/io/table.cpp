#include "io/table.h"

#include <algorithm>
#include <stdexcept>

namespace cellsync {

void Table::add_column(std::string name, Vector values) {
    if (has_column(name)) {
        throw std::invalid_argument("Table: duplicate column name '" + name + "'");
    }
    if (!columns_.empty() && values.size() != columns_.front().size()) {
        throw std::invalid_argument("Table: column length mismatch for '" + name + "'");
    }
    names_.push_back(std::move(name));
    columns_.push_back(std::move(values));
}

const Vector& Table::column(std::size_t i) const {
    if (i >= columns_.size()) throw std::out_of_range("Table: column index out of range");
    return columns_[i];
}

const Vector& Table::column(const std::string& name) const {
    const auto it = std::find(names_.begin(), names_.end(), name);
    if (it == names_.end()) throw std::invalid_argument("Table: no column named '" + name + "'");
    return columns_[static_cast<std::size_t>(it - names_.begin())];
}

bool Table::has_column(const std::string& name) const {
    return std::find(names_.begin(), names_.end(), name) != names_.end();
}

}  // namespace cellsync
