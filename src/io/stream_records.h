// Incremental parsing of append-only expression record logs.
//
// The streaming engine (stream/stream_session.h) consumes measurements as
// they arrive, one record per (time, gene) pair, so its input format is a
// long-form CSV log — columns `time`, `gene`, `value`, optional `sigma` —
// appended to as the experiment runs. Unlike io/csv.h's Table reader
// (which materializes whole numeric columns), Record_stream hands records
// back one at a time as they are pulled off the stream, holding only the
// current line in memory; the field-splitting and number-parsing rules
// are shared with read_csv (csv_split_fields / csv_parse_field).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace cellsync {

/// One appended measurement: gene `gene` observed at `time` with value
/// `value` and standard deviation `sigma` (1 when the log has no sigma
/// column).
struct Expression_record {
    double time = 0.0;
    std::string gene;
    double value = 0.0;
    double sigma = 1.0;
};

/// Pull-based reader over an append-only record log.
///
/// The header is consumed on construction; each next() returns the
/// following record, or std::nullopt at end-of-stream. Blank lines and
/// '#' comment lines are skipped, matching read_csv. Records must be
/// time-ordered (non-decreasing): out-of-order times throw, because an
/// append-only log cannot revisit a completed timepoint. All errors are
/// std::runtime_error naming the 1-based line number.
class Record_stream {
  public:
    /// Reads and validates the header: `time`, `gene`, and `value`
    /// columns required (any order), `sigma` optional, nothing else —
    /// and no column twice (a duplicate is ambiguous about which copy
    /// holds the data, so it is rejected with the header's line number).
    explicit Record_stream(std::istream& in);

    /// Next record, or std::nullopt once the stream is exhausted.
    std::optional<Expression_record> next();

    /// All records sharing the next time value (one timepoint's batch);
    /// empty at end-of-stream. The look-ahead record that terminated the
    /// batch is buffered for the following call.
    std::vector<Expression_record> next_timepoint();

    /// Records handed out so far.
    std::size_t record_count() const { return record_count_; }

    /// 1-based number of the last line consumed.
    std::size_t line_number() const { return line_number_; }

  private:
    std::optional<Expression_record> parse_next();

    std::istream& in_;
    std::size_t time_col_ = 0;
    std::size_t gene_col_ = 0;
    std::size_t value_col_ = 0;
    std::size_t sigma_col_ = 0;
    bool has_sigma_ = false;
    std::size_t column_count_ = 0;
    std::size_t line_number_ = 0;
    std::size_t record_count_ = 0;
    double last_time_ = 0.0;
    bool any_record_ = false;
    std::optional<Expression_record> lookahead_;
};

}  // namespace cellsync
