#include "core/task_graph.h"

#include <stdexcept>
#include <utility>

namespace cellsync {

Task_graph::Node_id Task_graph::add_node(std::string name, std::size_t count, Task task,
                                         std::vector<Node_id> deps) {
    const Node_id id = nodes_.size();
    for (const Node_id dep : deps) {
        if (dep >= id) {
            throw std::invalid_argument("Task_graph: node '" + name +
                                        "' depends on node " + std::to_string(dep) +
                                        " which has not been added yet (dependencies "
                                        "must point backwards)");
        }
    }
    Node node;
    node.name = std::move(name);
    node.count = count;
    node.task = std::move(task);
    node.deps = std::move(deps);
    nodes_.push_back(std::move(node));
    for (const Node_id dep : nodes_.back().deps) {
        nodes_[dep].dependents.push_back(id);
    }
    return id;
}

}  // namespace cellsync
