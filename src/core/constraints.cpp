#include "core/constraints.h"

#include <algorithm>
#include <stdexcept>

#include "biology/volume_model.h"
#include "numerics/quadrature.h"
#include "numerics/special.h"

namespace cellsync {

namespace {

// Integrate g(phi) p(phi) over the support of p intersected with [0, 1].
// The transition-phase density is narrow (sigma ~ 0.02), so integrating
// over mean +/- 8 sigma clipped to [0, 1] captures all mass; Gauss-Legendre
// with 64 points is far beyond the needed accuracy for smooth g.
double integrate_against_p(const std::function<double(double)>& g,
                           const Cell_cycle_config& config) {
    const double mu = config.mu_sst;
    const double sigma = config.sigma_sst();
    if (sigma == 0.0) return g(mu);  // degenerate distribution
    const double lo = std::max(0.0, mu - 8.0 * sigma);
    const double hi = std::min(1.0, mu + 8.0 * sigma);
    return integrate_gauss(
        [&](double phi) { return g(phi) * gaussian_pdf(phi, mu, sigma); }, lo, hi, 64);
}

}  // namespace

double beta0(const Cell_cycle_config& config) {
    config.validate();
    return integrate_against_p([](double phi) { return growth_rate_beta(phi); }, config);
}

Vector conservation_row(const Basis& basis, const Cell_cycle_config& config) {
    config.validate();
    Vector row(basis.size());
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const double avg =
            integrate_against_p([&](double phi) { return basis.value(i, phi); }, config);
        row[i] = basis.value(i, 1.0) - swarmer_volume_fraction * basis.value(i, 0.0) -
                 stalked_volume_fraction * avg;
    }
    return row;
}

Vector rate_continuity_row(const Basis& basis, const Cell_cycle_config& config) {
    config.validate();
    const double b0 = beta0(config);
    Vector row(basis.size());
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const double beta_avg = integrate_against_p(
            [&](double phi) { return growth_rate_beta(phi) * basis.value(i, phi); }, config);
        const double deriv_avg =
            integrate_against_p([&](double phi) { return basis.derivative(i, phi); }, config);
        // integral(w1 f) - integral(w2 f') = 0 expanded per basis function.
        row[i] = b0 * basis.value(i, 1.0) - b0 * basis.value(i, 0.0) - beta_avg -
                 (swarmer_volume_fraction * basis.derivative(i, 0.0) +
                  stalked_volume_fraction * deriv_avg - basis.derivative(i, 1.0));
    }
    return row;
}

Constraint_set build_constraints(const Basis& basis, const Cell_cycle_config& config,
                                 const Constraint_options& options) {
    config.validate();
    if (options.positivity && options.positivity_points < 2) {
        throw std::invalid_argument("build_constraints: need at least 2 positivity points");
    }

    Constraint_set set;
    std::vector<Vector> eq_rows;
    if (options.conservation) eq_rows.push_back(conservation_row(basis, config));
    if (options.rate_continuity) eq_rows.push_back(rate_continuity_row(basis, config));
    set.equality = eq_rows.empty() ? Matrix(0, basis.size()) : Matrix::from_rows(eq_rows);
    set.equality_rhs.assign(set.equality.rows(), 0.0);

    if (options.positivity) {
        set.inequality = basis.design_matrix(linspace(0.0, 1.0, options.positivity_points));
    } else {
        set.inequality = Matrix(0, basis.size());
    }
    set.inequality_rhs.assign(set.inequality.rows(), 0.0);
    return set;
}

}  // namespace cellsync
