#include "core/cross_validation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "numerics/kkt_factorization.h"

namespace cellsync {

Vector default_lambda_grid(std::size_t count, double lo, double hi) {
    if (count < 2) throw std::invalid_argument("default_lambda_grid: need at least 2 points");
    if (!(lo > 0.0 && hi > lo)) {
        throw std::invalid_argument("default_lambda_grid: need 0 < lo < hi");
    }
    Vector grid(count);
    const double step = (std::log10(hi) - std::log10(lo)) / static_cast<double>(count - 1);
    for (std::size_t i = 0; i < count; ++i) {
        grid[i] = std::pow(10.0, std::log10(lo) + step * static_cast<double>(i));
    }
    return grid;
}

std::vector<std::size_t> kfold_permutation(std::size_t count, std::uint64_t seed) {
    std::vector<std::size_t> perm(count);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    Rng rng(seed);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    return perm;
}

double kfold_lambda_score(const Deconvolver& deconvolver, const Measurement_series& series,
                          const Deconvolution_options& base_options,
                          const std::vector<std::size_t>& permutation, std::size_t folds,
                          double lambda) {
    const std::size_t m = series.size();
    if (permutation.size() != m) {
        throw std::invalid_argument("kfold_lambda_score: permutation length mismatch");
    }
    const Vector weights = series.weights();
    const Design_matrix& kernel = deconvolver.kernel_design();

    Deconvolution_options options = base_options;
    options.lambda = lambda;
    double score = 0.0;
    for (std::size_t fold = 0; fold < folds; ++fold) {
        std::vector<std::size_t> train, test;
        for (std::size_t p = 0; p < m; ++p) {
            (p % folds == fold ? test : train).push_back(permutation[p]);
        }
        if (train.size() < 2) continue;
        try {
            const Single_cell_estimate fit =
                deconvolver.estimate_on_rows(series, train, options);
            for (std::size_t idx : test) {
                // Held-out prediction over the row's span, without the
                // kernel.row() copy the dense path paid per test point.
                const double pred = row_dot(kernel, idx, fit.coefficients());
                const double r = series.values[idx] - pred;
                score += weights[idx] * r * r;
            }
        } catch (const std::runtime_error&) {
            // A lambda that breaks the QP is disqualified.
            return std::numeric_limits<double>::infinity();
        }
    }
    return score / static_cast<double>(m);
}

Lambda_selection select_lambda_kfold(const Deconvolver& deconvolver,
                                     const Measurement_series& series,
                                     const Deconvolution_options& base_options,
                                     const Vector& lambda_grid, std::size_t folds,
                                     std::uint64_t seed) {
    series.validate();
    if (lambda_grid.empty()) throw std::invalid_argument("select_lambda_kfold: empty grid");
    if (folds < 2) throw std::invalid_argument("select_lambda_kfold: need at least 2 folds");
    const std::size_t m = series.size();
    folds = std::min(folds, m);

    // Random fold assignment, fixed across the lambda grid for a fair sweep.
    const std::vector<std::size_t> perm = kfold_permutation(m, seed);

    Lambda_selection sel;
    sel.method = "kfold";
    sel.lambdas = lambda_grid;
    sel.scores.assign(lambda_grid.size(), 0.0);
    for (std::size_t li = 0; li < lambda_grid.size(); ++li) {
        sel.scores[li] =
            kfold_lambda_score(deconvolver, series, base_options, perm, folds, lambda_grid[li]);
    }

    const auto best = std::min_element(sel.scores.begin(), sel.scores.end());
    sel.best_lambda = sel.lambdas[static_cast<std::size_t>(best - sel.scores.begin())];
    return sel;
}

Lambda_selection select_lambda_gcv(const Deconvolver& deconvolver,
                                   const Measurement_series& series,
                                   const Vector& lambda_grid) {
    series.validate();
    if (lambda_grid.empty()) throw std::invalid_argument("select_lambda_gcv: empty grid");
    const std::size_t m = series.size();
    const std::size_t n = deconvolver.basis().size();
    const Vector w = series.weights();

    // Whitened design Kw = W^{1/2} K and data z = W^{1/2} G.
    Matrix kw(m, n);
    Vector z(m);
    for (std::size_t i = 0; i < m; ++i) {
        const double sw = std::sqrt(w[i]);
        for (std::size_t j = 0; j < n; ++j) kw(i, j) = sw * deconvolver.kernel_matrix()(i, j);
        z[i] = sw * series.values[i];
    }

    // One cached KKT object sweeps the grid: the Gram and penalty blocks
    // are assembled once, each lambda refactors in place.
    Kkt_factorization kkt(gram(kw), deconvolver.penalty(), Matrix(0, n));

    Lambda_selection sel;
    sel.method = "gcv";
    sel.lambdas = lambda_grid;
    sel.scores.assign(lambda_grid.size(), 0.0);

    for (std::size_t li = 0; li < lambda_grid.size(); ++li) {
        kkt.factorize(lambda_grid[li], 1e-9);
        // tr(A) = sum_i kw_i' (Kw'Kw + lambda Omega)^-1 kw_i and
        // fitted = Kw (normal)^-1 Kw' z without forming the hat matrix.
        double trace = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            const Vector row = kw.row(i);
            trace += dot(row, kkt.solve(scaled(row, -1.0), Vector{}));
        }
        const Vector fitted = kw * kkt.solve(scaled(transposed_times(kw, z), -1.0), Vector{});
        double rss = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            const double r = z[i] - fitted[i];
            rss += r * r;
        }
        const double denom = static_cast<double>(m) - trace;
        sel.scores[li] = denom > 1e-9
                             ? static_cast<double>(m) * rss / (denom * denom)
                             : std::numeric_limits<double>::infinity();
    }

    const auto best = std::min_element(sel.scores.begin(), sel.scores.end());
    sel.best_lambda = sel.lambdas[static_cast<std::size_t>(best - sel.scores.begin())];
    return sel;
}

}  // namespace cellsync
