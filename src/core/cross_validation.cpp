#include "core/cross_validation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cellsync {

Vector default_lambda_grid(std::size_t count, double lo, double hi) {
    if (count < 2) throw std::invalid_argument("default_lambda_grid: need at least 2 points");
    if (!(lo > 0.0 && hi > lo)) {
        throw std::invalid_argument("default_lambda_grid: need 0 < lo < hi");
    }
    Vector grid(count);
    const double step = (std::log10(hi) - std::log10(lo)) / static_cast<double>(count - 1);
    for (std::size_t i = 0; i < count; ++i) {
        grid[i] = std::pow(10.0, std::log10(lo) + step * static_cast<double>(i));
    }
    return grid;
}

Lambda_selection select_lambda_kfold(const Deconvolver& deconvolver,
                                     const Measurement_series& series,
                                     const Deconvolution_options& base_options,
                                     const Vector& lambda_grid, std::size_t folds,
                                     std::uint64_t seed) {
    series.validate();
    if (lambda_grid.empty()) throw std::invalid_argument("select_lambda_kfold: empty grid");
    if (folds < 2) throw std::invalid_argument("select_lambda_kfold: need at least 2 folds");
    const std::size_t m = series.size();
    folds = std::min(folds, m);

    // Random fold assignment, fixed across the lambda grid for a fair sweep.
    std::vector<std::size_t> perm(m);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    Rng rng(seed);
    std::shuffle(perm.begin(), perm.end(), rng.engine());

    const Vector weights = series.weights();
    const Matrix& kernel = deconvolver.kernel_matrix();

    Lambda_selection sel;
    sel.method = "kfold";
    sel.lambdas = lambda_grid;
    sel.scores.assign(lambda_grid.size(), 0.0);

    for (std::size_t li = 0; li < lambda_grid.size(); ++li) {
        Deconvolution_options options = base_options;
        options.lambda = lambda_grid[li];
        double score = 0.0;
        bool failed = false;
        for (std::size_t fold = 0; fold < folds && !failed; ++fold) {
            std::vector<std::size_t> train, test;
            for (std::size_t p = 0; p < m; ++p) {
                (p % folds == fold ? test : train).push_back(perm[p]);
            }
            if (train.size() < 2) continue;
            try {
                const Single_cell_estimate fit =
                    deconvolver.estimate_on_rows(series, train, options);
                for (std::size_t idx : test) {
                    const double pred = dot(kernel.row(idx), fit.coefficients());
                    const double r = series.values[idx] - pred;
                    score += weights[idx] * r * r;
                }
            } catch (const std::runtime_error&) {
                failed = true;  // a lambda that breaks the QP is disqualified
            }
        }
        sel.scores[li] =
            failed ? std::numeric_limits<double>::infinity() : score / static_cast<double>(m);
    }

    const auto best = std::min_element(sel.scores.begin(), sel.scores.end());
    sel.best_lambda = sel.lambdas[static_cast<std::size_t>(best - sel.scores.begin())];
    return sel;
}

Lambda_selection select_lambda_gcv(const Deconvolver& deconvolver,
                                   const Measurement_series& series,
                                   const Vector& lambda_grid) {
    series.validate();
    if (lambda_grid.empty()) throw std::invalid_argument("select_lambda_gcv: empty grid");
    const std::size_t m = series.size();
    const Vector w = series.weights();

    // Whitened data z = W^{1/2} G.
    Vector z(m);
    for (std::size_t i = 0; i < m; ++i) z[i] = std::sqrt(w[i]) * series.values[i];

    Lambda_selection sel;
    sel.method = "gcv";
    sel.lambdas = lambda_grid;
    sel.scores.assign(lambda_grid.size(), 0.0);

    for (std::size_t li = 0; li < lambda_grid.size(); ++li) {
        const Matrix a = deconvolver.hat_matrix(series, lambda_grid[li]);
        double trace = 0.0;
        for (std::size_t i = 0; i < m; ++i) trace += a(i, i);
        const Vector fitted = a * z;
        double rss = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            const double r = z[i] - fitted[i];
            rss += r * r;
        }
        const double denom = static_cast<double>(m) - trace;
        sel.scores[li] = denom > 1e-9
                             ? static_cast<double>(m) * rss / (denom * denom)
                             : std::numeric_limits<double>::infinity();
    }

    const auto best = std::min_element(sel.scores.begin(), sel.scores.end());
    sel.best_lambda = sel.lambdas[static_cast<std::size_t>(best - sel.scores.begin())];
    return sel;
}

}  // namespace cellsync
