#include "core/batch_engine.h"

#include <algorithm>
#include <stdexcept>

namespace cellsync {

Batch_engine::Batch_engine(std::shared_ptr<const Basis> basis, const Kernel_grid& kernel,
                           const Cell_cycle_config& config,
                           const Batch_engine_options& options)
    : Batch_engine(make_design_artifacts(std::move(basis), kernel, config,
                                         options.constraints),
                   options) {}

Batch_engine::Batch_engine(std::shared_ptr<const Design_artifacts> artifacts,
                           const Batch_engine_options& options)
    : deconvolver_(std::move(artifacts)), pool_(options.threads) {
    const Annotated_lock lock(run_mutex_);
    thread_count_ = pool_.thread_count();
}

Deconvolution_options Batch_engine::aligned(const Deconvolution_options& options) const {
    Deconvolution_options out = options;
    out.constraints = deconvolver_.artifacts()->constraint_options;
    return out;
}

std::vector<Batch_entry> Batch_engine::run(const std::vector<Measurement_series>& panel,
                                           const Batch_options& options) const {
    return run_with_grids(panel, std::vector<Vector>(panel.size()), options);
}

std::vector<Batch_entry> Batch_engine::run_with_grids(
    const std::vector<Measurement_series>& panel, const std::vector<Vector>& grids,
    const Batch_options& options) const {
    if (panel.empty()) throw std::invalid_argument("Batch_engine: empty panel");
    if (grids.size() != panel.size()) {
        throw std::invalid_argument("Batch_engine: one lambda grid per series required");
    }
    // The same normalization + per-gene task the pipelined experiment
    // runner spawns as task-graph nodes: results are identical by
    // construction whichever pool executes them.
    const Batch_options resolved = resolve_batch_options(artifacts(), options);

    std::vector<Batch_entry> out(panel.size());
    const Annotated_lock run_lock(run_mutex_);
    pool_.parallel_for(panel.size(), [&](std::size_t g) {
        const Vector& grid = grids[g].empty() ? resolved.lambda_grid : grids[g];
        out[g] = deconvolve_one(deconvolver_, panel[g], grid, resolved);
    });
    return out;
}

Lambda_selection Batch_engine::cross_validate(const Measurement_series& series,
                                              const Deconvolution_options& base_options,
                                              const Vector& lambda_grid, std::size_t folds,
                                              std::uint64_t seed) const {
    series.validate();
    if (lambda_grid.empty()) throw std::invalid_argument("Batch_engine: empty lambda grid");
    if (folds < 2) throw std::invalid_argument("Batch_engine: need at least 2 folds");
    const std::size_t m = series.size();
    folds = std::min(folds, m);
    const std::vector<std::size_t> perm = kfold_permutation(m, seed);

    const Deconvolution_options effective = aligned(base_options);
    Lambda_selection sel;
    sel.method = "kfold";
    sel.lambdas = lambda_grid;
    sel.scores.assign(lambda_grid.size(), 0.0);
    const Annotated_lock run_lock(run_mutex_);
    pool_.parallel_for(lambda_grid.size(), [&](std::size_t li) {
        sel.scores[li] = kfold_lambda_score(deconvolver_, series, effective, perm, folds,
                                            lambda_grid[li]);
    });

    const auto best = std::min_element(sel.scores.begin(), sel.scores.end());
    sel.best_lambda = sel.lambdas[static_cast<std::size_t>(best - sel.scores.begin())];
    return sel;
}

Confidence_band Batch_engine::bootstrap(const Measurement_series& series,
                                        const Deconvolution_options& options,
                                        const Vector& phi_grid,
                                        const Bootstrap_options& bootstrap_options) const {
    const Annotated_lock run_lock(run_mutex_);
    return bootstrap_confidence_band(deconvolver_, series, aligned(options), phi_grid,
                                     bootstrap_options, pool_);
}

}  // namespace cellsync
