// Residual-bootstrap uncertainty quantification for the deconvolved
// profile.
//
// The point estimate f_hat(phi) answers "what is the synchronized
// expression"; downstream uses (parameter estimation, Sec 5) also need
// "how sure are we". This module builds pointwise confidence bands by the
// standardized residual bootstrap: refit on resampled measurement noise
// and collect quantiles of f*(phi) per phase point. This is an extension
// beyond the paper, motivated by its parameter-estimation programme.
#pragma once

#include <cstdint>

#include "core/deconvolver.h"
#include "core/worker_pool.h"

namespace cellsync {

/// Bootstrap controls.
struct Bootstrap_options {
    std::size_t replicates = 200;   ///< number of bootstrap refits
    double coverage = 0.90;         ///< central coverage of the band
    std::uint64_t seed = 1337;      ///< resampling RNG seed
    /// Refits that fail (QP infeasible on a pathological resample) are
    /// skipped; if more than this fraction fail, the bootstrap throws.
    double max_failure_fraction = 0.10;

    /// Throws std::invalid_argument for nonsensical settings.
    void validate() const;
};

/// Pointwise confidence band for f(phi) on a phase grid.
struct Confidence_band {
    Vector phi;        ///< evaluation grid
    Vector lower;      ///< lower band edge per point
    Vector median;     ///< bootstrap median per point
    Vector upper;      ///< upper band edge per point
    Vector point;      ///< the original (non-bootstrap) estimate
    std::size_t replicates_used = 0;

    /// Mean band width over the grid (a scalar uncertainty summary).
    double mean_width() const;

    /// True if the band contains `truth(phi)` at every grid point — used
    /// by validation studies where the truth is known.
    bool contains(const std::function<double(double)>& truth) const;

    /// Fraction of grid points whose band contains the truth.
    double coverage_fraction(const std::function<double(double)>& truth) const;
};

/// Standardized residual bootstrap around a fitted deconvolution.
///
/// Fits once, forms standardized residuals (G - Ghat)/sigma, then for each
/// replicate draws residuals with replacement, synthesizes
/// G* = Ghat + sigma * r*, refits with the same options, and records
/// f*(phi) on the grid. Replicate r draws from its own
/// Rng(mix_seed(seed, r)), so the band is a pure function of the options —
/// independent of thread count and scheduling. Throws
/// std::invalid_argument on bad options/grid and std::runtime_error if too
/// many refits fail.
Confidence_band bootstrap_confidence_band(const Deconvolver& deconvolver,
                                          const Measurement_series& series,
                                          const Deconvolution_options& options,
                                          const Vector& phi_grid,
                                          const Bootstrap_options& bootstrap = {});

/// Same bootstrap with the replicate refits distributed over a worker
/// pool (the Batch_engine entry point). Bit-for-bit identical to the
/// serial overload for any pool size.
Confidence_band bootstrap_confidence_band(const Deconvolver& deconvolver,
                                          const Measurement_series& series,
                                          const Deconvolution_options& options,
                                          const Vector& phi_grid,
                                          const Bootstrap_options& bootstrap,
                                          Worker_pool& pool);

}  // namespace cellsync
