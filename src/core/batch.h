// Batch deconvolution of multiple genes against one shared kernel.
//
// The paper applies the method to "a set of Caulobacter genes involved in
// regulating the cell cycle": the kernel Q(phi, t) is a property of the
// population, not the gene, so one simulation serves every series sampled
// at the same times. This module defines the per-gene unit of work and the
// serial batch runner; Batch_engine (core/batch_engine.h) distributes the
// same unit over a worker pool.
#pragma once

#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "core/cross_validation.h"
#include "core/deconvolver.h"

namespace cellsync {

/// Per-gene outcome of a batch run.
struct Batch_entry {
    std::string label;
    std::optional<Single_cell_estimate> estimate;  ///< empty if the gene failed
    double lambda = 0.0;
    /// Failure reason when estimate is empty, in the form
    /// "gene '<label>' [<exception type>]: <message>" so a panel report
    /// pinpoints both the series and the failure class.
    std::string error;
};

/// Batch controls.
struct Batch_options {
    Deconvolution_options deconvolution;
    Vector lambda_grid;         ///< empty -> default_lambda_grid()
    std::size_t cv_folds = 5;
    bool select_lambda = true;  ///< per-gene CV; else deconvolution.lambda
    std::uint64_t cv_seed = 77; ///< fold-shuffle seed (per gene, thread-invariant)
};

/// Demangled (where the ABI allows) dynamic type name of an exception —
/// the `[<exception type>]` part of a labeled task error. Shared by the
/// batch runner and the streaming session so every per-gene failure is
/// reported in the same format.
std::string exception_type_name(const std::exception& e);

/// "gene '<label>' [<exception type>]: <message>" — the uniform labeled
/// failure string stored in Batch_entry::error and Stream_update::error.
std::string labeled_task_error(const std::string& label, const std::exception& e);

/// Normalize batch options against a design: pin the constraint geometry
/// to the artifacts' (so the design's cached constraint blocks are always
/// the ones used) and resolve an empty lambda_grid to
/// default_lambda_grid(). Batch_engine::run_with_grids and the pipelined
/// experiment runner both normalize through this before spawning per-gene
/// tasks, so their per-gene inputs — and therefore results — are
/// identical by construction.
Batch_options resolve_batch_options(const Design_artifacts& artifacts,
                                    const Batch_options& options);

/// Deconvolve one series: per-gene lambda CV (when enabled) plus the
/// constrained estimate. Failures land in the entry's `error` instead of
/// throwing — this is the task the serial runner and the parallel engine
/// share, so their per-gene results are identical by construction.
/// `lambda_grid` must already be resolved (non-empty).
Batch_entry deconvolve_one(const Deconvolver& deconvolver, const Measurement_series& series,
                           const Vector& lambda_grid, const Batch_options& options);

/// Deconvolve each series against the shared deconvolver, serially. Series
/// that fail validation or estimation are reported in their entry's
/// `error` instead of aborting the batch. Throws std::invalid_argument
/// only if the panel is empty.
std::vector<Batch_entry> deconvolve_batch(const Deconvolver& deconvolver,
                                          const std::vector<Measurement_series>& panel,
                                          const Batch_options& options = {});

/// Phase of maximal expression per successful gene — the quantity used to
/// order cell-cycle-regulated genes into a transcriptional program.
struct Peak_summary {
    std::string label;
    double peak_phi = 0.0;
    double peak_value = 0.0;
};

/// Extract peak phases from a batch result (skips failed entries),
/// sorted by peak phase ascending.
std::vector<Peak_summary> peak_ordering(const std::vector<Batch_entry>& batch,
                                        std::size_t grid_points = 201);

}  // namespace cellsync
