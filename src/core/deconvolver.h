// The deconvolution estimator — the paper's core contribution.
//
// Given population measurements G(t_m), a simulated kernel Q(phi, t), and a
// spline basis for the unknown single-cell profile, the estimator minimizes
//
//   C(lambda) = sum_m (G(t_m) - Ghat(t_m))^2 / sigma_m^2
//             + lambda * integral f''(phi)^2 dphi              (paper Eq 5)
//
// over basis coefficients alpha, subject to positivity, RNA conservation
// across division, and transcription-rate continuity (paper Secs 2.3, 3.2).
// The problem is a convex QP solved through the pluggable solver layer
// (numerics/qp_backend.h); all gene-independent precomputation lives in a
// shared Design_artifacts (core/design.h).
#pragma once

#include <memory>

#include "core/design.h"
#include "io/measurement.h"
#include "numerics/qp_backend.h"
#include "population/kernel_builder.h"
#include "spline/basis.h"

namespace cellsync {

/// Estimation options.
struct Deconvolution_options {
    double lambda = 1e-3;            ///< smoothness weight (paper Eq 5)
    Constraint_options constraints;  ///< which physical constraints to enforce
    double ridge = 1e-9;             ///< tiny Tikhonov term stabilizing the QP Hessian
    Qp_options qp;                   ///< active-set solver controls
    /// Solver backend for the constrained QP. `automatic` uses the
    /// prepared active-set path (the NNLS fast path only applies to
    /// coefficient-positivity problems, which the spline constraints are
    /// not); `nnls` forces the projected solver and throws when the
    /// problem structure does not qualify.
    Qp_backend backend = Qp_backend::automatic;
};

/// The recovered single-cell expression profile f(phi) with fit
/// diagnostics. The estimate is a callable function of phase.
class Single_cell_estimate {
  public:
    Single_cell_estimate(std::shared_ptr<const Basis> basis, Vector alpha);

    /// f(phi).
    double operator()(double phi) const;

    /// f'(phi).
    double derivative(double phi) const;

    /// Sample f on a phase grid.
    Vector sample(const Vector& phi_grid) const;

    /// Expression mapped to "simulated time": f(t / cycle_minutes), the
    /// scaling used for the paper's Figure 5 bottom panel.
    Vector sample_time(const Vector& t_minutes, double cycle_minutes) const;

    const Vector& coefficients() const { return alpha_; }
    const Basis& basis() const { return *basis_; }

    // -- fit diagnostics (filled by the Deconvolver) --
    double lambda = 0.0;          ///< smoothness weight used
    double chi_squared = 0.0;     ///< weighted data misfit at the optimum
    double roughness = 0.0;       ///< integral f''^2 at the optimum
    double objective = 0.0;       ///< chi_squared + lambda * roughness
    Vector fitted;                ///< Ghat(t_m) at the measurement times
    std::size_t qp_iterations = 0;///< active-set iterations (0 = unconstrained path)
    std::size_t active_constraints = 0;  ///< binding positivity constraints

  private:
    std::shared_ptr<const Basis> basis_;
    Vector alpha_;
};

/// Deconvolution engine bound to one kernel and one basis.
///
/// The measurement series passed to estimate() must sample exactly the
/// kernel's time grid (that is how the paper's pipeline operates: the
/// kernel is built at the experiment's sampling times).
///
/// All gene-independent state lives in an immutable Design_artifacts that
/// can be shared across Deconvolver instances, the Batch_engine, and
/// threads. Estimation with constraint options matching the artifacts
/// reuses the cached constraint blocks and their QP reduction; differing
/// options fall back to a per-call rebuild (the pre-engine behavior).
class Deconvolver {
  public:
    /// Build fresh artifacts for the default constraint geometry.
    /// Throws std::invalid_argument on a null basis.
    Deconvolver(std::shared_ptr<const Basis> basis, const Kernel_grid& kernel,
                const Cell_cycle_config& config);

    /// Bind to artifacts precomputed elsewhere (Batch_engine, tests).
    explicit Deconvolver(std::shared_ptr<const Design_artifacts> artifacts);

    /// Kernel matrix K(m, i) = integral Q(phi, t_m) psi_i(phi) dphi.
    const Matrix& kernel_matrix() const { return artifacts_->kernel_matrix; }

    /// The same kernel behind the layout seam (packed or dense-backed
    /// banded, decided per matrix by occupancy — the input of the
    /// banded/packed product kernels).
    const Design_matrix& kernel_design() const { return artifacts_->kernel_design; }

    /// Penalty Gram matrix Omega.
    const Matrix& penalty() const { return artifacts_->penalty; }

    /// Kernel time grid (the required measurement times).
    const Vector& times() const { return artifacts_->times; }

    const Basis& basis() const { return *artifacts_->basis; }
    std::shared_ptr<const Basis> basis_ptr() const { return artifacts_->basis; }
    const Cell_cycle_config& config() const { return artifacts_->config; }

    /// The shared design-level precomputation.
    const std::shared_ptr<const Design_artifacts>& artifacts() const { return artifacts_; }

    /// Full constrained estimate (the paper's method).
    /// Throws std::invalid_argument if the series does not match the kernel
    /// times; propagates QP failures as std::runtime_error.
    Single_cell_estimate estimate(const Measurement_series& series,
                                  const Deconvolution_options& options = {}) const;

    /// Unconstrained ridge estimate (smoothness only) — the baseline the
    /// constraint ablation compares against, and the estimator underlying
    /// GCV lambda selection.
    Single_cell_estimate estimate_unconstrained(const Measurement_series& series,
                                                double lambda, double ridge = 1e-9) const;

    /// Constrained estimate restricted to a subset of measurement rows
    /// (used by k-fold cross-validation). `rows` indexes into the kernel
    /// time grid; duplicates are rejected.
    Single_cell_estimate estimate_on_rows(const Measurement_series& series,
                                          const std::vector<std::size_t>& rows,
                                          const Deconvolution_options& options) const;

    /// Hat (influence) matrix A(lambda) of the unconstrained estimator in
    /// whitened measurement space; tr(A) is the effective dof used by GCV.
    Matrix hat_matrix(const Measurement_series& series, double lambda,
                      double ridge = 1e-9) const;

  private:
    void check_series(const Measurement_series& series) const;
    Single_cell_estimate package(Vector alpha, const Measurement_series& series,
                                 double lambda) const;

    std::shared_ptr<const Design_artifacts> artifacts_;
};

}  // namespace cellsync
