#include "core/noise.h"

#include <cmath>
#include <stdexcept>

#include "numerics/statistics.h"

namespace cellsync {

void Noise_model::validate() const {
    if (level < 0.0) throw std::invalid_argument("Noise_model: level must be non-negative");
    if (sigma_floor < 0.0) {
        throw std::invalid_argument("Noise_model: sigma_floor must be non-negative");
    }
}

std::string to_string(Noise_type type) {
    switch (type) {
        case Noise_type::none: return "none";
        case Noise_type::relative_gaussian: return "relative-gaussian";
        case Noise_type::absolute_gaussian: return "absolute-gaussian";
        case Noise_type::lognormal: return "lognormal";
    }
    throw std::invalid_argument("to_string(Noise_type): unknown value");
}

Measurement_series add_noise(const Measurement_series& clean, const Noise_model& model,
                             Rng& rng) {
    clean.validate();
    model.validate();

    Measurement_series noisy = clean;
    Vector abs_values(clean.values.size());
    for (std::size_t i = 0; i < clean.values.size(); ++i) abs_values[i] = std::abs(clean.values[i]);
    const double scale = mean(abs_values);

    for (std::size_t m = 0; m < clean.size(); ++m) {
        double sigma = model.sigma_floor;
        switch (model.type) {
            case Noise_type::none:
                sigma = clean.sigmas[m];  // pass-through keeps the caller's weights
                break;
            case Noise_type::relative_gaussian:
                sigma = std::max(model.level * abs_values[m], model.sigma_floor);
                noisy.values[m] = clean.values[m] + rng.normal(0.0, sigma);
                break;
            case Noise_type::absolute_gaussian:
                sigma = std::max(model.level * scale, model.sigma_floor);
                noisy.values[m] = clean.values[m] + rng.normal(0.0, sigma);
                break;
            case Noise_type::lognormal:
                noisy.values[m] = clean.values[m] * std::exp(rng.normal(0.0, model.level));
                sigma = std::max(model.level * abs_values[m], model.sigma_floor);
                break;
        }
        noisy.sigmas[m] = std::max(sigma, model.sigma_floor);
    }
    noisy.validate();
    return noisy;
}

}  // namespace cellsync
