// Scoped trace spans and the Chrome trace-event writer.
//
// `Trace_recorder` is a process-wide collector of `Trace_event`s. Each
// recording thread owns a private buffer (registered once, found via a
// thread_local, never deallocated) so span capture is one uncontended
// lock plus a vector push; collection walks every buffer under the
// registry lock. Recording is off by default — `Trace_span` costs one
// relaxed atomic load when disabled — and is switched on by the CLI's
// `--trace` flag (or a test) around the traced region.
//
// The writer serializes to the Chrome trace-event JSON format: an
// object with a `traceEvents` array of complete ("ph":"X") events plus
// thread-name metadata, loadable directly in chrome://tracing or
// https://ui.perfetto.dev. Timestamps are microseconds relative to the
// moment recording was enabled.
//
// Under -DCELLSYNC_TELEMETRY=OFF every class keeps its signature with
// empty inline bodies: spans vanish, the writer emits a valid empty
// trace (so `--trace` still produces well-formed output).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/telemetry.h"
#include "core/thread_annotations.h"

namespace cellsync::telemetry {

struct Trace_event {
    std::string name;
    std::string category;
    /// Preformatted inner-object content, e.g. `"index":3,"gene":"ftsZ"`
    /// (no surrounding braces); empty for no args. Build with arg().
    std::string args_json;
    std::int64_t start_ns = 0;  ///< Clock::now_ns() at span open
    std::int64_t duration_ns = 0;
    std::uint32_t tid = 0;  ///< registration-order thread id, dense from 0
};

#if CELLSYNC_TELEMETRY

/// `"key":"escaped-value"` / `"key":123` fragments for Trace_span args.
std::string arg(std::string_view key, std::string_view value);
std::string arg(std::string_view key, std::int64_t value);

/// Joins two arg() fragments (either may be empty).
std::string args_join(std::string a, std::string_view b);

class Trace_recorder {
  public:
    /// The process-wide recorder every Trace_span reports to.
    static Trace_recorder& instance();

    /// Drops previously collected events and starts recording; the
    /// enable instant becomes the trace's zero timestamp.
    void enable();
    void disable();
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    std::int64_t epoch_ns() const { return epoch_ns_.load(std::memory_order_relaxed); }

    /// Appends one finished span to the calling thread's buffer
    /// (registering the thread on first use). Callable from any thread.
    void record(Trace_event event);

    /// Copies out every buffered event, ordered by (tid, start, name).
    std::vector<Trace_event> collect() const;

    /// Serializes collected events as Chrome trace-event JSON.
    void write_chrome_trace(std::ostream& out) const;

    Trace_recorder() = default;
    Trace_recorder(const Trace_recorder&) = delete;
    Trace_recorder& operator=(const Trace_recorder&) = delete;

  private:
    struct Thread_buffer {
        Annotated_mutex mutex;
        std::vector<Trace_event> events CELLSYNC_GUARDED_BY(mutex);
        std::uint32_t tid = 0;
    };

    Thread_buffer& local_buffer();

    mutable Annotated_mutex registry_mutex_;
    /// Buffers are created once per recording thread and never removed,
    /// so the thread_local pointers into them stay valid for the
    /// process lifetime (the recorder itself is intentionally leaked).
    std::vector<std::unique_ptr<Thread_buffer>> buffers_
        CELLSYNC_GUARDED_BY(registry_mutex_);
    std::atomic<bool> enabled_{false};
    std::atomic<std::int64_t> epoch_ns_{0};
};

/// RAII span: captures the recorder's enabled state and the start time
/// at construction, records name/category/args/duration at destruction.
/// When recording is disabled the constructor is one atomic load and
/// the strings are never copied.
class Trace_span {
  public:
    Trace_span(std::string_view name, std::string_view category)
        : Trace_span(name, category, std::string()) {}
    Trace_span(std::string_view name, std::string_view category, std::string args_json)
        : active_(Trace_recorder::instance().enabled()) {
        if (active_) {
            name_ = name;
            category_ = category;
            args_ = std::move(args_json);
            start_ns_ = Clock::now_ns();
        }
    }
    ~Trace_span() {
        if (active_) {
            Trace_recorder::instance().record({std::move(name_), std::move(category_),
                                               std::move(args_), start_ns_,
                                               Clock::now_ns() - start_ns_, 0});
        }
    }

    Trace_span(const Trace_span&) = delete;
    Trace_span& operator=(const Trace_span&) = delete;

  private:
    std::string name_;
    std::string category_;
    std::string args_;
    std::int64_t start_ns_ = 0;
    bool active_;
};

#else  // !CELLSYNC_TELEMETRY

// Args helpers degrade to empty strings so span call sites (which the
// stub Trace_span discards entirely) inline away.
inline std::string arg(std::string_view, std::string_view) { return {}; }
inline std::string arg(std::string_view, std::int64_t) { return {}; }
inline std::string args_join(std::string, std::string_view) { return {}; }

class Trace_recorder {
  public:
    static Trace_recorder& instance();

    void enable() {}
    void disable() {}
    bool enabled() const { return false; }
    std::int64_t epoch_ns() const { return 0; }

    void record(Trace_event) {}
    std::vector<Trace_event> collect() const { return {}; }
    void write_chrome_trace(std::ostream& out) const;

    Trace_recorder() = default;
    Trace_recorder(const Trace_recorder&) = delete;
    Trace_recorder& operator=(const Trace_recorder&) = delete;
};

class Trace_span {
  public:
    Trace_span(std::string_view, std::string_view) {}
    Trace_span(std::string_view, std::string_view, std::string) {}

    Trace_span(const Trace_span&) = delete;
    Trace_span& operator=(const Trace_span&) = delete;
};

#endif  // CELLSYNC_TELEMETRY

}  // namespace cellsync::telemetry
