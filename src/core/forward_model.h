// Forward model: generate population-level measurements from a known
// single-cell profile (paper Sec 4.1's validation workflow).
//
// "A particular model of cell-cycle regulated expression in single cells
// is passed through the forward model using the kernel function Q(phi, t)
// in order to generate simulated population-level data."
#pragma once

#include <functional>
#include <string>

#include "io/measurement.h"
#include "core/noise.h"
#include "population/kernel_builder.h"

namespace cellsync {

/// Noiseless population series: G(t_m) = integral Q(phi, t_m) f(phi) dphi
/// at every kernel time, with unit sigmas.
Measurement_series forward_measurements(const Kernel_grid& kernel,
                                        const std::function<double(double)>& profile,
                                        std::string label = "synthetic");

/// Forward model plus measurement noise; the returned sigmas reflect the
/// noise model (and become the weights in the estimation criterion).
Measurement_series forward_measurements_noisy(const Kernel_grid& kernel,
                                              const std::function<double(double)>& profile,
                                              const Noise_model& noise, Rng& rng,
                                              std::string label = "synthetic");

}  // namespace cellsync
