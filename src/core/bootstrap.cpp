#include "core/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "numerics/rng.h"
#include "numerics/statistics.h"

namespace cellsync {

void Bootstrap_options::validate() const {
    if (replicates < 10) {
        throw std::invalid_argument("Bootstrap_options: need at least 10 replicates");
    }
    if (!(coverage > 0.0 && coverage < 1.0)) {
        throw std::invalid_argument("Bootstrap_options: coverage must lie in (0, 1)");
    }
    if (!(max_failure_fraction >= 0.0 && max_failure_fraction < 1.0)) {
        throw std::invalid_argument("Bootstrap_options: bad max_failure_fraction");
    }
}

double Confidence_band::mean_width() const {
    if (phi.empty()) return 0.0;
    double w = 0.0;
    for (std::size_t i = 0; i < phi.size(); ++i) w += upper[i] - lower[i];
    return w / static_cast<double>(phi.size());
}

bool Confidence_band::contains(const std::function<double(double)>& truth) const {
    return coverage_fraction(truth) >= 1.0;
}

double Confidence_band::coverage_fraction(const std::function<double(double)>& truth) const {
    if (phi.empty()) return 0.0;
    std::size_t inside = 0;
    for (std::size_t i = 0; i < phi.size(); ++i) {
        const double v = truth(phi[i]);
        if (v >= lower[i] && v <= upper[i]) ++inside;
    }
    return static_cast<double>(inside) / static_cast<double>(phi.size());
}

Confidence_band bootstrap_confidence_band(const Deconvolver& deconvolver,
                                          const Measurement_series& series,
                                          const Deconvolution_options& options,
                                          const Vector& phi_grid,
                                          const Bootstrap_options& bootstrap) {
    Worker_pool serial(1);
    return bootstrap_confidence_band(deconvolver, series, options, phi_grid, bootstrap,
                                     serial);
}

Confidence_band bootstrap_confidence_band(const Deconvolver& deconvolver,
                                          const Measurement_series& series,
                                          const Deconvolution_options& options,
                                          const Vector& phi_grid,
                                          const Bootstrap_options& bootstrap,
                                          Worker_pool& pool) {
    bootstrap.validate();
    if (phi_grid.empty()) {
        throw std::invalid_argument("bootstrap_confidence_band: empty phase grid");
    }

    // Base fit and standardized residuals.
    const Single_cell_estimate base = deconvolver.estimate(series, options);
    const std::size_t m = series.size();

    // Phase-grid design, built once and shared by every replicate: each
    // replicate's profile sampling becomes one (banded or packed, by
    // occupancy) mat-vec instead of a per-point basis evaluation,
    // bit-identical to estimate.sample() (same increasing-index
    // accumulation per grid point).
    const Design_matrix phi_design = deconvolver.basis().design_matrix_auto(phi_grid);
    Vector std_residuals(m);
    for (std::size_t i = 0; i < m; ++i) {
        std_residuals[i] = (series.values[i] - base.fitted[i]) / series.sigmas[i];
    }
    // Center so resampling does not inject a bias term.
    const double residual_mean = mean(std_residuals);
    for (double& r : std_residuals) r -= residual_mean;

    // Replicates are independent tasks writing into their own slot, each
    // seeded from (seed, replicate index): the result cannot depend on
    // thread count or scheduling.
    std::vector<std::optional<Vector>> slots(bootstrap.replicates);
    pool.parallel_for(bootstrap.replicates, [&](std::size_t rep) {
        Rng rng(mix_seed(bootstrap.seed, rep));
        Measurement_series resampled = series;
        for (std::size_t i = 0; i < m; ++i) {
            resampled.values[i] =
                base.fitted[i] + series.sigmas[i] * std_residuals[rng.index(m)];
        }
        try {
            const Single_cell_estimate refit = deconvolver.estimate(resampled, options);
            slots[rep] = phi_design * refit.coefficients();
        } catch (const std::runtime_error&) {
            // Failed refit: slot stays empty and is counted below.
        }
    });

    std::vector<Vector> samples;  // per successful replicate: f*(phi_grid)
    samples.reserve(bootstrap.replicates);
    for (std::optional<Vector>& slot : slots) {
        if (slot.has_value()) samples.push_back(std::move(*slot));
    }
    const std::size_t failures = bootstrap.replicates - samples.size();
    if (static_cast<double>(failures) >
        bootstrap.max_failure_fraction * static_cast<double>(bootstrap.replicates)) {
        throw std::runtime_error("bootstrap_confidence_band: too many refit failures (" +
                                 std::to_string(failures) + "/" +
                                 std::to_string(bootstrap.replicates) + ")");
    }

    Confidence_band band;
    band.phi = phi_grid;
    band.point = phi_design * base.coefficients();
    band.replicates_used = samples.size();
    band.lower.resize(phi_grid.size());
    band.median.resize(phi_grid.size());
    band.upper.resize(phi_grid.size());

    const double tail = 0.5 * (1.0 - bootstrap.coverage);
    Vector column(samples.size());
    for (std::size_t p = 0; p < phi_grid.size(); ++p) {
        for (std::size_t s = 0; s < samples.size(); ++s) column[s] = samples[s][p];
        band.lower[p] = quantile(column, tail);
        band.median[p] = quantile(column, 0.5);
        band.upper[p] = quantile(column, 1.0 - tail);
    }
    return band;
}

}  // namespace cellsync
