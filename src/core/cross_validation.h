// Selection of the smoothness weight lambda (paper Eq 5: "selected via
// cross validation", citing Craven & Wahba 1978).
//
// Two selectors are provided:
//  * k-fold cross-validation on the full constrained estimator — the
//    default, honest about the constraints;
//  * generalized cross-validation (GCV) on the unconstrained ridge path —
//    the classical Craven-Wahba criterion, cheap enough for dense lambda
//    grids.
#pragma once

#include <cstdint>
#include <string>

#include "core/deconvolver.h"

namespace cellsync {

/// Outcome of a lambda sweep.
struct Lambda_selection {
    double best_lambda = 0.0;
    Vector lambdas;    ///< grid searched
    Vector scores;     ///< CV or GCV score per grid point (lower is better)
    std::string method;///< "kfold" or "gcv"
};

/// Logarithmically spaced lambda grid (default 25 points, 1e-8 .. 1e2).
/// Throws std::invalid_argument for count < 2 or non-positive bounds.
Vector default_lambda_grid(std::size_t count = 25, double lo = 1e-8, double hi = 1e2);

/// k-fold CV: folds are contiguous-free random partitions of the
/// measurement indices (seeded). Each fold is predicted from a model
/// fitted on the remaining rows with the full constrained estimator; the
/// score is the weighted held-out squared error. `folds` is clamped to the
/// measurement count (leave-one-out at the limit).
/// Throws std::invalid_argument for folds < 2 or an empty grid.
Lambda_selection select_lambda_kfold(const Deconvolver& deconvolver,
                                     const Measurement_series& series,
                                     const Deconvolution_options& base_options,
                                     const Vector& lambda_grid, std::size_t folds = 5,
                                     std::uint64_t seed = 77);

/// GCV: V(lambda) = m * ||(I - A) z||^2 / tr(I - A)^2 in whitened space,
/// with A the unconstrained hat matrix. The normal-equation blocks are
/// assembled once and swept across the grid through a cached
/// Kkt_factorization.
/// Throws std::invalid_argument for an empty grid.
Lambda_selection select_lambda_gcv(const Deconvolver& deconvolver,
                                   const Measurement_series& series,
                                   const Vector& lambda_grid);

/// The fold assignment used by select_lambda_kfold: a seeded shuffle of
/// the measurement indices (fold of perm[p] is p % folds).
std::vector<std::size_t> kfold_permutation(std::size_t count, std::uint64_t seed);

/// Mean weighted held-out squared error of one lambda under a fixed fold
/// assignment — the unit of work shared by the serial selector and
/// Batch_engine's parallel sweep. Returns +inf when a fold's constrained
/// fit fails (that lambda is disqualified).
double kfold_lambda_score(const Deconvolver& deconvolver, const Measurement_series& series,
                          const Deconvolution_options& base_options,
                          const std::vector<std::size_t>& permutation, std::size_t folds,
                          double lambda);

}  // namespace cellsync
