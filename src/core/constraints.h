// Assembly of the physical constraints on the single-cell estimate
// (paper Secs 2.3 and 3.2) in basis-coefficient space.
//
// With f(phi) = sum_i alpha_i psi_i(phi), every constraint becomes linear
// in alpha:
//
//  * positivity         —  B alpha >= 0 for a design matrix B on a phase grid
//  * RNA conservation   —  integral(w(phi) f(phi)) = 0 with
//                          w = delta(1-phi) - 0.4 delta(phi) - 0.6 p(phi)
//                          (concentration balance across the 40/60 division)
//  * rate continuity    —  integral(w1 f) = integral(w2 f') with w1, w2 of
//                          paper Eqs 18-19 (the 2011 update: transcript
//                          production rate continuous across division)
//
// p(phi) is the Gaussian density of the SW->ST transition phase.
#pragma once

#include "biology/cell_cycle.h"
#include "numerics/matrix.h"
#include "spline/basis.h"

namespace cellsync {

/// Which constraints to enforce (all on by default, as in the paper).
struct Constraint_options {
    bool positivity = true;
    bool conservation = true;      ///< RNA conservation across division
    bool rate_continuity = true;   ///< 2011 transcription-rate smoothness update
    std::size_t positivity_points = 101;  ///< uniform grid resolution for f >= 0

    /// Same geometry? Lets cached constraint blocks be reused per design.
    friend bool operator==(const Constraint_options& a, const Constraint_options& b) {
        return a.positivity == b.positivity && a.conservation == b.conservation &&
               a.rate_continuity == b.rate_continuity &&
               (!a.positivity || a.positivity_points == b.positivity_points);
    }
    friend bool operator!=(const Constraint_options& a, const Constraint_options& b) {
        return !(a == b);
    }
};

/// Linear constraint blocks for the QP: equality rows (A alpha = 0) and
/// inequality rows (C alpha >= 0).
struct Constraint_set {
    Matrix equality;    // rows: one per active equality constraint
    Matrix inequality;  // rows: positivity grid
    Vector equality_rhs;   // zeros (kept explicit for the QP interface)
    Vector inequality_rhs; // zeros
};

/// RNA-conservation row: a_i = psi_i(1) - 0.4 psi_i(0)
/// - 0.6 integral(p(phi) psi_i(phi) dphi).
Vector conservation_row(const Basis& basis, const Cell_cycle_config& config);

/// Transcription-rate-continuity row (paper Eqs 17-19):
/// r_i = beta0 psi_i(1) - beta0 psi_i(0) - integral(beta p psi_i)
///     - 0.4 psi_i'(0) - 0.6 integral(p psi_i') + psi_i'(1).
Vector rate_continuity_row(const Basis& basis, const Cell_cycle_config& config);

/// beta0 = integral(beta(phi) p(phi) dphi) with beta(phi) = 0.4/(1-phi)
/// (paper Eq 14).
double beta0(const Cell_cycle_config& config);

/// Assemble the full constraint set for a basis and cell-cycle model.
Constraint_set build_constraints(const Basis& basis, const Cell_cycle_config& config,
                                 const Constraint_options& options = {});

}  // namespace cellsync
