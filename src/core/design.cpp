#include "core/design.h"

#include <stdexcept>

namespace cellsync {

std::shared_ptr<const Design_artifacts> make_design_artifacts(
    std::shared_ptr<const Basis> basis, const Kernel_grid& kernel,
    const Cell_cycle_config& config, const Constraint_options& constraint_options) {
    if (!basis) throw std::invalid_argument("make_design_artifacts: null basis");
    config.validate();

    auto artifacts = std::make_shared<Design_artifacts>();
    artifacts->basis = std::move(basis);
    artifacts->config = config;
    artifacts->times = kernel.times();
    artifacts->kernel_matrix = kernel.basis_matrix(*artifacts->basis);
    artifacts->kernel_design = Design_matrix(artifacts->kernel_matrix);
    artifacts->penalty = artifacts->basis->penalty_matrix();
    artifacts->constraint_options = constraint_options;
    artifacts->constraints = build_constraints(*artifacts->basis, config, constraint_options);
    artifacts->constraint_prep = std::make_shared<const Qp_constraint_prep>(
        artifacts->basis->size(), artifacts->constraints.equality,
        artifacts->constraints.equality_rhs, artifacts->constraints.inequality,
        artifacts->constraints.inequality_rhs);
    return artifacts;
}

}  // namespace cellsync
