#include "core/forward_model.h"

namespace cellsync {

Measurement_series forward_measurements(const Kernel_grid& kernel,
                                        const std::function<double(double)>& profile,
                                        std::string label) {
    return Measurement_series::with_unit_sigma(std::move(label), kernel.times(),
                                               kernel.apply(profile));
}

Measurement_series forward_measurements_noisy(const Kernel_grid& kernel,
                                              const std::function<double(double)>& profile,
                                              const Noise_model& noise, Rng& rng,
                                              std::string label) {
    return add_noise(forward_measurements(kernel, profile, std::move(label)), noise, rng);
}

}  // namespace cellsync
