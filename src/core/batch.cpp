#include "core/batch.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <typeinfo>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace cellsync {

std::string exception_type_name(const std::exception& e) {
    const char* raw = typeid(e).name();
#if defined(__GNUG__)
    int status = 0;
    char* demangled = abi::__cxa_demangle(raw, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
        std::string out(demangled);
        std::free(demangled);
        return out;
    }
#endif
    return raw;
}

std::string labeled_task_error(const std::string& label, const std::exception& e) {
    const std::string shown = label.empty() ? "<unlabeled>" : label;
    return "gene '" + shown + "' [" + exception_type_name(e) + "]: " + e.what();
}

Batch_options resolve_batch_options(const Design_artifacts& artifacts,
                                    const Batch_options& options) {
    Batch_options resolved = options;
    resolved.deconvolution.constraints = artifacts.constraint_options;
    if (resolved.lambda_grid.empty()) resolved.lambda_grid = default_lambda_grid();
    return resolved;
}

Batch_entry deconvolve_one(const Deconvolver& deconvolver, const Measurement_series& series,
                           const Vector& lambda_grid, const Batch_options& options) {
    Batch_entry entry;
    entry.label = series.label;
    try {
        Deconvolution_options deconv = options.deconvolution;
        if (options.select_lambda) {
            const Lambda_selection sel = select_lambda_kfold(
                deconvolver, series, deconv, lambda_grid, options.cv_folds, options.cv_seed);
            deconv.lambda = sel.best_lambda;
        }
        entry.estimate = deconvolver.estimate(series, deconv);
        entry.lambda = deconv.lambda;
    } catch (const std::exception& e) {
        entry.error = labeled_task_error(entry.label, e);
    }
    return entry;
}

std::vector<Batch_entry> deconvolve_batch(const Deconvolver& deconvolver,
                                          const std::vector<Measurement_series>& panel,
                                          const Batch_options& options) {
    if (panel.empty()) throw std::invalid_argument("deconvolve_batch: empty panel");

    const Vector grid =
        options.lambda_grid.empty() ? default_lambda_grid() : options.lambda_grid;

    std::vector<Batch_entry> out;
    out.reserve(panel.size());
    for (const Measurement_series& series : panel) {
        out.push_back(deconvolve_one(deconvolver, series, grid, options));
    }
    return out;
}

std::vector<Peak_summary> peak_ordering(const std::vector<Batch_entry>& batch,
                                        std::size_t grid_points) {
    if (grid_points < 3) throw std::invalid_argument("peak_ordering: grid too small");
    std::vector<Peak_summary> peaks;
    for (const Batch_entry& entry : batch) {
        if (!entry.estimate.has_value()) continue;
        Peak_summary summary;
        summary.label = entry.label;
        for (std::size_t i = 0; i < grid_points; ++i) {
            const double phi =
                static_cast<double>(i) / static_cast<double>(grid_points - 1);
            const double v = (*entry.estimate)(phi);
            if (v > summary.peak_value) {
                summary.peak_value = v;
                summary.peak_phi = phi;
            }
        }
        peaks.push_back(std::move(summary));
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const Peak_summary& a, const Peak_summary& b) {
                  return a.peak_phi < b.peak_phi;
              });
    return peaks;
}

}  // namespace cellsync
