// Shared per-design precomputation for the deconvolution estimator.
//
// Everything the estimator derives from the (basis, kernel, constraint)
// triple — the kernel matrix K, the roughness penalty Omega, the physical
// constraint blocks, and the constraint-geometry reduction used by the QP
// — is independent of the gene being estimated. The seed implementation
// re-derived all of it for every gene, every CV fold, and every bootstrap
// replicate; Design_artifacts computes it exactly once and is shared
// immutably across genes, lambda grid points, replicates, and threads.
#pragma once

#include <memory>

#include "biology/cell_cycle.h"
#include "core/constraints.h"
#include "numerics/banded.h"
#include "numerics/qp_solver.h"
#include "population/kernel_builder.h"
#include "spline/basis.h"

namespace cellsync {

/// Immutable design-level precomputation. Construct via
/// make_design_artifacts(); share via std::shared_ptr — nothing in here
/// depends on the measurement values, so concurrent readers are safe.
struct Design_artifacts {
    std::shared_ptr<const Basis> basis;
    Cell_cycle_config config;
    Vector times;          ///< kernel time grid (required measurement times)
    Matrix kernel_matrix;  ///< K(m, i) = integral Q(phi, t_m) psi_i(phi) dphi
    /// kernel_matrix behind the per-matrix layout seam
    /// (numerics/banded.h Design_matrix): packed storage when the
    /// detected occupancy is at or below packed_occupancy_threshold,
    /// dense-backed banded otherwise — decided once here so every
    /// per-gene Gram / right-hand-side accumulation skips the
    /// structurally zero blocks and very sparse kernels stop paying
    /// dense memory traffic. For a locally-supported basis over a
    /// concentrated kernel the spans are a few columns wide (packed);
    /// for a global basis they cover every column and the kernels
    /// degrade gracefully to the dense-backed work. Consumers that need
    /// the dense K (hat matrix, streaming row reads) use kernel_matrix.
    Design_matrix kernel_design;
    Matrix penalty;        ///< roughness Gram matrix Omega

    Constraint_options constraint_options;  ///< geometry the blocks were built for
    Constraint_set constraints;             ///< equality + positivity blocks
    /// Equality null-space reduction + reduced inequality rows, shared by
    /// every constrained solve against this design.
    std::shared_ptr<const Qp_constraint_prep> constraint_prep;
};

/// Build the artifacts for one (basis, kernel, config, constraints) tuple.
/// Throws std::invalid_argument on a null basis or invalid config.
std::shared_ptr<const Design_artifacts> make_design_artifacts(
    std::shared_ptr<const Basis> basis, const Kernel_grid& kernel,
    const Cell_cycle_config& config, const Constraint_options& constraint_options = {});

}  // namespace cellsync
