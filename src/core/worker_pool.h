// A small std::thread worker pool for the batch deconvolution engine.
//
// The engine's units of work (genes, lambda grid points, bootstrap
// replicates) are independent and deterministic given their index, so the
// pool only needs one primitive: parallel_for over an index range, with
// results written into pre-sized slots by index. That makes every run
// reproducible bit-for-bit regardless of thread count or scheduling.
#ifndef CELLSYNC_CORE_WORKER_POOL_H
#define CELLSYNC_CORE_WORKER_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellsync {

class Worker_pool {
  public:
    /// `threads` is the total parallelism (the calling thread participates
    /// in every parallel_for, so `threads - 1` workers are spawned).
    /// 0 means std::thread::hardware_concurrency().
    explicit Worker_pool(std::size_t threads = 0);
    ~Worker_pool();

    Worker_pool(const Worker_pool&) = delete;
    Worker_pool& operator=(const Worker_pool&) = delete;

    /// Total parallelism (workers + calling thread).
    std::size_t thread_count() const { return workers_.size() + 1; }

    /// Run task(i) for every i in [0, count), distributing indices across
    /// the pool; blocks until all tasks finished. If any task throws, the
    /// first exception is rethrown after the batch drains (remaining tasks
    /// still run). Not reentrant: one parallel_for at a time.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& task);

  private:
    void worker_loop();
    /// Claim-and-run loop shared by workers and the calling thread. Claims
    /// are tagged with the batch generation: a worker descheduled between
    /// waking and claiming must not touch a later batch's counters (or the
    /// by-then-destroyed task of its own batch).
    void drain(const std::function<void(std::size_t)>& task, std::size_t count,
               std::uint64_t generation);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
    const std::function<void(std::size_t)>* task_ = nullptr;
    std::size_t count_ = 0;
    std::size_t next_ = 0;
    std::size_t completed_ = 0;
    std::exception_ptr first_error_;
};

}  // namespace cellsync

#endif  // CELLSYNC_CORE_WORKER_POOL_H
