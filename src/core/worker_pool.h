// A std::thread worker pool executing task graphs deterministically.
//
// The pool's unit of work is an indexed batch: task(i) for i in
// [0, count), each index deterministic given i and writing only into its
// own pre-sized slot, which makes every run reproducible bit-for-bit
// regardless of thread count or scheduling. Historically the pool offered
// exactly one such batch at a time (parallel_for); it now executes whole
// Task_graphs — batches with declared dependencies — claiming (node,
// index) pairs from whichever nodes are ready, so independent phases
// (say, simulating condition k+1's kernel while condition k's solves
// drain) overlap instead of serializing. parallel_for remains as the
// single-node special case of run().
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/task_graph.h"
#include "core/thread_annotations.h"

namespace cellsync {

class Worker_pool {
  public:
    /// `threads` is the total parallelism (the calling thread participates
    /// in every run, so `threads - 1` workers are spawned).
    /// 0 means std::thread::hardware_concurrency().
    explicit Worker_pool(std::size_t threads = 0);
    ~Worker_pool();

    Worker_pool(const Worker_pool&) = delete;
    Worker_pool& operator=(const Worker_pool&) = delete;

    /// Total parallelism (workers + calling thread).
    std::size_t thread_count() const { return workers_.size() + 1; }

    /// Execute the graph; blocks until every node has either completed or
    /// been cancelled. Ready nodes' indices are claimed lowest-node-id
    /// first, so earlier-added nodes get threads first when several are
    /// ready. If any task throws, its node still drains its remaining
    /// indices (so slot-writers never leave holes), but the node is
    /// marked failed and its transitive dependents are cancelled — their
    /// tasks never run. The first exception recorded anywhere in the run
    /// is rethrown after the graph drains. Not reentrant: one run (or
    /// parallel_for) at a time, and graph tasks must not call back into
    /// the same pool.
    void run(const Task_graph& graph);

    /// Run task(i) for every i in [0, count) — run() on a single-node
    /// graph. Same contract as always: blocks until the batch drains,
    /// first exception rethrown, remaining tasks still run after a throw.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& task);

  private:
    /// Per-node execution state for the active run.
    struct Node_state {
        std::size_t waiting_deps = 0;  ///< unresolved dependencies
        bool ready = false;            ///< dependencies satisfied, may claim
        bool resolved = false;         ///< done, failed, or cancelled
        bool failed = false;           ///< a task of this node threw
        bool cancelled = false;        ///< an upstream node failed/cancelled
        std::size_t next = 0;          ///< next unclaimed index
        std::size_t completed = 0;     ///< finished indices
        std::int64_t ready_ns = 0;     ///< telemetry only: claim-eligible instant
    };

    void worker_loop();
    /// Claim-and-run loop shared by workers and the calling thread. Claims
    /// are tagged with the run generation: a worker descheduled between
    /// waking and claiming must not touch a later run's state (or the
    /// by-then-destroyed graph of its own run).
    void drain(const Task_graph& graph, std::uint64_t generation);
    /// Mark `id` ready; immediately resolves pure barriers (count 0).
    void make_ready(const Task_graph& graph, std::size_t id) CELLSYNC_REQUIRES(mutex_);
    /// Mark `id` resolved and propagate to dependents: failed/cancelled
    /// nodes cancel theirs transitively, completed nodes unblock theirs.
    void resolve_node(const Task_graph& graph, std::size_t id) CELLSYNC_REQUIRES(mutex_);

    std::vector<std::thread> workers_;

    Annotated_mutex mutex_;
    Annotated_condition_variable start_cv_;  ///< wakes idle workers for a new run
    Annotated_condition_variable work_cv_;   ///< wakes drainers on new ready nodes / run end
    Annotated_condition_variable done_cv_;   ///< wakes the caller when the run ends
    std::uint64_t generation_ CELLSYNC_GUARDED_BY(mutex_) = 0;
    bool stopping_ CELLSYNC_GUARDED_BY(mutex_) = false;
    const Task_graph* graph_ CELLSYNC_GUARDED_BY(mutex_) = nullptr;
    std::vector<Node_state> states_ CELLSYNC_GUARDED_BY(mutex_);
    std::size_t resolved_count_ CELLSYNC_GUARDED_BY(mutex_) = 0;
    std::exception_ptr first_error_ CELLSYNC_GUARDED_BY(mutex_);
};

}  // namespace cellsync
