// Process-wide runtime metrics and the single clock seam.
//
// Three pieces, one policy:
//
//  - `telemetry::Clock` / `telemetry::Stopwatch` — the only place the
//    process reads a wall/monotonic clock. Everything that times
//    anything (scheduler queue waits, cache build latency, streaming
//    appends, the bench harnesses) goes through this seam, and the repo
//    lint bans `std::chrono::*_clock::now()` elsewhere. One seam means
//    one audit point for the determinism contract: clock reads feed
//    *observation* (counters, histograms, spans), never numerics, so a
//    traced run is bit-identical to an untraced one at any thread count.
//
//  - `Metrics_registry` — monotonic counters, gauges, and fixed-bucket
//    histograms, registered by name. Registration is lock-striped
//    behind `Annotated_mutex` (thread-safety-analysis clean); the
//    returned handles are stable for the process lifetime and update
//    with single relaxed atomics, so hot paths cache the handle in a
//    function-local static and pay one atomic add per event.
//
//  - The `CELLSYNC_TELEMETRY` gate (CMake option, default ON). When
//    OFF, every class here still exists with the same signatures but
//    all methods are empty inline stubs, so instrumentation sites
//    compile to nothing without `#if` noise at the call site. The
//    Clock/Stopwatch seam stays real in both modes — benches need
//    timing regardless of whether metrics are collected.
//
// Telemetry observes, never perturbs: no instrumentation site may feed
// a clock reading or a counter value back into a numeric result.
#pragma once

#ifndef CELLSYNC_TELEMETRY
#define CELLSYNC_TELEMETRY 1
#endif

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"

namespace cellsync::telemetry {

/// True when the library was built with -DCELLSYNC_TELEMETRY=ON; tests
/// use this to assert either real collection or the no-op contract.
inline constexpr bool compiled_in = CELLSYNC_TELEMETRY != 0;

// ---------------------------------------------------------------------
// Clock seam (always real, independent of the telemetry gate)
// ---------------------------------------------------------------------

/// The process's one monotonic clock. Nanoseconds from an arbitrary
/// epoch; differences are meaningful, absolute values are not.
class Clock {
  public:
    static std::int64_t now_ns();
};

/// Elapsed-time helper over Clock — the shared stopwatch for runtime
/// instrumentation and the bench harnesses.
class Stopwatch {
  public:
    Stopwatch() : start_ns_(Clock::now_ns()) {}

    void reset() { start_ns_ = Clock::now_ns(); }
    std::int64_t elapsed_ns() const { return Clock::now_ns() - start_ns_; }
    double elapsed_us() const { return static_cast<double>(elapsed_ns()) * 1e-3; }
    double elapsed_ms() const { return static_cast<double>(elapsed_ns()) * 1e-6; }
    double elapsed_s() const { return static_cast<double>(elapsed_ns()) * 1e-9; }

  private:
    std::int64_t start_ns_;
};

// ---------------------------------------------------------------------
// Snapshot types (always compiled — consumers work in both modes)
// ---------------------------------------------------------------------

struct Histogram_snapshot {
    /// Inclusive upper bounds per bucket; the final bucket is +infinity
    /// (represented by the count one past the last bound).
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;  ///< upper_bounds.size() + 1 entries
    std::uint64_t total = 0;
    double sum = 0.0;
};

struct Metrics_snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram_snapshot>> histograms;
};

/// Serializes a snapshot as the compact machine-readable metrics JSON
/// (`cellsync-metrics-v1`): counter/gauge/histogram sections keyed by
/// metric name, names sorted, buckets as {le, count} pairs.
void write_metrics_json(std::ostream& out, const Metrics_snapshot& snapshot);

/// Minimal JSON string escaping shared by the metrics and trace writers.
std::string json_escape(std::string_view text);

#if CELLSYNC_TELEMETRY

// ---------------------------------------------------------------------
// Live instruments
// ---------------------------------------------------------------------

/// Monotonic event count. Relaxed atomics: totals are exact (every add
/// lands), only cross-counter ordering is unspecified.
class Counter {
  public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram on a 1-2-5 ladder from 1 to 1e7 plus an
/// overflow bucket — wide enough for microsecond latencies (1 µs..10 s)
/// and for iteration counts, with no per-histogram configuration to
/// keep merges trivially correct (same bounds everywhere).
class Histogram {
  public:
    static constexpr std::array<double, 22> upper_bounds = {
        1e0, 2e0, 5e0, 1e1, 2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3,
        5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7};

    void record(double value);
    Histogram_snapshot snapshot() const;
    void reset();

  private:
    std::array<std::atomic<std::uint64_t>, upper_bounds.size() + 1> counts_{};
    std::atomic<std::uint64_t> total_{0};
    std::atomic<double> sum_{0.0};  ///< CAS-accumulated; exact total of adds
};

/// The process-wide named-instrument registry. Lookup is lock-striped
/// by name hash; returned references are valid for the process
/// lifetime (instruments are never destroyed or moved).
class Metrics_registry {
  public:
    static Metrics_registry& instance();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    /// Consistent-enough snapshot: each stripe is locked while copied,
    /// values are atomic reads. Names are sorted for deterministic output.
    Metrics_snapshot snapshot() const;

    /// Zeroes every instrument in place. Handles stay valid — this is
    /// the per-command baseline reset, not a teardown.
    void reset_values();

    Metrics_registry() = default;
    Metrics_registry(const Metrics_registry&) = delete;
    Metrics_registry& operator=(const Metrics_registry&) = delete;

  private:
    static constexpr std::size_t stripe_count = 8;

    struct Stripe {
        mutable Annotated_mutex mutex;
        std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
            CELLSYNC_GUARDED_BY(mutex);
        std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
            CELLSYNC_GUARDED_BY(mutex);
        std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
            CELLSYNC_GUARDED_BY(mutex);
    };

    Stripe& stripe_for(std::string_view name);
    const Stripe& stripe_for(std::string_view name) const;

    std::array<Stripe, stripe_count> stripes_;
};

/// Stopwatch for instrumentation sites only: unlike Stopwatch it
/// compiles to nothing (no clock reads at all) when the telemetry gate
/// is OFF. Use Stopwatch when the elapsed time is the product (bench
/// harnesses); use Latency_timer when it only feeds a histogram.
class Latency_timer {
  public:
    double elapsed_us() const { return watch_.elapsed_us(); }
    double elapsed_ms() const { return watch_.elapsed_ms(); }

  private:
    Stopwatch watch_;
};

#else  // !CELLSYNC_TELEMETRY

// ---------------------------------------------------------------------
// No-op stubs: same API, empty inline bodies, so every instrumentation
// site compiles away without #if guards.
// ---------------------------------------------------------------------

class Counter {
  public:
    void add(std::uint64_t = 1) {}
    std::uint64_t value() const { return 0; }
    void reset() {}
};

class Gauge {
  public:
    void set(double) {}
    double value() const { return 0.0; }
    void reset() {}
};

class Histogram {
  public:
    void record(double) {}
    Histogram_snapshot snapshot() const { return {}; }
    void reset() {}
};

class Latency_timer {
  public:
    double elapsed_us() const { return 0.0; }
    double elapsed_ms() const { return 0.0; }
};

class Metrics_registry {
  public:
    static Metrics_registry& instance();

    Counter& counter(std::string_view) { return counter_; }
    Gauge& gauge(std::string_view) { return gauge_; }
    Histogram& histogram(std::string_view) { return histogram_; }

    Metrics_snapshot snapshot() const { return {}; }
    void reset_values() {}

    Metrics_registry() = default;
    Metrics_registry(const Metrics_registry&) = delete;
    Metrics_registry& operator=(const Metrics_registry&) = delete;

  private:
    Counter counter_;
    Gauge gauge_;
    Histogram histogram_;
};

#endif  // CELLSYNC_TELEMETRY

// Convenience lookups. Hot paths should cache the returned handle in a
// function-local static so the name lookup happens once:
//
//     static telemetry::Counter& hits = telemetry::counter("cache.hits");
//     hits.add();
inline Counter& counter(std::string_view name) {
    return Metrics_registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
    return Metrics_registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
    return Metrics_registry::instance().histogram(name);
}

}  // namespace cellsync::telemetry
