// High-level convenience pipeline: kernel construction + lambda selection
// + constrained deconvolution in one call.
//
// Examples and benches use this entry point; power users compose the
// pieces (build_kernel / Deconvolver / select_lambda_*) directly.
#pragma once

#include <memory>
#include <optional>

#include "core/cross_validation.h"
#include "core/deconvolver.h"
#include "spline/spline_basis.h"

namespace cellsync {

/// End-to-end pipeline configuration.
struct Pipeline_config {
    Cell_cycle_config cell_cycle;          ///< organism model (defaults: Caulobacter)
    Kernel_build_options kernel;           ///< Monte-Carlo kernel controls
    std::size_t basis_size = 18;           ///< Nc natural-spline knots
    Deconvolution_options deconvolution;   ///< constraints, ridge, fallback lambda
    bool select_lambda = true;             ///< run k-fold CV over lambda_grid
    std::size_t cv_folds = 5;
    Vector lambda_grid;                    ///< empty -> default_lambda_grid()
};

/// Everything the pipeline produced.
struct Pipeline_result {
    std::shared_ptr<Natural_spline_basis> basis;
    std::unique_ptr<Deconvolver> deconvolver;
    Single_cell_estimate estimate;
    std::optional<Lambda_selection> lambda_selection;
};

/// Deconvolve a measurement series sampled at `series.times`. The kernel
/// is simulated at exactly those times with the given volume model.
/// Throws std::invalid_argument for invalid config or series.
Pipeline_result deconvolve_series(const Measurement_series& series,
                                  const Pipeline_config& config,
                                  const Volume_model& volume_model);

}  // namespace cellsync
