#include "core/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace cellsync::telemetry {

// The single clock read in the process. Everything else — runtime
// instrumentation, bench harnesses, trace spans — derives its time from
// here (the repo lint's `clock` rule enforces it).
std::int64_t Clock::now_ns() {
    // cellsync-lint: allow(clock) — this is the seam itself.
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

namespace {

#if CELLSYNC_TELEMETRY
/// FNV-1a over the metric name; only used to pick a registration stripe,
/// never exposed, so the constant choice is not a compatibility surface.
std::size_t name_hash(std::string_view name) {
    std::uint64_t hash = 1469598103934665603ull;
    for (const char c : name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return static_cast<std::size_t>(hash);
}
#endif  // CELLSYNC_TELEMETRY

void append_double(std::string& out, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
    out += buffer;
}

}  // namespace

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void write_metrics_json(std::ostream& out, const Metrics_snapshot& snapshot) {
    std::string body;
    body += "{\n  \"schema\": \"cellsync-metrics-v1\",\n";
    body += "  \"telemetry_compiled\": ";
    body += compiled_in ? "true" : "false";
    body += ",\n  \"counters\": {";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        body += i == 0 ? "\n" : ",\n";
        body += "    \"" + json_escape(snapshot.counters[i].first) + "\": ";
        append_u64(body, snapshot.counters[i].second);
    }
    body += snapshot.counters.empty() ? "},\n" : "\n  },\n";
    body += "  \"gauges\": {";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        body += i == 0 ? "\n" : ",\n";
        body += "    \"" + json_escape(snapshot.gauges[i].first) + "\": ";
        append_double(body, snapshot.gauges[i].second);
    }
    body += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
    body += "  \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const Histogram_snapshot& h = snapshot.histograms[i].second;
        body += i == 0 ? "\n" : ",\n";
        body += "    \"" + json_escape(snapshot.histograms[i].first) + "\": {\"total\": ";
        append_u64(body, h.total);
        body += ", \"sum\": ";
        append_double(body, h.sum);
        body += ", \"buckets\": [";
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            if (b != 0) body += ", ";
            body += "{\"le\": ";
            if (b < h.upper_bounds.size()) {
                append_double(body, h.upper_bounds[b]);
            } else {
                body += "\"+Inf\"";  // overflow bucket, Prometheus-style
            }
            body += ", \"count\": ";
            append_u64(body, h.counts[b]);
            body += "}";
        }
        body += "]}";
    }
    body += snapshot.histograms.empty() ? "}\n" : "\n  }\n";
    body += "}\n";
    out << body;
}

#if CELLSYNC_TELEMETRY

void Histogram::record(double value) {
    const auto bound =
        std::lower_bound(upper_bounds.begin(), upper_bounds.end(), value);
    const std::size_t bucket =
        static_cast<std::size_t>(bound - upper_bounds.begin());
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    // CAS loop rather than fetch_add: atomic<double>::fetch_add is C++20
    // but not guaranteed lock-free everywhere; this is.
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
    }
}

Histogram_snapshot Histogram::snapshot() const {
    Histogram_snapshot out;
    out.upper_bounds.assign(upper_bounds.begin(), upper_bounds.end());
    out.counts.reserve(counts_.size());
    for (const auto& count : counts_) {
        out.counts.push_back(count.load(std::memory_order_relaxed));
    }
    out.total = total_.load(std::memory_order_relaxed);
    out.sum = sum_.load(std::memory_order_relaxed);
    return out;
}

void Histogram::reset() {
    for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

Metrics_registry& Metrics_registry::instance() {
    // Intentionally leaked: worker threads may record during static
    // destruction of unrelated objects; the registry must outlive them.
    static Metrics_registry* const registry = new Metrics_registry();
    return *registry;
}

Metrics_registry::Stripe& Metrics_registry::stripe_for(std::string_view name) {
    return stripes_[name_hash(name) % stripe_count];
}

const Metrics_registry::Stripe& Metrics_registry::stripe_for(
    std::string_view name) const {
    return stripes_[name_hash(name) % stripe_count];
}

Counter& Metrics_registry::counter(std::string_view name) {
    Stripe& stripe = stripe_for(name);
    const Annotated_lock lock(stripe.mutex);
    const auto found = stripe.counters.find(name);
    if (found != stripe.counters.end()) return *found->second;
    return *stripe.counters.emplace(std::string(name), std::make_unique<Counter>())
                .first->second;
}

Gauge& Metrics_registry::gauge(std::string_view name) {
    Stripe& stripe = stripe_for(name);
    const Annotated_lock lock(stripe.mutex);
    const auto found = stripe.gauges.find(name);
    if (found != stripe.gauges.end()) return *found->second;
    return *stripe.gauges.emplace(std::string(name), std::make_unique<Gauge>())
                .first->second;
}

Histogram& Metrics_registry::histogram(std::string_view name) {
    Stripe& stripe = stripe_for(name);
    const Annotated_lock lock(stripe.mutex);
    const auto found = stripe.histograms.find(name);
    if (found != stripe.histograms.end()) return *found->second;
    return *stripe.histograms.emplace(std::string(name), std::make_unique<Histogram>())
                .first->second;
}

Metrics_snapshot Metrics_registry::snapshot() const {
    Metrics_snapshot out;
    for (const Stripe& stripe : stripes_) {
        const Annotated_lock lock(stripe.mutex);
        for (const auto& [name, counter] : stripe.counters) {
            out.counters.emplace_back(name, counter->value());
        }
        for (const auto& [name, gauge] : stripe.gauges) {
            out.gauges.emplace_back(name, gauge->value());
        }
        for (const auto& [name, histogram] : stripe.histograms) {
            out.histograms.emplace_back(name, histogram->snapshot());
        }
    }
    const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
    std::sort(out.counters.begin(), out.counters.end(), by_name);
    std::sort(out.gauges.begin(), out.gauges.end(), by_name);
    std::sort(out.histograms.begin(), out.histograms.end(), by_name);
    return out;
}

void Metrics_registry::reset_values() {
    for (Stripe& stripe : stripes_) {
        const Annotated_lock lock(stripe.mutex);
        for (const auto& [name, counter] : stripe.counters) counter->reset();
        for (const auto& [name, gauge] : stripe.gauges) gauge->reset();
        for (const auto& [name, histogram] : stripe.histograms) histogram->reset();
    }
}

#else  // !CELLSYNC_TELEMETRY

Metrics_registry& Metrics_registry::instance() {
    static Metrics_registry* const registry = new Metrics_registry();
    return *registry;
}

#endif  // CELLSYNC_TELEMETRY

}  // namespace cellsync::telemetry
