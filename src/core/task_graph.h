// A small dependency graph of batched tasks for the worker pool.
//
// The pool's original primitive — one blocking parallel_for at a time —
// bakes a strictly sequential phase structure into every layer above it:
// an experiment cannot start simulating condition k+1's kernel while
// condition k's solves are still draining, even though the two touch
// disjoint state. A Task_graph removes that constraint without giving up
// the pool's determinism contract: a graph is a set of *nodes*, each an
// indexed batch of `count` tasks (the same unit parallel_for runs), with
// edges declaring which nodes must fully complete before another may
// start. Worker_pool::run executes every node whose dependencies are
// satisfied, claiming (node, index) pairs with the same index-slotted
// scheme as parallel_for — task(i) writes into slot i of pre-sized
// storage — so results are bit-identical for any thread count and any
// interleaving of ready nodes.
//
// Cycles are impossible by construction: a node may only depend on nodes
// that were added before it (add_node returns ids in insertion order and
// validates every edge points backwards).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace cellsync {

class Task_graph {
  public:
    /// One indexed task of a node; i is in [0, count) and the body must be
    /// deterministic given i (write only into slot i of pre-sized state).
    using Task = std::function<void(std::size_t)>;
    using Node_id = std::size_t;

    /// Add a node of `count` indexed tasks that may start once every node
    /// in `deps` has completed. `count` 0 is a valid pure barrier (no
    /// tasks, completes as soon as its dependencies do). Throws
    /// std::invalid_argument if a dependency id has not been added yet —
    /// which also makes cycles unrepresentable. Returns the node's id.
    Node_id add_node(std::string name, std::size_t count, Task task,
                     std::vector<Node_id> deps = {});

    std::size_t node_count() const { return nodes_.size(); }
    const std::string& name(Node_id id) const { return nodes_[id].name; }

  private:
    friend class Worker_pool;
    struct Node {
        std::string name;
        std::size_t count = 0;
        Task task;
        std::vector<Node_id> deps;
        std::vector<Node_id> dependents;  ///< reverse edges, filled by add_node
    };
    std::vector<Node> nodes_;
};

}  // namespace cellsync
