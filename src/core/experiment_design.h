// Sampling-design diagnostics for the deconvolution inverse problem.
//
// The inversion quality is set before any data are collected: it depends
// on which measurement times the experiment samples (through the kernel
// rows) and on the basis/penalty. This module scores candidate designs so
// an experimenter can compare, e.g., "13 evenly spaced samples" against
// "front-loaded sampling" *in silico* — a practical extension of the
// paper's machinery in the spirit of optimal experiment design.
#pragma once

#include <string>

#include "population/kernel_builder.h"
#include "spline/basis.h"

namespace cellsync {

/// Conditioning summary of one sampling design.
struct Design_score {
    std::string label;
    std::size_t measurement_count = 0;
    /// A-optimality criterion: trace((K'K + lambda*Omega)^-1). Lower means
    /// smaller average coefficient variance under unit noise.
    double a_criterion = 0.0;
    /// log10 D-criterion: -log10 det(K'K + lambda*Omega) (lower = better
    /// determined; log scale keeps it finite for near-singular designs).
    double neg_log10_d_criterion = 0.0;
    /// Effective degrees of freedom tr(K (K'K+lambda*Omega)^-1 K') at the
    /// scoring lambda — how many independent features the design resolves.
    double effective_dof = 0.0;
};

/// Score a design given its simulated kernel (unit measurement weights).
/// `lambda` is the smoothness weight at which to evaluate. Throws
/// std::invalid_argument for negative lambda or a basis/kernel mismatch.
Design_score score_design(const Kernel_grid& kernel, const Basis& basis, double lambda,
                          std::string label = "");

/// Convenience: simulate kernels for several candidate time grids (same
/// cell-cycle model, volume model, and Monte-Carlo options) and score each.
std::vector<Design_score> compare_designs(const Cell_cycle_config& config,
                                          const Volume_model& volume,
                                          const std::vector<std::pair<std::string, Vector>>&
                                              candidate_time_grids,
                                          const Basis& basis, double lambda,
                                          const Kernel_build_options& options = {});

}  // namespace cellsync
