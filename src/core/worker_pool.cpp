#include "core/worker_pool.h"

#include <algorithm>
#include <string>

#include "core/telemetry.h"
#include "core/trace.h"

namespace cellsync {

Worker_pool::Worker_pool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

Worker_pool::~Worker_pool() {
    {
        const Annotated_lock lock(mutex_);
        stopping_ = true;
    }
    start_cv_.notify_all();
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void Worker_pool::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        const Task_graph* graph = nullptr;
        {
            Annotated_lock lock(mutex_);
            // Explicit wait loop (not a predicate lambda): the guarded
            // members are then read in this scope, where the thread-safety
            // analysis can see the capability is held.
            while (!stopping_ && generation_ == seen) start_cv_.wait(lock);
            if (stopping_) return;
            seen = generation_;
            graph = graph_;
        }
        // graph_ is cleared once its run fully drained; a worker waking
        // that late just goes back to sleep until the next run.
        if (graph == nullptr) continue;
        drain(*graph, seen);
    }
}

void Worker_pool::make_ready(const Task_graph& graph, std::size_t id) {
    states_[id].ready = true;
    if constexpr (telemetry::compiled_in) {
        states_[id].ready_ns = telemetry::Clock::now_ns();
    }
    // A pure barrier has no indices to claim; it completes the moment its
    // dependencies do (resolve_node cascades to its dependents).
    if (graph.nodes_[id].count == 0) resolve_node(graph, id);
}

void Worker_pool::resolve_node(const Task_graph& graph, std::size_t id) {
    Node_state& state = states_[id];
    state.resolved = true;
    ++resolved_count_;
    const bool poisons = state.failed || state.cancelled;
    if constexpr (telemetry::compiled_in) {
        // Node lifecycle counters + a claim-eligible -> resolved span per
        // node that actually became ready (cancelled-before-ready nodes
        // have no timeline to report). The recorder's buffer lock is a
        // leaf, so recording under mutex_ is ordering-safe.
        static telemetry::Counter& completed = telemetry::counter("scheduler.nodes_completed");
        static telemetry::Counter& failed = telemetry::counter("scheduler.nodes_failed");
        static telemetry::Counter& cancelled = telemetry::counter("scheduler.nodes_cancelled");
        if (state.failed) {
            failed.add();
        } else if (state.cancelled) {
            cancelled.add();
        } else {
            completed.add();
        }
        telemetry::Trace_recorder& recorder = telemetry::Trace_recorder::instance();
        if (recorder.enabled() && state.ready) {
            const char* status = state.failed     ? "failed"
                                 : state.cancelled ? "cancelled"
                                                   : "completed";
            recorder.record({"node:" + graph.nodes_[id].name, "scheduler.node",
                             telemetry::args_join(
                                 telemetry::arg("status", status),
                                 telemetry::arg("tasks", static_cast<std::int64_t>(
                                                             graph.nodes_[id].count))),
                             state.ready_ns, telemetry::Clock::now_ns() - state.ready_ns,
                             0});
        }
    }
    for (const std::size_t dependent : graph.nodes_[id].dependents) {
        Node_state& ds = states_[dependent];
        if (poisons) ds.cancelled = true;
        if (--ds.waiting_deps == 0) {
            if (ds.cancelled) {
                // Cancelled nodes never run: resolve immediately so the
                // poison propagates transitively and the run can finish.
                resolve_node(graph, dependent);
            } else {
                make_ready(graph, dependent);
            }
        }
    }
    if (resolved_count_ == states_.size()) done_cv_.notify_all();
    // New ready nodes (or run completion) may unblock waiting drainers.
    work_cv_.notify_all();
}

void Worker_pool::drain(const Task_graph& graph, std::uint64_t generation) {
    Annotated_lock lock(mutex_);
    for (;;) {
        // The generation check guards against a worker that observed this
        // run but was descheduled until after it drained and a new one
        // started: its graph reference is dangling and states_ belong to
        // the new run. (When the generation still matches and nodes remain
        // unresolved, the run is live and the graph is valid.)
        if (generation_ != generation || stopping_) return;
        if (resolved_count_ == states_.size()) return;

        // Claim lowest-node-id first among ready nodes with unclaimed
        // indices. Results never depend on the claim order — every index
        // writes its own slot — only wall-clock does.
        std::size_t id = states_.size();
        for (std::size_t n = 0; n < states_.size(); ++n) {
            if (states_[n].ready && !states_[n].resolved &&
                states_[n].next < graph.nodes_[n].count) {
                id = n;
                break;
            }
        }
        if (id == states_.size()) {
            // Nothing claimable right now: wait for a node to become
            // ready or the run to finish (the loop re-checks both).
            if constexpr (telemetry::compiled_in) {
                static telemetry::Histogram& queue_wait =
                    telemetry::histogram("scheduler.queue_wait_us");
                const std::int64_t wait_start = telemetry::Clock::now_ns();
                work_cv_.wait(lock);
                queue_wait.record(
                    static_cast<double>(telemetry::Clock::now_ns() - wait_start) * 1e-3);
            } else {
                work_cv_.wait(lock);
            }
            continue;
        }

        const std::size_t index = states_[id].next++;
        lock.unlock();
        std::exception_ptr error;
        {
            // Args are only materialized while actually recording — an
            // untraced run must not pay a per-task allocation.
            const bool tracing = telemetry::Trace_recorder::instance().enabled();
            const telemetry::Trace_span span(
                graph.nodes_[id].name, "scheduler",
                tracing ? telemetry::arg("index", static_cast<std::int64_t>(index))
                        : std::string());
            try {
                graph.nodes_[id].task(index);
            } catch (...) {
                error = std::current_exception();
            }
        }
        if constexpr (telemetry::compiled_in) {
            static telemetry::Counter& tasks_run = telemetry::counter("scheduler.tasks_run");
            tasks_run.add();
        }
        lock.lock();
        if (error) {
            if (!first_error_) first_error_ = error;
            states_[id].failed = true;
        }
        if (++states_[id].completed == graph.nodes_[id].count) {
            resolve_node(graph, id);
        }
    }
}

void Worker_pool::run(const Task_graph& graph) {
    if (graph.node_count() == 0) return;
    std::uint64_t generation = 0;
    {
        const Annotated_lock lock(mutex_);
        graph_ = &graph;
        states_.assign(graph.node_count(), Node_state{});
        resolved_count_ = 0;
        first_error_ = nullptr;
        generation = ++generation_;
        for (std::size_t id = 0; id < graph.nodes_.size(); ++id) {
            states_[id].waiting_deps = graph.nodes_[id].deps.size();
        }
        // Roots are ready immediately. make_ready may cascade through
        // barrier chains, so seed waiting_deps for every node first.
        for (std::size_t id = 0; id < graph.nodes_.size(); ++id) {
            if (graph.nodes_[id].deps.empty() && !states_[id].ready &&
                !states_[id].resolved) {
                make_ready(graph, id);
            }
        }
    }
    start_cv_.notify_all();
    drain(graph, generation);

    std::exception_ptr error;
    {
        Annotated_lock lock(mutex_);
        while (resolved_count_ != states_.size()) done_cv_.wait(lock);
        error = first_error_;
        first_error_ = nullptr;
        graph_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
}

void Worker_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& task) {
    if (count == 0) return;
    Task_graph graph;
    graph.add_node("parallel_for", count, [&task](std::size_t i) { task(i); });
    run(graph);
}

}  // namespace cellsync
