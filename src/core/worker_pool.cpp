#include "core/worker_pool.h"

#include <algorithm>

namespace cellsync {

Worker_pool::Worker_pool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

Worker_pool::~Worker_pool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void Worker_pool::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)>* task = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
            if (stopping_) return;
            seen = generation_;
            task = task_;
            count = count_;
        }
        // task_ is cleared once its batch fully drained; a worker waking
        // that late just goes back to sleep until the next batch.
        if (task == nullptr) continue;
        drain(*task, count, seen);
    }
}

void Worker_pool::drain(const std::function<void(std::size_t)>& task, std::size_t count,
                        std::uint64_t generation) {
    for (;;) {
        std::size_t index = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            // The generation check guards against a worker that observed
            // this batch but was descheduled until after the batch drained
            // and a new one started: its task reference is dangling and
            // next_/completed_ belong to the new batch.
            if (generation_ != generation || next_ >= count) return;
            index = next_++;
        }
        try {
            task(index);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (++completed_ == count) done_cv_.notify_all();
        }
    }
}

void Worker_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& task) {
    if (count == 0) return;
    std::uint64_t generation = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        task_ = &task;
        count_ = count;
        next_ = 0;
        completed_ = 0;
        first_error_ = nullptr;
        generation = ++generation_;
    }
    start_cv_.notify_all();
    drain(task, count, generation);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return completed_ == count_; });
        error = first_error_;
        first_error_ = nullptr;
        task_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
}

}  // namespace cellsync
