// Shared-factorization parallel batch deconvolution engine.
//
// The engine owns one immutable Design_artifacts — kernel matrix,
// roughness penalty, constraint blocks, and the QP constraint reduction,
// computed exactly once per (basis, kernel, constraint) triple — and a
// std::thread worker pool. Genes, lambda grid points, and bootstrap
// replicates are independent tasks with deterministic per-task seeding,
// so every result is bit-for-bit identical to a serial run regardless of
// thread count.
#pragma once

#include <memory>

#include "core/batch.h"
#include "core/bootstrap.h"
#include "core/cross_validation.h"
#include "core/design.h"
#include "core/worker_pool.h"

namespace cellsync {

/// Engine construction controls.
struct Batch_engine_options {
    /// Total worker parallelism (calling thread included); 0 = hardware
    /// concurrency, 1 = serial.
    std::size_t threads = 0;
    /// Constraint geometry baked into the shared design. Every engine
    /// entry point (run, cross_validate, bootstrap) estimates under this
    /// geometry — per-call constraint options are overridden so the
    /// cached blocks are always reused. For ad-hoc geometries, use a
    /// Deconvolver directly (per-call rebuild) or build another engine.
    Constraint_options constraints;
};

class Batch_engine {
  public:
    /// Build the design artifacts from scratch.
    Batch_engine(std::shared_ptr<const Basis> basis, const Kernel_grid& kernel,
                 const Cell_cycle_config& config, const Batch_engine_options& options = {});

    /// Adopt artifacts precomputed elsewhere.
    explicit Batch_engine(std::shared_ptr<const Design_artifacts> artifacts,
                          const Batch_engine_options& options = {});

    /// The deconvolver bound to the engine's shared artifacts. Estimating
    /// through it (even outside the engine) reuses the same cached design.
    const Deconvolver& deconvolver() const { return deconvolver_; }
    const Design_artifacts& artifacts() const { return *deconvolver_.artifacts(); }
    std::size_t thread_count() const { return thread_count_; }

    /// Batch deconvolution with per-gene lambda CV, distributed over the
    /// pool. Per-gene results are identical to deconvolve_batch() on the
    /// engine's deconvolver: both run the same deconvolve_one task with
    /// the same per-gene seeds. Throws std::invalid_argument on an empty
    /// panel; per-gene failures land in each entry's `error`.
    std::vector<Batch_entry> run(const std::vector<Measurement_series>& panel,
                                 const Batch_options& options = {}) const;

    /// run() with a per-gene lambda grid (grids[g] for panel[g]) — the
    /// primitive behind the experiment runner's warm-started lambda
    /// selection, where each gene's grid is narrowed around its selection
    /// in the previous condition. An empty grids[g] falls back to
    /// options.lambda_grid (or the default grid). Throws
    /// std::invalid_argument on an empty panel or a grids/panel length
    /// mismatch.
    std::vector<Batch_entry> run_with_grids(const std::vector<Measurement_series>& panel,
                                            const std::vector<Vector>& grids,
                                            const Batch_options& options = {}) const;

    /// Lambda CV for one series with the grid points swept in parallel.
    /// Identical to select_lambda_kfold (same fold assignment, same
    /// per-lambda scoring).
    Lambda_selection cross_validate(const Measurement_series& series,
                                    const Deconvolution_options& base_options,
                                    const Vector& lambda_grid, std::size_t folds = 5,
                                    std::uint64_t seed = 77) const;

    /// Residual bootstrap with replicates distributed over the pool;
    /// identical to the serial bootstrap_confidence_band for any thread
    /// count (per-replicate seeding).
    Confidence_band bootstrap(const Measurement_series& series,
                              const Deconvolution_options& options, const Vector& phi_grid,
                              const Bootstrap_options& bootstrap_options = {}) const;

  private:
    /// Pin per-call options to the design's constraint geometry.
    Deconvolution_options aligned(const Deconvolution_options& options) const;

    Deconvolver deconvolver_;
    // The engine parallelizes internally; concurrent calls into one
    // engine are serialized on run_mutex_ so the single worker pool is
    // never shared between two batches. Guarding pool_ itself makes
    // that discipline compile-checked: touching the pool without the
    // run lock is a -Werror=thread-safety diagnostic under clang.
    mutable Annotated_mutex run_mutex_;
    mutable Worker_pool pool_ CELLSYNC_GUARDED_BY(run_mutex_);
    std::size_t thread_count_;  ///< pool_.thread_count(), lock-free copy
};

}  // namespace cellsync
