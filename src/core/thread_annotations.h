// Clang thread-safety annotations and the annotated lock types built on
// them.
//
// The concurrency surface of this codebase — Worker_pool's scheduler
// state, Kernel_cache's memoization maps and in-flight request latches,
// Batch_engine's and Stream_session's run serialization — is
// lock-and-condition-variable code whose invariants ("states_ is only
// touched under mutex_", "the pool is never shared between two
// batches") were previously enforced by convention and by tests that
// happen to interleave the right way. These macros make the invariants
// machine-checked: under clang, `-Wthread-safety -Werror=thread-safety`
// (enabled unconditionally for clang builds in the top-level
// CMakeLists) rejects any access to a CELLSYNC_GUARDED_BY member
// without its capability held and any call to a CELLSYNC_REQUIRES
// function without the named lock. Under other compilers the macros
// expand to nothing and the wrappers are zero-cost shims over
// std::mutex, so gcc builds (and the TSan leg) see identical code.
//
// Discipline that keeps the analysis sound:
//  - lock with Annotated_lock (scoped), never raw lock()/unlock() pairs;
//  - wait on std::condition_variable_any with an explicit
//    `while (!predicate) cv.wait(lock);` loop, not a predicate lambda —
//    clang analyzes lambdas as separate functions and cannot see that
//    the enclosing scope holds the capability;
//  - internal helpers that assume the lock take CELLSYNC_REQUIRES.
//
// The repo lint (tools/cellsync_lint) enforces the entry ticket: no
// naked std::mutex / std::condition_variable members in src/ outside
// this header, so every new mutex-protected field starts out
// annotatable.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define CELLSYNC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CELLSYNC_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CELLSYNC_CAPABILITY(x) CELLSYNC_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose lifetime acquires/releases a capability.
#define CELLSYNC_SCOPED_CAPABILITY CELLSYNC_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only with the capability held.
#define CELLSYNC_GUARDED_BY(x) CELLSYNC_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is protected by the capability.
#define CELLSYNC_PT_GUARDED_BY(x) CELLSYNC_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (held on return, not on entry).
#define CELLSYNC_ACQUIRE(...) \
    CELLSYNC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on return).
#define CELLSYNC_RELEASE(...) \
    CELLSYNC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function may only be called with the capability already held.
#define CELLSYNC_REQUIRES(...) \
    CELLSYNC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function may only be called with the capability NOT held.
#define CELLSYNC_EXCLUDES(...) CELLSYNC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function acquires the capability iff it returns `result`.
#define CELLSYNC_TRY_ACQUIRE(result, ...) \
    CELLSYNC_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Function returns a reference to the named capability.
#define CELLSYNC_RETURN_CAPABILITY(x) CELLSYNC_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function body is exempt from the analysis.
#define CELLSYNC_NO_THREAD_SAFETY_ANALYSIS \
    CELLSYNC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cellsync {

/// std::mutex as a clang capability. Identical layout and cost; the
/// annotations let `CELLSYNC_GUARDED_BY(mutex_)` members participate in
/// the compile-time locking-discipline proof.
class CELLSYNC_CAPABILITY("mutex") Annotated_mutex {
  public:
    Annotated_mutex() = default;
    Annotated_mutex(const Annotated_mutex&) = delete;
    Annotated_mutex& operator=(const Annotated_mutex&) = delete;

    void lock() CELLSYNC_ACQUIRE() { mutex_.lock(); }
    void unlock() CELLSYNC_RELEASE() { mutex_.unlock(); }
    bool try_lock() CELLSYNC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  private:
    std::mutex mutex_;  // cellsync-lint: allow(naked-mutex)
};

/// Scoped lock over Annotated_mutex — the one way code takes a lock.
/// Satisfies BasicLockable, so std::condition_variable_any can wait on
/// it directly (wait() releases and reacquires; the capability is held
/// on both sides of the call, which is exactly what the analysis
/// assumes for an unannotated callee). lock()/unlock() are public for
/// the drop-the-lock-around-work pattern (see Worker_pool::drain).
class CELLSYNC_SCOPED_CAPABILITY Annotated_lock {
  public:
    explicit Annotated_lock(Annotated_mutex& mutex) CELLSYNC_ACQUIRE(mutex)
        : mutex_(mutex), owned_(true) {
        mutex_.lock();
    }
    ~Annotated_lock() CELLSYNC_RELEASE() {
        if (owned_) mutex_.unlock();
    }

    Annotated_lock(const Annotated_lock&) = delete;
    Annotated_lock& operator=(const Annotated_lock&) = delete;

    void lock() CELLSYNC_ACQUIRE() {
        mutex_.lock();
        owned_ = true;
    }
    void unlock() CELLSYNC_RELEASE() {
        mutex_.unlock();
        owned_ = false;
    }

  private:
    Annotated_mutex& mutex_;
    bool owned_;
};

/// The condition variable to pair with Annotated_lock. (The plain
/// std::condition_variable only accepts std::unique_lock<std::mutex>,
/// which would force the capability type back out of the wait path.)
using Annotated_condition_variable = std::condition_variable_any;

}  // namespace cellsync
