#include "core/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace cellsync::telemetry {

namespace {

#if CELLSYNC_TELEMETRY
void append_span_json(std::string& out, const Trace_event& event,
                      std::int64_t epoch_ns) {
    char buffer[96];
    out += "{\"name\": \"" + json_escape(event.name) + "\", \"cat\": \"" +
           json_escape(event.category) + "\", \"ph\": \"X\", \"ts\": ";
    std::snprintf(buffer, sizeof buffer, "%.3f",
                  static_cast<double>(event.start_ns - epoch_ns) * 1e-3);
    out += buffer;
    out += ", \"dur\": ";
    std::snprintf(buffer, sizeof buffer, "%.3f",
                  static_cast<double>(event.duration_ns) * 1e-3);
    out += buffer;
    std::snprintf(buffer, sizeof buffer, ", \"pid\": 1, \"tid\": %" PRIu32,
                  event.tid);
    out += buffer;
    if (!event.args_json.empty()) {
        out += ", \"args\": {" + event.args_json + "}";
    }
    out += "}";
}
#endif  // CELLSYNC_TELEMETRY

}  // namespace

#if CELLSYNC_TELEMETRY

std::string arg(std::string_view key, std::string_view value) {
    std::string out;
    out += '"';
    out += json_escape(key);
    out += "\": \"";
    out += json_escape(value);
    out += '"';
    return out;
}

std::string arg(std::string_view key, std::int64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%" PRId64, value);
    std::string out;
    out += '"';
    out += json_escape(key);
    out += "\": ";
    out += buffer;
    return out;
}

std::string args_join(std::string a, std::string_view b) {
    if (a.empty()) return std::string(b);
    if (b.empty()) return a;
    a += ", ";
    a += b;
    return a;
}

Trace_recorder& Trace_recorder::instance() {
    // Intentionally leaked, same rationale as Metrics_registry: spans on
    // worker threads must outlive static destruction order.
    static Trace_recorder* const recorder = new Trace_recorder();
    return *recorder;
}

void Trace_recorder::enable() {
    {
        const Annotated_lock lock(registry_mutex_);
        for (const auto& buffer : buffers_) {
            const Annotated_lock buffer_lock(buffer->mutex);
            buffer->events.clear();
        }
    }
    epoch_ns_.store(Clock::now_ns(), std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void Trace_recorder::disable() { enabled_.store(false, std::memory_order_relaxed); }

Trace_recorder::Thread_buffer& Trace_recorder::local_buffer() {
    // Cached per (thread, recorder); a thread switching between
    // recorders (tests construct their own) just registers a fresh
    // buffer with the new owner — buffers are never deallocated, so the
    // cached pointer can never dangle.
    thread_local Trace_recorder* owner = nullptr;
    thread_local Thread_buffer* cached = nullptr;
    if (owner != this || cached == nullptr) {
        auto created = std::make_unique<Thread_buffer>();
        Thread_buffer* raw = created.get();
        const Annotated_lock lock(registry_mutex_);
        raw->tid = static_cast<std::uint32_t>(buffers_.size());
        buffers_.push_back(std::move(created));
        owner = this;
        cached = raw;
    }
    return *cached;
}

void Trace_recorder::record(Trace_event event) {
    Thread_buffer& buffer = local_buffer();
    event.tid = buffer.tid;
    const Annotated_lock lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

std::vector<Trace_event> Trace_recorder::collect() const {
    std::vector<Trace_event> out;
    {
        const Annotated_lock lock(registry_mutex_);
        for (const auto& buffer : buffers_) {
            const Annotated_lock buffer_lock(buffer->mutex);
            out.insert(out.end(), buffer->events.begin(), buffer->events.end());
        }
    }
    // Deterministic order: by thread, then start time; a parent span
    // closes after (so records later than) its children but starts no
    // later, so longer-duration-first breaks start ties parent-first.
    std::sort(out.begin(), out.end(), [](const Trace_event& a, const Trace_event& b) {
        if (a.tid != b.tid) return a.tid < b.tid;
        if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
        if (a.duration_ns != b.duration_ns) return a.duration_ns > b.duration_ns;
        return a.name < b.name;
    });
    return out;
}

void Trace_recorder::write_chrome_trace(std::ostream& out) const {
    const std::vector<Trace_event> events = collect();
    const std::int64_t epoch = epoch_ns();
    std::string body = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    std::uint32_t last_tid = 0;
    bool have_tid = false;
    for (const Trace_event& event : events) {
        if (!have_tid || event.tid != last_tid) {
            // Thread-name metadata once per tid (events are tid-sorted).
            char buffer[96];
            std::snprintf(buffer, sizeof buffer,
                          "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                          "\"tid\": %" PRIu32
                          ", \"args\": {\"name\": \"cellsync-%" PRIu32 "\"}}",
                          event.tid, event.tid);
            body += first ? "\n" : ",\n";
            body += buffer;
            first = false;
            last_tid = event.tid;
            have_tid = true;
        }
        body += ",\n";
        append_span_json(body, event, epoch);
    }
    body += first ? "]}\n" : "\n]}\n";
    out << body;
}

#else  // !CELLSYNC_TELEMETRY

Trace_recorder& Trace_recorder::instance() {
    static Trace_recorder* const recorder = new Trace_recorder();
    return *recorder;
}

void Trace_recorder::write_chrome_trace(std::ostream& out) const {
    // Valid empty trace so `--trace` output is loadable in either mode.
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n";
}

#endif  // CELLSYNC_TELEMETRY

}  // namespace cellsync::telemetry
