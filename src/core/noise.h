// Measurement noise models (paper Sec 4.1: "several levels and types of
// noise").
//
// Figure 3 uses additive Gaussian noise with standard deviation equal to
// 10% of the data magnitude; the noise-robustness ablation also sweeps
// absolute Gaussian and multiplicative log-normal noise.
#pragma once

#include <string>

#include "io/measurement.h"
#include "numerics/rng.h"

namespace cellsync {

/// Supported noise families.
enum class Noise_type {
    none,               ///< pass-through (sigma floor still applied)
    relative_gaussian,  ///< sigma_m = level * |G_m| (the paper's Fig 3 model)
    absolute_gaussian,  ///< sigma_m = level * mean(|G|)
    lognormal,          ///< G_m *= exp(Normal(0, level)) (multiplicative)
};

/// Noise specification.
struct Noise_model {
    Noise_type type = Noise_type::relative_gaussian;
    double level = 0.10;      ///< interpretation depends on type
    double sigma_floor = 1e-6;///< lower bound on reported sigma (avoids zero weights)

    /// Throws std::invalid_argument for negative level or floor.
    void validate() const;
};

/// Human-readable name of a noise type.
std::string to_string(Noise_type type);

/// Apply the noise model to a clean series. The returned series carries
/// the true per-measurement sigma implied by the model (used as weights in
/// the estimation criterion). For lognormal noise, sigma is the delta-
/// method approximation level * |G_m|.
Measurement_series add_noise(const Measurement_series& clean, const Noise_model& model,
                             Rng& rng);

}  // namespace cellsync
