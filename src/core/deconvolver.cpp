#include "core/deconvolver.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "numerics/kkt_factorization.h"
#include "numerics/linear_solve.h"

namespace cellsync {

Single_cell_estimate::Single_cell_estimate(std::shared_ptr<const Basis> basis, Vector alpha)
    : basis_(std::move(basis)), alpha_(std::move(alpha)) {
    if (!basis_) throw std::invalid_argument("Single_cell_estimate: null basis");
    if (alpha_.size() != basis_->size()) {
        throw std::invalid_argument("Single_cell_estimate: coefficient count mismatch");
    }
}

double Single_cell_estimate::operator()(double phi) const {
    return basis_->expand(alpha_, std::clamp(phi, 0.0, 1.0));
}

double Single_cell_estimate::derivative(double phi) const {
    return basis_->expand_derivative(alpha_, std::clamp(phi, 0.0, 1.0));
}

Vector Single_cell_estimate::sample(const Vector& phi_grid) const {
    return basis_->expand_on(alpha_, phi_grid);
}

Vector Single_cell_estimate::sample_time(const Vector& t_minutes, double cycle_minutes) const {
    if (cycle_minutes <= 0.0) {
        throw std::invalid_argument("Single_cell_estimate: cycle time must be positive");
    }
    Vector out(t_minutes.size());
    for (std::size_t i = 0; i < t_minutes.size(); ++i) {
        out[i] = (*this)(t_minutes[i] / cycle_minutes);
    }
    return out;
}

Deconvolver::Deconvolver(std::shared_ptr<const Basis> basis, const Kernel_grid& kernel,
                         const Cell_cycle_config& config)
    : artifacts_(make_design_artifacts(std::move(basis), kernel, config)) {}

Deconvolver::Deconvolver(std::shared_ptr<const Design_artifacts> artifacts)
    : artifacts_(std::move(artifacts)) {
    if (!artifacts_) throw std::invalid_argument("Deconvolver: null artifacts");
}

void Deconvolver::check_series(const Measurement_series& series) const {
    series.validate();
    const Vector& times = artifacts_->times;
    if (series.size() != times.size()) {
        throw std::invalid_argument("Deconvolver: series length differs from kernel time grid");
    }
    for (std::size_t m = 0; m < times.size(); ++m) {
        if (std::abs(series.times[m] - times[m]) > 1e-9 * std::max(1.0, std::abs(times[m]))) {
            throw std::invalid_argument(
                "Deconvolver: measurement times must match the kernel time grid");
        }
    }
}

Single_cell_estimate Deconvolver::package(Vector alpha, const Measurement_series& series,
                                          double lambda) const {
    Single_cell_estimate est(artifacts_->basis, std::move(alpha));
    est.lambda = lambda;
    est.fitted = artifacts_->kernel_design * est.coefficients();
    const Vector w = series.weights();
    double chi2 = 0.0;
    for (std::size_t m = 0; m < series.size(); ++m) {
        const double r = series.values[m] - est.fitted[m];
        chi2 += w[m] * r * r;
    }
    est.chi_squared = chi2;
    est.roughness = dot(est.coefficients(), artifacts_->penalty * est.coefficients());
    est.objective = chi2 + lambda * est.roughness;
    return est;
}

Single_cell_estimate Deconvolver::estimate(const Measurement_series& series,
                                           const Deconvolution_options& options) const {
    check_series(series);
    std::vector<std::size_t> all(series.size());
    for (std::size_t m = 0; m < all.size(); ++m) all[m] = m;
    return estimate_on_rows(series, all, options);
}

Single_cell_estimate Deconvolver::estimate_on_rows(const Measurement_series& series,
                                                   const std::vector<std::size_t>& rows,
                                                   const Deconvolution_options& options) const {
    series.validate();
    if (options.lambda < 0.0) throw std::invalid_argument("Deconvolver: lambda must be >= 0");
    if (rows.empty()) throw std::invalid_argument("Deconvolver: empty row subset");
    {
        std::set<std::size_t> unique(rows.begin(), rows.end());
        if (unique.size() != rows.size() || *unique.rbegin() >= series.size()) {
            throw std::invalid_argument("Deconvolver: bad row subset");
        }
    }
    if (series.size() != artifacts_->times.size()) {
        throw std::invalid_argument("Deconvolver: series length differs from kernel time grid");
    }

    const std::size_t n = artifacts_->basis->size();
    const Design_matrix& kernel = artifacts_->kernel_design;
    const Vector w_full = series.weights();

    // H = 2 (K'WK + lambda Omega + ridge I), g = -2 K'W G over selected
    // rows, accumulated straight off the shared banded kernel: no k_sub
    // copy, and structurally zero kernel blocks are skipped entirely.
    Vector g_sub(rows.size());
    Vector w_sub(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        g_sub[r] = series.values[rows[r]];
        w_sub[r] = w_full[rows[r]];
    }

    Matrix hessian =
        2.0 * (weighted_gram_rows(kernel, rows, w_sub) + options.lambda * artifacts_->penalty);
    for (std::size_t i = 0; i < n; ++i) hessian(i, i) += 2.0 * options.ridge;
    Vector gradient(n, 0.0);
    const Vector ktwg = weighted_transposed_times_rows(kernel, rows, w_sub, g_sub);
    for (std::size_t i = 0; i < n; ++i) gradient[i] = -2.0 * ktwg[i];

    // Constraint blocks: the design caches the blocks and their QP
    // reduction for its own constraint geometry; any other geometry is
    // rebuilt per call (the pre-engine slow path).
    std::shared_ptr<const Qp_constraint_prep> prep;
    const Constraint_set* constraints = nullptr;
    Constraint_set local_constraints;
    if (options.constraints == artifacts_->constraint_options) {
        constraints = &artifacts_->constraints;
        prep = artifacts_->constraint_prep;
    } else {
        local_constraints =
            build_constraints(*artifacts_->basis, artifacts_->config, options.constraints);
        constraints = &local_constraints;
        prep = std::make_shared<const Qp_constraint_prep>(
            n, local_constraints.equality, local_constraints.equality_rhs,
            local_constraints.inequality, local_constraints.inequality_rhs);
    }

    Qp_result result;
    if (options.backend == Qp_backend::automatic ||
        options.backend == Qp_backend::active_set) {
        // The dual (Goldfarb-Idnani) solver through the shared constraint
        // preparation: no feasible start needed and robust on the dense,
        // near-degenerate positivity grid.
        result = solve_qp_dual_prepared(hessian, gradient, *prep, options.qp);
    } else {
        Qp_problem qp;
        qp.hessian = std::move(hessian);
        qp.gradient = std::move(gradient);
        qp.eq_matrix = constraints->equality;
        qp.eq_rhs = constraints->equality_rhs;
        qp.ineq_matrix = constraints->inequality;
        qp.ineq_rhs = constraints->inequality_rhs;
        result = make_qp_solver(options.backend)->solve(qp, options.qp);
    }
    Single_cell_estimate est = package(result.x, series, options.lambda);
    est.qp_iterations = result.iterations;
    est.active_constraints = result.active_set.size();
    return est;
}

Single_cell_estimate Deconvolver::estimate_unconstrained(const Measurement_series& series,
                                                         double lambda, double ridge) const {
    check_series(series);
    if (lambda < 0.0) throw std::invalid_argument("Deconvolver: lambda must be >= 0");
    const std::size_t n = artifacts_->basis->size();
    const Vector w = series.weights();

    // Normal equations (K'WK + lambda Omega + ridge I) alpha = K'W G through
    // the cached-block KKT object (Cholesky, LDLT on the semi-definite
    // corner).
    Kkt_factorization kkt(weighted_gram(artifacts_->kernel_design, w), artifacts_->penalty,
                          Matrix(0, n));
    kkt.factorize(lambda, ridge);
    const Vector rhs =
        transposed_times(artifacts_->kernel_design, hadamard(w, series.values));
    Vector alpha = kkt.solve(scaled(rhs, -1.0), Vector{});
    return package(std::move(alpha), series, lambda);
}

Matrix Deconvolver::hat_matrix(const Measurement_series& series, double lambda,
                               double ridge) const {
    check_series(series);
    if (lambda < 0.0) throw std::invalid_argument("Deconvolver: lambda must be >= 0");
    const std::size_t n = artifacts_->basis->size();
    const std::size_t m = series.size();
    const Vector w = series.weights();

    // Whitened design: Kw = W^{1/2} K; A = Kw (Kw'Kw + lambda Omega)^-1 Kw'.
    Matrix kw(m, n);
    for (std::size_t r = 0; r < m; ++r) {
        const double sw = std::sqrt(w[r]);
        for (std::size_t i = 0; i < n; ++i) kw(r, i) = sw * artifacts_->kernel_matrix(r, i);
    }
    Matrix normal = gram(kw) + lambda * artifacts_->penalty;
    for (std::size_t i = 0; i < n; ++i) normal(i, i) += ridge;
    const Matrix inv_t_kwt = lu_solve(normal, kw.transposed());  // n x m
    return kw * inv_t_kwt;
}

}  // namespace cellsync
