#include "core/pipeline.h"

namespace cellsync {

Pipeline_result deconvolve_series(const Measurement_series& series,
                                  const Pipeline_config& config,
                                  const Volume_model& volume_model) {
    series.validate();
    config.cell_cycle.validate();

    const Kernel_grid kernel =
        build_kernel(config.cell_cycle, volume_model, series.times, config.kernel);

    auto basis = std::make_shared<Natural_spline_basis>(config.basis_size);
    auto deconvolver = std::make_unique<Deconvolver>(basis, kernel, config.cell_cycle);

    Deconvolution_options options = config.deconvolution;
    std::optional<Lambda_selection> selection;
    if (config.select_lambda) {
        const Vector grid =
            config.lambda_grid.empty() ? default_lambda_grid() : config.lambda_grid;
        selection =
            select_lambda_kfold(*deconvolver, series, options, grid, config.cv_folds);
        options.lambda = selection->best_lambda;
    }
    Single_cell_estimate estimate = deconvolver->estimate(series, options);
    return Pipeline_result{std::move(basis), std::move(deconvolver), std::move(estimate),
                           std::move(selection)};
}

}  // namespace cellsync
