#include "core/experiment_design.h"

#include <cmath>
#include <stdexcept>

#include "numerics/linear_solve.h"

namespace cellsync {

Design_score score_design(const Kernel_grid& kernel, const Basis& basis, double lambda,
                          std::string label) {
    if (lambda < 0.0) throw std::invalid_argument("score_design: lambda must be >= 0");
    const Matrix k = kernel.basis_matrix(basis);
    const Matrix omega = basis.penalty_matrix();
    const std::size_t n = basis.size();

    Matrix information = gram(k) + lambda * omega;
    for (std::size_t i = 0; i < n; ++i) information(i, i) += 1e-12;  // numerical floor

    Design_score score;
    score.label = std::move(label);
    score.measurement_count = kernel.time_count();

    const Matrix inverse_information = inverse(information);
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += inverse_information(i, i);
    score.a_criterion = trace;

    // log-det via Cholesky of the SPD information matrix.
    const Matrix l = cholesky(information);
    double log_det = 0.0;
    for (std::size_t i = 0; i < n; ++i) log_det += std::log10(l(i, i));
    score.neg_log10_d_criterion = -2.0 * log_det;

    // Effective dof: tr(K M^-1 K') = sum_m k_m' M^-1 k_m.
    double dof = 0.0;
    for (std::size_t m = 0; m < k.rows(); ++m) {
        const Vector row = k.row(m);
        dof += dot(row, inverse_information * row);
    }
    score.effective_dof = dof;
    return score;
}

std::vector<Design_score> compare_designs(
    const Cell_cycle_config& config, const Volume_model& volume,
    const std::vector<std::pair<std::string, Vector>>& candidate_time_grids,
    const Basis& basis, double lambda, const Kernel_build_options& options) {
    if (candidate_time_grids.empty()) {
        throw std::invalid_argument("compare_designs: no candidate designs");
    }
    std::vector<Design_score> scores;
    scores.reserve(candidate_time_grids.size());
    for (const auto& [label, times] : candidate_time_grids) {
        const Kernel_grid kernel = build_kernel(config, volume, times, options);
        scores.push_back(score_design(kernel, basis, lambda, label));
    }
    return scores;
}

}  // namespace cellsync
