// Multi-condition, multi-gene time-course experiments.
//
// The paper's deliverable is a synchronized single-cell time course
// recovered from asynchronous population data; a real study produces many
// such datasets at once — several growth conditions or strains, each with
// a gene panel sampled on its own time grid. The experiment runner is the
// orchestration layer for that workload: per condition it obtains the
// kernel through a Kernel_cache (simulation is skipped whenever the
// (config, volume model, times, options) tuple was seen before, in memory
// or on disk), fans every (condition x gene) solve over one shared
// Design_artifacts per kernel, warm-starts lambda selection from the
// previous condition's per-gene choices, and scores each reconstructed
// profile's synchrony (order parameter / entropy).
//
// Two schedules produce bit-identical results. The sequential schedule
// finishes condition k entirely before touching k+1. The pipelined
// schedule (default) expresses the run as a Task_graph on one
// Worker_pool — per condition a kernel node, a prep node (warm grids),
// a per-gene solve batch, and a scoring node — where only the stages
// that truly depend on each other are ordered: kernel simulation of
// condition k+1 (an async Kernel_cache request) overlaps the solves of
// condition k, which is where a cold multi-condition run spends its
// serial time. For panels too large for one machine, shard_experiment
// splits the gene panels deterministically across processes; per-shard
// outputs merge losslessly (`cellsync_deconvolve merge-results`).
//
// Results are deterministic for a fixed spec: identical whether kernels
// were simulated or served from cache, for any thread count, and for
// either schedule.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "population/kernel_cache.h"

namespace cellsync {

/// One experimental condition: an organism/protocol configuration plus the
/// gene panel measured under it. All series of the panel must share one
/// time grid (that grid is what the condition's kernel is built at).
struct Experiment_condition {
    std::string name;
    Cell_cycle_config cell_cycle;
    std::vector<Measurement_series> panel;
};

/// How run_experiment orders the work. Both schedules are bit-identical;
/// they differ only in wall-clock shape.
enum class Experiment_schedule {
    /// Condition k completes (kernel, solves, scores) before condition
    /// k+1 starts — the historical path, kept as the reference.
    sequential,
    /// Task-graph execution on one worker pool: all conditions' kernel
    /// resolutions start immediately (deduplicated via
    /// Kernel_cache::get_or_build_async), overlapping the per-gene solve
    /// chain, which stays ordered only by its true dependencies (warm
    /// starts flow from condition k to k+1).
    pipelined,
};

/// Complete description of a multi-condition experiment.
struct Experiment_spec {
    std::vector<Experiment_condition> conditions;
    Kernel_build_options kernel;  ///< Monte-Carlo controls shared by all conditions
    std::size_t basis_size = 18;  ///< Nc natural-spline knots
    Batch_options batch;          ///< deconvolution, lambda grid, CV controls
    std::size_t threads = 0;      ///< worker parallelism (0 = hardware)
    Experiment_schedule schedule = Experiment_schedule::pipelined;
    /// Narrow each gene's lambda grid around the same gene's selection in
    /// the previous condition (adjacent conditions share biology, so the
    /// optimal smoothness rarely moves far). Genes absent or failed in the
    /// previous condition fall back to the full grid. Deterministic: the
    /// warm grid depends only on previous results, never on cache state.
    bool warm_start_lambda = true;
    std::size_t warm_grid_points = 7;  ///< points in the narrowed grid
    double warm_grid_decades = 1.0;    ///< half-width, decades around the previous lambda
};

/// Synchrony scores of one reconstructed profile (see
/// profile_order_parameter / profile_entropy in population/synchrony.h).
struct Gene_synchrony {
    std::string label;
    double order_parameter = 0.0;  ///< 1 = sharply phase-localized expression
    double entropy = 0.0;          ///< 1 = flat (constitutive) expression
    double peak_phi = 0.0;         ///< phase of maximal expression
};

/// Everything produced for one condition.
struct Condition_result {
    std::string name;
    std::shared_ptr<const Kernel_grid> kernel;
    std::vector<Batch_entry> genes;  ///< per-gene estimates / errors, panel order
    /// Scores for the successful genes whose clamped profile has positive
    /// mass, in panel order.
    std::vector<Gene_synchrony> synchrony;
    double mean_order_parameter = 0.0;  ///< mean over `synchrony`
    double mean_entropy = 0.0;
};

/// Whole-experiment outcome.
struct Experiment_result {
    std::vector<Condition_result> conditions;
    /// Cache activity attributable to this run: the runner snapshots the
    /// cache's counters on entry and reports the difference, so reusing
    /// one long-lived cache across runs never inflates a run's numbers.
    Kernel_cache_stats cache_stats;
};

/// Run the experiment, resolving kernels through `cache`. Throws
/// std::invalid_argument for an empty experiment, an empty panel, a
/// panel whose series disagree on the time grid, or duplicate condition
/// names (after empty names resolve to their positional "conditionN"
/// label — duplicates would merge two conditions' results and warm-start
/// lambdas under one label); per-gene estimation failures are reported
/// in the corresponding Batch_entry::error instead of aborting.
Experiment_result run_experiment(const Experiment_spec& spec,
                                 const Volume_model& volume_model, Kernel_cache& cache);

/// Convenience overload with an ephemeral in-memory cache (conditions
/// sharing a configuration still share one simulation within the run).
Experiment_result run_experiment(const Experiment_spec& spec,
                                 const Volume_model& volume_model);

/// Deterministic gene-level shard of an experiment for process-level
/// fan-out (`run --shards N --shard-index i` on the CLI): keeps, in
/// every condition, exactly the genes whose label hashes (FNV-1a) to
/// `shard_index` modulo `shards`, and drops conditions left with an
/// empty panel. The same label lands in the same shard in every
/// condition, so each gene's lambda warm-start chain is preserved
/// intact — every kept gene's estimate is bit-identical to its estimate
/// in the unsharded run, and per-shard outputs merge losslessly. A
/// shard may end up with zero conditions (more shards than genes);
/// callers should treat that as "nothing to do", not an error. Throws
/// std::invalid_argument if shards == 0 or shard_index >= shards.
Experiment_spec shard_experiment(const Experiment_spec& spec, std::size_t shards,
                                 std::size_t shard_index);

}  // namespace cellsync
