// Multi-condition, multi-gene time-course experiments.
//
// The paper's deliverable is a synchronized single-cell time course
// recovered from asynchronous population data; a real study produces many
// such datasets at once — several growth conditions or strains, each with
// a gene panel sampled on its own time grid. The experiment runner is the
// orchestration layer for that workload: per condition it obtains the
// kernel through a Kernel_cache (simulation is skipped whenever the
// (config, volume model, times, options) tuple was seen before, in memory
// or on disk), fans every (condition x gene) solve onto a Batch_engine
// sharing one Design_artifacts per kernel, warm-starts lambda selection
// from the previous condition's per-gene choices, and scores each
// reconstructed profile's synchrony (order parameter / entropy).
//
// Results are deterministic for a fixed spec: identical whether kernels
// were simulated or served from cache, and for any thread count.
#ifndef CELLSYNC_CORE_EXPERIMENT_RUNNER_H
#define CELLSYNC_CORE_EXPERIMENT_RUNNER_H

#include <memory>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "population/kernel_cache.h"

namespace cellsync {

/// One experimental condition: an organism/protocol configuration plus the
/// gene panel measured under it. All series of the panel must share one
/// time grid (that grid is what the condition's kernel is built at).
struct Experiment_condition {
    std::string name;
    Cell_cycle_config cell_cycle;
    std::vector<Measurement_series> panel;
};

/// Complete description of a multi-condition experiment.
struct Experiment_spec {
    std::vector<Experiment_condition> conditions;
    Kernel_build_options kernel;  ///< Monte-Carlo controls shared by all conditions
    std::size_t basis_size = 18;  ///< Nc natural-spline knots
    Batch_options batch;          ///< deconvolution, lambda grid, CV controls
    std::size_t threads = 0;      ///< Batch_engine parallelism (0 = hardware)
    /// Narrow each gene's lambda grid around the same gene's selection in
    /// the previous condition (adjacent conditions share biology, so the
    /// optimal smoothness rarely moves far). Genes absent or failed in the
    /// previous condition fall back to the full grid. Deterministic: the
    /// warm grid depends only on previous results, never on cache state.
    bool warm_start_lambda = true;
    std::size_t warm_grid_points = 7;  ///< points in the narrowed grid
    double warm_grid_decades = 1.0;    ///< half-width, decades around the previous lambda
};

/// Synchrony scores of one reconstructed profile (see
/// profile_order_parameter / profile_entropy in population/synchrony.h).
struct Gene_synchrony {
    std::string label;
    double order_parameter = 0.0;  ///< 1 = sharply phase-localized expression
    double entropy = 0.0;          ///< 1 = flat (constitutive) expression
    double peak_phi = 0.0;         ///< phase of maximal expression
};

/// Everything produced for one condition.
struct Condition_result {
    std::string name;
    std::shared_ptr<const Kernel_grid> kernel;
    std::vector<Batch_entry> genes;  ///< per-gene estimates / errors, panel order
    /// Scores for the successful genes whose clamped profile has positive
    /// mass, in panel order.
    std::vector<Gene_synchrony> synchrony;
    double mean_order_parameter = 0.0;  ///< mean over `synchrony`
    double mean_entropy = 0.0;
};

/// Whole-experiment outcome.
struct Experiment_result {
    std::vector<Condition_result> conditions;
    /// The cache's counters after the run (cumulative over the cache's
    /// lifetime; diff against a pre-run snapshot for per-run numbers).
    Kernel_cache_stats cache_stats;
};

/// Run the experiment, resolving kernels through `cache`. Throws
/// std::invalid_argument for an empty experiment, an empty panel, a
/// panel whose series disagree on the time grid, or duplicate condition
/// names (after empty names resolve to their positional "conditionN"
/// label — duplicates would merge two conditions' results and warm-start
/// lambdas under one label); per-gene estimation failures are reported
/// in the corresponding Batch_entry::error instead of aborting.
Experiment_result run_experiment(const Experiment_spec& spec,
                                 const Volume_model& volume_model, Kernel_cache& cache);

/// Convenience overload with an ephemeral in-memory cache (conditions
/// sharing a configuration still share one simulation within the run).
Experiment_result run_experiment(const Experiment_spec& spec,
                                 const Volume_model& volume_model);

}  // namespace cellsync

#endif  // CELLSYNC_CORE_EXPERIMENT_RUNNER_H
