#include "core/experiment_runner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "population/synchrony.h"
#include "spline/spline_basis.h"

namespace cellsync {

namespace {

/// Condition names as used downstream: an empty name defaults to its
/// positional "conditionN" label.
std::string resolved_condition_name(const Experiment_condition& condition, std::size_t index) {
    return condition.name.empty() ? ("condition" + std::to_string(index)) : condition.name;
}

void validate_spec(const Experiment_spec& spec) {
    if (spec.conditions.empty()) {
        throw std::invalid_argument("run_experiment: no conditions");
    }
    // Duplicate names would silently merge two conditions under one label:
    // the second would overwrite the first's warm-start lambdas and the
    // caller could not tell their results apart. Reject them up front.
    for (std::size_t a = 0; a < spec.conditions.size(); ++a) {
        const std::string name_a = resolved_condition_name(spec.conditions[a], a);
        for (std::size_t b = a + 1; b < spec.conditions.size(); ++b) {
            if (name_a == resolved_condition_name(spec.conditions[b], b)) {
                throw std::invalid_argument(
                    "run_experiment: duplicate condition name '" + name_a +
                    "' (conditions " + std::to_string(a) + " and " + std::to_string(b) +
                    "); give each condition a distinct name");
            }
        }
    }
    if (spec.basis_size < 4) {
        throw std::invalid_argument("run_experiment: basis_size too small");
    }
    if (spec.warm_start_lambda &&
        (spec.warm_grid_points < 2 || !(spec.warm_grid_decades > 0.0))) {
        throw std::invalid_argument(
            "run_experiment: warm start needs >= 2 grid points and positive decades");
    }
    for (const Experiment_condition& condition : spec.conditions) {
        if (condition.panel.empty()) {
            throw std::invalid_argument("run_experiment: condition '" + condition.name +
                                        "' has an empty panel");
        }
        const Vector& times = condition.panel.front().times;
        for (const Measurement_series& series : condition.panel) {
            series.validate();
            if (series.times != times) {
                throw std::invalid_argument(
                    "run_experiment: series '" + series.label + "' of condition '" +
                    condition.name + "' is not on the condition's time grid");
            }
        }
    }
}

/// Log-spaced grid of `points` lambdas centered (in log space) on
/// `center`, spanning +/- `decades`.
Vector warm_grid(double center, std::size_t points, double decades) {
    return default_lambda_grid(points, center * std::pow(10.0, -decades),
                               center * std::pow(10.0, decades));
}

}  // namespace

Experiment_result run_experiment(const Experiment_spec& spec,
                                 const Volume_model& volume_model, Kernel_cache& cache) {
    validate_spec(spec);

    // Profiles are scored on the first 200 points of the standard 201-point
    // output grid — phi = 0, 0.005, ..., 0.995. Dropping the phi = 1
    // sample keeps the grid circularly open (phi = 0 and 1 are the same
    // angle and must not be double-counted), and using the output grid's
    // own points lets `cellsync_deconvolve report` reproduce these scores
    // exactly from a saved profile CSV.
    Vector score_phi = linspace(0.0, 1.0, 201);
    score_phi.pop_back();

    Experiment_result result;
    result.conditions.reserve(spec.conditions.size());
    // label -> lambda selected for that gene in the most recent condition
    // where it succeeded; feeds the warm-started grids.
    std::map<std::string, double> previous_lambda;
    // Conditions resolving to the same cached kernel share one engine (the
    // cache key covers the full cell-cycle config, so an identical grid
    // pointer implies an identical design): the kernel matrix, penalty
    // Gram, and constraint reduction are computed once per distinct
    // kernel, not once per condition.
    std::map<const Kernel_grid*, std::unique_ptr<Batch_engine>> engines;

    for (std::size_t c = 0; c < spec.conditions.size(); ++c) {
        const Experiment_condition& condition = spec.conditions[c];
        Condition_result out;
        out.name = resolved_condition_name(condition, c);

        out.kernel = cache.get_or_build(condition.cell_cycle, volume_model,
                                        condition.panel.front().times, spec.kernel);

        std::unique_ptr<Batch_engine>& engine_slot = engines[out.kernel.get()];
        if (!engine_slot) {
            Batch_engine_options engine_options;
            engine_options.threads = spec.threads;
            engine_options.constraints = spec.batch.deconvolution.constraints;
            engine_slot = std::make_unique<Batch_engine>(
                std::make_shared<Natural_spline_basis>(spec.basis_size), *out.kernel,
                condition.cell_cycle, engine_options);
        }
        const Batch_engine& engine = *engine_slot;

        std::vector<Vector> grids(condition.panel.size());
        if (spec.warm_start_lambda && spec.batch.select_lambda && c > 0) {
            for (std::size_t g = 0; g < condition.panel.size(); ++g) {
                const auto it = previous_lambda.find(condition.panel[g].label);
                if (it != previous_lambda.end()) {
                    grids[g] = warm_grid(it->second, spec.warm_grid_points,
                                         spec.warm_grid_decades);
                }
            }
        }
        out.genes = engine.run_with_grids(condition.panel, grids, spec.batch);

        for (const Batch_entry& entry : out.genes) {
            if (entry.estimate.has_value()) previous_lambda[entry.label] = entry.lambda;
        }

        for (const Batch_entry& entry : out.genes) {
            if (!entry.estimate.has_value()) continue;
            const Vector values = entry.estimate->sample(score_phi);
            Gene_synchrony scores;
            scores.label = entry.label;
            try {
                scores.order_parameter = profile_order_parameter(score_phi, values);
                scores.entropy = profile_entropy(values);
            } catch (const std::invalid_argument&) {
                continue;  // no positive mass: synchrony is undefined, skip
            }
            const auto peak = std::max_element(values.begin(), values.end());
            scores.peak_phi = score_phi[static_cast<std::size_t>(peak - values.begin())];
            out.synchrony.push_back(std::move(scores));
        }
        if (!out.synchrony.empty()) {
            for (const Gene_synchrony& s : out.synchrony) {
                out.mean_order_parameter += s.order_parameter;
                out.mean_entropy += s.entropy;
            }
            const double n = static_cast<double>(out.synchrony.size());
            out.mean_order_parameter /= n;
            out.mean_entropy /= n;
        }

        result.conditions.push_back(std::move(out));
    }

    result.cache_stats = cache.stats();
    return result;
}

Experiment_result run_experiment(const Experiment_spec& spec,
                                 const Volume_model& volume_model) {
    Kernel_cache cache;
    return run_experiment(spec, volume_model, cache);
}

}  // namespace cellsync
