#include "core/experiment_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>

#include "core/batch.h"
#include "core/task_graph.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "core/worker_pool.h"
#include "numerics/fnv.h"
#include "population/synchrony.h"
#include "spline/spline_basis.h"

namespace cellsync {

namespace {

/// Condition names as used downstream: an empty name defaults to its
/// positional "conditionN" label.
std::string resolved_condition_name(const Experiment_condition& condition, std::size_t index) {
    return condition.name.empty() ? ("condition" + std::to_string(index)) : condition.name;
}

void validate_spec(const Experiment_spec& spec) {
    if (spec.conditions.empty()) {
        throw std::invalid_argument("run_experiment: no conditions");
    }
    // Duplicate names would silently merge two conditions under one label:
    // the second would overwrite the first's warm-start lambdas and the
    // caller could not tell their results apart. Reject them up front.
    for (std::size_t a = 0; a < spec.conditions.size(); ++a) {
        const std::string name_a = resolved_condition_name(spec.conditions[a], a);
        for (std::size_t b = a + 1; b < spec.conditions.size(); ++b) {
            if (name_a == resolved_condition_name(spec.conditions[b], b)) {
                throw std::invalid_argument(
                    "run_experiment: duplicate condition name '" + name_a +
                    "' (conditions " + std::to_string(a) + " and " + std::to_string(b) +
                    "); give each condition a distinct name");
            }
        }
    }
    if (spec.basis_size < 4) {
        throw std::invalid_argument("run_experiment: basis_size too small");
    }
    if (spec.warm_start_lambda &&
        (spec.warm_grid_points < 2 || !(spec.warm_grid_decades > 0.0))) {
        throw std::invalid_argument(
            "run_experiment: warm start needs >= 2 grid points and positive decades");
    }
    for (const Experiment_condition& condition : spec.conditions) {
        if (condition.panel.empty()) {
            throw std::invalid_argument("run_experiment: condition '" + condition.name +
                                        "' has an empty panel");
        }
        const Vector& times = condition.panel.front().times;
        for (const Measurement_series& series : condition.panel) {
            series.validate();
            if (series.times != times) {
                throw std::invalid_argument(
                    "run_experiment: series '" + series.label + "' of condition '" +
                    condition.name + "' is not on the condition's time grid");
            }
        }
    }
}

/// Log-spaced grid of `points` lambdas centered (in log space) on
/// `center`, spanning +/- `decades`.
Vector warm_grid(double center, std::size_t points, double decades) {
    return default_lambda_grid(points, center * std::pow(10.0, -decades),
                               center * std::pow(10.0, decades));
}

/// Profiles are scored on the first 200 points of the standard 201-point
/// output grid — phi = 0, 0.005, ..., 0.995. Dropping the phi = 1 sample
/// keeps the grid circularly open (phi = 0 and 1 are the same angle and
/// must not be double-counted), and using the output grid's own points
/// lets `cellsync_deconvolve report` reproduce these scores exactly from
/// a saved profile CSV.
Vector make_score_phi() {
    Vector score_phi = linspace(0.0, 1.0, 201);
    score_phi.pop_back();
    return score_phi;
}

/// Per-gene warm-started lambda grids for condition `c`: narrowed around
/// each gene's selection in the most recent condition where it succeeded
/// (empty grid = fall back to the shared grid). Shared verbatim by both
/// schedules so their per-gene inputs are identical.
std::vector<Vector> warm_grids_for(const Experiment_spec& spec, std::size_t c,
                                   const std::map<std::string, double>& previous_lambda) {
    const Experiment_condition& condition = spec.conditions[c];
    std::vector<Vector> grids(condition.panel.size());
    if (spec.warm_start_lambda && spec.batch.select_lambda && c > 0) {
        for (std::size_t g = 0; g < condition.panel.size(); ++g) {
            const auto it = previous_lambda.find(condition.panel[g].label);
            if (it != previous_lambda.end()) {
                grids[g] = warm_grid(it->second, spec.warm_grid_points,
                                     spec.warm_grid_decades);
            }
        }
    }
    return grids;
}

/// Record the condition's selected lambdas (feeding later conditions'
/// warm starts) and score every successful profile's synchrony.
void score_condition(Condition_result& out, const Vector& score_phi,
                     std::map<std::string, double>& previous_lambda) {
    // Shared by both schedules, once per condition — the one place the
    // experiment-level progress counters can tick identically for the
    // sequential and pipelined paths.
    static telemetry::Counter& conditions_done = telemetry::counter("experiment.conditions_done");
    static telemetry::Counter& genes_done = telemetry::counter("experiment.genes_done");
    conditions_done.add();
    genes_done.add(out.genes.size());

    for (const Batch_entry& entry : out.genes) {
        if (entry.estimate.has_value()) previous_lambda[entry.label] = entry.lambda;
    }

    for (const Batch_entry& entry : out.genes) {
        if (!entry.estimate.has_value()) continue;
        const Vector values = entry.estimate->sample(score_phi);
        Gene_synchrony scores;
        scores.label = entry.label;
        try {
            scores.order_parameter = profile_order_parameter(score_phi, values);
            scores.entropy = profile_entropy(values);
        } catch (const std::invalid_argument&) {
            continue;  // no positive mass: synchrony is undefined, skip
        }
        const auto peak = std::max_element(values.begin(), values.end());
        scores.peak_phi = score_phi[static_cast<std::size_t>(peak - values.begin())];
        out.synchrony.push_back(std::move(scores));
    }
    if (!out.synchrony.empty()) {
        for (const Gene_synchrony& s : out.synchrony) {
            out.mean_order_parameter += s.order_parameter;
            out.mean_entropy += s.entropy;
        }
        const double n = static_cast<double>(out.synchrony.size());
        out.mean_order_parameter /= n;
        out.mean_entropy /= n;
    }
}

/// The reference schedule: condition k completes before k+1 starts.
Experiment_result run_sequential(const Experiment_spec& spec,
                                 const Volume_model& volume_model, Kernel_cache& cache) {
    const Vector score_phi = make_score_phi();

    Experiment_result result;
    result.conditions.reserve(spec.conditions.size());
    // label -> lambda selected for that gene in the most recent condition
    // where it succeeded; feeds the warm-started grids.
    std::map<std::string, double> previous_lambda;
    // Conditions resolving to the same cached kernel share one engine (the
    // cache key covers the full cell-cycle config, so an identical grid
    // pointer implies an identical design): the kernel matrix, penalty
    // Gram, and constraint reduction are computed once per distinct
    // kernel, not once per condition.
    std::map<const Kernel_grid*, std::unique_ptr<Batch_engine>> engines;

    const bool tracing = telemetry::Trace_recorder::instance().enabled();
    for (std::size_t c = 0; c < spec.conditions.size(); ++c) {
        const Experiment_condition& condition = spec.conditions[c];
        Condition_result out;
        out.name = resolved_condition_name(condition, c);

        {
            const telemetry::Trace_span kernel_span(
                "experiment.kernel", "experiment",
                tracing ? telemetry::arg("condition", out.name) : std::string());
            out.kernel = cache.get_or_build(condition.cell_cycle, volume_model,
                                            condition.panel.front().times, spec.kernel);
        }

        std::unique_ptr<Batch_engine>& engine_slot = engines[out.kernel.get()];
        if (!engine_slot) {
            Batch_engine_options engine_options;
            engine_options.threads = spec.threads;
            engine_options.constraints = spec.batch.deconvolution.constraints;
            engine_slot = std::make_unique<Batch_engine>(
                std::make_shared<Natural_spline_basis>(spec.basis_size), *out.kernel,
                condition.cell_cycle, engine_options);
        }
        const Batch_engine& engine = *engine_slot;

        {
            const telemetry::Trace_span solve_span(
                "experiment.solve", "experiment",
                tracing ? telemetry::args_join(
                              telemetry::arg("condition", out.name),
                              telemetry::arg("genes",
                                             static_cast<std::int64_t>(condition.panel.size())))
                        : std::string());
            out.genes = engine.run_with_grids(condition.panel,
                                              warm_grids_for(spec, c, previous_lambda),
                                              spec.batch);
        }
        {
            const telemetry::Trace_span score_span(
                "experiment.score", "experiment",
                tracing ? telemetry::arg("condition", out.name) : std::string());
            score_condition(out, score_phi, previous_lambda);
        }
        result.conditions.push_back(std::move(out));
    }
    return result;
}

/// The pipelined schedule: one Task_graph per run, executed by one
/// Worker_pool. Per condition c —
///
///   kernel_c ──► prep_c ──► solve_c (one task per gene) ──► score_c
///                  ▲                                           │
///                  └──────────── score_{c-1} ◄─────────────────┘
///
/// Every kernel node is a root (async cache requests were issued up
/// front, duplicates already joined in flight), so kernel simulation of
/// condition k+1 runs while condition k's solves drain. The prep/score
/// chain carries the warm-start state exactly as the sequential
/// schedule does, which is why the two are bit-identical.
Experiment_result run_pipelined(const Experiment_spec& spec,
                                const Volume_model& volume_model, Kernel_cache& cache) {
    const std::size_t n = spec.conditions.size();
    const Vector score_phi = make_score_phi();

    Experiment_result result;
    result.conditions.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
        result.conditions[c].name = resolved_condition_name(spec.conditions[c], c);
    }

    // Issue every condition's kernel request up front, in condition order
    // on this thread: distinct keys become independently runnable build
    // nodes, repeated keys join the first request's in-flight resolution
    // — so the cache counters match the sequential schedule exactly.
    std::vector<Kernel_cache::Async_request> requests;
    requests.reserve(n);
    for (const Experiment_condition& condition : spec.conditions) {
        requests.push_back(cache.get_or_build_async(condition.cell_cycle, volume_model,
                                                    condition.panel.front().times,
                                                    spec.kernel));
    }

    /// Solve inputs produced by prep_c, consumed by solve_c's gene tasks.
    struct Condition_work {
        std::shared_ptr<const Deconvolver> deconvolver;
        Batch_options resolved;
        std::vector<Vector> grids;
    };
    std::vector<Condition_work> work(n);
    std::map<std::string, double> previous_lambda;
    // Same design sharing as the sequential engines map; only prep nodes
    // touch it, and those are chained, so no synchronization is needed.
    std::map<const Kernel_grid*, std::shared_ptr<const Design_artifacts>> designs;

    Task_graph graph;
    std::vector<Task_graph::Node_id> kernel_nodes(n);
    std::vector<Task_graph::Node_id> score_nodes(n);
    // Kernel nodes first: they get threads first when several nodes are
    // ready, which is right — they are the long poles being hidden.
    for (std::size_t c = 0; c < n; ++c) {
        kernel_nodes[c] = graph.add_node(
            "kernel:" + result.conditions[c].name, 1,
            [&result, &requests, c](std::size_t) {
                result.conditions[c].kernel = requests[c].get();
            });
    }
    for (std::size_t c = 0; c < n; ++c) {
        std::vector<Task_graph::Node_id> prep_deps = {kernel_nodes[c]};
        if (c > 0) prep_deps.push_back(score_nodes[c - 1]);
        const Task_graph::Node_id prep = graph.add_node(
            "prep:" + result.conditions[c].name, 1,
            [&spec, &result, &work, &designs, &previous_lambda, c](std::size_t) {
                Condition_result& out = result.conditions[c];
                std::shared_ptr<const Design_artifacts>& design =
                    designs[out.kernel.get()];
                if (!design) {
                    design = make_design_artifacts(
                        std::make_shared<Natural_spline_basis>(spec.basis_size),
                        *out.kernel, spec.conditions[c].cell_cycle,
                        spec.batch.deconvolution.constraints);
                }
                work[c].deconvolver = std::make_shared<const Deconvolver>(design);
                work[c].resolved = resolve_batch_options(*design, spec.batch);
                work[c].grids = warm_grids_for(spec, c, previous_lambda);
                out.genes.resize(spec.conditions[c].panel.size());
            },
            std::move(prep_deps));
        const Task_graph::Node_id solve = graph.add_node(
            "solve:" + result.conditions[c].name, spec.conditions[c].panel.size(),
            [&spec, &result, &work, c](std::size_t g) {
                const Condition_work& w = work[c];
                const Vector& grid =
                    w.grids[g].empty() ? w.resolved.lambda_grid : w.grids[g];
                result.conditions[c].genes[g] = deconvolve_one(
                    *w.deconvolver, spec.conditions[c].panel[g], grid, w.resolved);
            },
            {prep});
        score_nodes[c] = graph.add_node(
            "score:" + result.conditions[c].name, 1,
            [&result, &score_phi, &previous_lambda, c](std::size_t) {
                score_condition(result.conditions[c], score_phi, previous_lambda);
            },
            {solve});
    }

    Worker_pool pool(spec.threads);
    pool.run(graph);
    return result;
}

/// FNV-1a 64-bit over a gene label — the shard assignment hash.
std::uint64_t label_hash(const std::string& label) { return fnv1a64(label); }

}  // namespace

Experiment_result run_experiment(const Experiment_spec& spec,
                                 const Volume_model& volume_model, Kernel_cache& cache) {
    validate_spec(spec);
    const Kernel_cache_stats before = cache.stats();
    Experiment_result result = spec.schedule == Experiment_schedule::sequential
                                   ? run_sequential(spec, volume_model, cache)
                                   : run_pipelined(spec, volume_model, cache);
    result.cache_stats = cache.stats() - before;
    return result;
}

Experiment_result run_experiment(const Experiment_spec& spec,
                                 const Volume_model& volume_model) {
    Kernel_cache cache;
    return run_experiment(spec, volume_model, cache);
}

Experiment_spec shard_experiment(const Experiment_spec& spec, std::size_t shards,
                                 std::size_t shard_index) {
    if (shards == 0) {
        throw std::invalid_argument("shard_experiment: shards must be >= 1");
    }
    if (shard_index >= shards) {
        throw std::invalid_argument("shard_experiment: shard_index " +
                                    std::to_string(shard_index) + " out of range for " +
                                    std::to_string(shards) + " shards");
    }
    // Tag this process's metrics with its shard assignment so merged
    // dashboards can tell shard streams apart.
    telemetry::gauge("experiment.shard_count").set(static_cast<double>(shards));
    telemetry::gauge("experiment.shard_index").set(static_cast<double>(shard_index));
    if (shards == 1) return spec;
    Experiment_spec out = spec;
    out.conditions.clear();
    for (std::size_t c = 0; c < spec.conditions.size(); ++c) {
        const Experiment_condition& condition = spec.conditions[c];
        Experiment_condition kept = condition;
        // Pin the unsharded run's resolved name: dropping a fully
        // filtered condition shifts positions, and a positional
        // "conditionN" label that differed between shards would let
        // merge-results silently combine two different conditions.
        kept.name = resolved_condition_name(condition, c);
        kept.panel.clear();
        for (const Measurement_series& series : condition.panel) {
            if (label_hash(series.label) % shards == shard_index) {
                kept.panel.push_back(series);
            }
        }
        if (!kept.panel.empty()) out.conditions.push_back(std::move(kept));
    }
    return out;
}

}  // namespace cellsync
