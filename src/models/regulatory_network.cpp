#include "models/regulatory_network.h"

#include <cmath>
#include <stdexcept>

#include "models/oscillators.h"

namespace cellsync {

Regulatory_network::Regulatory_network(std::size_t gene_count)
    : production_(gene_count, 1.0), basal_(gene_count, 0.0), decay_(gene_count, 1.0) {
    if (gene_count == 0) {
        throw std::invalid_argument("Regulatory_network: need at least one gene");
    }
}

void Regulatory_network::set_production(std::size_t gene, double rate) {
    if (gene >= gene_count()) throw std::out_of_range("Regulatory_network: bad gene index");
    if (!(rate > 0.0)) {
        throw std::invalid_argument("Regulatory_network: production must be positive");
    }
    production_[gene] = rate;
}

void Regulatory_network::set_basal(std::size_t gene, double rate) {
    if (gene >= gene_count()) throw std::out_of_range("Regulatory_network: bad gene index");
    if (rate < 0.0) {
        throw std::invalid_argument("Regulatory_network: basal must be non-negative");
    }
    basal_[gene] = rate;
}

void Regulatory_network::set_decay(std::size_t gene, double rate) {
    if (gene >= gene_count()) throw std::out_of_range("Regulatory_network: bad gene index");
    if (!(rate > 0.0)) {
        throw std::invalid_argument("Regulatory_network: decay must be positive");
    }
    decay_[gene] = rate;
}

void Regulatory_network::add_edge(const Regulatory_edge& edge) {
    if (edge.source >= gene_count() || edge.target >= gene_count()) {
        throw std::out_of_range("Regulatory_network: edge index out of range");
    }
    if (!(edge.threshold > 0.0)) {
        throw std::invalid_argument("Regulatory_network: threshold must be positive");
    }
    if (!(edge.hill >= 1.0)) {
        throw std::invalid_argument("Regulatory_network: hill coefficient must be >= 1");
    }
    edges_.push_back(edge);
}

Ode_rhs Regulatory_network::rhs() const {
    // Copy state so the callable is self-contained.
    const auto production = production_;
    const auto basal = basal_;
    const auto decay = decay_;
    const auto edges = edges_;
    const std::size_t n = gene_count();
    return [production, basal, decay, edges, n](double, const Vector& x) {
        Vector regulation(n, 1.0);
        for (const Regulatory_edge& edge : edges) {
            const double level = std::max(x[edge.source], 0.0);
            const double ratio = std::pow(level / edge.threshold, edge.hill);
            const double h = edge.activating ? ratio / (1.0 + ratio) : 1.0 / (1.0 + ratio);
            regulation[edge.target] *= h;
        }
        Vector dx(n);
        for (std::size_t i = 0; i < n; ++i) {
            dx[i] = basal[i] + production[i] * regulation[i] - decay[i] * x[i];
        }
        return dx;
    };
}

Ode_solution Regulatory_network::simulate(const Vector& initial, double t1) const {
    if (initial.size() != gene_count()) {
        throw std::invalid_argument("Regulatory_network: initial state length mismatch");
    }
    return rk45_solve(rhs(), initial, 0.0, t1);
}

Gene_profile Regulatory_network::profile(const Vector& initial, std::size_t gene,
                                         double period, double t_offset,
                                         std::string name) const {
    if (initial.size() != gene_count()) {
        throw std::invalid_argument("Regulatory_network: initial state length mismatch");
    }
    return oscillator_profile(rhs(), initial, gene, period, t_offset, std::move(name));
}

namespace {

// Measure the oscillation period of gene 0 by timing its late-trajectory
// maxima. Peaks must clear an amplitude band so numerical ripples around a
// fixed point do not count; throws if no sustained oscillation is found.
double measure_network_period(const Regulatory_network& network, const Vector& initial,
                              double horizon) {
    const Ode_solution sol = network.simulate(initial, horizon);
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = 0; i < sol.times.size(); ++i) {
        if (sol.times[i] < 0.25 * horizon) continue;
        lo = std::min(lo, sol.states[i][0]);
        hi = std::max(hi, sol.states[i][0]);
    }
    const double amplitude_floor = lo + 0.5 * (hi - lo);
    if (!(hi - lo > 1e-3)) {
        throw std::runtime_error("ring_oscillator_network: no sustained oscillation");
    }
    Vector peak_times;
    for (std::size_t i = 1; i + 1 < sol.times.size(); ++i) {
        if (sol.times[i] < 0.25 * horizon) continue;
        if (sol.states[i][0] > amplitude_floor &&
            sol.states[i][0] > sol.states[i - 1][0] &&
            sol.states[i][0] > sol.states[i + 1][0]) {
            peak_times.push_back(sol.times[i]);
        }
    }
    if (peak_times.size() < 3) {
        throw std::runtime_error("ring_oscillator_network: no sustained oscillation");
    }
    return (peak_times.back() - peak_times.front()) /
           static_cast<double>(peak_times.size() - 1);
}

Regulatory_network make_ring(double rate_factor) {
    // beta = 10, hill = 3, unit thresholds/decay: comfortably inside the
    // repressilator ring's oscillatory regime.
    Regulatory_network network(3);
    for (std::size_t i = 0; i < 3; ++i) {
        network.set_basal(i, 0.05 * rate_factor);
        network.set_production(i, 10.0 * rate_factor);
        network.set_decay(i, 1.0 * rate_factor);
        network.add_edge({(i + 2) % 3, i, false, 1.0, 3.0});
    }
    return network;
}

}  // namespace

Ring_oscillator ring_oscillator_network(double period_minutes) {
    if (!(period_minutes > 0.0)) {
        throw std::invalid_argument("ring_oscillator_network: period must be positive");
    }
    const Vector initial{1.0, 0.5, 0.1};
    const double unit_period = measure_network_period(make_ring(1.0), initial, 200.0);
    // Exact time scaling: multiply every rate by unit_period / target.
    Ring_oscillator result{make_ring(unit_period / period_minutes), initial, period_minutes};
    return result;
}

}  // namespace cellsync
