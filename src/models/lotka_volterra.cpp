#include "models/lotka_volterra.h"

#include <cmath>
#include <stdexcept>

#include "spline/cubic_spline.h"

namespace cellsync {

void Lotka_volterra_params::validate() const {
    if (!(a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0)) {
        throw std::invalid_argument("Lotka_volterra_params: rates must be positive");
    }
    if (!(x1_0 > 0.0 && x2_0 > 0.0)) {
        throw std::invalid_argument("Lotka_volterra_params: initial state must be positive");
    }
}

Lotka_volterra_params Lotka_volterra_params::time_scaled(double factor) const {
    if (!(factor > 0.0)) {
        throw std::invalid_argument("Lotka_volterra_params: scale factor must be positive");
    }
    Lotka_volterra_params p = *this;
    p.a *= factor;
    p.b *= factor;
    p.c *= factor;
    p.d *= factor;
    return p;
}

Ode_rhs lotka_volterra_rhs(const Lotka_volterra_params& params) {
    params.validate();
    return [params](double, const Vector& y) {
        return Vector{y[0] * (params.a - params.b * y[1]),
                      y[1] * (params.c * y[0] - params.d)};
    };
}

Ode_solution solve_lotka_volterra(const Lotka_volterra_params& params, double t1) {
    params.validate();
    Ode_options options;
    options.rel_tol = 1e-10;
    options.abs_tol = 1e-12;
    return rk45_solve(lotka_volterra_rhs(params), {params.x1_0, params.x2_0}, 0.0, t1, options);
}

double measure_period(const Lotka_volterra_params& params, double horizon, std::size_t cycles) {
    params.validate();
    if (cycles == 0) throw std::invalid_argument("measure_period: cycles must be positive");
    const Ode_solution sol = solve_lotka_volterra(params, horizon);
    const double center = params.x1_center();

    // Upward crossings of x1 through the center, refined by linear
    // interpolation between samples.
    Vector crossings;
    for (std::size_t i = 0; i + 1 < sol.times.size(); ++i) {
        const double y0 = sol.states[i][0] - center;
        const double y1 = sol.states[i + 1][0] - center;
        if (y0 < 0.0 && y1 >= 0.0) {
            const double u = y0 / (y0 - y1);
            crossings.push_back(sol.times[i] + u * (sol.times[i + 1] - sol.times[i]));
            if (crossings.size() > cycles) break;
        }
    }
    if (crossings.size() < 2) {
        throw std::runtime_error("measure_period: fewer than two crossings in the horizon");
    }
    return (crossings.back() - crossings.front()) / static_cast<double>(crossings.size() - 1);
}

Lotka_volterra_params paper_lv_params(double period_minutes) {
    if (!(period_minutes > 0.0)) {
        throw std::invalid_argument("paper_lv_params: period must be positive");
    }
    // Shape: a pronounced, pulse-like oscillation (x2 spikes roughly 10x its
    // trough, x1 swings ~0.3-2.7) qualitatively matching the paper's
    // Figures 2-3. The shape parameters are fixed; the exact period is then
    // dialed in with the exact LV time-scaling property.
    Lotka_volterra_params shape;
    shape.a = 1.0;
    shape.b = 0.4;
    shape.c = 1.2;
    shape.d = 1.0;
    shape.x1_0 = 0.3;
    shape.x2_0 = 0.5;
    const double unit_period = measure_period(shape, 60.0);
    return shape.time_scaled(unit_period / period_minutes);
}

Gene_profile lotka_volterra_profile(const Lotka_volterra_params& params, std::size_t component,
                                    double period_minutes) {
    params.validate();
    if (component > 1) {
        throw std::invalid_argument("lotka_volterra_profile: component must be 0 or 1");
    }
    if (!(period_minutes > 0.0)) {
        throw std::invalid_argument("lotka_volterra_profile: period must be positive");
    }
    const Ode_solution sol = solve_lotka_volterra(params, period_minutes);
    const std::size_t samples = 512;
    Vector phi(samples + 1), value(samples + 1);
    for (std::size_t i = 0; i <= samples; ++i) {
        phi[i] = static_cast<double>(i) / static_cast<double>(samples);
        value[i] = sol.interpolate(phi[i] * period_minutes, component);
    }
    return tabulated_profile(component == 0 ? "lv-x1" : "lv-x2", phi, value);
}

}  // namespace cellsync
