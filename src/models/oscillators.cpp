#include "models/oscillators.h"

#include <cmath>
#include <stdexcept>

namespace cellsync {

void Goodwin_params::validate() const {
    if (!(k1 > 0 && k2 > 0 && k3 > 0 && k4 > 0 && k5 > 0 && k6 > 0)) {
        throw std::invalid_argument("Goodwin_params: rates must be positive");
    }
    if (!(hill >= 1.0)) throw std::invalid_argument("Goodwin_params: hill must be >= 1");
    if (initial.size() != 3) throw std::invalid_argument("Goodwin_params: need 3 initial values");
}

Ode_rhs goodwin_rhs(const Goodwin_params& params) {
    params.validate();
    return [params](double, const Vector& y) {
        return Vector{params.k1 / (1.0 + std::pow(std::max(y[2], 0.0), params.hill)) -
                          params.k2 * y[0],
                      params.k3 * y[0] - params.k4 * y[1],
                      params.k5 * y[1] - params.k6 * y[2]};
    };
}

void Repressilator_params::validate() const {
    if (!(alpha > 0 && beta > 0 && hill >= 1.0 && alpha0 >= 0)) {
        throw std::invalid_argument("Repressilator_params: invalid parameters");
    }
    if (initial.size() != 6) {
        throw std::invalid_argument("Repressilator_params: need 6 initial values");
    }
}

Ode_rhs repressilator_rhs(const Repressilator_params& params) {
    params.validate();
    return [params](double, const Vector& y) {
        Vector dy(6);
        for (std::size_t i = 0; i < 3; ++i) {
            const std::size_t repressor = 3 + (i + 2) % 3;  // p_{i-1}
            dy[i] = -y[i] +
                    params.alpha / (1.0 + std::pow(std::max(y[repressor], 0.0), params.hill)) +
                    params.alpha0;
            dy[3 + i] = -params.beta * (y[3 + i] - y[i]);
        }
        return dy;
    };
}

Gene_profile oscillator_profile(const Ode_rhs& rhs, const Vector& initial,
                                std::size_t component, double period, double t_offset,
                                std::string name) {
    if (component >= initial.size()) {
        throw std::invalid_argument("oscillator_profile: bad component");
    }
    if (!(period > 0.0) || t_offset < 0.0) {
        throw std::invalid_argument("oscillator_profile: bad period or offset");
    }
    const Ode_solution sol = rk45_solve(rhs, initial, 0.0, t_offset + period);
    const std::size_t samples = 512;
    Vector phi(samples + 1), value(samples + 1);
    for (std::size_t i = 0; i <= samples; ++i) {
        phi[i] = static_cast<double>(i) / static_cast<double>(samples);
        value[i] = std::max(0.0, sol.interpolate(t_offset + phi[i] * period, component));
    }
    return tabulated_profile(std::move(name), phi, value);
}

}  // namespace cellsync
