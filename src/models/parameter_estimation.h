// ODE parameter estimation from expression data (paper Sec 5, "ongoing
// work").
//
// Single-cell gene-regulation models are usually fitted to population
// data, which the paper argues biases the parameters; fitting to the
// deconvolved profile instead recovers parameters closer to the truth.
// This module implements both fits for the Lotka-Volterra model so the
// claim can be evaluated quantitatively:
//
//  * fit-to-population: pretend the population series IS single-cell data
//    (the naive approach);
//  * fit-to-deconvolved: fit against the deconvolution's f(phi).
#pragma once

#include "core/deconvolver.h"
#include "io/measurement.h"
#include "models/lotka_volterra.h"
#include "numerics/nelder_mead.h"

namespace cellsync {

/// Result of a Lotka-Volterra fit. Only the four rate parameters are
/// estimated; initial conditions are taken as known (the standard setup in
/// the companion work).
struct Lv_fit_result {
    Lotka_volterra_params params;
    double objective = 0.0;
    std::size_t evaluations = 0;
    bool converged = false;

    /// Relative parameter-vector error vs a ground truth (L2 over the four
    /// rates, each normalized by the true value).
    double relative_error(const Lotka_volterra_params& truth) const;
};

/// Fit (a, b, c, d) so the model's trajectories match two phase-sampled
/// target profiles x1_target(phi), x2_target(phi) with phi = t / period.
/// Targets are callables on [0, 1]; `phi_grid` sets the comparison points.
Lv_fit_result fit_lv_to_profiles(const std::function<double(double)>& x1_target,
                                 const std::function<double(double)>& x2_target,
                                 const Vector& phi_grid, double period_minutes,
                                 const Lotka_volterra_params& initial_guess,
                                 const Nelder_mead_options& options = {});

/// Naive fit: match model trajectories directly against the population
/// measurement series (as if G(t) were single-cell data).
Lv_fit_result fit_lv_to_population(const Measurement_series& g1, const Measurement_series& g2,
                                   const Lotka_volterra_params& initial_guess,
                                   const Nelder_mead_options& options = {});

}  // namespace cellsync
