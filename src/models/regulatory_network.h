// General Hill-kinetics gene-regulatory-network ODE models.
//
// The paper's closing programme is "estimating parameters for differential
// equation models of gene regulatory networks ... typically built to model
// single cell behavior but fitted to population data". This module supplies
// that model family: N genes with Hill-type activation/repression edges and
// first-order decay,
//
//   x_i' = basal_i + beta_i * PROD_j H_ij(x_j) - delta_i * x_i
//
// where H_ij is an activating or repressing Hill function for each edge
// j -> i (absent edges contribute 1). Presets include the two-gene
// activator-repressor relaxation oscillator used in the examples.
#pragma once

#include <string>
#include <vector>

#include "biology/gene_profiles.h"
#include "numerics/ode.h"

namespace cellsync {

/// One regulatory edge j -> i.
struct Regulatory_edge {
    std::size_t source = 0;     ///< regulator gene index j
    std::size_t target = 0;     ///< regulated gene index i
    bool activating = true;     ///< activation vs repression
    double threshold = 1.0;     ///< Hill half-saturation K > 0
    double hill = 2.0;          ///< Hill coefficient n >= 1
};

/// A gene-regulatory network with Hill kinetics.
class Regulatory_network {
  public:
    /// `gene_count` genes with unit production and decay rates and no edges.
    /// Throws std::invalid_argument for zero genes.
    explicit Regulatory_network(std::size_t gene_count);

    std::size_t gene_count() const { return production_.size(); }

    /// Set the maximal production rate beta_i > 0 of gene i.
    /// Throws std::invalid_argument / std::out_of_range on bad input.
    void set_production(std::size_t gene, double rate);

    /// Set the basal (regulation-independent) production rate >= 0 of gene
    /// i; default 0. Needed by self-activating genes to escape x = 0.
    void set_basal(std::size_t gene, double rate);

    /// Set the decay rate delta_i > 0 of gene i.
    void set_decay(std::size_t gene, double rate);

    /// Add a regulatory edge; multiple regulators of one target multiply
    /// (AND-logic). Throws on invalid indices or non-positive threshold /
    /// hill < 1.
    void add_edge(const Regulatory_edge& edge);

    const std::vector<Regulatory_edge>& edges() const { return edges_; }

    /// Right-hand side for the ODE integrators.
    Ode_rhs rhs() const;

    /// Integrate from `initial` (length == gene_count) over [0, t1] with
    /// RK45. Throws std::invalid_argument on a bad initial state.
    Ode_solution simulate(const Vector& initial, double t1) const;

    /// Extract gene `gene`'s trajectory over [t_offset, t_offset + period]
    /// as a phase profile (see oscillator_profile).
    Gene_profile profile(const Vector& initial, std::size_t gene, double period,
                         double t_offset, std::string name) const;

  private:
    std::vector<double> production_;
    std::vector<double> basal_;
    std::vector<double> decay_;
    std::vector<Regulatory_edge> edges_;
};

/// Three-gene repression ring (a repressilator expressed in this module's
/// general Hill form): gene i is repressed by gene i-1. Rate-scaled so the
/// limit-cycle period equals `period_minutes` exactly (the network shares
/// Lotka-Volterra's time-scaling property: multiplying every rate by k
/// compresses time by k). Initial state {1.0, 0.5, 0.1} breaks the ring's
/// symmetry.
struct Ring_oscillator {
    Regulatory_network network;
    Vector initial;
    double period = 0.0;
};
Ring_oscillator ring_oscillator_network(double period_minutes = 150.0);

}  // namespace cellsync
