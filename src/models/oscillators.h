// Additional single-cell oscillator models.
//
// The paper validates on Lotka-Volterra; these extensions (Goodwin
// oscillator, repressilator, damped oscillator) broaden the profile family
// available to examples, tests, and the robustness ablations — the
// deconvolution method itself is agnostic to which model generated f(phi).
#pragma once

#include "biology/gene_profiles.h"
#include "numerics/ode.h"

namespace cellsync {

/// Goodwin oscillator: the classic three-stage negative feedback loop
///   x' = k1 / (1 + z^n) - k2 x
///   y' = k3 x - k4 y
///   z' = k5 y - k6 z
/// Oscillates for Hill coefficients n >~ 8.
struct Goodwin_params {
    double k1 = 1.0, k2 = 0.1, k3 = 1.0, k4 = 0.1, k5 = 1.0, k6 = 0.1;
    double hill = 10.0;
    Vector initial{0.1, 0.2, 2.5};

    void validate() const;
};

Ode_rhs goodwin_rhs(const Goodwin_params& params);

/// Repressilator (Elowitz & Leibler 2000), six-state mRNA/protein form
/// with symmetric parameters:
///   m_i' = -m_i + alpha / (1 + p_{i-1}^n) + alpha0
///   p_i' = -beta (p_i - m_i)
struct Repressilator_params {
    double alpha = 216.0;
    double alpha0 = 0.216;
    double beta = 0.2;
    double hill = 2.0;
    Vector initial{1.0, 2.0, 3.0, 1.5, 2.5, 3.5};  // m1 m2 m3 p1 p2 p3

    void validate() const;
};

Ode_rhs repressilator_rhs(const Repressilator_params& params);

/// Turn any periodic ODE solution component into a phase profile
/// f(phi) = max(0, x_comp(t_offset + phi * period)), spline-sampled.
/// Integrates with RK45 over [0, t_offset + period]. Throws on bad
/// component or non-positive period.
Gene_profile oscillator_profile(const Ode_rhs& rhs, const Vector& initial,
                                std::size_t component, double period, double t_offset,
                                std::string name);

}  // namespace cellsync
