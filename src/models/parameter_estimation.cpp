#include "models/parameter_estimation.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cellsync {

double Lv_fit_result::relative_error(const Lotka_volterra_params& truth) const {
    truth.validate();
    const double ea = (params.a - truth.a) / truth.a;
    const double eb = (params.b - truth.b) / truth.b;
    const double ec = (params.c - truth.c) / truth.c;
    const double ed = (params.d - truth.d) / truth.d;
    return std::sqrt((ea * ea + eb * eb + ec * ec + ed * ed) / 4.0);
}

namespace {

// Decode the optimizer's unconstrained vector into positive rates via exp;
// keeps the search unconstrained while the model stays valid.
Lotka_volterra_params decode(const Vector& log_rates, const Lotka_volterra_params& base) {
    Lotka_volterra_params p = base;
    p.a = std::exp(log_rates[0]);
    p.b = std::exp(log_rates[1]);
    p.c = std::exp(log_rates[2]);
    p.d = std::exp(log_rates[3]);
    return p;
}

Vector encode(const Lotka_volterra_params& p) {
    return {std::log(p.a), std::log(p.b), std::log(p.c), std::log(p.d)};
}

Lv_fit_result run_fit(const Objective& objective, const Lotka_volterra_params& initial_guess,
                      const Nelder_mead_options& options) {
    initial_guess.validate();
    const Nelder_mead_result r = nelder_mead(objective, encode(initial_guess), options);
    Lv_fit_result fit;
    fit.params = decode(r.x, initial_guess);
    fit.objective = r.value;
    fit.evaluations = r.evaluations;
    fit.converged = r.converged;
    return fit;
}

}  // namespace

Lv_fit_result fit_lv_to_profiles(const std::function<double(double)>& x1_target,
                                 const std::function<double(double)>& x2_target,
                                 const Vector& phi_grid, double period_minutes,
                                 const Lotka_volterra_params& initial_guess,
                                 const Nelder_mead_options& options) {
    if (phi_grid.size() < 4) {
        throw std::invalid_argument("fit_lv_to_profiles: need at least 4 phase points");
    }
    if (!(period_minutes > 0.0)) {
        throw std::invalid_argument("fit_lv_to_profiles: period must be positive");
    }

    const Objective objective = [&, period_minutes](const Vector& log_rates) {
        const Lotka_volterra_params p = decode(log_rates, initial_guess);
        Ode_solution sol;
        try {
            sol = solve_lotka_volterra(p, period_minutes);
        } catch (const std::runtime_error&) {
            return std::numeric_limits<double>::infinity();
        }
        double sse = 0.0;
        for (double phi : phi_grid) {
            const double t = phi * period_minutes;
            const double r1 = sol.interpolate(t, 0) - x1_target(phi);
            const double r2 = sol.interpolate(t, 1) - x2_target(phi);
            sse += r1 * r1 + r2 * r2;
        }
        return sse;
    };
    return run_fit(objective, initial_guess, options);
}

Lv_fit_result fit_lv_to_population(const Measurement_series& g1, const Measurement_series& g2,
                                   const Lotka_volterra_params& initial_guess,
                                   const Nelder_mead_options& options) {
    g1.validate();
    g2.validate();
    if (g1.size() != g2.size()) {
        throw std::invalid_argument("fit_lv_to_population: series length mismatch");
    }

    const double horizon = g1.times.back();
    const Objective objective = [&, horizon](const Vector& log_rates) {
        const Lotka_volterra_params p = decode(log_rates, initial_guess);
        Ode_solution sol;
        try {
            sol = solve_lotka_volterra(p, std::max(horizon, 1.0));
        } catch (const std::runtime_error&) {
            return std::numeric_limits<double>::infinity();
        }
        double sse = 0.0;
        for (std::size_t m = 0; m < g1.size(); ++m) {
            const double r1 = sol.interpolate(g1.times[m], 0) - g1.values[m];
            const double r2 = sol.interpolate(g2.times[m], 1) - g2.values[m];
            sse += r1 * r1 + r2 * r2;
        }
        return sse;
    };
    return run_fit(objective, initial_guess, options);
}

}  // namespace cellsync
