// The Lotka-Volterra oscillator used as the paper's validation model
// (paper Eqs 20-21):
//
//     x1' = x1 (a - b x2)
//     x2' = x2 (c x1 - d)
//
// x1 and x2 are "two chemical species which bind and convert x1 to x2".
// The paper chooses parameters giving a 150-minute period, matching the
// average Caulobacter cycle time, so one oscillation maps onto one cell
// cycle: f(phi) = x(phi * T).
#pragma once

#include "biology/gene_profiles.h"
#include "numerics/ode.h"

namespace cellsync {

/// Parameters and initial state of the oscillator.
struct Lotka_volterra_params {
    double a = 1.0;
    double b = 1.0;
    double c = 1.0;
    double d = 1.0;
    double x1_0 = 0.5;  ///< initial x1
    double x2_0 = 0.3;  ///< initial x2

    /// Throws std::invalid_argument unless all rates and initial values are
    /// positive (the positive quadrant is invariant).
    void validate() const;

    /// Center (fixed point) of the oscillation: (d/c, a/b).
    double x1_center() const { return d / c; }
    double x2_center() const { return a / b; }

    /// Return a copy with all rates multiplied by `factor` — Lotka-Volterra
    /// time-scaling: solutions are reproduced with time compressed by
    /// `factor`, so the period divides by it exactly.
    Lotka_volterra_params time_scaled(double factor) const;
};

/// Right-hand side for the ODE integrators.
Ode_rhs lotka_volterra_rhs(const Lotka_volterra_params& params);

/// Integrate over [0, t1] minutes with the adaptive RK45 integrator.
Ode_solution solve_lotka_volterra(const Lotka_volterra_params& params, double t1);

/// Measure the oscillation period by timing upward crossings of x1 through
/// its center value over `cycles` cycles. Throws std::runtime_error if
/// fewer than two crossings are found (degenerate parameters).
double measure_period(const Lotka_volterra_params& params, double horizon, std::size_t cycles = 4);

/// The paper's parameterization: a fixed oscillation shape, rate-scaled so
/// the period is exactly `period_minutes` (default 150, the average
/// Caulobacter cycle time).
Lotka_volterra_params paper_lv_params(double period_minutes = 150.0);

/// Wrap one component of the periodic solution as a phase profile
/// f(phi) = x_comp(phi * period). `component` is 0 for x1, 1 for x2.
/// The solution is sampled once over a period and interpolated by a
/// cubic spline.
Gene_profile lotka_volterra_profile(const Lotka_volterra_params& params, std::size_t component,
                                    double period_minutes);

}  // namespace cellsync
