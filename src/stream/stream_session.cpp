#include "stream/stream_session.h"

#include <set>
#include <stdexcept>

#include "core/batch.h"
#include "core/telemetry.h"
#include "core/trace.h"
#include "spline/spline_basis.h"

namespace cellsync {

Stream_session::Stream_session(const Cell_cycle_config& config,
                               const Volume_model& volume_model, const Vector& times,
                               Kernel_cache& cache, const Stream_session_options& options)
    : options_(options), pool_(options.threads) {
    kernel_ = cache.get_or_build(config, volume_model, times, options_.kernel);
    artifacts_ =
        make_design_artifacts(std::make_shared<Natural_spline_basis>(options_.basis_size),
                              *kernel_, config, options_.constraints);
    const Annotated_lock lock(run_mutex_);
    thread_count_ = pool_.thread_count();
}

Stream_session::Stream_session(std::shared_ptr<const Design_artifacts> artifacts,
                               const Stream_session_options& options)
    : artifacts_(std::move(artifacts)), options_(options), pool_(options.threads) {
    if (!artifacts_) throw std::invalid_argument("Stream_session: null artifacts");
    const Annotated_lock lock(run_mutex_);
    thread_count_ = pool_.thread_count();
}

Streaming_deconvolver& Stream_session::open_locked(const std::string& label) {
    if (label.empty()) throw std::invalid_argument("Stream_session: empty stream label");
    auto it = streams_.find(label);
    if (it == streams_.end()) {
        it = streams_
                 .emplace(label, std::make_unique<Streaming_deconvolver>(
                                     artifacts_, label, options_.stream))
                 .first;
        order_.push_back(label);
    }
    return *it->second;
}

Streaming_deconvolver& Stream_session::open_stream(const std::string& label) {
    const Annotated_lock lock(run_mutex_);
    return open_locked(label);
}

Streaming_deconvolver* Stream_session::find_stream(const std::string& label) {
    const Annotated_lock lock(run_mutex_);
    const auto it = streams_.find(label);
    return it == streams_.end() ? nullptr : it->second.get();
}

const Streaming_deconvolver* Stream_session::find_stream(const std::string& label) const {
    const Annotated_lock lock(run_mutex_);
    const auto it = streams_.find(label);
    return it == streams_.end() ? nullptr : it->second.get();
}

std::vector<Stream_update> Stream_session::append_timepoint(
    double time, const std::vector<Stream_record>& records) {
    if (records.empty()) {
        throw std::invalid_argument("Stream_session: empty timepoint batch");
    }
    {
        // Ordered on purpose: the archcheck determinism pass bans hashed
        // containers in src/ wholesale (iteration order must never be able
        // to reach output order), and a per-batch duplicate probe is far
        // off the hot path.
        std::set<std::string> seen;
        for (const Stream_record& record : records) {
            if (record.gene.empty()) {
                throw std::invalid_argument("Stream_session: record with empty gene name");
            }
            if (!seen.insert(record.gene).second) {
                throw std::invalid_argument(
                    "Stream_session: gene '" + record.gene +
                    "' appears twice in one timepoint batch (one record per gene per "
                    "timepoint)");
            }
        }
    }

    const Annotated_lock lock(run_mutex_);
    const bool tracing = telemetry::Trace_recorder::instance().enabled();
    const telemetry::Trace_span timepoint_span(
        "stream.timepoint", "stream",
        tracing ? telemetry::arg("genes", static_cast<std::int64_t>(records.size()))
                : std::string());
    // Registry mutation is serial (the map must not rehash under the
    // pool); the per-gene solves then touch disjoint stream objects and a
    // shared immutable design, so the parallel fan-out is data-race free
    // and bit-deterministic for any thread count.
    std::vector<Streaming_deconvolver*> targets(records.size());
    for (std::size_t r = 0; r < records.size(); ++r) {
        targets[r] = &open_locked(records[r].gene);
    }

    std::vector<Stream_update> updates(records.size());
    pool_.parallel_for(records.size(), [&](std::size_t r) {
        const Stream_record& record = records[r];
        Streaming_deconvolver& stream = *targets[r];
        Stream_update& update = updates[r];
        update.label = record.gene;
        try {
            stream.append(time, record.value, record.sigma);
            update.estimate = stream.current();
            update.converged = stream.converged();
            update.coefficient_delta = stream.last_coefficient_delta();
            update.score_delta = stream.last_score_delta();
            update.order_parameter = stream.order_parameter();
        } catch (const std::exception& e) {
            update.error = labeled_task_error(record.gene, e);
        }
        update.observed = stream.observed();
    });
    if constexpr (telemetry::compiled_in) {
        std::size_t converged = 0;
        for (const std::string& label : order_) {
            if (streams_.at(label)->converged()) ++converged;
        }
        static telemetry::Gauge& open_streams = telemetry::gauge("stream.open_streams");
        static telemetry::Gauge& converged_streams =
            telemetry::gauge("stream.converged_streams");
        open_streams.set(static_cast<double>(streams_.size()));
        converged_streams.set(static_cast<double>(converged));
    }
    return updates;
}

std::vector<std::string> Stream_session::labels() const {
    const Annotated_lock lock(run_mutex_);
    return order_;
}

std::size_t Stream_session::stream_count() const {
    const Annotated_lock lock(run_mutex_);
    return order_.size();
}

// The aggregate accessors walk order_ (registration order), not the map:
// every reporting traversal is pinned to one caller-visible order, so no
// container's iteration order — hashed or sorted — can ever leak into
// what a session reports. stream_session_test's registration-order test
// holds this down.
std::size_t Stream_session::converged_count() const {
    const Annotated_lock lock(run_mutex_);
    std::size_t count = 0;
    for (const std::string& label : order_) {
        if (streams_.at(label)->converged()) ++count;
    }
    return count;
}

bool Stream_session::all_converged() const {
    const Annotated_lock lock(run_mutex_);
    std::size_t count = 0;
    for (const std::string& label : order_) {
        if (streams_.at(label)->converged()) ++count;
    }
    return !order_.empty() && count == order_.size();
}

Stream_solve_stats Stream_session::total_stats() const {
    const Annotated_lock lock(run_mutex_);
    Stream_solve_stats total;
    for (const std::string& label : order_) {
        const Stream_solve_stats& s = streams_.at(label)->stats();
        total.updates += s.updates;
        total.warm_accepts += s.warm_accepts;
        total.cold_solves += s.cold_solves;
    }
    return total;
}

}  // namespace cellsync
