// Session management for many concurrent gene streams.
//
// A monitoring run streams a whole panel: every timepoint delivers one
// record per gene. Stream_session owns the shared machinery — the kernel
// resolved through a Kernel_cache (simulation skipped when the protocol
// was seen before), one immutable Design_artifacts reused by every
// stream (the same sharing discipline as Batch_engine), and a
// Worker_pool that fans each timepoint's per-gene updates out in
// parallel — and a registry of named Streaming_deconvolver instances.
//
// Determinism: per-gene updates are independent (each stream owns its
// state; the artifacts are immutable), results are written into
// caller-ordered slots, and no randomness is involved, so a session
// produces bit-identical streams for any thread count. Failures follow
// the batch engine's contract: a gene whose update throws surfaces as a
// labeled error in its Stream_update — never a hang, never a dropped
// timepoint for the other genes.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/worker_pool.h"
#include "population/kernel_cache.h"
#include "stream/streaming_deconvolver.h"

namespace cellsync {

/// Session construction controls.
struct Stream_session_options {
    std::size_t basis_size = 18;      ///< Nc natural-spline knots
    std::size_t threads = 0;          ///< worker parallelism (0 = hardware)
    Constraint_options constraints;   ///< geometry baked into the shared design
    Kernel_build_options kernel;      ///< Monte-Carlo controls (cache key inputs)
    Stream_options stream;            ///< defaults for every opened stream
};

/// One gene's record within a timepoint batch.
struct Stream_record {
    std::string gene;
    double value = 0.0;
    double sigma = 1.0;
};

/// Outcome of one gene's update at one timepoint (slot order follows the
/// records passed to append_timepoint).
struct Stream_update {
    std::string label;
    std::size_t observed = 0;      ///< timepoints the stream holds after the update
    bool converged = false;
    double coefficient_delta = 0.0;
    double score_delta = 0.0;
    double order_parameter = 0.0;
    std::optional<Single_cell_estimate> estimate;  ///< empty if the update failed
    std::string error;  ///< labeled failure ("gene '<label>' [<type>]: <message>")
};

class Stream_session {
  public:
    /// Resolve the kernel for `times` through `cache` and build the shared
    /// design. Throws whatever kernel construction / design construction
    /// throws (std::invalid_argument on bad config or times).
    Stream_session(const Cell_cycle_config& config, const Volume_model& volume_model,
                   const Vector& times, Kernel_cache& cache,
                   const Stream_session_options& options = {});

    /// Adopt artifacts precomputed elsewhere (tests, custom bases).
    Stream_session(std::shared_ptr<const Design_artifacts> artifacts,
                   const Stream_session_options& options = {});

    /// The shared design every stream solves against.
    const Design_artifacts& artifacts() const { return *artifacts_; }
    std::shared_ptr<const Kernel_grid> kernel() const { return kernel_; }
    std::size_t thread_count() const { return thread_count_; }

    /// Register a stream (no-op if the label is already open). Returns the
    /// stream; it lives as long as the session (streams are never erased,
    /// so the reference stays valid across later appends).
    Streaming_deconvolver& open_stream(const std::string& label);

    /// Registered stream, or nullptr. The registry lookup is serialized
    /// against append_timepoint; calling into the returned stream while a
    /// batch is updating that same stream is the caller's race to avoid.
    Streaming_deconvolver* find_stream(const std::string& label);
    const Streaming_deconvolver* find_stream(const std::string& label) const;

    /// Apply one timepoint's records: streams named by `records` are
    /// updated in parallel over the pool (auto-opened on first sight).
    /// Per-gene failures land in the matching Stream_update::error; the
    /// batch itself only throws std::invalid_argument for structural
    /// misuse (empty batch, duplicate gene within the batch). Concurrent
    /// calls are serialized.
    std::vector<Stream_update> append_timepoint(double time,
                                                const std::vector<Stream_record>& records);

    /// Registered labels, in registration order.
    std::vector<std::string> labels() const;
    std::size_t stream_count() const;

    /// Streams currently reporting a stabilized estimate.
    std::size_t converged_count() const;
    /// True when at least one stream is open and every stream converged.
    bool all_converged() const;

    /// Aggregate solve statistics over all streams.
    Stream_solve_stats total_stats() const;

  private:
    /// Registry insert; callers hold run_mutex_ (compiler-enforced).
    Streaming_deconvolver& open_locked(const std::string& label)
        CELLSYNC_REQUIRES(run_mutex_);

    std::shared_ptr<const Design_artifacts> artifacts_;
    std::shared_ptr<const Kernel_grid> kernel_;  // null for adopted artifacts
    Stream_session_options options_;
    // Guards the stream registry and serializes timepoint batches: the
    // pool is never shared between two concurrent append_timepoint calls
    // (same discipline as Batch_engine), and the read accessors
    // (labels/converged_count/...) never observe the map mid-insert.
    mutable Annotated_mutex run_mutex_;
    std::map<std::string, std::unique_ptr<Streaming_deconvolver>> streams_
        CELLSYNC_GUARDED_BY(run_mutex_);
    std::vector<std::string> order_ CELLSYNC_GUARDED_BY(run_mutex_);
    mutable Worker_pool pool_ CELLSYNC_GUARDED_BY(run_mutex_);
    std::size_t thread_count_ = 0;  ///< pool_.thread_count(), lock-free copy
};

}  // namespace cellsync
