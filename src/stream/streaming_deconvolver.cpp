#include "stream/streaming_deconvolver.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/telemetry.h"
#include "core/trace.h"
#include "population/synchrony.h"

namespace cellsync {

Streaming_deconvolver::Streaming_deconvolver(
    std::shared_ptr<const Design_artifacts> artifacts, std::string label,
    const Stream_options& options)
    : artifacts_(std::move(artifacts)), label_(std::move(label)), options_(options) {
    if (!artifacts_) throw std::invalid_argument("Streaming_deconvolver: null artifacts");
    if (options_.lambda < 0.0) {
        throw std::invalid_argument("Streaming_deconvolver: lambda must be >= 0");
    }
    if (options_.convergence.stable_updates == 0) {
        throw std::invalid_argument(
            "Streaming_deconvolver: stable_updates must be positive");
    }
    if (options_.convergence.score_points < 2) {
        throw std::invalid_argument(
            "Streaming_deconvolver: score_points must be >= 2");
    }
    const std::size_t n = artifacts_->basis->size();
    gram_ = Matrix(n, n);
    ktwg_.assign(n, 0.0);

    // Seed the reduced state with the measurement-independent part of the
    // objective: H0 = 2 (lambda Omega + ridge I), g0 = 0.
    const Qp_constraint_prep& prep = *artifacts_->constraint_prep;
    const Matrix& z_basis = prep.z_basis();
    const std::size_t nz = z_basis.cols();
    if (nz > 0) {
        Matrix h0 = 2.0 * (options_.lambda * artifacts_->penalty);
        for (std::size_t i = 0; i < n; ++i) h0(i, i) += 2.0 * options_.ridge;
        reduced_hessian_ = Matrix(nz, nz);
        const Matrix hz = h0 * z_basis;
        for (std::size_t i = 0; i < nz; ++i) {
            for (std::size_t j = 0; j < nz; ++j) {
                double s = 0.0;
                for (std::size_t k = 0; k < n; ++k) s += z_basis(k, i) * hz(k, j);
                reduced_hessian_(i, j) = s;
            }
        }
        reduced_gradient_ = transposed_times(z_basis, h0 * prep.x_particular());
    }

    // Circularly-open scoring grid (phi = 1 aliases phi = 0 and must not
    // be double-counted), coarse by default — see Stream_convergence. The
    // design matrix on it turns each append's profile sampling into one
    // small mat-vec instead of per-point basis evaluation.
    score_phi_ = linspace(0.0, 1.0, options_.convergence.score_points + 1);
    score_phi_.pop_back();
    score_design_ = artifacts_->basis->design_matrix_auto(score_phi_);
}

const Single_cell_estimate& Streaming_deconvolver::current() const {
    if (!estimate_.has_value()) {
        throw std::logic_error("Streaming_deconvolver: no timepoint appended yet");
    }
    return *estimate_;
}

Measurement_series Streaming_deconvolver::observed_series() const {
    Measurement_series series;
    series.label = label_;
    series.times.assign(artifacts_->times.begin(),
                        artifacts_->times.begin() + static_cast<std::ptrdiff_t>(observed_));
    series.values = values_;
    series.sigmas = sigmas_;
    return series;
}

const Single_cell_estimate& Streaming_deconvolver::append(double time, double value,
                                                          double sigma) {
    if (complete()) {
        throw std::logic_error("Streaming_deconvolver: stream '" + label_ +
                               "' already holds the complete series");
    }
    const Vector& times = artifacts_->times;
    const std::size_t m = observed_;
    if (std::abs(time - times[m]) > 1e-9 * std::max(1.0, std::abs(times[m]))) {
        throw std::invalid_argument(
            "Streaming_deconvolver: stream '" + label_ + "' expected the measurement at t=" +
            std::to_string(times[m]) + " (grid row " + std::to_string(m) + "), got t=" +
            std::to_string(time));
    }
    if (!std::isfinite(value)) {
        throw std::invalid_argument("Streaming_deconvolver: non-finite value for '" +
                                    label_ + "'");
    }
    if (!(sigma > 0.0) || !std::isfinite(sigma)) {
        throw std::invalid_argument("Streaming_deconvolver: sigma must be positive for '" +
                                    label_ + "'");
    }

    // Rank-one update of the normal-equation state, accumulated in exactly
    // the order weighted_gram / transposed_times would have used over the
    // full prefix, so the assembled blocks stay bit-identical to a
    // from-scratch build (the basis of the final-estimate bit-identity
    // guarantee). The update touches only the kernel row's nonzero span —
    // the skipped entries are structural zeros whose contributions are
    // exact IEEE no-ops (numerics/banded.h). Snapshots make a failed solve
    // side-effect free: floating-point subtraction would not restore the
    // old bits.
    const Matrix gram_before = gram_;
    const Vector ktwg_before = ktwg_;
    const Matrix reduced_hessian_before = reduced_hessian_;
    const Vector reduced_gradient_before = reduced_gradient_;
    const Vector row = artifacts_->kernel_matrix.row(m);
    const Row_span span = artifacts_->kernel_design.row_span(m);
    const double w = 1.0 / (sigma * sigma);
    for (std::size_t i = span.begin; i < span.end; ++i) {
        const double t = w * row[i];
        for (std::size_t j = i; j < span.end; ++j) {
            gram_(i, j) += t * row[j];
            gram_(j, i) = gram_(i, j);
        }
    }
    const double wg = w * value;
    for (std::size_t j = span.begin; j < span.end; ++j) ktwg_[j] += row[j] * wg;

    // The same rank-one step in the reduced space: with kr = Z'k,
    // delta Hr = 2 w kr kr' and delta gr = 2 w (k'x0 - G_m) kr. The
    // projection kr = Z'k only reads the null-space rows inside the
    // kernel row's span.
    const Qp_constraint_prep& prep = *artifacts_->constraint_prep;
    const std::size_t nz = prep.z_basis().cols();
    if (nz > 0) {
        const Vector kr = transposed_times_span(prep.z_basis(), row, span);
        for (std::size_t i = 0; i < nz; ++i) {
            const double wi = 2.0 * w * kr[i];
            for (std::size_t j = 0; j < nz; ++j) reduced_hessian_(i, j) += wi * kr[j];
        }
        const double c = 2.0 * w * (dot(row, prep.x_particular()) - value);
        if (c != 0.0) axpy(c, kr, reduced_gradient_);
    }

    values_.push_back(value);
    sigmas_.push_back(sigma);
    weights_.push_back(w);
    ++observed_;

    const bool tracing = telemetry::Trace_recorder::instance().enabled();
    const telemetry::Trace_span append_span(
        "stream.append", "stream",
        tracing ? telemetry::args_join(
                      telemetry::arg("gene", label_),
                      telemetry::arg("observed", static_cast<std::int64_t>(observed_)))
                : std::string());
    const telemetry::Latency_timer update_timer;
    try {
        solve_and_package();
    } catch (...) {
        gram_ = gram_before;
        ktwg_ = ktwg_before;
        reduced_hessian_ = reduced_hessian_before;
        reduced_gradient_ = reduced_gradient_before;
        values_.pop_back();
        sigmas_.pop_back();
        weights_.pop_back();
        --observed_;
        throw;
    }
    static telemetry::Histogram& append_us = telemetry::histogram("stream.append_us");
    append_us.record(update_timer.elapsed_us());
    return *estimate_;
}

void Streaming_deconvolver::solve_and_package() {
    const std::size_t n = artifacts_->basis->size();
    const Qp_constraint_prep& prep = *artifacts_->constraint_prep;
    Qp_result result;
    bool warm_used = false;
    if (complete()) {
        // The solve that completes the series assembles H = 2 (K'WK +
        // lambda Omega + ridge I), g = -2 K'W G with the same expressions
        // as Deconvolver::estimate_on_rows and runs the identical cold
        // prepared path, so the final estimate's bits depend only on the
        // accumulated state, never on the warm/cold history before it.
        Matrix hessian = 2.0 * (gram_ + options_.lambda * artifacts_->penalty);
        for (std::size_t i = 0; i < n; ++i) hessian(i, i) += 2.0 * options_.ridge;
        Vector gradient(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) gradient[i] = -2.0 * ktwg_[i];
        result = solve_qp_dual_prepared(hessian, gradient, prep, options_.qp);
    } else if (prep.fully_determined()) {
        // The equalities pin the solution; nothing varies with the data.
        result.x = prep.x_particular();
        result.converged = true;
        result.iterations = 1;
    } else {
        // Mid-stream: solve directly on the incrementally maintained
        // reduced problem — bounded active-set repair from the previous
        // solve's binding rows first, cold Goldfarb-Idnani on the same
        // reduced blocks as fallback.
        if (options_.warm_start && !active_set_.empty()) {
            const std::optional<Qp_result> warm = try_solve_qp_reduced_warm(
                reduced_hessian_, reduced_gradient_, prep.reduced_inequality(),
                prep.reduced_ineq_rhs(), active_set_, options_.qp);
            if (warm.has_value()) {
                result = *warm;
                warm_used = true;
            }
        }
        if (!warm_used) {
            result = solve_qp_dual_reduced(reduced_hessian_, reduced_gradient_,
                                           prep.reduced_inequality(),
                                           prep.reduced_ineq_rhs(), options_.qp);
        }
        result.x = prep.z_basis() * result.x + prep.x_particular();
    }

    Single_cell_estimate est(artifacts_->basis, result.x);
    est.lambda = options_.lambda;
    est.fitted = artifacts_->kernel_design * est.coefficients();
    double chi2 = 0.0;
    for (std::size_t m = 0; m < observed_; ++m) {
        const double r = values_[m] - est.fitted[m];
        chi2 += weights_[m] * r * r;
    }
    est.chi_squared = chi2;
    est.roughness = dot(est.coefficients(), artifacts_->penalty * est.coefficients());
    est.objective = chi2 + options_.lambda * est.roughness;
    est.qp_iterations = result.iterations;
    est.active_constraints = result.active_set.size();

    // Convergence bookkeeping against the previous estimate.
    double score = 0.0;
    try {
        score = profile_order_parameter(score_phi_, score_design_ * est.coefficients());
    } catch (const std::invalid_argument&) {
        score = 0.0;  // no positive mass: treat as fully unlocalized
    }
    if (previous_alpha_.empty()) {
        last_coefficient_delta_ = std::numeric_limits<double>::infinity();
        last_score_delta_ = std::numeric_limits<double>::infinity();
    } else {
        const double scale = std::max(1.0, norm_inf(est.coefficients()));
        last_coefficient_delta_ = norm_inf(est.coefficients() - previous_alpha_) / scale;
        last_score_delta_ = std::abs(score - order_parameter_);
    }
    const Stream_convergence& conv = options_.convergence;
    if (last_coefficient_delta_ <= conv.coefficient_tol &&
        last_score_delta_ <= conv.score_tol) {
        ++stable_count_;
    } else {
        stable_count_ = 0;
    }
    converged_ = observed_ >= conv.min_observed && stable_count_ >= conv.stable_updates;

    previous_alpha_ = est.coefficients();
    order_parameter_ = score;
    active_set_ = result.active_set;
    estimate_ = std::move(est);
    ++stats_.updates;
    if (warm_used) ++stats_.warm_accepts;
    else ++stats_.cold_solves;
    static telemetry::Counter& updates = telemetry::counter("stream.updates");
    static telemetry::Counter& warm_accepts = telemetry::counter("stream.warm_accepts");
    static telemetry::Counter& cold_solves = telemetry::counter("stream.cold_solves");
    updates.add();
    if (warm_used) warm_accepts.add();
    else cold_solves.add();
}

}  // namespace cellsync
