// Incremental per-gene deconvolution over a growing measurement prefix.
//
// The batch estimator (core/deconvolver.h) solves one constrained QP per
// gene from a complete time course. A monitoring workload delivers the
// same course one timepoint at a time; re-solving from scratch on every
// arrival rebuilds the weighted normal equations over all observed rows
// and runs the dual active-set iteration cold. The streaming estimator
// keeps the gene's normal-equation state — the Gram block
// sum_m w_m k_m k_m' and the right-hand side sum_m w_m G_m k_m, plus
// their projections onto the constraint preparation's equality null
// space — and on each appended measurement performs a rank-one update
// plus a QP re-solve on the reduced blocks, warm-started from the
// previous solve's active set (try_solve_qp_reduced_warm; cold
// Goldfarb-Idnani on the same blocks when the active set moved too far).
//
// Bit-identity contract: the accumulation order of the incremental state
// mirrors weighted_gram / transposed_times exactly, and the solve on the
// final timepoint goes through the identical cold prepared path the
// batch estimator uses, so once the stream has seen the complete series
// the estimate equals Deconvolver::estimate on that series bit for bit
// (same lambda, same design artifacts). Asserted by
// tests/streaming_deconvolver_test.cpp and bench/perf_streaming.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/deconvolver.h"
#include "core/design.h"

namespace cellsync {

/// Stabilization thresholds: an estimate is converged once both deltas
/// stay below their tolerances for `stable_updates` consecutive appends
/// (and at least `min_observed` timepoints have been seen). Convergence
/// is advisory — callers may stop early, the stream keeps accepting
/// appends either way — and un-latches if a later timepoint moves the
/// estimate again.
struct Stream_convergence {
    double coefficient_tol = 1e-3;   ///< relative inf-norm coefficient delta
    double score_tol = 1e-3;         ///< synchrony order-parameter delta
    std::size_t stable_updates = 2;  ///< consecutive qualifying appends
    std::size_t min_observed = 4;    ///< appends before convergence can trigger
    /// Circularly-open phase samples used for the order-parameter score.
    /// Coarser than the 200-point reporting grid on purpose: the score
    /// only feeds the convergence delta, and sampling the profile is a
    /// large share of the per-append cost.
    std::size_t score_points = 64;
};

/// Per-stream estimation controls. The smoothness weight is fixed for
/// the stream's lifetime (cross-validation needs held-out rows of a
/// complete series; batch-select lambda first, then stream with it —
/// this is the "previous lambda as the starting point" warm start).
struct Stream_options {
    double lambda = 1e-3;   ///< smoothness weight (paper Eq 5)
    double ridge = 1e-9;    ///< Tikhonov term, matching Deconvolution_options
    Qp_options qp;          ///< active-set solver controls
    bool warm_start = true; ///< reuse the previous active set between appends
    Stream_convergence convergence;
};

/// How each append's QP was solved.
struct Stream_solve_stats {
    std::size_t updates = 0;       ///< appends processed
    std::size_t warm_accepts = 0;  ///< warm KKT solve verified optimal
    std::size_t cold_solves = 0;   ///< cold dual iterations (incl. fallbacks)
};

/// Incremental estimator for one gene against a shared design.
///
/// Appends must follow the design's kernel time grid in order: the m-th
/// append carries the measurement at artifacts->times[m]. Not thread-safe
/// per instance; distinct streams are independent (the shared artifacts
/// are immutable), which is what Stream_session exploits to fan appends
/// over a worker pool.
class Streaming_deconvolver {
  public:
    /// Throws std::invalid_argument on null artifacts or negative lambda.
    Streaming_deconvolver(std::shared_ptr<const Design_artifacts> artifacts,
                          std::string label, const Stream_options& options = {});

    const std::string& label() const { return label_; }
    const Stream_options& options() const { return options_; }
    const std::shared_ptr<const Design_artifacts>& artifacts() const { return artifacts_; }

    /// Timepoints appended so far.
    std::size_t observed() const { return observed_; }

    /// True once every kernel-grid timepoint has been appended.
    bool complete() const { return observed_ == artifacts_->times.size(); }

    /// Append the measurement at the next kernel-grid time and re-solve.
    /// `time` must match artifacts->times[observed()] (same tolerance as
    /// the batch estimator's series check); sigma must be positive and
    /// value finite. Returns the updated estimate. Throws
    /// std::invalid_argument on a mismatched time or invalid measurement,
    /// std::logic_error when the stream is already complete, and
    /// propagates QP failures as std::runtime_error (the stream state is
    /// rolled back so the append can be retried or abandoned).
    const Single_cell_estimate& append(double time, double value, double sigma = 1.0);

    /// Latest estimate; throws std::logic_error before the first append.
    const Single_cell_estimate& current() const;
    bool has_estimate() const { return estimate_.has_value(); }

    /// Convergence state after the most recent append.
    bool converged() const { return converged_; }
    double last_coefficient_delta() const { return last_coefficient_delta_; }
    double last_score_delta() const { return last_score_delta_; }
    /// Order parameter of the current profile (0 when it has no positive
    /// mass).
    double order_parameter() const { return order_parameter_; }

    const Stream_solve_stats& stats() const { return stats_; }

    /// The measurements appended so far, as a series (prefix of the grid).
    Measurement_series observed_series() const;

  private:
    void solve_and_package();

    std::shared_ptr<const Design_artifacts> artifacts_;
    std::string label_;
    Stream_options options_;

    // Incremental normal-equation state over the observed prefix, kept in
    // exactly weighted_gram / transposed_times accumulation order so the
    // assembled Hessian and gradient are bit-identical to a from-scratch
    // build over the same rows.
    Matrix gram_;   // sum_m w_m k_m k_m'
    Vector ktwg_;   // sum_m k_m (w_m G_m)
    // The same state projected onto the constraint preparation's equality
    // null space (x = x0 + Z y), also rank-one updated: mid-stream solves
    // run directly on the reduced problem, skipping the O(n^2 nz)
    // reduction the prepared path performs per solve. Only the final
    // (complete-series) solve re-reduces from gram_ via the cold prepared
    // path, which is what pins the bit-identity guarantee.
    Matrix reduced_hessian_;   // Z' (2 (G + lambda Omega + ridge I)) Z
    Vector reduced_gradient_;  // Z' (H x0 + g)
    std::size_t observed_ = 0;
    Vector values_;   // observed measurements, grid order
    Vector sigmas_;   // their standard deviations
    Vector weights_;  // 1 / sigma^2, grid order

    std::optional<Single_cell_estimate> estimate_;
    std::vector<std::size_t> active_set_;  // previous solve's binding rows
    Vector previous_alpha_;
    double order_parameter_ = 0.0;
    double last_coefficient_delta_ = 0.0;
    double last_score_delta_ = 0.0;
    std::size_t stable_count_ = 0;
    bool converged_ = false;
    Stream_solve_stats stats_;
    Vector score_phi_;           // circularly-open scoring grid (see .cpp)
    Design_matrix score_design_; // basis design on score_phi_ (packed or banded by
                                 // occupancy): scoring is one mat-vec
};

}  // namespace cellsync
