// Morphological cell-type classification for the Figure-4 census
// (paper Sec 4.2).
//
// Simulated cells are grouped by phase into swarmer (SW) and three stalked
// sub-stages: early stalked (STE), early predivisional (STEPD), and late
// predivisional (STLPD). The SW/STE boundary is each cell's own phi_sst;
// the later boundaries are morphology thresholds that are hard to pin down
// experimentally, so the paper sweeps them over ranges (0.60-0.70 and
// 0.85-0.90) and plots the band.
#pragma once

#include <array>
#include <string>

namespace cellsync {

/// The four census classes of paper Figure 4.
enum class Cell_type : unsigned char {
    swarmer = 0,             ///< SW: motile, phi < phi_sst
    stalked_early = 1,       ///< STE
    early_predivisional = 2, ///< STEPD
    late_predivisional = 3,  ///< STLPD
};

/// Number of census classes.
inline constexpr std::size_t cell_type_count = 4;

/// Short label used in reports ("SW", "STE", "STEPD", "STLPD").
std::string to_string(Cell_type type);

/// Phase thresholds for the stalked sub-stages.
struct Cell_type_thresholds {
    double ste_to_stepd = 0.65;   ///< STE -> STEPD boundary (paper range 0.60-0.70)
    double stepd_to_stlpd = 0.875;///< STEPD -> STLPD boundary (paper range 0.85-0.90)

    /// Throws std::invalid_argument unless 0 < ste_to_stepd <
    /// stepd_to_stlpd < 1.
    void validate() const;
};

/// Paper's lower-edge thresholds (0.60, 0.85).
Cell_type_thresholds thresholds_low();

/// Paper's midpoint thresholds (0.65, 0.875) — the solid line in Figure 4.
Cell_type_thresholds thresholds_mid();

/// Paper's upper-edge thresholds (0.70, 0.90).
Cell_type_thresholds thresholds_high();

/// Classify a cell at phase `phi` whose own SW->ST transition phase is
/// `phi_sst`. phi is clamped to [0, 1]. Throws std::invalid_argument for
/// invalid thresholds or phi_sst outside (0, 1).
Cell_type classify_cell(double phi, double phi_sst, const Cell_type_thresholds& thresholds);

}  // namespace cellsync
