#include "biology/volume_model.h"

#include <algorithm>
#include <stdexcept>

namespace cellsync {

namespace {

void check_phi_sst(double phi_sst) {
    if (!(phi_sst > 0.0 && phi_sst < 1.0)) {
        throw std::invalid_argument("Volume_model: phi_sst must lie in (0, 1)");
    }
}

}  // namespace

double Smooth_volume_model::relative_volume(double phi, double phi_sst) const {
    check_phi_sst(phi_sst);
    phi = std::clamp(phi, 0.0, 1.0);
    const double s = phi_sst;
    if (phi < s) {
        // Cubic piece of Eq 11: 0.4 + a1 phi + a2 phi^2 + a3 phi^3.
        const double a1 = 0.4 / (1.0 - s);
        const double a2 = (0.6 - 1.8 * s) / ((1.0 - s) * s * s);
        const double a3 = (1.2 * s - 0.4) / ((1.0 - s) * s * s * s);
        return 0.4 + a1 * phi + a2 * phi * phi + a3 * phi * phi * phi;
    }
    // Linear piece: 1 - 0.4/(1-s) + 0.4 phi/(1-s).
    return 1.0 - 0.4 / (1.0 - s) + 0.4 * phi / (1.0 - s);
}

double Smooth_volume_model::derivative(double phi, double phi_sst) const {
    check_phi_sst(phi_sst);
    phi = std::clamp(phi, 0.0, 1.0);
    const double s = phi_sst;
    if (phi < s) {
        const double a1 = 0.4 / (1.0 - s);
        const double a2 = (0.6 - 1.8 * s) / ((1.0 - s) * s * s);
        const double a3 = (1.2 * s - 0.4) / ((1.0 - s) * s * s * s);
        return a1 + 2.0 * a2 * phi + 3.0 * a3 * phi * phi;
    }
    return 0.4 / (1.0 - s);
}

double Linear_volume_model::relative_volume(double phi, double phi_sst) const {
    check_phi_sst(phi_sst);
    phi = std::clamp(phi, 0.0, 1.0);
    if (phi < phi_sst) {
        // 0.4 -> 0.6 linearly across the SW stage.
        return 0.4 + 0.2 * phi / phi_sst;
    }
    // 0.6 -> 1.0 linearly across the ST stage.
    return 0.6 + 0.4 * (phi - phi_sst) / (1.0 - phi_sst);
}

double Linear_volume_model::derivative(double phi, double phi_sst) const {
    check_phi_sst(phi_sst);
    phi = std::clamp(phi, 0.0, 1.0);
    return phi < phi_sst ? 0.2 / phi_sst : 0.4 / (1.0 - phi_sst);
}

double growth_rate_beta(double phi_sst) {
    check_phi_sst(phi_sst);
    return 0.4 / (1.0 - phi_sst);
}

}  // namespace cellsync
