// Cell-volume models v_k(phi) (paper Secs 2.2 and 3.1).
//
// The integration kernel Q(phi, t) weights each cell by its volume, so the
// volume model directly shapes the transform being inverted. Two models
// are provided:
//
//  * Smooth_volume_model — the 2011 update (paper Eq 11): cubic on the SW
//    stage, linear on the ST stage, satisfying the 40/60 division split
//      v(0) = 0.4 V0,  v(phi_sst) = 0.6 V0,  v(1) = V0          (Eqs 6-8)
//    and growth-rate continuity across division
//      v'(0) = v'(phi_sst) = v'(1)                              (Eqs 9-10)
//
//  * Linear_volume_model — the 2009 baseline: piecewise linear through the
//    same three anchor points, without the rate constraints. Kept for the
//    volume-model ablation.
//
// Volumes are expressed relative to V0 (the pre-division volume), which
// cancels in the normalized kernel.
#pragma once

#include <memory>
#include <string>

namespace cellsync {

/// Interface for v(phi; phi_sst) / V0.
class Volume_model {
  public:
    virtual ~Volume_model() = default;

    /// Relative volume at phase phi for a cell with transition phase
    /// phi_sst. phi is clamped to [0, 1]; phi_sst must lie in (0, 1) or
    /// std::invalid_argument is thrown.
    virtual double relative_volume(double phi, double phi_sst) const = 0;

    /// d(relative volume)/d(phi).
    virtual double derivative(double phi, double phi_sst) const = 0;

    /// Human-readable model name for reports.
    virtual std::string name() const = 0;
};

/// 2011 smooth model (paper Eq 11).
class Smooth_volume_model final : public Volume_model {
  public:
    double relative_volume(double phi, double phi_sst) const override;
    double derivative(double phi, double phi_sst) const override;
    std::string name() const override { return "smooth-2011"; }
};

/// 2009 piecewise-linear baseline.
class Linear_volume_model final : public Volume_model {
  public:
    double relative_volume(double phi, double phi_sst) const override;
    double derivative(double phi, double phi_sst) const override;
    std::string name() const override { return "linear-2009"; }
};

/// beta(phi_sst) = v'(1)/V0 = 0.4 / (1 - phi_sst): the pre-division
/// relative growth rate entering the transcription-rate-continuity
/// constraint (paper Eq 12). Throws std::invalid_argument for
/// phi_sst outside (0, 1).
double growth_rate_beta(double phi_sst);

/// Fraction of the mother's volume inherited by the SW daughter (40%,
/// Thanbichler & Shapiro 2006).
constexpr double swarmer_volume_fraction = 0.4;

/// Fraction inherited by the ST daughter (60%).
constexpr double stalked_volume_fraction = 0.6;

}  // namespace cellsync
