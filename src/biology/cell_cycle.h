// Cell-cycle phase model for Caulobacter crescentus (paper Sec 2.1).
//
// A cell's phase phi in [0,1] advances linearly in experiment time at rate
// 1/T_k (T_k = the cell's total cycle time). The SW->ST transition phase
// phi_sst_k is normally distributed across the population with mean 0.15
// (2011 update) and CV 0.13. At phi = 1 the cell divides into an SW
// daughter (phi = 0) and an ST daughter (phi = its own phi_sst).
#pragma once

#include "numerics/rng.h"

namespace cellsync {

/// How the initial population is distributed in phase at t = 0.
enum class Initial_phase_mode {
    synchronized_swarmers,  ///< phi_k(0) ~ Uniform(0, phi_sst_k): fresh SW isolate (paper default)
    all_at_zero,            ///< every cell starts exactly at phi = 0
    stationary,             ///< phases from the asynchronous steady-state age distribution
};

/// Population-level cell-cycle parameters.
///
/// Defaults reproduce the paper's Caulobacter model: mu_sst = 0.15 (updated
/// from 0.25), cv_sst = 0.13, mean cycle time 150 minutes. The cycle-time
/// CV is not stated in the DAC paper; 0.12 follows the companion model
/// (Siegal-Gaskins et al. 2009) and is configurable.
struct Cell_cycle_config {
    double mu_sst = 0.15;          ///< mean SW->ST transition phase
    double cv_sst = 0.13;          ///< CV of the transition phase
    double mean_cycle_minutes = 150.0;  ///< mean total cycle time T
    double cv_cycle = 0.12;        ///< CV of the cycle time
    Initial_phase_mode initial_mode = Initial_phase_mode::synchronized_swarmers;

    /// Validate ranges; throws std::invalid_argument with a description of
    /// the offending field.
    void validate() const;

    /// Standard deviation of the transition phase (mu_sst * cv_sst).
    double sigma_sst() const { return mu_sst * cv_sst; }

    /// Standard deviation of the cycle time.
    double sigma_cycle() const { return mean_cycle_minutes * cv_cycle; }
};

/// Per-cell parameters theta_k = {phi_sst_k, T_k} (paper Sec 2.2).
struct Cell_parameters {
    double phi_sst = 0.15;        ///< this cell's SW->ST transition phase
    double cycle_minutes = 150.0; ///< this cell's total cycle time T_k
};

/// Draw per-cell parameters from the population distributions. Draws are
/// truncated to biologically sane windows (phi_sst in (0.01, 0.95),
/// T in (0.2, 3) x mean) to exclude impossible cells from the simulation.
Cell_parameters draw_cell_parameters(const Cell_cycle_config& config, Rng& rng);

/// Draw an initial phase for a cell according to the configured mode.
double draw_initial_phase(const Cell_cycle_config& config, const Cell_parameters& params,
                          Rng& rng);

/// Phase of a (non-dividing) cell at time t given its phase at time 0:
/// phi(t) = phi0 + t / T. The caller handles division when the result
/// crosses 1.
double advance_phase(double phi0, double t_minutes, const Cell_parameters& params);

}  // namespace cellsync
