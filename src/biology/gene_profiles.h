// Library of synthetic single-cell expression profiles f(phi).
//
// These supply ground-truth inputs for the validation experiments: a known
// f(phi) is pushed through the forward model to make population data, and
// the deconvolution's recovery of f is scored. The ftsZ-like profile
// encodes the biology of paper Sec 4.3: transcription silent until the
// SW->ST transition (Kelly et al. 1998), peak near phi = 0.4, then decline.
#pragma once

#include <functional>
#include <string>

#include "numerics/vector_ops.h"

namespace cellsync {

/// A named single-cell expression profile on phi in [0, 1].
struct Gene_profile {
    std::string name;
    std::function<double(double)> f;

    /// Evaluate at phi (clamped to [0, 1] by the callable's construction).
    double operator()(double phi) const { return f(phi); }

    /// Sample onto a grid.
    Vector sample(const Vector& phi_grid) const;
};

/// Constant baseline expression (the trivial fixed point of the transform:
/// a constant profile convolves to a constant population signal).
Gene_profile constant_profile(double level);

/// offset + amplitude * sin(2 pi cycles phi + phase). Throws
/// std::invalid_argument if the profile would go negative
/// (offset < |amplitude|).
Gene_profile sinusoid_profile(double offset, double amplitude, double cycles = 1.0,
                              double phase = 0.0);

/// Raised-cosine pulse centered at `center` with half-width `width`,
/// riding on `baseline`. Zero outside the pulse support. Throws for
/// non-positive width or negative baseline/height.
Gene_profile pulse_profile(double baseline, double height, double center, double width);

/// Smooth ftsZ-like profile: ~0 before `onset` (default 0.16, just after
/// the mean SW->ST transition), smooth rise to `peak_level` at `peak_phi`,
/// then smooth decay to `final_level` at phi = 1. Uses C1 smoothstep
/// segments so the deconvolution target is within spline reach.
Gene_profile ftsz_like_profile(double onset = 0.16, double peak_phi = 0.40,
                               double peak_level = 10.0, double final_level = 0.0);

/// Smooth step from `low` to `high` with transition centered at `center`
/// over `width` (C1 smoothstep).
Gene_profile step_profile(double low, double high, double center, double width);

/// Profile defined by spline interpolation through (phi_i, value_i) points.
/// Values are clamped at 0 to keep expression non-negative.
Gene_profile tabulated_profile(std::string name, const Vector& phi, const Vector& values);

}  // namespace cellsync
