#include "biology/gene_profiles.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <stdexcept>

#include "spline/cubic_spline.h"

namespace cellsync {

namespace {

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

// C1 smoothstep: 0 at u<=0, 1 at u>=1, 3u^2-2u^3 between.
double smoothstep(double u) {
    u = clamp01(u);
    return u * u * (3.0 - 2.0 * u);
}

}  // namespace

Vector Gene_profile::sample(const Vector& phi_grid) const {
    Vector v(phi_grid.size());
    for (std::size_t i = 0; i < phi_grid.size(); ++i) v[i] = f(phi_grid[i]);
    return v;
}

Gene_profile constant_profile(double level) {
    if (level < 0.0) throw std::invalid_argument("constant_profile: level must be non-negative");
    return {"constant", [level](double) { return level; }};
}

Gene_profile sinusoid_profile(double offset, double amplitude, double cycles, double phase) {
    if (offset < std::abs(amplitude)) {
        throw std::invalid_argument("sinusoid_profile: profile would go negative");
    }
    return {"sinusoid", [=](double phi) {
                return offset +
                       amplitude * std::sin(2.0 * std::numbers::pi * cycles * clamp01(phi) + phase);
            }};
}

Gene_profile pulse_profile(double baseline, double height, double center, double width) {
    if (width <= 0.0) throw std::invalid_argument("pulse_profile: width must be positive");
    if (baseline < 0.0 || height < 0.0) {
        throw std::invalid_argument("pulse_profile: baseline and height must be non-negative");
    }
    return {"pulse", [=](double phi) {
                const double d = (clamp01(phi) - center) / width;
                if (std::abs(d) >= 1.0) return baseline;
                return baseline + height * 0.5 * (1.0 + std::cos(std::numbers::pi * d));
            }};
}

Gene_profile ftsz_like_profile(double onset, double peak_phi, double peak_level,
                               double final_level) {
    if (!(0.0 < onset && onset < peak_phi && peak_phi < 1.0)) {
        throw std::invalid_argument("ftsz_like_profile: need 0 < onset < peak_phi < 1");
    }
    if (peak_level <= 0.0 || final_level < 0.0 || final_level > peak_level) {
        throw std::invalid_argument("ftsz_like_profile: need 0 <= final_level <= peak_level");
    }
    return {"ftsz-like", [=](double phi) {
                phi = clamp01(phi);
                if (phi <= onset) return 0.0;
                if (phi <= peak_phi) {
                    return peak_level * smoothstep((phi - onset) / (peak_phi - onset));
                }
                const double u = (phi - peak_phi) / (1.0 - peak_phi);
                return final_level + (peak_level - final_level) * (1.0 - smoothstep(u));
            }};
}

Gene_profile step_profile(double low, double high, double center, double width) {
    if (width <= 0.0) throw std::invalid_argument("step_profile: width must be positive");
    if (low < 0.0 || high < 0.0) {
        throw std::invalid_argument("step_profile: levels must be non-negative");
    }
    return {"step", [=](double phi) {
                const double u = (clamp01(phi) - (center - 0.5 * width)) / width;
                return low + (high - low) * smoothstep(u);
            }};
}

Gene_profile tabulated_profile(std::string name, const Vector& phi, const Vector& values) {
    const auto spline = std::make_shared<Cubic_spline>(phi, values);
    return {std::move(name),
            [spline](double x) { return std::max(0.0, (*spline)(clamp01(x))); }};
}

}  // namespace cellsync
