#include "biology/cell_types.h"

#include <algorithm>
#include <stdexcept>

namespace cellsync {

std::string to_string(Cell_type type) {
    switch (type) {
        case Cell_type::swarmer: return "SW";
        case Cell_type::stalked_early: return "STE";
        case Cell_type::early_predivisional: return "STEPD";
        case Cell_type::late_predivisional: return "STLPD";
    }
    throw std::invalid_argument("to_string(Cell_type): unknown value");
}

void Cell_type_thresholds::validate() const {
    if (!(ste_to_stepd > 0.0 && ste_to_stepd < stepd_to_stlpd && stepd_to_stlpd < 1.0)) {
        throw std::invalid_argument(
            "Cell_type_thresholds: need 0 < ste_to_stepd < stepd_to_stlpd < 1");
    }
}

Cell_type_thresholds thresholds_low() { return {0.60, 0.85}; }
Cell_type_thresholds thresholds_mid() { return {0.65, 0.875}; }
Cell_type_thresholds thresholds_high() { return {0.70, 0.90}; }

Cell_type classify_cell(double phi, double phi_sst, const Cell_type_thresholds& thresholds) {
    thresholds.validate();
    if (!(phi_sst > 0.0 && phi_sst < 1.0)) {
        throw std::invalid_argument("classify_cell: phi_sst must lie in (0, 1)");
    }
    phi = std::clamp(phi, 0.0, 1.0);
    if (phi < phi_sst) return Cell_type::swarmer;
    if (phi < thresholds.ste_to_stepd) return Cell_type::stalked_early;
    if (phi < thresholds.stepd_to_stlpd) return Cell_type::early_predivisional;
    return Cell_type::late_predivisional;
}

}  // namespace cellsync
