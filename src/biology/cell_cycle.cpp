#include "biology/cell_cycle.h"

#include <cmath>
#include <stdexcept>

namespace cellsync {

void Cell_cycle_config::validate() const {
    if (!(mu_sst > 0.0 && mu_sst < 1.0)) {
        throw std::invalid_argument("Cell_cycle_config: mu_sst must lie in (0, 1)");
    }
    if (!(cv_sst >= 0.0 && cv_sst < 1.0)) {
        throw std::invalid_argument("Cell_cycle_config: cv_sst must lie in [0, 1)");
    }
    if (!(mean_cycle_minutes > 0.0)) {
        throw std::invalid_argument("Cell_cycle_config: mean_cycle_minutes must be positive");
    }
    if (!(cv_cycle >= 0.0 && cv_cycle < 1.0)) {
        throw std::invalid_argument("Cell_cycle_config: cv_cycle must lie in [0, 1)");
    }
}

Cell_parameters draw_cell_parameters(const Cell_cycle_config& config, Rng& rng) {
    config.validate();
    Cell_parameters p;
    p.phi_sst = rng.truncated_normal(config.mu_sst, config.sigma_sst(), 0.01, 0.95);
    p.cycle_minutes = rng.truncated_normal(config.mean_cycle_minutes, config.sigma_cycle(),
                                           0.2 * config.mean_cycle_minutes,
                                           3.0 * config.mean_cycle_minutes);
    return p;
}

double draw_initial_phase(const Cell_cycle_config& config, const Cell_parameters& params,
                          Rng& rng) {
    switch (config.initial_mode) {
        case Initial_phase_mode::all_at_zero:
            return 0.0;
        case Initial_phase_mode::synchronized_swarmers:
            // A fresh swarmer isolate: every cell is somewhere in its SW
            // stage, uniformly (Evinger & Agabian; paper Sec 2.1).
            return rng.uniform(0.0, params.phi_sst);
        case Initial_phase_mode::stationary: {
            // Steady-state age distribution of an exponentially growing
            // population: density 2 ln(2) 2^{-phi}; sample by inversion.
            const double u = rng.uniform();
            return -std::log2(1.0 - u * 0.5);
        }
    }
    throw std::invalid_argument("draw_initial_phase: unknown initial mode");
}

double advance_phase(double phi0, double t_minutes, const Cell_parameters& params) {
    if (params.cycle_minutes <= 0.0) {
        throw std::invalid_argument("advance_phase: cycle time must be positive");
    }
    return phi0 + t_minutes / params.cycle_minutes;
}

}  // namespace cellsync
