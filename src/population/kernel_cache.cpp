#include "population/kernel_cache.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/telemetry.h"
#include "core/trace.h"
#include "io/csv.h"
#include "population/kernel_io.h"
#include "numerics/fnv.h"

namespace cellsync {

namespace {

void append_double(std::string& out, const char* name, double value) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%s=%.17g;", name, value);
    out += buffer;
}

std::string read_text_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return "";
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

std::uint64_t file_bytes(const std::string& path) {
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

constexpr const char* manifest_header = "# cellsync-kernel-cache-manifest-v1";

/// Parse the manifest file: tab-separated "hash bytes last_use key" lines
/// under a version header. Returns false when the file is missing or
/// malformed (caller falls back to a directory scan).
bool parse_manifest(const std::string& path, std::vector<Kernel_cache_entry_info>& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::string line;
    if (!std::getline(in, line) || line != manifest_header) return false;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        Kernel_cache_entry_info entry;
        std::size_t pos = 0;
        for (int field = 0; field < 3; ++field) {
            const std::size_t tab = line.find('\t', pos);
            if (tab == std::string::npos) return false;
            const std::string value = line.substr(pos, tab - pos);
            try {
                // Strict whole-field parse: std::stoull would accept
                // "12junk" (and wrap "-1"), silently corrupting the LRU
                // bookkeeping; a malformed manifest must instead fall
                // back to the directory scan.
                if (field == 0) entry.hash = value;
                else if (field == 1) entry.bytes = parse_strict_uint64(value);
                else entry.last_use = parse_strict_uint64(value);
            } catch (const std::exception&) {
                return false;
            }
            pos = tab + 1;
        }
        entry.key = line.substr(pos);
        if (entry.hash.empty()) return false;
        out.push_back(std::move(entry));
    }
    return true;
}

/// Rebuild manifest entries by scanning the directory's sidecar files —
/// the sidecars, not the manifest, are the source of truth for what is
/// cached. Recency is unknown for scanned entries (last_use = 0): they
/// evict first, in hash order, which is deterministic.
std::vector<Kernel_cache_entry_info> scan_directory(const std::string& directory) {
    std::vector<Kernel_cache_entry_info> entries;
    std::error_code ec;
    for (const auto& item : std::filesystem::directory_iterator(directory, ec)) {
        const std::string name = item.path().filename().string();
        constexpr const char* prefix = "kernel_";
        constexpr const char* suffix = ".key";
        if (name.rfind(prefix, 0) != 0 || name.size() <= std::strlen(prefix) + 4 ||
            name.substr(name.size() - 4) != suffix) {
            continue;
        }
        Kernel_cache_entry_info entry;
        entry.hash = name.substr(std::strlen(prefix),
                                 name.size() - std::strlen(prefix) - 4);
        entry.key = read_text_file(item.path().string());
        entry.bytes = file_bytes(item.path().string());
        // Entries may be binary (current), legacy CSV, or mid-migration
        // (both); account whatever is on disk.
        for (const char* extension : {".bin", ".csv"}) {
            entry.bytes += file_bytes(
                (item.path().parent_path() / ("kernel_" + entry.hash + extension))
                    .string());
        }
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const Kernel_cache_entry_info& a, const Kernel_cache_entry_info& b) {
                  return a.hash < b.hash;
              });
    return entries;
}

std::vector<Kernel_cache_entry_info> load_manifest(const std::string& directory,
                                                   const std::string& manifest_file) {
    std::vector<Kernel_cache_entry_info> entries;
    if (parse_manifest(manifest_file, entries)) return entries;
    return scan_directory(directory);
}

void save_manifest(const std::string& manifest_file,
                   const std::vector<Kernel_cache_entry_info>& entries) {
    // Write-then-rename so readers never observe a torn manifest (a torn
    // temp file is simply rescanned away on the next load).
    const std::string tmp = manifest_file + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot write '" + tmp + "'");
        out << manifest_header << '\n';
        for (const Kernel_cache_entry_info& entry : entries) {
            out << entry.hash << '\t' << entry.bytes << '\t' << entry.last_use << '\t'
                << entry.key << '\n';
        }
        if (!out) throw std::runtime_error("write failed for '" + tmp + "'");
    }
    std::filesystem::rename(tmp, manifest_file);
}

}  // namespace

/// The completion latch and result shared by every Async_request that
/// joined one key's resolution. Deliberately holds no build inputs:
/// each request carries its own copies, so a request abandoned without
/// get() leaves nothing dangling for a later joiner to dereference —
/// that joiner claims the execution and uses its own (live) inputs.
struct Kernel_cache_request_state {
    // Written once by get_or_build_async before the state is shared,
    // immutable afterwards: readable without the latch mutex.
    Kernel_cache* cache = nullptr;
    std::string key;

    Annotated_mutex mutex;
    Annotated_condition_variable cv;
    bool started CELLSYNC_GUARDED_BY(mutex) = false;  ///< a get() caller claimed the execution
    bool done CELLSYNC_GUARDED_BY(mutex) = false;
    std::shared_ptr<const Kernel_grid> result CELLSYNC_GUARDED_BY(mutex);
    std::exception_ptr error CELLSYNC_GUARDED_BY(mutex);
};

Kernel_cache::Kernel_cache(std::string directory, Kernel_cache_limits limits)
    : directory_(std::move(directory)), limits_(limits) {
    if (directory_.empty()) {
        throw std::invalid_argument("Kernel_cache: empty directory (use the default "
                                    "constructor for a memory-only cache)");
    }
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    // Read-only mode tolerates an uncreatable directory (e.g. a read-only
    // mount whose path the owner has not populated yet): lookups miss.
    if (ec && !limits_.read_only) {
        throw std::runtime_error("Kernel_cache: cannot create directory '" + directory_ +
                                 "': " + ec.message());
    }
}

std::string Kernel_cache::cache_key(const Cell_cycle_config& config,
                                    const Volume_model& volume_model, const Vector& times,
                                    const Kernel_build_options& options) {
    std::string key = "cellsync-kernel-v1;";
    append_double(key, "mu_sst", config.mu_sst);
    append_double(key, "cv_sst", config.cv_sst);
    append_double(key, "mean_cycle_minutes", config.mean_cycle_minutes);
    append_double(key, "cv_cycle", config.cv_cycle);
    key += "initial_mode=" + std::to_string(static_cast<int>(config.initial_mode)) + ";";
    key += "volume=" + volume_model.name() + ";";
    key += "n_cells=" + std::to_string(options.n_cells) + ";";
    key += "n_bins=" + std::to_string(options.n_bins) + ";";
    key += "seed=" + std::to_string(options.seed) + ";";
    key += "times=";
    for (double t : times) {
        char buffer[40];
        std::snprintf(buffer, sizeof(buffer), "%.17g,", t);
        key += buffer;
    }
    return key;
}

std::string Kernel_cache::key_hash(const std::string& key) {
    const std::uint64_t hash = fnv1a64(key);
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(hash));
    return buffer;
}

std::string Kernel_cache::binary_entry_path(const std::string& hash) const {
    return directory_ + "/kernel_" + hash + ".bin";
}

std::string Kernel_cache::legacy_entry_path(const std::string& hash) const {
    return directory_ + "/kernel_" + hash + ".csv";
}

std::string Kernel_cache::sidecar_path(const std::string& hash) const {
    return directory_ + "/kernel_" + hash + ".key";
}

std::uint64_t Kernel_cache::entry_bytes(const std::string& hash) const {
    return file_bytes(binary_entry_path(hash)) + file_bytes(legacy_entry_path(hash)) +
           file_bytes(sidecar_path(hash));
}

bool Kernel_cache::migrate_legacy_entry(const std::string& hash, const Kernel_grid& kernel) {
    // Best-effort: the CSV stays authoritative until the binary lands
    // completely (write_kernel_file verifies the flush), so an
    // interrupted migration leaves a servable entry either way. The
    // sidecar is untouched — the key, and therefore the entry's
    // identity, does not change.
    try {
        write_kernel_file(binary_entry_path(hash), kernel, Kernel_format::binary);
    } catch (const std::exception& e) {
        std::error_code ec;
        std::filesystem::remove(binary_entry_path(hash), ec);
        std::fprintf(stderr, "Kernel_cache: could not migrate legacy entry %s (%s)\n",
                     legacy_entry_path(hash).c_str(), e.what());
        return false;
    }
    std::error_code ec;
    std::filesystem::remove(legacy_entry_path(hash), ec);
    return true;
}

std::string Kernel_cache::manifest_path(const std::string& directory) {
    return directory + "/manifest.tsv";
}

Kernel_cache_manifest Kernel_cache::manifest() const {
    Kernel_cache_manifest out;
    out.max_bytes = limits_.max_disk_bytes;
    if (directory_.empty()) return out;
    const Annotated_lock lock(manifest_mutex_);
    out.entries = load_manifest(directory_, manifest_path(directory_));
    std::sort(out.entries.begin(), out.entries.end(),
              [](const Kernel_cache_entry_info& a, const Kernel_cache_entry_info& b) {
                  return a.last_use > b.last_use;
              });
    for (const Kernel_cache_entry_info& entry : out.entries) out.total_bytes += entry.bytes;
    return out;
}

void Kernel_cache::touch_manifest(const std::string& hash, const std::string& key,
                                  bool stored) {
    if (directory_.empty() || limits_.read_only) return;
    std::size_t evicted = 0;
    try {
        const Annotated_lock lock(manifest_mutex_);
        std::vector<Kernel_cache_entry_info> entries =
            load_manifest(directory_, manifest_path(directory_));

        std::uint64_t next_use = 1;
        for (const Kernel_cache_entry_info& entry : entries) {
            next_use = std::max(next_use, entry.last_use + 1);
        }
        auto self = std::find_if(entries.begin(), entries.end(),
                                 [&](const Kernel_cache_entry_info& e) {
                                     return e.hash == hash;
                                 });
        if (self == entries.end()) {
            entries.push_back({});
            self = entries.end() - 1;
            self->hash = hash;
        }
        self->key = key;
        self->last_use = next_use;
        if (stored || self->bytes == 0) {
            self->bytes = entry_bytes(hash);
        }

        if (limits_.max_disk_bytes > 0) {
            std::uint64_t total = 0;
            for (const Kernel_cache_entry_info& entry : entries) total += entry.bytes;
            // Evict least-recently-used first; the just-touched entry is
            // exempt so a single oversized kernel still caches (the cap is
            // then best-effort, which beats thrashing).
            while (total > limits_.max_disk_bytes && entries.size() > 1) {
                std::size_t victim = entries.size();
                for (std::size_t i = 0; i < entries.size(); ++i) {
                    if (entries[i].hash == hash) continue;
                    if (victim == entries.size() ||
                        entries[i].last_use < entries[victim].last_use) {
                        victim = i;
                    }
                }
                if (victim == entries.size()) break;
                std::error_code ec;
                // Sidecar first: without its key the kernel orphan can
                // never be served, so a torn eviction degrades to a
                // rebuild. Entries may be binary, legacy CSV, or both.
                std::filesystem::remove(sidecar_path(entries[victim].hash), ec);
                std::filesystem::remove(binary_entry_path(entries[victim].hash), ec);
                std::filesystem::remove(legacy_entry_path(entries[victim].hash), ec);
                total -= std::min(total, entries[victim].bytes);
                entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(victim));
                ++evicted;
            }
        }
        save_manifest(manifest_path(directory_), entries);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "Kernel_cache: manifest update failed: %s\n", e.what());
    }
    if (evicted > 0) {
        {
            const Annotated_lock lock(mutex_);
            stats_.evictions += evicted;
        }
        static telemetry::Counter& evictions = telemetry::counter("kernel_cache.evictions");
        evictions.add(evicted);
    }
}

Kernel_cache::Async_request Kernel_cache::get_or_build_async(
    const Cell_cycle_config& config, const Volume_model& volume_model, const Vector& times,
    const Kernel_build_options& options) {
    std::string key = cache_key(config, volume_model, times, options);
    Async_request request;
    request.config_ = config;
    request.volume_ = &volume_model;
    request.times_ = times;
    request.options_ = options;

    static telemetry::Counter& memory_hits = telemetry::counter("kernel_cache.memory_hits");
    static telemetry::Counter& inflight_joins =
        telemetry::counter("kernel_cache.inflight_joins");
    static telemetry::Counter& misses = telemetry::counter("kernel_cache.misses");

    const Annotated_lock lock(mutex_);
    if (const auto it = memory_.find(key); it != memory_.end()) {
        ++stats_.memory_hits;
        memory_hits.add();
        auto state = std::make_shared<Kernel_cache_request_state>();
        {
            // The state is not shared yet, but taking its latch keeps the
            // guarded-member discipline uniform (and provably correct).
            const Annotated_lock state_lock(state->mutex);
            state->done = true;
            state->result = it->second;
        }
        request.state_ = std::move(state);
        return request;
    }
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
        // Joining a resolution already in flight counts as a memory hit:
        // the shared grid is served from the in-memory map the moment the
        // executing caller publishes it. Counting at call time keeps the
        // stats deterministic when requests are issued from one thread.
        ++stats_.memory_hits;
        inflight_joins.add();
        request.state_ = it->second;
        return request;
    }
    misses.add();
    auto state = std::make_shared<Kernel_cache_request_state>();
    state->cache = this;
    state->key = key;
    inflight_.emplace(std::move(key), state);
    request.state_ = std::move(state);
    return request;
}

std::shared_ptr<const Kernel_grid> Kernel_cache::Async_request::get() {
    if (!state_) {
        throw std::logic_error("Kernel_cache::Async_request: get() on an empty request");
    }
    bool execute = false;
    {
        const Annotated_lock lock(state_->mutex);
        if (!state_->done && !state_->started) {
            state_->started = true;
            execute = true;
        }
    }
    {
        // Async-request span: how long this caller spent executing the
        // shared resolution, or blocked waiting for another executor.
        const bool tracing = telemetry::Trace_recorder::instance().enabled();
        const telemetry::Trace_span span(
            "kernel_cache.request", "cache",
            tracing ? telemetry::arg("role", execute ? "execute" : "wait")
                    : std::string());
        if (execute) {
            state_->cache->resolve_request(state_, config_, *volume_, times_, options_);
        } else {
            Annotated_lock lock(state_->mutex);
            while (!state_->done) state_->cv.wait(lock);
        }
    }
    Annotated_lock lock(state_->mutex);
    while (!state_->done) state_->cv.wait(lock);
    if (state_->error) std::rethrow_exception(state_->error);
    return state_->result;
}

void Kernel_cache::resolve_request(const std::shared_ptr<Kernel_cache_request_state>& state,
                                   const Cell_cycle_config& config,
                                   const Volume_model& volume_model, const Vector& times,
                                   const Kernel_build_options& options) {
    // Disk I/O and simulation run outside the cache mutex so a long build
    // never blocks unrelated lookups; waiters block only on this
    // request's own latch.
    std::shared_ptr<const Kernel_grid> kernel;
    std::exception_ptr error;
    bool from_disk = false;
    bool migrated = false;
    const std::string& key = state->key;
    const std::string hash = key_hash(key);
    const bool tracing = telemetry::Trace_recorder::instance().enabled();
    const telemetry::Trace_span resolve_span(
        "kernel_cache.resolve", "cache",
        tracing ? telemetry::arg("hash", hash) : std::string());
    try {
        if (!directory_.empty() && read_text_file(sidecar_path(hash)) == key) {
            // The sidecar is written after the kernel file, so a matching
            // key promises a complete entry; a corrupt or
            // invariant-violating file still only costs a rebuild. New
            // entries are binary; legacy caches hold CSVs — serve either,
            // preferring the binary when both exist (mid-migration).
            std::error_code ec;
            const std::string binary = binary_entry_path(hash);
            bool is_legacy = !std::filesystem::exists(binary, ec);
            std::string entry = is_legacy ? legacy_entry_path(hash) : binary;
            try {
                try {
                    kernel = std::make_shared<const Kernel_grid>(read_kernel_file(entry));
                } catch (const std::exception& e) {
                    // A torn mid-migration binary (process killed between
                    // opening the .bin and its flush) must not shadow the
                    // still-valid CSV sitting next to it: fall back, and
                    // let the migration below overwrite the torn file.
                    if (is_legacy || !std::filesystem::exists(legacy_entry_path(hash), ec)) {
                        throw;
                    }
                    std::fprintf(stderr,
                                 "Kernel_cache: unreadable binary entry %s (%s); falling "
                                 "back to the legacy CSV\n",
                                 entry.c_str(), e.what());
                    is_legacy = true;
                    entry = legacy_entry_path(hash);
                    kernel = std::make_shared<const Kernel_grid>(read_kernel_file(entry));
                }
                from_disk = true;
                bool stored = false;
                if (!limits_.read_only) {
                    if (is_legacy) {
                        // Opportunistic upgrade: a writable owner rewrites
                        // a legacy entry in the binary format the first
                        // time it is touched, so old caches converge
                        // without a separate migration pass.
                        stored = migrate_legacy_entry(hash, *kernel);
                        migrated = stored;
                    } else if (std::filesystem::exists(legacy_entry_path(hash), ec)) {
                        // A migration that died between writing the binary
                        // and dropping the CSV left both behind; the
                        // binary just read fine, so finish the job.
                        std::filesystem::remove(legacy_entry_path(hash), ec);
                        stored = true;  // re-account the shrunken footprint
                    }
                }
                touch_manifest(hash, key, stored);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "Kernel_cache: discarding unreadable entry %s (%s)\n",
                             entry.c_str(), e.what());
            }
        }
        if (!kernel) {
            const telemetry::Latency_timer build_watch;
            kernel = std::make_shared<const Kernel_grid>(
                build_kernel(config, volume_model, times, options));
            static telemetry::Histogram& build_us =
                telemetry::histogram("kernel_cache.build_us");
            build_us.record(build_watch.elapsed_us());
            if (!directory_.empty() && !limits_.read_only) {
                // A full disk or unwritable directory degrades to
                // memory-only caching instead of sinking the run. The
                // sidecar commit marker is only written after the kernel
                // file lands completely, and a torn kernel file is
                // removed, so no failure mode publishes a corrupt entry.
                try {
                    write_kernel_file(binary_entry_path(hash), *kernel,
                                      Kernel_format::binary);
                    {
                        std::ofstream sidecar(sidecar_path(hash),
                                              std::ios::binary | std::ios::trunc);
                        sidecar << key;
                        sidecar.flush();
                        if (!sidecar) {
                            throw std::runtime_error("cannot write '" +
                                                     sidecar_path(hash) + "'");
                        }
                    }
                    touch_manifest(hash, key, /*stored=*/true);
                } catch (const std::exception& e) {
                    std::error_code ec;
                    std::filesystem::remove(sidecar_path(hash), ec);
                    std::filesystem::remove(binary_entry_path(hash), ec);
                    std::fprintf(stderr, "Kernel_cache: could not persist entry: %s\n",
                                 e.what());
                }
            }
        }
    } catch (...) {
        error = std::current_exception();
    }

    if (kernel) {
        static telemetry::Counter& disk_hits = telemetry::counter("kernel_cache.disk_hits");
        static telemetry::Counter& builds = telemetry::counter("kernel_cache.builds");
        static telemetry::Counter& migrations =
            telemetry::counter("kernel_cache.migrations");
        if (from_disk) disk_hits.add();
        else builds.add();
        if (migrated) migrations.add();
    }
    {
        const Annotated_lock lock(mutex_);
        if (kernel) {
            if (from_disk) ++stats_.disk_hits;
            else ++stats_.builds;
            if (migrated) ++stats_.migrations;
            // emplace keeps an entry another resolution may have inserted
            // first; publish the map's copy so all callers share one grid.
            kernel = memory_.emplace(key, std::move(kernel)).first->second;
        }
        inflight_.erase(key);
    }
    {
        const Annotated_lock lock(state->mutex);
        state->result = std::move(kernel);
        state->error = error;
        state->done = true;
    }
    state->cv.notify_all();
}

std::shared_ptr<const Kernel_grid> Kernel_cache::get_or_build(
    const Cell_cycle_config& config, const Volume_model& volume_model, const Vector& times,
    const Kernel_build_options& options) {
    return get_or_build_async(config, volume_model, times, options).get();
}

Kernel_cache_stats Kernel_cache::stats() const {
    const Annotated_lock lock(mutex_);
    return stats_;
}

void Kernel_cache::clear_memory() {
    const Annotated_lock lock(mutex_);
    memory_.clear();
}

}  // namespace cellsync
