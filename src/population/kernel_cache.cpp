#include "population/kernel_cache.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/kernel_io.h"

namespace cellsync {

namespace {

void append_double(std::string& out, const char* name, double value) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%s=%.17g;", name, value);
    out += buffer;
}

std::string read_text_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return "";
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

}  // namespace

Kernel_cache::Kernel_cache(std::string directory) : directory_(std::move(directory)) {
    if (directory_.empty()) {
        throw std::invalid_argument("Kernel_cache: empty directory (use the default "
                                    "constructor for a memory-only cache)");
    }
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
        throw std::runtime_error("Kernel_cache: cannot create directory '" + directory_ +
                                 "': " + ec.message());
    }
}

std::string Kernel_cache::cache_key(const Cell_cycle_config& config,
                                    const Volume_model& volume_model, const Vector& times,
                                    const Kernel_build_options& options) {
    std::string key = "cellsync-kernel-v1;";
    append_double(key, "mu_sst", config.mu_sst);
    append_double(key, "cv_sst", config.cv_sst);
    append_double(key, "mean_cycle_minutes", config.mean_cycle_minutes);
    append_double(key, "cv_cycle", config.cv_cycle);
    key += "initial_mode=" + std::to_string(static_cast<int>(config.initial_mode)) + ";";
    key += "volume=" + volume_model.name() + ";";
    key += "n_cells=" + std::to_string(options.n_cells) + ";";
    key += "n_bins=" + std::to_string(options.n_bins) + ";";
    key += "seed=" + std::to_string(options.seed) + ";";
    key += "times=";
    for (double t : times) {
        char buffer[40];
        std::snprintf(buffer, sizeof(buffer), "%.17g,", t);
        key += buffer;
    }
    return key;
}

std::string Kernel_cache::key_hash(const std::string& key) {
    std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 1099511628211ull;  // FNV prime
    }
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(hash));
    return buffer;
}

std::string Kernel_cache::entry_path(const std::string& hash) const {
    return directory_ + "/kernel_" + hash + ".csv";
}

std::string Kernel_cache::sidecar_path(const std::string& hash) const {
    return directory_ + "/kernel_" + hash + ".key";
}

std::shared_ptr<const Kernel_grid> Kernel_cache::get_or_build(
    const Cell_cycle_config& config, const Volume_model& volume_model, const Vector& times,
    const Kernel_build_options& options) {
    const std::string key = cache_key(config, volume_model, times, options);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = memory_.find(key); it != memory_.end()) {
            ++stats_.memory_hits;
            return it->second;
        }
    }

    // Disk I/O and simulation run outside the mutex so a long build never
    // blocks unrelated lookups. Two threads racing on the same uncached
    // key may both simulate (identical, seeded results); the map keeps the
    // first insertion and both callers share it.
    std::shared_ptr<const Kernel_grid> kernel;
    bool from_disk = false;
    const std::string hash = key_hash(key);
    if (!directory_.empty() && read_text_file(sidecar_path(hash)) == key) {
        // The sidecar is written after the kernel CSV, so a matching key
        // promises a complete entry; a corrupt or invariant-violating CSV
        // still only costs a rebuild.
        try {
            kernel = std::make_shared<const Kernel_grid>(read_kernel_file(entry_path(hash)));
            from_disk = true;
        } catch (const std::exception& e) {
            std::fprintf(stderr, "Kernel_cache: discarding unreadable entry %s (%s)\n",
                         entry_path(hash).c_str(), e.what());
        }
    }
    if (!kernel) {
        kernel = std::make_shared<const Kernel_grid>(
            build_kernel(config, volume_model, times, options));
        if (!directory_.empty()) {
            // A full disk or read-only directory degrades to memory-only
            // caching instead of sinking the run.
            try {
                write_kernel_file(entry_path(hash), *kernel);
                std::ofstream sidecar(sidecar_path(hash),
                                      std::ios::binary | std::ios::trunc);
                sidecar << key;
                if (!sidecar) {
                    throw std::runtime_error("cannot write '" + sidecar_path(hash) + "'");
                }
            } catch (const std::exception& e) {
                std::fprintf(stderr, "Kernel_cache: could not persist entry: %s\n",
                             e.what());
            }
        }
    }

    const std::lock_guard<std::mutex> lock(mutex_);
    if (from_disk) ++stats_.disk_hits;
    else ++stats_.builds;
    // emplace keeps an entry a racing thread may have inserted first;
    // return the map's copy so all callers share one grid.
    return memory_.emplace(key, std::move(kernel)).first->second;
}

Kernel_cache_stats Kernel_cache::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void Kernel_cache::clear_memory() {
    const std::lock_guard<std::mutex> lock(mutex_);
    memory_.clear();
}

}  // namespace cellsync
