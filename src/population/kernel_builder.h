// Builder for the integral-transform kernel Q(phi, t) of paper Eq 3.
//
// Q(phi, t) is the fractional volume density: the fraction of total
// population volume at experiment time t residing near phase phi. The
// paper evaluates it by simulation; this builder runs the agent-based
// population simulator, collects volume-weighted phase histograms at the
// requested times, and packages them as a discretized kernel usable both
// forwards (generating population data from a known single-cell profile)
// and backwards (assembling the deconvolution's kernel matrix).
#pragma once

#include <cstdint>
#include <functional>

#include "numerics/matrix.h"
#include "population/population_simulator.h"
#include "spline/basis.h"

namespace cellsync {

/// Discretized kernel: row m holds Q(phi, times[m]) sampled at the phase
/// bin centers; every row integrates to 1 over phi.
class Kernel_grid {
  public:
    /// Direct construction from precomputed slices (used by tests and by
    /// deserialization); validates shapes and row normalization. Rows whose
    /// mass drifts from 1 within a tolerance scaled to the bin count are
    /// renormalized in place; genuinely non-normalizable rows (mass <= 0 or
    /// beyond the tolerance) throw std::invalid_argument. Rows already at
    /// unit mass are left bit-identical, so a kernel_io round trip is
    /// exact.
    Kernel_grid(Vector times, Vector phi_centers, Matrix q);

    const Vector& times() const { return times_; }
    const Vector& phi_centers() const { return phi_centers_; }
    const Matrix& q() const { return q_; }
    double bin_width() const { return bin_width_; }
    std::size_t time_count() const { return times_.size(); }
    std::size_t bin_count() const { return phi_centers_.size(); }

    /// Forward transform of an arbitrary profile:
    /// G(t_m) = integral Q(phi, t_m) f(phi) dphi, by midpoint quadrature on
    /// the phase bins.
    Vector apply(const std::function<double(double)>& f) const;

    /// Forward transform of a sampled profile (values at phi_centers).
    Vector apply_sampled(const Vector& f_values) const;

    /// Kernel matrix K with K(m, i) = integral Q(phi, t_m) psi_i(phi) dphi
    /// for the given basis (the linear map from basis coefficients to
    /// model-predicted measurements Ghat, paper Eq 5).
    Matrix basis_matrix(const Basis& basis) const;

  private:
    Vector times_;
    Vector phi_centers_;
    Matrix q_;  // time_count x bin_count
    double bin_width_ = 0.0;
};

/// Monte-Carlo kernel construction parameters.
struct Kernel_build_options {
    std::size_t n_cells = 100000;  ///< initial population size
    std::size_t n_bins = 200;      ///< phase resolution of the kernel
    std::uint64_t seed = 20110605; ///< simulator seed
};

/// Build Q(phi, t) at the given measurement times (minutes, ascending,
/// starting at >= 0) by simulating the configured population.
/// Throws std::invalid_argument for empty/descending times or zero
/// cells/bins.
Kernel_grid build_kernel(const Cell_cycle_config& config, const Volume_model& volume_model,
                         const Vector& times, const Kernel_build_options& options = {});

}  // namespace cellsync
