// Synchrony metrics for a population snapshot.
//
// Quantifies how far a population has drifted from synchrony — the decay
// these metrics show over experiment time is exactly the asynchronous
// variability the deconvolution removes in silico.
#pragma once

#include <vector>

#include "numerics/vector_ops.h"
#include "population/population_simulator.h"

namespace cellsync {

/// Kuramoto-style circular order parameter r = |mean(exp(2 pi i phi))|.
/// r = 1 for a perfectly synchronized population, -> 0 for phases spread
/// uniformly. Throws std::invalid_argument on an empty snapshot.
double phase_order_parameter(const std::vector<Snapshot_entry>& snapshot);

/// Normalized Shannon entropy of the phase histogram (`bins` bins):
/// 0 when all mass is in one bin, 1 for the uniform distribution.
/// Throws std::invalid_argument on an empty snapshot or zero bins.
double phase_entropy(const std::vector<Snapshot_entry>& snapshot, std::size_t bins = 50);

// -- profile-level variants -------------------------------------------------
//
// The experiment runner scores reconstructed single-cell profiles f(phi)
// with the same two metrics: the profile, clamped at zero and normalized
// to unit mass, is treated as the phase density of the expression it
// represents. A sharply cell-cycle-regulated gene scores r -> 1 / entropy
// -> 0; a constitutive (flat) gene scores r -> 0 / entropy -> 1.

/// Order parameter r = |sum_b p_b exp(2 pi i phi_b)| of a sampled profile
/// (values at `phi`, negatives clamped to 0, normalized to probabilities).
/// Throws std::invalid_argument on empty/mismatched inputs or when the
/// clamped profile has no positive mass.
double profile_order_parameter(const Vector& phi, const Vector& values);

/// Normalized Shannon entropy of a sampled profile's probability vector:
/// 0 when all mass is at one sample, 1 for a flat profile. Same
/// preconditions as profile_order_parameter (needs >= 2 samples).
double profile_entropy(const Vector& values);

}  // namespace cellsync
