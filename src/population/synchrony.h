// Synchrony metrics for a population snapshot.
//
// Quantifies how far a population has drifted from synchrony — the decay
// these metrics show over experiment time is exactly the asynchronous
// variability the deconvolution removes in silico.
#ifndef CELLSYNC_POPULATION_SYNCHRONY_H
#define CELLSYNC_POPULATION_SYNCHRONY_H

#include <vector>

#include "population/population_simulator.h"

namespace cellsync {

/// Kuramoto-style circular order parameter r = |mean(exp(2 pi i phi))|.
/// r = 1 for a perfectly synchronized population, -> 0 for phases spread
/// uniformly. Throws std::invalid_argument on an empty snapshot.
double phase_order_parameter(const std::vector<Snapshot_entry>& snapshot);

/// Normalized Shannon entropy of the phase histogram (`bins` bins):
/// 0 when all mass is in one bin, 1 for the uniform distribution.
/// Throws std::invalid_argument on an empty snapshot or zero bins.
double phase_entropy(const std::vector<Snapshot_entry>& snapshot, std::size_t bins = 50);

}  // namespace cellsync

#endif  // CELLSYNC_POPULATION_SYNCHRONY_H
