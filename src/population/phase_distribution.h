// Phase-distribution estimators over population snapshots.
//
// Histograms of cell phase, either number-weighted (the classic phase
// distribution) or volume-weighted (the Q(phi, t) kernel slice of paper
// Eq 3), normalized to integrate to one over phi in [0, 1].
#ifndef CELLSYNC_POPULATION_PHASE_DISTRIBUTION_H
#define CELLSYNC_POPULATION_PHASE_DISTRIBUTION_H

#include <vector>

#include "numerics/vector_ops.h"
#include "population/population_simulator.h"

namespace cellsync {

/// A density sampled at bin centers on [0, 1]; sum(density) * bin_width = 1
/// for non-empty snapshots.
struct Phase_density {
    Vector bin_centers;
    Vector density;
    double bin_width = 0.0;

    /// Integral of the density over [0,1] (== 1 up to rounding).
    double mass() const;

    /// Mean phase under this density.
    double mean_phase() const;
};

/// Number-weighted phase density. Throws std::invalid_argument for zero
/// bins or an empty snapshot.
Phase_density phase_number_density(const std::vector<Snapshot_entry>& snapshot,
                                   std::size_t bins);

/// Volume-weighted phase density: each cell contributes its relative
/// volume. This is the Monte-Carlo estimate of Q(phi, t) at the snapshot's
/// time. Throws std::invalid_argument for zero bins, an empty snapshot, or
/// non-positive total volume.
Phase_density phase_volume_density(const std::vector<Snapshot_entry>& snapshot,
                                   std::size_t bins);

}  // namespace cellsync

#endif  // CELLSYNC_POPULATION_PHASE_DISTRIBUTION_H
