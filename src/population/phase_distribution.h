// Phase-distribution estimators over population snapshots.
//
// Histograms of cell phase, either number-weighted (the classic phase
// distribution) or volume-weighted (the Q(phi, t) kernel slice of paper
// Eq 3), normalized to integrate to one over phi in [0, 1].
#pragma once

#include <vector>

#include "numerics/vector_ops.h"
#include "population/population_simulator.h"

namespace cellsync {

/// A density sampled at bin centers on [0, 1]; sum(density) * bin_width = 1
/// for non-empty snapshots.
struct Phase_density {
    Vector bin_centers;
    Vector density;
    double bin_width = 0.0;

    /// Integral of the density over [0,1] (== 1 up to rounding).
    double mass() const;

    /// Circular (resultant-angle) mean phase under this density, in
    /// [0, 1). Phase is periodic, so the mean of a density clustered
    /// around the wrap point phi ~ 0/1 is near 0 (not the 0.5 a linear
    /// first moment would report). The direction is meaningful only when
    /// resultant_length() is away from 0; for a (near-)uniform density the
    /// resultant vanishes and the returned angle is numerical noise.
    double mean_phase() const;

    /// Length of the circular resultant |integral e^{2 pi i phi} rho dphi|
    /// in [0, 1]: 1 for a point mass, 0 for the uniform density. This is
    /// the density-level analogue of the population order parameter.
    double resultant_length() const;

  private:
    /// Shared resultant-vector accumulation.
    void resultant(double& re, double& im) const;
};

/// Number-weighted phase density. Throws std::invalid_argument for zero
/// bins or an empty snapshot.
Phase_density phase_number_density(const std::vector<Snapshot_entry>& snapshot,
                                   std::size_t bins);

/// Volume-weighted phase density: each cell contributes its relative
/// volume. This is the Monte-Carlo estimate of Q(phi, t) at the snapshot's
/// time. Throws std::invalid_argument for zero bins, an empty snapshot, or
/// non-positive total volume.
Phase_density phase_volume_density(const std::vector<Snapshot_entry>& snapshot,
                                   std::size_t bins);

}  // namespace cellsync
