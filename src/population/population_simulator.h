// Agent-based simulation of an asynchronously growing cell population
// (paper Sec 2.1).
//
// Each cell advances through phase at rate 1/T_k; when it reaches phi = 1
// it is replaced by an SW daughter (phi = 0) and an ST daughter (phi =
// its freshly drawn phi_sst). Snapshots of (phi, phi_sst, volume) feed the
// phase-distribution estimators and the kernel builder. Given a seed, runs
// are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "biology/cell_cycle.h"
#include "biology/volume_model.h"

namespace cellsync {

/// One simulated cell, stored by its birth record; the phase at any time
/// follows from phi = birth_phase + (t - birth_time) / T.
struct Simulated_cell {
    double birth_time = 0.0;   ///< experiment time the cell appeared (minutes)
    double birth_phase = 0.0;  ///< phase at birth (0 for SW, phi_sst for ST daughters)
    Cell_parameters params;    ///< this cell's theta_k = {phi_sst, T}

    /// Phase at time t (caller must not exceed division_time()).
    double phase_at(double t) const {
        return birth_phase + (t - birth_time) / params.cycle_minutes;
    }

    /// Experiment time at which this cell reaches phi = 1 and divides.
    double division_time() const {
        return birth_time + params.cycle_minutes * (1.0 - birth_phase);
    }
};

/// Per-cell view of the population at the simulator's current time.
struct Snapshot_entry {
    double phi = 0.0;              ///< cell-cycle phase
    double phi_sst = 0.0;          ///< the cell's SW->ST transition phase
    double relative_volume = 0.0;  ///< v(phi)/V0 under the chosen volume model
};

/// Forward-only population simulator.
class Population_simulator {
  public:
    /// Create `initial_cells` cells at t = 0 according to the config's
    /// initial-phase mode. Throws std::invalid_argument for zero cells or
    /// an invalid config.
    Population_simulator(const Cell_cycle_config& config, std::size_t initial_cells,
                         std::uint64_t seed);

    /// Advance the simulation clock (monotonically) to `t_minutes`,
    /// performing all divisions along the way. Throws std::invalid_argument
    /// if asked to move backwards.
    void advance_to(double t_minutes);

    /// Current simulation time in minutes.
    double time() const { return time_; }

    /// Number of live cells.
    std::size_t size() const { return cells_.size(); }

    /// Live-cell records.
    const std::vector<Simulated_cell>& cells() const { return cells_; }

    /// Per-cell phases and volumes at the current time.
    std::vector<Snapshot_entry> snapshot(const Volume_model& volume_model) const;

    /// Total relative population volume at the current time (sum of
    /// per-cell relative volumes), i.e. the V(t)/V0 of paper Eq 1 up to the
    /// constant N V0.
    double total_relative_volume(const Volume_model& volume_model) const;

  private:
    Cell_cycle_config config_;
    Rng rng_;
    double time_ = 0.0;
    std::vector<Simulated_cell> cells_;
};

}  // namespace cellsync
