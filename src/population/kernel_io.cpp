#include "population/kernel_io.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "io/csv.h"
#include "numerics/fnv.h"

namespace cellsync {

namespace {

// ---------------------------------------------------------------------------
// cellsync-kernel-bin-v1 layout primitives
// ---------------------------------------------------------------------------

/// Version-agnostic magic prefix: detection keys on this so future
/// versions stay recognizably "a cellsync binary kernel" and can be
/// rejected with a version message instead of a CSV parse error.
constexpr std::string_view binary_magic_prefix = "cellsync-kernel-bin-";
/// Full magic line of the current version (23 bytes, newline included, so
/// `head -c 23 file` identifies a kernel from the shell).
constexpr std::string_view binary_magic = "cellsync-kernel-bin-v1\n";
constexpr std::uint32_t binary_version = 1;

/// Q-value blocks: a u32 header whose MSB marks a run of bitwise +0.0
/// values (no payload) and whose low 31 bits count values; literal blocks
/// are followed by that many little-endian doubles. Runs shorter than
/// this threshold are not worth the two block headers they would split.
constexpr std::uint32_t zero_run_flag = 0x80000000u;
constexpr std::size_t min_zero_run = 2;

void put_u32(std::string& out, std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<char>((value >> shift) & 0xff));
    }
}

void put_u64(std::string& out, std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<char>((value >> shift) & 0xff));
    }
}

void put_f64(std::string& out, double value) {
    put_u64(out, std::bit_cast<std::uint64_t>(value));
}

/// Bounds-checked little-endian reader over an in-memory image.
struct Binary_cursor {
    std::string_view bytes;
    std::size_t pos = 0;

    void need(std::size_t n, const char* what) const {
        if (bytes.size() - pos < n) {
            throw std::runtime_error(std::string("read_kernel_binary: truncated file (") +
                                     what + ")");
        }
    }

    std::uint32_t u32(const char* what) {
        need(4, what);
        std::uint32_t value = 0;
        for (int shift = 0; shift < 32; shift += 8) {
            value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos++]))
                     << shift;
        }
        return value;
    }

    std::uint64_t u64(const char* what) {
        need(8, what);
        std::uint64_t value = 0;
        for (int shift = 0; shift < 64; shift += 8) {
            value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos++]))
                     << shift;
        }
        return value;
    }

    double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

    /// Decode `count` contiguous doubles — a straight memcpy on
    /// little-endian hosts (x86/arm), byte-assembled elsewhere.
    void f64_array(double* out, std::size_t count, const char* what) {
        need(8 * count, what);
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(out, bytes.data() + pos, 8 * count);
            pos += 8 * count;
        } else {
            for (std::size_t k = 0; k < count; ++k) out[k] = f64(what);
        }
    }
};

std::string encode_kernel_binary(const Kernel_grid& kernel) {
    const std::size_t time_count = kernel.time_count();
    const std::size_t bin_count = kernel.bin_count();
    const std::size_t values = time_count * bin_count;
    std::string out;
    out.reserve(binary_magic.size() + 12 + 8 * (time_count + bin_count + values) + 8);

    out.append(binary_magic);
    put_u32(out, binary_version);
    put_u32(out, static_cast<std::uint32_t>(time_count));
    put_u32(out, static_cast<std::uint32_t>(bin_count));
    for (double t : kernel.times()) put_f64(out, t);
    for (double phi : kernel.phi_centers()) put_f64(out, phi);

    // Q values, time-major, as zero-run / literal blocks. Only the exact
    // +0.0 bit pattern compresses: -0.0 and denormals go through literal
    // blocks so the round trip stays bit-identical. Block order is the
    // matrix's row-major storage order, so the flat data() view is the
    // encode source as-is.
    const auto is_positive_zero = [](double v) {
        return std::bit_cast<std::uint64_t>(v) == 0;
    };
    const std::vector<double>& flat_q = kernel.q().data();
    const auto value_at = [&](std::size_t flat) { return flat_q[flat]; };
    constexpr std::size_t max_block = 0x7fffffffu;  // count lives in 31 bits
    std::size_t i = 0;
    while (i < values) {
        std::size_t zeros = 0;
        while (i + zeros < values && is_positive_zero(value_at(i + zeros))) ++zeros;
        if (zeros >= min_zero_run) {
            while (zeros > 0) {
                const std::size_t chunk = std::min(zeros, max_block);
                put_u32(out, zero_run_flag | static_cast<std::uint32_t>(chunk));
                i += chunk;
                zeros -= chunk;
            }
            continue;
        }
        // Literal run: up to the next compressible zero run (or the end).
        std::size_t end = i;
        while (end < values) {
            std::size_t ahead = 0;
            while (end + ahead < values && is_positive_zero(value_at(end + ahead))) ++ahead;
            if (ahead >= min_zero_run) break;
            end += ahead;                 // a short zero run folds into the literal
            if (end < values) ++end;      // ...along with the nonzero that ended it
        }
        while (i < end) {
            const std::size_t chunk = std::min(end - i, max_block);
            put_u32(out, static_cast<std::uint32_t>(chunk));
            for (std::size_t k = 0; k < chunk; ++k, ++i) put_f64(out, value_at(i));
        }
    }

    put_u64(out, fnv1a64(out));
    return out;
}

Kernel_grid decode_kernel_binary(std::string_view bytes) {
    if (bytes.size() < binary_magic_prefix.size() ||
        bytes.substr(0, binary_magic_prefix.size()) != binary_magic_prefix) {
        throw std::runtime_error(
            "read_kernel_binary: bad magic (not a cellsync binary kernel)");
    }
    if (bytes.size() < binary_magic.size() ||
        bytes.substr(0, binary_magic.size()) != binary_magic) {
        throw std::runtime_error(
            "read_kernel_binary: unrecognized format revision in magic line");
    }

    Binary_cursor cursor{bytes, binary_magic.size()};
    const std::uint32_t version = cursor.u32("version");
    if (version != binary_version) {
        throw std::runtime_error("read_kernel_binary: unsupported version " +
                                 std::to_string(version) + " (this build reads version " +
                                 std::to_string(binary_version) + ")");
    }
    const std::uint32_t time_count = cursor.u32("time count");
    const std::uint32_t bin_count = cursor.u32("bin count");
    if (time_count == 0 || bin_count == 0) {
        throw std::runtime_error("read_kernel_binary: empty grid dimensions");
    }
    const std::uint64_t values =
        static_cast<std::uint64_t>(time_count) * static_cast<std::uint64_t>(bin_count);
    // Dimension sanity before anything is allocated from them: a cap far
    // above any plausible kernel (2^27 values = 1 GiB of doubles), and —
    // since the axes are stored raw — the file must at least hold them
    // plus one value-block header and the checksum. Together these keep
    // a corrupt or crafted dims field from becoming a giant allocation.
    if (values > (1ull << 27)) {
        throw std::runtime_error("read_kernel_binary: implausible grid dimensions (" +
                                 std::to_string(time_count) + " x " +
                                 std::to_string(bin_count) + ")");
    }
    if (bytes.size() - cursor.pos <
        8ull * (static_cast<std::uint64_t>(time_count) + bin_count) + 4 + 8) {
        throw std::runtime_error(
            "read_kernel_binary: truncated file (too small for its dimensions)");
    }

    // Checksum before decoding the payload: a flipped byte anywhere in
    // the file (dims included) is reported as corruption, not as some
    // downstream shape or invariant error.
    if (bytes.size() < 8) throw std::runtime_error("read_kernel_binary: truncated file");
    const std::string_view body = bytes.substr(0, bytes.size() - 8);
    Binary_cursor checksum_cursor{bytes, bytes.size() - 8};
    const std::uint64_t stored = checksum_cursor.u64("checksum");
    if (fnv1a64(body) != stored) {
        throw std::runtime_error(
            "read_kernel_binary: checksum mismatch (corrupt or torn file)");
    }

    Vector times(time_count);
    cursor.f64_array(times.data(), time_count, "times");
    Vector phi(bin_count);
    cursor.f64_array(phi.data(), bin_count, "phi centers");

    // Decode straight into the matrix's row-major storage: blocks are
    // encoded in storage order, so a literal block is one contiguous
    // copy and a zero run is already in place (Matrix zero-fills).
    Matrix q(time_count, bin_count);
    double* grid = &q(0, 0);
    std::uint64_t decoded = 0;
    while (decoded < values) {
        const std::uint32_t header = cursor.u32("block header");
        const std::uint64_t count = header & ~zero_run_flag;
        if (count == 0 || decoded + count > values) {
            throw std::runtime_error("read_kernel_binary: malformed value block");
        }
        if (!(header & zero_run_flag)) {
            cursor.f64_array(grid + decoded, count, "values");
        }
        decoded += count;
    }
    if (cursor.pos != bytes.size() - 8) {
        throw std::runtime_error("read_kernel_binary: trailing bytes after value blocks");
    }
    return Kernel_grid(std::move(times), std::move(phi), std::move(q));
}

std::string slurp(std::istream& in) {
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

bool looks_binary(std::string_view bytes) {
    return bytes.size() >= binary_magic_prefix.size() &&
           bytes.substr(0, binary_magic_prefix.size()) == binary_magic_prefix;
}

}  // namespace

const char* to_string(Kernel_format format) {
    return format == Kernel_format::binary ? "binary" : "csv";
}

Kernel_format kernel_format_from_string(const std::string& name) {
    if (name == "csv") return Kernel_format::csv;
    if (name == "bin" || name == "binary") return Kernel_format::binary;
    throw std::invalid_argument("unknown kernel format '" + name +
                                "' (want csv, bin, or binary)");
}

void write_kernel(std::ostream& out, const Kernel_grid& kernel) {
    Table table;
    table.add_column("phi", kernel.phi_centers());
    for (std::size_t m = 0; m < kernel.time_count(); ++m) {
        std::ostringstream name;
        // Full precision: the loaded grid must reproduce the times
        // bit-exactly (the kernel cache round trip depends on it).
        name << "t" << std::setprecision(17) << kernel.times()[m];
        Vector column(kernel.bin_count());
        for (std::size_t b = 0; b < kernel.bin_count(); ++b) column[b] = kernel.q()(m, b);
        table.add_column(name.str(), column);
    }
    write_csv(out, table);
}

void write_kernel_binary(std::ostream& out, const Kernel_grid& kernel) {
    const std::string encoded = encode_kernel_binary(kernel);
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
}

void write_kernel_file(const std::string& path, const Kernel_grid& kernel,
                       Kernel_format format) {
    std::ofstream out(path, format == Kernel_format::binary
                                ? std::ios::binary | std::ios::trunc
                                : std::ios::trunc);
    if (!out) throw std::runtime_error("write_kernel_file: cannot open '" + path + "'");
    if (format == Kernel_format::binary) write_kernel_binary(out, kernel);
    else write_kernel(out, kernel);
    // A full disk fails the buffered writes only at flush time; without
    // this check a truncated kernel would be reported as success.
    out.flush();
    if (!out) {
        throw std::runtime_error("write_kernel_file: write failed for '" + path +
                                 "' (disk full?)");
    }
}

Kernel_grid read_kernel(std::istream& in) {
    const Table table = read_csv(in);
    if (!table.has_column("phi")) {
        throw std::runtime_error("read_kernel: missing 'phi' column");
    }
    if (table.column_count() < 2) {
        throw std::runtime_error("read_kernel: no time-slice columns");
    }

    const Vector& phi = table.column("phi");
    Vector times;
    Matrix q(table.column_count() - 1, phi.size());
    std::size_t row = 0;
    for (std::size_t c = 0; c < table.column_count(); ++c) {
        const std::string& name = table.names()[c];
        if (name == "phi") continue;
        if (name.size() < 2 || name.front() != 't') {
            throw std::runtime_error("read_kernel: bad time column name '" + name + "'");
        }
        try {
            // csv_parse_field's policy: std::from_chars with the whole
            // field consumed, finite values only — so 't1.5junk', 'tinf',
            // and 'tnan' are rejected instead of silently truncated.
            times.push_back(csv_parse_field(name.substr(1), 1));
        } catch (const std::exception&) {
            throw std::runtime_error("read_kernel: unparseable time in column '" + name +
                                     "' (want t<minutes> with a finite, fully numeric "
                                     "suffix)");
        }
        q.set_row(row++, table.column(c));
    }
    return Kernel_grid(std::move(times), phi, std::move(q));
}

Kernel_grid read_kernel_binary(std::istream& in) {
    return decode_kernel_binary(slurp(in));
}

Kernel_grid read_kernel_auto(std::istream& in, Kernel_format* detected) {
    const std::string content = slurp(in);
    if (looks_binary(content)) {
        if (detected) *detected = Kernel_format::binary;
        return decode_kernel_binary(content);
    }
    if (detected) *detected = Kernel_format::csv;
    std::istringstream csv(content);
    return read_kernel(csv);
}

Kernel_grid read_kernel_file(const std::string& path, Kernel_format* detected) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_kernel_file: cannot open '" + path + "'");
    return read_kernel_auto(in, detected);
}

}  // namespace cellsync
