// Time series of morphological cell-type fractions (paper Sec 4.2,
// Figure 4).
//
// The census classifies every live cell at each sample time into
// SW / STE / STEPD / STLPD and reports population fractions. Running it at
// the paper's low/mid/high thresholds produces the shaded bands of
// Figure 4.
#pragma once

#include <cstdint>

#include "biology/cell_types.h"
#include "numerics/matrix.h"
#include "population/population_simulator.h"

namespace cellsync {

/// Fractions of each cell type over time; fractions(m, k) is the fraction
/// of cells of type k (Cell_type underlying value) at times[m]. Rows sum
/// to 1.
struct Census_series {
    Vector times;
    Matrix fractions;  // times x cell_type_count

    /// Column of one type's fraction series.
    Vector type_series(Cell_type type) const;
};

/// Census simulation parameters.
struct Census_options {
    std::size_t n_cells = 100000;
    std::uint64_t seed = 20030714;
};

/// Simulate a population and record type fractions at each requested time
/// (minutes, strictly ascending, >= 0). Throws std::invalid_argument on a
/// bad time grid or zero cells.
Census_series simulate_census(const Cell_cycle_config& config,
                              const Cell_type_thresholds& thresholds, const Vector& times,
                              const Census_options& options = {});

}  // namespace cellsync
