#include "population/synchrony.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "population/phase_distribution.h"

namespace cellsync {

double phase_order_parameter(const std::vector<Snapshot_entry>& snapshot) {
    if (snapshot.empty()) throw std::invalid_argument("phase_order_parameter: empty snapshot");
    double re = 0.0, im = 0.0;
    for (const Snapshot_entry& e : snapshot) {
        const double a = 2.0 * std::numbers::pi * e.phi;
        re += std::cos(a);
        im += std::sin(a);
    }
    const double n = static_cast<double>(snapshot.size());
    return std::sqrt(re * re + im * im) / n;
}

double phase_entropy(const std::vector<Snapshot_entry>& snapshot, std::size_t bins) {
    if (bins < 2) throw std::invalid_argument("phase_entropy: need at least 2 bins");
    const Phase_density d = phase_number_density(snapshot, bins);
    double h = 0.0;
    for (double rho : d.density) {
        const double p = rho * d.bin_width;  // bin probability
        if (p > 0.0) h -= p * std::log(p);
    }
    return h / std::log(static_cast<double>(bins));
}

namespace {

/// Clamp negatives to zero and normalize to probabilities; throws when the
/// clamped profile carries no mass.
Vector profile_probabilities(const Vector& values, const char* caller) {
    if (values.size() < 2) {
        throw std::invalid_argument(std::string(caller) + ": need at least 2 samples");
    }
    Vector p(values.size());
    double total = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        p[i] = std::max(values[i], 0.0);
        total += p[i];
    }
    if (!(total > 0.0)) {
        throw std::invalid_argument(std::string(caller) +
                                    ": profile has no positive mass");
    }
    for (double& v : p) v /= total;
    return p;
}

}  // namespace

double profile_order_parameter(const Vector& phi, const Vector& values) {
    if (phi.size() != values.size()) {
        throw std::invalid_argument("profile_order_parameter: grid/profile size mismatch");
    }
    const Vector p = profile_probabilities(values, "profile_order_parameter");
    double re = 0.0, im = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        const double a = 2.0 * std::numbers::pi * phi[i];
        re += p[i] * std::cos(a);
        im += p[i] * std::sin(a);
    }
    return std::sqrt(re * re + im * im);
}

double profile_entropy(const Vector& values) {
    const Vector p = profile_probabilities(values, "profile_entropy");
    double h = 0.0;
    for (double v : p) {
        if (v > 0.0) h -= v * std::log(v);
    }
    return h / std::log(static_cast<double>(p.size()));
}

}  // namespace cellsync
