#include "population/synchrony.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "population/phase_distribution.h"

namespace cellsync {

double phase_order_parameter(const std::vector<Snapshot_entry>& snapshot) {
    if (snapshot.empty()) throw std::invalid_argument("phase_order_parameter: empty snapshot");
    double re = 0.0, im = 0.0;
    for (const Snapshot_entry& e : snapshot) {
        const double a = 2.0 * std::numbers::pi * e.phi;
        re += std::cos(a);
        im += std::sin(a);
    }
    const double n = static_cast<double>(snapshot.size());
    return std::sqrt(re * re + im * im) / n;
}

double phase_entropy(const std::vector<Snapshot_entry>& snapshot, std::size_t bins) {
    if (bins < 2) throw std::invalid_argument("phase_entropy: need at least 2 bins");
    const Phase_density d = phase_number_density(snapshot, bins);
    double h = 0.0;
    for (double rho : d.density) {
        const double p = rho * d.bin_width;  // bin probability
        if (p > 0.0) h -= p * std::log(p);
    }
    return h / std::log(static_cast<double>(bins));
}

}  // namespace cellsync
